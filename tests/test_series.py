"""Unit tests for the time-series primitives (repro.stats.series)."""

from __future__ import annotations

import pytest

from repro.stats.series import (
    DIVERGED,
    IDENTICAL,
    WITHIN_BAND,
    area_between,
    band_exceedances,
    detect_plateau,
    detect_saturation,
    diff_series,
    geometric_ladder,
    max_deviation,
    resample,
    saturation_time,
    union_grid,
    worst_series_verdict,
)


class TestResample:
    def test_identity_on_source_grid(self):
        times = [0.0, 1.0, 2.5, 7.0]
        values = [1.0, 3.0, 2.0, 5.0]
        assert resample(times, values, times) == values

    def test_carry_forward_between_samples(self):
        assert resample([0.0, 2.0], [1.0, 9.0], [0.5, 1.9, 2.0, 3.0]) == [
            1.0, 1.0, 9.0, 9.0,
        ]

    def test_extends_first_value_backward(self):
        assert resample([5.0, 6.0], [2.0, 3.0], [0.0, 4.9]) == [2.0, 2.0]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            resample([], [], [0.0])
        with pytest.raises(ValueError):
            resample([0.0, 1.0], [1.0], [0.0])
        with pytest.raises(ValueError):
            resample([0.0, 0.0], [1.0, 2.0], [0.0])

    def test_union_grid_merges_and_dedups(self):
        assert union_grid([0.0, 2.0], [1.0, 2.0, 3.0]) == [0.0, 1.0, 2.0, 3.0]
        with pytest.raises(ValueError):
            union_grid([], [])


class TestDeviationAndArea:
    def test_max_deviation_location(self):
        worst, at = max_deviation([1.0, 2.0, 3.0], [1.0, 5.0, 3.5])
        assert worst == 3.0
        assert at == 1

    def test_max_deviation_symmetric(self):
        a, b = [1.0, 4.0, 2.0], [2.0, 2.0, 2.0]
        assert max_deviation(a, b) == max_deviation(b, a)

    def test_area_between_step_integral(self):
        grid = [0.0, 1.0, 3.0]
        # |1-2|*1 + |5-2|*2; the last sample carries no width
        assert area_between(grid, [1.0, 5.0, 0.0], [2.0, 2.0, 9.0]) == 7.0

    def test_area_single_point_grid_is_zero(self):
        assert area_between([0.0], [4.0], [1.0]) == 0.0

    def test_band_exceedances_respect_atol_and_rtol(self):
        a = [10.0, 10.0, 10.0]
        b = [10.5, 11.5, 10.0]
        assert band_exceedances(a, b, atol=1.0) == [1]
        assert band_exceedances(a, b, rtol=0.2) == []
        with pytest.raises(ValueError):
            band_exceedances(a, b, atol=-1.0)


class TestDiffSeries:
    def test_identical_series(self):
        d = diff_series("u", [0.0, 1.0], [0.5, 0.7], [0.0, 1.0], [0.5, 0.7])
        assert d.verdict == IDENTICAL
        assert d.max_abs == 0.0
        assert d.area == 0.0

    def test_within_band_then_diverged_as_band_shrinks(self):
        args = ("u", [0.0, 1.0, 2.0], [1.0, 1.0, 1.0],
                [0.0, 1.0, 2.0], [1.0, 1.05, 1.0])
        assert diff_series(*args, atol=0.1).verdict == WITHIN_BAND
        assert diff_series(*args).verdict == DIVERGED

    def test_different_grids_are_unioned(self):
        d = diff_series(
            "u", [0.0, 2.0], [1.0, 1.0], [0.0, 1.0, 2.0], [1.0, 1.0, 1.0]
        )
        assert d.n == 3
        assert d.verdict == IDENTICAL

    def test_max_at_reports_grid_time(self):
        d = diff_series(
            "u", [0.0, 4.0, 8.0], [0.0, 1.0, 1.0],
            [0.0, 4.0, 8.0], [0.0, 3.0, 1.0],
        )
        assert d.max_at == 4.0
        assert d.max_abs == 2.0
        assert d.exceedances == 1

    def test_worst_series_verdict_order(self):
        assert worst_series_verdict([]) == IDENTICAL
        assert worst_series_verdict([IDENTICAL, WITHIN_BAND]) == WITHIN_BAND
        assert worst_series_verdict([WITHIN_BAND, DIVERGED]) == DIVERGED


class TestPlateauDetection:
    def test_detects_plateau_after_confirm_steps(self):
        vals = [0.1, 0.3, 0.6, 0.72, 0.73, 0.73, 0.73]
        assert detect_plateau(vals, rel_tol=0.03, confirm=2) == 5

    def test_no_plateau_in_growing_sequence(self):
        assert detect_plateau([0.1, 0.2, 0.4, 0.8], rel_tol=0.03) is None

    def test_flat_run_resets_on_growth(self):
        vals = [0.5, 0.5, 0.7, 0.7, 0.7]
        assert detect_plateau(vals, rel_tol=0.01, confirm=2) == 4

    def test_decrease_counts_as_flat(self):
        assert detect_plateau([0.8, 0.7, 0.6], confirm=2) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_plateau([1.0], rel_tol=-0.1)
        with pytest.raises(ValueError):
            detect_plateau([1.0], confirm=0)

    def test_short_sequences_never_confirm(self):
        assert detect_plateau([], confirm=1) is None
        assert detect_plateau([1.0], confirm=1) is None


class TestSaturationDetection:
    def test_plain_plateau_without_queue(self):
        utils = [0.3, 0.6, 0.73, 0.73, 0.73]
        assert detect_saturation(utils, rel_tol=0.03, confirm=2) == 4

    def test_queue_growth_corroborates(self):
        utils = [0.3, 0.6, 0.73, 0.73, 0.73]
        queue = [0.0, 1.0, 5.0, 20.0, 80.0]
        assert detect_saturation(utils, queue) == 4

    def test_draining_queue_rejects_lull(self):
        # utilization plateaus twice; the first time the backlog drains
        utils = [0.3, 0.5, 0.5, 0.5, 0.7, 0.7, 0.7]
        queue = [9.0, 5.0, 2.0, 0.0, 1.0, 9.0, 30.0]
        assert detect_saturation(utils, queue, rel_tol=0.01, confirm=2) == 6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            detect_saturation([0.5], [1.0, 2.0])

    def test_saturation_time_maps_index_to_timestamp(self):
        times = [0.0, 10.0, 20.0, 30.0, 40.0]
        utils = [0.3, 0.6, 0.73, 0.73, 0.73]
        assert saturation_time(times, utils) == 40.0
        assert saturation_time([0.0, 1.0], [0.1, 0.9]) is None


class TestGeometricLadder:
    def test_shape_and_anchor(self):
        ladder = geometric_ladder(0.013, factor=1.5, max_steps=4)
        assert ladder[1] == 0.013
        assert ladder[0] == pytest.approx(0.013 / 1.5)
        assert ladder[3] == pytest.approx(0.013 * 1.5**2)
        assert len(ladder) == 4

    def test_validation(self):
        for bad in ((0.0,), (-1.0,)):
            with pytest.raises(ValueError):
                geometric_ladder(*bad)
        with pytest.raises(ValueError):
            geometric_ladder(1.0, factor=1.0)
        with pytest.raises(ValueError):
            geometric_ladder(1.0, max_steps=1)
