"""Tests for the declarative scenario subsystem (and its acceptance
criteria: identity scenarios alias the figure campaigns' cache cells
bit-for-bit, and parallel scenario runs match serial ones)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.config import PAPER_CONFIG
from repro.experiments.campaign import Campaign, run_spec_replication
from repro.experiments.figures import FIGURES
from repro.experiments.scenario import Scenario
from repro.experiments.store import ResultCache

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "scenario_smoke.json"

SMALL = {
    "name": "unit",
    "workload": "uniform",
    "loads": [0.02],
    "config": {"width": 8, "length": 8, "seed": 7},
    "scale": "smoke",
}


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.experiments.store import reset_global_cache

    reset_global_cache()
    yield
    reset_global_cache()


class TestScenarioSpec:
    def test_roundtrip_and_canonicalisation(self):
        sc = Scenario.from_dict({
            **SMALL, "workload": "real*0.5 | thin:0.8 + uniform",
        })
        assert sc.workload == "real | scale:0.5 | thin:0.8 + uniform"
        clone = Scenario.from_json(json.dumps(sc.to_dict()))
        assert clone.to_dict() == sc.to_dict()
        assert clone.fingerprint() == sc.fingerprint()

    def test_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ValueError, match="unknown scenario key"):
            Scenario.from_dict({**SMALL, "typo": 1})
        with pytest.raises(ValueError, match="missing required"):
            Scenario.from_dict({"name": "x"})
        with pytest.raises(ValueError, match="SimConfig"):
            Scenario.from_dict({**SMALL, "config": {"nonsense": 3}})
        with pytest.raises(ValueError):
            Scenario.from_dict({**SMALL, "loads": []})
        with pytest.raises(ValueError):
            Scenario.from_dict({**SMALL, "sample_interval": -1.0})
        # every bad field raises ValueError at LOAD time (the CLI maps it
        # to exit code 2), never a KeyError from inside a worker
        with pytest.raises(ValueError, match="scale"):
            Scenario.from_dict({**SMALL, "scale": "warp9"})
        with pytest.raises(ValueError, match="allocator"):
            Scenario.from_dict({**SMALL, "allocs": ["BOGUS"]})
        with pytest.raises(ValueError, match="scheduler"):
            Scenario.from_dict({**SMALL, "scheds": ["LIFO"]})
        with pytest.raises(ValueError, match="network_mode"):
            Scenario.from_dict({**SMALL, "network_mode": "quantum"})

    def test_float_args_keep_full_precision(self):
        sc1 = Scenario.from_dict({**SMALL, "workload": "uniform | thin:0.1234567"})
        sc2 = Scenario.from_dict({**SMALL, "workload": "uniform | thin:0.1234571"})
        assert sc1.workload != sc2.workload
        assert sc1.points()[0].key() != sc2.points()[0].key()

    def test_config_overrides_apply(self):
        sc = Scenario.from_dict(SMALL)
        cfg = sc.sim_config()
        assert (cfg.width, cfg.length, cfg.seed) == (8, 8, 7)
        assert cfg.t_s == PAPER_CONFIG.t_s  # untouched fields keep defaults

    def test_points_fold_pipeline_into_cache_key(self):
        plain = Scenario.from_dict(SMALL).points()[0]
        piped = Scenario.from_dict(
            {**SMALL, "workload": "uniform | thin:0.9"}
        ).points()[0]
        assert plain.key() != piped.key()
        assert '"workload":"uniform | thin:0.9"' in piped.key()


class TestIdentityAcceptance:
    """Identity scenario == the figure campaigns, bit for bit."""

    @pytest.mark.parametrize("fig_id,workload", [("fig2", "real"), ("fig3", "uniform")])
    def test_identity_scenario_aliases_figure_cells(self, fig_id, workload):
        spec = FIGURES[fig_id]
        scenario = Scenario(
            name=f"identity-{fig_id}",
            workload=workload,
            loads=spec.loads_for("smoke"),
            allocs=("GABL", "Paging(0)", "MBS"),
            scheds=("FCFS", "SSD"),
            scale="smoke",
        )
        fig_campaign = Campaign.from_figures((fig_id,), scale="smoke")
        scenario_keys = {p.key() for p in scenario.points()}
        figure_keys = {p.key() for p in fig_campaign.points}
        # same cells -> the sharded store hands the scenario the very
        # RunResult-derived metrics the figure campaign computed
        assert scenario_keys == figure_keys

    def test_identity_pipeline_replication_is_bit_identical(self):
        """'real | scale:1' runs a different cache cell than 'real' but
        must produce the exact same metrics."""
        base = Scenario.from_dict(
            {**SMALL, "workload": "real"}).points()[0]
        ident = Scenario.from_dict(
            {**SMALL, "workload": "real | scale:1"}).points()[0]
        assert base.key() != ident.key()
        assert run_spec_replication(base, seed=7) == run_spec_replication(
            ident, seed=7
        )


class TestScenarioRun:
    def test_run_caches_and_reports(self, tmp_path):
        sc = Scenario.from_dict({**SMALL, "sample_interval": 64.0})
        cache = ResultCache(tmp_path / "c1")
        res = sc.run(cache=cache)
        assert len(res.points) == 1
        label = res.points[0].label()
        assert res.metrics[res.points[0]]["mean_turnaround"] > 0
        traj = res.trajectories[label]
        assert traj["times"][0] == 0.0
        assert len(traj["utilization"]) == len(traj["times"])
        # second run is served from the store
        res2 = sc.run(cache=cache)
        assert res2.metrics[res2.points[0]] == res.metrics[res.points[0]]
        report = res.to_dict()
        assert report["points"][0]["metrics"]["utilization"] >= 0
        assert report["fingerprint"] == sc.fingerprint()
        assert label in res.format()

    def test_example_scenario_parallel_matches_serial(self, tmp_path):
        """Acceptance: the committed example (LoadScale + Merge +
        trajectory) runs end to end, and -j 2 equals serial."""
        sc = Scenario.load(EXAMPLE)
        assert "scale:0.5" in sc.workload and "+" in sc.workload
        assert sc.sample_interval is not None
        serial = sc.run(jobs=1, cache=ResultCache(tmp_path / "serial"))
        parallel = sc.run(jobs=2, cache=ResultCache(tmp_path / "parallel"))
        assert serial.points == parallel.points
        for spec in serial.points:
            assert serial.metrics[spec] == parallel.metrics[spec]


class TestScenarioCLI:
    def test_cli_scenario_target(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        from repro.cli import main

        rc = main(["scenario", str(EXAMPLE), "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "SCENARIO smoke-mixed" in printed
        assert "trajectory:" in printed
        report = json.loads(out.read_text())
        assert len(report["points"]) == 2
        assert report["points"][0]["trajectory"]["times"]

    def test_cli_scenario_requires_file(self, capsys):
        from repro.cli import main

        assert main(["scenario"]) == 2
        assert "requires" in capsys.readouterr().err

    def test_cli_scenario_bad_file(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{\"name\": \"x\"}")
        assert main(["scenario", str(bad)]) == 2
        assert "bad scenario file" in capsys.readouterr().err

    def test_cli_out_per_file_with_multiple_scenarios(self, tmp_path, capsys):
        """--out with several files writes one report per scenario."""
        from repro.cli import main

        other = tmp_path / "other.json"
        other.write_text(json.dumps({**SMALL, "name": "other"}))
        out = tmp_path / "rep.json"
        rc = main(["scenario", str(EXAMPLE), str(other), "--out", str(out)])
        assert rc == 0
        assert (tmp_path / "rep-smoke-mixed.json").exists()
        assert (tmp_path / "rep-other.json").exists()
        assert not out.exists()

    def test_trajectory_pool_ships_external_trace(self, tmp_path):
        """sample_interval + external trace + jobs>1 resolves the trace
        through the worker initializer."""
        from repro.workload.trace import TraceJob

        trace = [
            TraceJob(arrival=float(i * 20), size=(i % 6) + 1, runtime=15.0)
            for i in range(40)
        ]
        sc = Scenario.from_dict({
            **SMALL, "workload": "real", "allocs": ["GABL", "MBS"],
            "sample_interval": 64.0,
        })
        serial = sc.run(jobs=1, cache=ResultCache(tmp_path / "s"), trace=trace)
        pooled = sc.run(jobs=2, cache=ResultCache(tmp_path / "p"), trace=trace)
        assert serial.trajectories == pooled.trajectories
        assert serial.metrics == {
            spec: pooled.metrics[spec] for spec in pooled.points
        }

    def test_out_of_range_transform_args_fail_at_load(self):
        for bad in ("uniform | thin:0", "uniform | scale:-1", "real*-0.5"):
            with pytest.raises(ValueError):
                Scenario.from_dict({**SMALL, "workload": bad})

    def test_cli_scenario_bad_alloc_exits_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "badalloc.json"
        bad.write_text(json.dumps({**SMALL, "allocs": ["BOGUS"]}))
        assert main(["scenario", str(bad)]) == 2
        assert "allocator" in capsys.readouterr().err

    def test_cli_flags_override_scenario_file(self, capsys):
        """Explicit --network-mode/--topology flags apply to the run."""
        from repro.cli import main

        rc = main([
            "scenario", str(EXAMPLE), "--network-mode", "fast",
            "--topology", "torus",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "SCENARIO smoke-mixed" in captured.out
        assert "network=fast" in captured.err
        assert "topology=torus" in captured.err

    def test_override_replace_revalidates(self):
        import dataclasses

        sc = Scenario.load(EXAMPLE)
        over = dataclasses.replace(
            sc, network_mode="fast",
            config={**sc.config, "topology": "torus"},
        )
        assert over.sim_config().topology == "torus"
        assert all(p.network_mode == "fast" for p in over.points())
        with pytest.raises(ValueError):
            dataclasses.replace(sc, scale="warp9")
