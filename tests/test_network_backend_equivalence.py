"""The ``batch`` backend must be bit-identical to the ``fast`` reference.

The acceptance bar for the vectorised transport backend: identical
``RunResult`` metrics -- exact float equality, not approximate -- across
stochastic and trace workloads, multiple seeds, multiple allocators,
mesh and torus, through every solver engine the backend can dispatch to
(compiled kernel, NumPy fixed-point solver, plain Python loop).
"""

import dataclasses

import numpy as np
import pytest

from repro.alloc import make_allocator
from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.simulator import Simulator
from repro.experiments.campaign import Scale, make_workload
from repro.mesh.geometry import Coord
from repro.network import _native
from repro.network.backend import make_backend
from repro.network.batch import BatchBackend
from repro.network.topology import MeshTopology
from repro.network.traffic import destination_offsets
from repro.sched import make_scheduler

SMALL = SimConfig(width=8, length=8, jobs=40, seed=3)
TRACE_SCALE = Scale("eq", jobs=40, min_replications=1, max_replications=1,
                    trace_max_jobs=200)


def run_sim(config: SimConfig, mode: str, workload: str, seed: int,
            alloc: str = "GABL"):
    sim = Simulator(
        config,
        make_allocator(alloc, config.width, config.length),
        make_scheduler("FCFS"),
        make_workload(workload, config, 0.02, TRACE_SCALE),
        network_mode=mode,
        seed=seed,
    )
    return sim.run()


def assert_identical(a, b) -> None:
    diffs = [
        f.name
        for f in dataclasses.fields(a)
        if getattr(a, f.name) != getattr(b, f.name)
    ]
    assert not diffs, f"metrics differ: {diffs}"


class TestRunLevelEquivalence:
    @pytest.mark.parametrize("workload", ["uniform", "exponential", "real"])
    @pytest.mark.parametrize("seed", [3, 77])
    def test_batch_equals_fast(self, workload, seed):
        fast = run_sim(SMALL, "fast", workload, seed)
        batch = run_sim(SMALL, "batch", workload, seed)
        assert_identical(fast, batch)
        assert fast.packets_delivered > 0

    @pytest.mark.parametrize("alloc", ["MBS", "Paging(0)"])
    def test_batch_equals_fast_other_allocators(self, alloc):
        fast = run_sim(SMALL, "fast", "uniform", 11, alloc=alloc)
        batch = run_sim(SMALL, "batch", "uniform", 11, alloc=alloc)
        assert_identical(fast, batch)

    def test_batch_equals_fast_on_torus(self):
        cfg = SMALL.with_(topology="torus")
        assert_identical(
            run_sim(cfg, "fast", "uniform", 5),
            run_sim(cfg, "batch", "uniform", 5),
        )

    def test_paper_mesh_real_workload(self):
        cfg = SimConfig(jobs=60, seed=9)  # the paper's 16x22 machine
        assert_identical(
            run_sim(cfg, "fast", "real", 9),
            run_sim(cfg, "batch", "real", 9),
        )

    @pytest.mark.parametrize("native", [True, False])
    def test_non_dyadic_timing_constants(self, native, monkeypatch):
        """A t_s off the dyadic grid (0.3 is not exactly representable)
        must not break bit-identity: the kernel and the reference loop
        share the exact operation order, and the NumPy solver -- whose
        reassociated arithmetic would drift -- refuses to dispatch."""
        if not native:
            monkeypatch.setenv("REPRO_NATIVE", "0")
            _native.reset_kernel_cache()
        try:
            cfg = SMALL.with_(t_s=0.3)
            assert_identical(
                run_sim(cfg, "fast", "uniform", 21),
                run_sim(cfg, "batch", "uniform", 21),
            )
        finally:
            if not native:
                _native.reset_kernel_cache()


def launch_pair(n: int, messages: int, seeds: int, solver: str):
    """Drive fast and batch backends through identical launches and
    compare timings channel-for-channel via the reservation table."""
    topo = MeshTopology(8, 8)
    fast = make_backend("fast", topo, Engine())
    batch = make_backend("batch", topo, Engine())
    if solver == "native":
        if batch._kernel is None:
            pytest.skip("no C compiler available")
    else:
        batch._kernel = None
        # force the requested fallback engine
        batch.NUMPY_MIN_PACKETS = 0 if solver == "numpy" else 10 ** 9
    rng = np.random.default_rng(seeds)
    now = 0.0
    for _ in range(seeds % 3 + 2):
        base = int(rng.integers(0, 64 - n))
        coords = [Coord((base + i) % 8, (base + i) // 8) for i in range(n)]
        offsets = destination_offsets(n, messages)
        now = float(rng.integers(0, 50))
        a = fast.inject_rounds(coords, offsets, now, 16.0)
        b = batch.inject_rounds(coords, offsets, now, 16.0)
        assert a == b  # packets, latency_sum, blocking_sum, last_delivery
    assert np.array_equal(np.asarray(fast.free_at), batch.free_at)
    assert fast.packets_sent == batch.packets_sent


class TestLaunchLevelEquivalence:
    """Every solver engine agrees with the reference, channel-for-channel."""

    @pytest.mark.parametrize("solver", ["native", "numpy", "python"])
    @pytest.mark.parametrize("n,messages", [(2, 1), (5, 3), (24, 7), (40, 12)])
    def test_engines_match_reference(self, solver, n, messages):
        launch_pair(n, messages, seeds=n + messages, solver=solver)

    def test_numpy_solver_handles_contended_launch(self):
        """Dense all-to-all with overlapping rounds exercises multi-sweep
        convergence of the fixed-point solver."""
        launch_pair(48, 9, seeds=1, solver="numpy")


class TestTrivialChannelEquivalence:
    """A trivial channel policy must be invisible, bit for bit.

    ``channel="loss:0"`` (zero failure probability, no delay) makes the
    simulator skip the channel machinery entirely, so it must be
    *exactly* the unset-channel run -- across all four network modes and
    both execution engines.  This is the boundary between the repo's
    bit-exact invariant (trivial policies) and the statistical gate
    (non-trivial ones, ``tests/test_channel_equivalence.py``).
    """

    SCALE = Scale("ch-eq", jobs=40, min_replications=1,
                  max_replications=1, trace_max_jobs=200)

    @classmethod
    def point_metrics(cls, mode: str, engine: str, channel: str | None):
        from repro.experiments.campaign import (
            PointSpec, run_spec_batch, run_spec_replication,
        )
        spec = PointSpec(
            workload="uniform", load=0.02, alloc="GABL", sched="FCFS",
            scale=cls.SCALE,
            config=SMALL.with_(engine=engine, channel=channel),
            network_mode=mode,
        )
        if engine == "soa":
            return run_spec_batch(spec, (3,))[0]
        return run_spec_replication(spec, 3)

    @pytest.mark.parametrize("mode", ["fast", "batch", "causal", "sfb"])
    @pytest.mark.parametrize("engine", ["reference", "soa"])
    def test_loss0_bit_identical_to_no_channel(self, mode, engine):
        assert self.point_metrics(mode, engine, None) == \
            self.point_metrics(mode, engine, "loss:0")

    def test_trivial_spellings_canonicalise(self):
        from repro.network.channel import canonical_channel
        for spelling in ("loss:0", "corrupt:0", "loss:0 + delay:fixed:0"):
            assert canonical_channel(spelling) == "loss:0"


class TestWorkloadStreamIsolation:
    """Enabling a channel must not perturb the workload RNG stream.

    Channel fates/delays draw from a dedicated
    ``default_rng((CHANNEL_STREAM, seed))`` generator, never from the
    workload's ``default_rng(seed)``: the *arrival process* (times and
    job shapes) of a lossy run is identical to the lossless run's.
    """

    def arrivals(self, channel: str | None, arq: str | None):
        from repro.core.hooks import SimObserver

        class Log(SimObserver):
            __slots__ = ("events",)

            def __init__(self):
                self.events = []

            def on_arrival(self, now, job, queue_length):
                self.events.append(
                    (now, job.arrival_time, job.width, job.length,
                     job.messages)
                )

        log = Log()
        cfg = SMALL.with_(channel=channel, arq=arq)
        sim = Simulator(
            cfg,
            make_allocator("GABL", cfg.width, cfg.length),
            make_scheduler("FCFS"),
            make_workload("uniform", cfg, 0.02, TRACE_SCALE),
            seed=17,
            observers=(log,),
        )
        sim.run()
        return log.events

    def test_lossy_channel_leaves_arrival_process_untouched(self):
        clean = self.arrivals(None, None)
        lossy = self.arrivals(
            "loss:0.15 + delay:exp:0.1", "selective-repeat"
        )
        # the lossy run takes longer to complete its job quota, so it can
        # observe *more* arrivals -- but the stream itself (times and job
        # shapes) must agree event-for-event on the shared prefix
        shared = min(len(clean), len(lossy))
        assert shared >= SMALL.jobs
        assert clean[:shared] == lossy[:shared]


class TestNativeGating:
    def test_disable_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        _native.reset_kernel_cache()
        try:
            backend = BatchBackend(MeshTopology(4, 4), Engine())
            assert backend._kernel is None
            coords = [Coord(0, 0), Coord(1, 0), Coord(2, 0)]
            stats = backend.inject_rounds(
                coords, destination_offsets(3, 2), 0.0, 16.0
            )
            assert stats.packets == 6
        finally:
            _native.reset_kernel_cache()

    def test_kernel_memoised(self):
        _native.reset_kernel_cache()
        assert _native.load_kernel() is _native.load_kernel()
