"""Stress and edge-case tests: pathological workloads, degenerate
configurations, and end-to-end conservation under random traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import make_allocator
from repro.core.config import SimConfig
from repro.core.simulator import Simulator
from repro.sched import make_scheduler
from repro.workload.stochastic import StochasticWorkload
from repro.workload.trace import TraceJob, TraceWorkload


def run_trace(trace, cfg=None, alloc="GABL", sched="FCFS", mode="fast"):
    cfg = cfg or SimConfig(width=8, length=8, jobs=len(trace), seed=3)
    sim = Simulator(
        cfg,
        make_allocator(alloc, cfg.width, cfg.length),
        make_scheduler(sched),
        TraceWorkload(cfg, trace, load=0.05),
        network_mode=mode,
        keep_jobs=True,
    )
    result = sim.run()
    return sim, result


class TestPathologicalWorkloads:
    def test_all_unit_jobs(self):
        trace = [TraceJob(arrival=float(i), size=1, runtime=10.0)
                 for i in range(40)]
        sim, result = run_trace(trace)
        assert result.completed_jobs == 40
        # unit jobs never communicate: no packets, service is local work
        assert result.packets_delivered == 0
        assert result.mean_service > 0

    def test_all_full_machine_jobs(self):
        trace = [TraceJob(arrival=float(i), size=64, runtime=10.0)
                 for i in range(5)]
        sim, result = run_trace(trace)
        assert result.completed_jobs == 5
        # strictly serial execution: each waits for the previous
        jobs = sorted(sim.metrics.per_job, key=lambda j: j.job_id)
        for a, b in zip(jobs, jobs[1:]):
            assert b.alloc_time >= a.depart_time

    def test_simultaneous_arrivals(self):
        trace = [TraceJob(arrival=1.0, size=(i % 8) + 1, runtime=5.0)
                 for i in range(30)]
        # all arrive at the same instant; the queue must drain in order
        sim, result = run_trace(trace)
        assert result.completed_jobs == 30

    def test_alternating_huge_and_tiny(self):
        trace = []
        for i in range(20):
            size = 64 if i % 2 == 0 else 1
            trace.append(TraceJob(arrival=float(i), size=size, runtime=5.0))
        _, result = run_trace(trace)
        assert result.completed_jobs == 20

    @pytest.mark.parametrize("alloc", ["GABL", "Paging(0)", "MBS", "ANCA"])
    def test_machine_sized_burst_all_allocators(self, alloc):
        trace = [TraceJob(arrival=0.5, size=60, runtime=3.0) for _ in range(6)]
        _, result = run_trace(trace, alloc=alloc)
        assert result.completed_jobs == 6


class TestDegenerateConfigs:
    def test_one_by_one_mesh(self):
        cfg = SimConfig(width=1, length=1, jobs=5, seed=1)
        sim = Simulator(
            cfg,
            make_allocator("Paging(0)", 1, 1),
            make_scheduler("FCFS"),
            StochasticWorkload(cfg, load=0.01),
        )
        result = sim.run()
        assert result.completed_jobs == 5
        assert result.packets_delivered == 0  # nowhere to send

    def test_one_row_mesh(self):
        cfg = SimConfig(width=16, length=1, jobs=20, seed=1)
        sim = Simulator(
            cfg,
            make_allocator("GABL", 16, 1),
            make_scheduler("SSD"),
            StochasticWorkload(cfg, load=0.01),
        )
        result = sim.run()
        assert result.completed_jobs == 20
        assert result.mean_packet_latency > 0

    def test_single_job_run(self):
        cfg = SimConfig(width=8, length=8, jobs=1, seed=1)
        sim = Simulator(
            cfg,
            make_allocator("MBS", 8, 8),
            make_scheduler("FCFS"),
            StochasticWorkload(cfg, load=0.01),
        )
        result = sim.run()
        assert result.completed_jobs == 1

    def test_minimal_packet_size(self):
        cfg = SimConfig(width=8, length=8, jobs=10, seed=1, p_len=1)
        sim = Simulator(
            cfg,
            make_allocator("GABL", 8, 8),
            make_scheduler("FCFS"),
            StochasticWorkload(cfg, load=0.01),
        )
        result = sim.run()
        assert result.completed_jobs == 10

    def test_zero_router_delay(self):
        cfg = SimConfig(width=8, length=8, jobs=10, seed=1, t_s=0.0)
        sim = Simulator(
            cfg,
            make_allocator("GABL", 8, 8),
            make_scheduler("FCFS"),
            StochasticWorkload(cfg, load=0.01),
        )
        result = sim.run()
        assert result.completed_jobs == 10


class TestConservationProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 64), min_size=3, max_size=25),
        runtimes=st.lists(st.floats(1.0, 1e4), min_size=25, max_size=25),
        alloc=st.sampled_from(["GABL", "Paging(0)", "MBS", "ANCA", "Random"]),
        sched=st.sampled_from(["FCFS", "SSD"]),
    )
    def test_every_job_departs_and_grid_drains(self, sizes, runtimes, alloc, sched):
        trace = [
            TraceJob(arrival=float(i * 3), size=s, runtime=runtimes[i])
            for i, s in enumerate(sizes)
        ]
        sim, result = run_trace(trace, alloc=alloc, sched=sched)
        assert result.completed_jobs == len(trace)
        # with everything departed the machine must be empty again
        assert sim.allocator.free_count == 64
        sim.allocator.grid.validate()
        assert len(sim.allocator.busy_list) == 0
        # per-job sanity
        for job in sim.metrics.per_job:
            assert job.depart_time is not None
            assert job.turnaround >= job.service_time > 0

    @settings(max_examples=6, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 64), min_size=3, max_size=12),
        mode=st.sampled_from(["fast", "causal", "sfb"]),
    )
    def test_all_network_modes_conserve(self, sizes, mode):
        trace = [
            TraceJob(arrival=float(i * 5), size=s, runtime=10.0)
            for i, s in enumerate(sizes)
        ]
        sim, result = run_trace(trace, mode=mode)
        assert result.completed_jobs == len(trace)
        assert sim.allocator.free_count == 64

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_stochastic_run_invariants(self, seed):
        cfg = SimConfig(width=8, length=8, jobs=25, seed=seed)
        sim = Simulator(
            cfg,
            make_allocator("GABL", 8, 8),
            make_scheduler("SSD"),
            StochasticWorkload(cfg, load=0.03),
        )
        result = sim.run()
        assert result.completed_jobs == 25
        assert 0.0 <= result.utilization <= 1.0
        assert result.mean_turnaround >= result.mean_service
        assert result.mean_packet_latency >= result.mean_packet_blocking
