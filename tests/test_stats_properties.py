"""Property tests (hypothesis) for the statistics layer.

Covers the invariants the comparison subsystem leans on: Welford
accumulation is merge-order invariant, the Student-t CI half-width
shrinks with n, and Welch's t-test is symmetric (and the identity
comparison is ``identical``) -- so ``repro diff`` verdicts cannot depend
on which report is named first beyond the improved/regressed sign flip.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.ci import mean_confidence_interval
from repro.stats.compare import MetricSummary, compare_metric, welch_t_test
from repro.stats.welford import Welford

#: bounded magnitudes keep float error deterministic-small so the
#: approx tolerances below are about algorithm identity, not overflow
values = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    min_size=1,
    max_size=40,
)

summaries = st.builds(
    MetricSummary,
    mean=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    variance=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    n=st.integers(min_value=2, max_value=50),
)


def _fill(xs) -> Welford:
    acc = Welford()
    for x in xs:
        acc.add(x)
    return acc


class TestWelfordProperties:
    @given(values, st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_order_invariance(self, xs, data):
        """Any chunking + any merge order = the sequential accumulation."""
        sequential = _fill(xs)
        # split into random chunks, then merge them in a random order
        n_chunks = data.draw(st.integers(1, max(1, len(xs))))
        bounds = sorted(
            data.draw(
                st.lists(
                    st.integers(0, len(xs)),
                    min_size=n_chunks - 1,
                    max_size=n_chunks - 1,
                )
            )
        )
        chunks = []
        prev = 0
        for b in [*bounds, len(xs)]:
            chunks.append(xs[prev:b])
            prev = b
        order = data.draw(st.permutations(range(len(chunks))))
        merged = Welford()
        for i in order:
            merged.merge(_fill(chunks[i]))
        assert merged.n == sequential.n
        assert merged.mean == pytest.approx(sequential.mean, rel=1e-9, abs=1e-7)
        assert merged.variance == pytest.approx(
            sequential.variance, rel=1e-7, abs=1e-6
        )

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_welford_matches_two_pass_summary(self, xs):
        acc = _fill(xs)
        two_pass = MetricSummary.from_values(xs)
        assert acc.n == two_pass.n
        assert acc.mean == pytest.approx(two_pass.mean, rel=1e-9, abs=1e-9)
        assert acc.variance == pytest.approx(
            two_pass.variance, rel=1e-7, abs=1e-7
        )


class TestCIProperties:
    @given(
        mean=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        variance=st.floats(min_value=1e-6, max_value=1e6),
        n1=st.integers(min_value=2, max_value=200),
        extra=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_half_width_monotone_in_n(self, mean, variance, n1, extra):
        """At fixed variance, more replications never widen the CI."""
        wide = MetricSummary(mean, variance, n1).half_width()
        narrow = MetricSummary(mean, variance, n1 + extra).half_width()
        assert narrow < wide

    @given(
        variance=st.floats(min_value=1e-6, max_value=1e6),
        n=st.integers(min_value=2, max_value=50),
        lo=st.floats(min_value=0.5, max_value=0.9),
        hi=st.floats(min_value=0.91, max_value=0.999),
    )
    @settings(max_examples=60, deadline=None)
    def test_half_width_monotone_in_confidence(self, variance, n, lo, hi):
        s = MetricSummary(0.0, variance, n)
        assert s.half_width(lo) < s.half_width(hi)

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_summary_half_width_agrees_with_ci_module(self, xs):
        s = MetricSummary.from_values(xs)
        mean, hw = mean_confidence_interval(xs, 0.95)
        assert s.mean == mean
        if math.isinf(hw):
            assert math.isinf(s.half_width())
        else:
            assert s.half_width() == pytest.approx(hw, rel=1e-9, abs=1e-12)


class TestWelchProperties:
    @given(summaries, summaries)
    @settings(max_examples=80, deadline=None)
    def test_antisymmetry(self, a, b):
        """Swapping the reports flips the sign and nothing else."""
        ab = welch_t_test(a, b)
        ba = welch_t_test(b, a)
        assert ab.t == -ba.t or (ab.t == 0.0 and ba.t == 0.0)
        assert ab.df == ba.df
        assert ab.p_value == ba.p_value

    @given(summaries)
    @settings(max_examples=40, deadline=None)
    def test_identity_on_equal_samples(self, s):
        res = welch_t_test(s, s)
        assert res.t == 0.0
        assert res.p_value == 1.0
        assert compare_metric("mean_service", s, s).verdict == "identical"

    @given(summaries, summaries)
    @settings(max_examples=80, deadline=None)
    def test_compare_verdict_antisymmetry(self, a, b):
        flip = {
            "improved": "regressed",
            "regressed": "improved",
            "identical": "identical",
            "indistinguishable": "indistinguishable",
        }
        ab = compare_metric("mean_turnaround", a, b)
        ba = compare_metric("mean_turnaround", b, a)
        assert ba.verdict == flip[ab.verdict]
