"""Unit tests for the allocator factory and shared base plumbing."""

import pytest

from repro.alloc import ALLOCATORS, make_allocator
from repro.alloc.base import Allocation, AllocatorStats
from repro.alloc.gabl import GABLAllocator
from repro.alloc.paging import PagingAllocator
from repro.mesh.geometry import SubMesh


class TestFactory:
    def test_paging_spec(self):
        a = make_allocator("Paging(0)", 8, 8)
        assert isinstance(a, PagingAllocator)
        assert a.size_index == 0

    def test_paging_spec_with_index(self):
        a = make_allocator("Paging(2)", 16, 16)
        assert a.page_side == 4

    def test_named_specs(self):
        for name in ALLOCATORS:
            a = make_allocator(name, 8, 8)
            assert a.width == 8

    def test_gabl_kwargs(self):
        a = make_allocator("GABL", 8, 8, allow_rotation=False)
        assert isinstance(a, GABLAllocator)
        assert a.allow_rotation is False

    def test_unknown_spec(self):
        with pytest.raises(KeyError, match="unknown allocator"):
            make_allocator("Buddy", 8, 8)

    def test_malformed_paging(self):
        with pytest.raises(KeyError):
            make_allocator("Paging(x)", 8, 8)


class TestAllocation:
    def test_properties(self):
        subs = (SubMesh(0, 0, 1, 1), SubMesh(3, 3, 3, 3))
        coords = tuple(c for s in subs for c in s.nodes())
        alloc = Allocation(job_id=1, submeshes=subs, coords=coords)
        assert alloc.size == 5
        assert not alloc.contiguous
        assert alloc.fragment_count == 2

    def test_contiguous_single(self):
        s = SubMesh(0, 0, 2, 2)
        alloc = Allocation(1, (s,), tuple(s.nodes()))
        assert alloc.contiguous


class TestStats:
    def test_initial(self):
        s = AllocatorStats()
        assert s.mean_fragments == 0.0
        assert s.contiguity_rate == 0.0

    def test_tracking_through_allocator(self):
        a = make_allocator("GABL", 8, 8)
        a.allocate(1, 8, 8)  # contiguous
        a.allocate(2, 1, 1)  # fails: full
        assert a.stats.attempts == 2
        assert a.stats.successes == 1
        assert a.stats.failures == 1
        assert a.stats.contiguity_rate == 1.0
        assert a.stats.mean_fragments == 1.0

    def test_reset_clears(self):
        a = make_allocator("MBS", 8, 8)
        a.allocate(1, 3, 3)
        a.reset()
        assert a.stats.attempts == 0
        assert len(a.busy_list) == 0
