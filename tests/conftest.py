"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SimConfig
from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import MeshGrid


@pytest.fixture
def grid8() -> MeshGrid:
    """Empty 8x8 grid."""
    return MeshGrid(8, 8)


@pytest.fixture
def grid_paper() -> MeshGrid:
    """Empty 16x22 grid (the paper's machine)."""
    return MeshGrid(16, 22)


@pytest.fixture
def tiny_config() -> SimConfig:
    """Small, fast configuration for integration tests."""
    return SimConfig(width=8, length=8, jobs=40, seed=7)


def brute_force_suitable(grid: MeshGrid, w: int, l: int) -> SubMesh | None:
    """Reference: first free w x l sub-mesh by exhaustive scan."""
    if w > grid.width or l > grid.length:
        return None
    for y in range(grid.length - l + 1):
        for x in range(grid.width - w + 1):
            s = SubMesh.from_base(x, y, w, l)
            if grid.submesh_free(s):
                return s
    return None


def brute_force_largest_bounded(
    grid: MeshGrid,
    max_w: int | None = None,
    max_l: int | None = None,
    max_area: int | None = None,
) -> int:
    """Reference: the *area* of the best bounded free rectangle."""
    W, L = grid.width, grid.length
    max_w = W if max_w is None else min(max_w, W)
    max_l = L if max_l is None else min(max_l, L)
    max_area = W * L if max_area is None else max_area
    best = 0
    for w in range(1, max_w + 1):
        for l in range(1, max_l + 1):
            if w * l <= best or w * l > max_area:
                continue
            if brute_force_suitable(grid, w, l) is not None:
                best = w * l
    return best


def random_occupancy(grid: MeshGrid, density: float, seed: int) -> None:
    """Mark a random fraction of processors busy (owner id 999)."""
    rng = np.random.default_rng(seed)
    mask = rng.random((grid.length, grid.width)) < density
    coords = [
        Coord(int(x), int(y))
        for y, x in zip(*np.nonzero(mask))
    ]
    if coords:
        grid.allocate_nodes(coords, 999)
