"""Integration tests for the simulation orchestrator."""

import pytest

from repro.alloc import make_allocator
from repro.core.config import SimConfig
from repro.core.simulator import Simulator
from repro.sched import make_scheduler
from repro.workload.stochastic import StochasticWorkload
from repro.workload.trace import TraceJob, TraceWorkload


def build(
    config: SimConfig,
    alloc="GABL",
    sched="FCFS",
    load=0.02,
    sides="uniform",
    mode="fast",
    workload=None,
) -> Simulator:
    allocator = make_allocator(alloc, config.width, config.length)
    scheduler = make_scheduler(sched, window=config.scheduler_window)
    wl = workload or StochasticWorkload(config, load=load, sides=sides)
    return Simulator(config, allocator, scheduler, wl, network_mode=mode)


class TestConservation:
    @pytest.mark.parametrize("alloc", ["GABL", "Paging(0)", "MBS", "FF"])
    def test_all_jobs_complete_and_grid_drains(self, tiny_config, alloc):
        sim = build(tiny_config, alloc=alloc)
        result = sim.run()
        assert result.completed_jobs == tiny_config.jobs
        # after the last measured completion other jobs may still run,
        # but accounting must be consistent
        assert sim.allocator.free_count + sim.metrics.busy_procs == 64
        sim.allocator.grid.validate()

    def test_metrics_positive_and_sane(self, tiny_config):
        result = build(tiny_config).run()
        assert result.mean_turnaround > 0
        assert result.mean_service > 0
        assert result.mean_turnaround >= result.mean_service
        assert result.mean_packet_latency > 0
        assert result.mean_packet_blocking >= 0
        assert result.mean_packet_latency > result.mean_packet_blocking
        assert 0.0 <= result.utilization <= 1.0
        assert result.packets_delivered > 0

    def test_turnaround_equals_wait_plus_service(self, tiny_config):
        result = build(tiny_config).run()
        assert result.mean_turnaround == pytest.approx(
            result.mean_wait + result.mean_service
        )


class TestDeterminism:
    def test_same_seed_same_result(self, tiny_config):
        r1 = build(tiny_config).run()
        r2 = build(tiny_config).run()
        assert r1 == r2

    def test_different_seed_differs(self, tiny_config):
        r1 = build(tiny_config).run()
        sim2 = build(tiny_config)
        sim2.seed = 999
        r2 = sim2.run()
        assert r1 != r2


class TestModes:
    def test_causal_and_fast_agree_roughly(self):
        """Fast mode's reservation arbitration is conservative under the
        synchronized round bursts of all-to-all traffic: it may over-state
        contention but stays within a bounded factor, and base quantities
        match (DESIGN.md 2.1)."""
        cfg = SimConfig(width=8, length=8, jobs=30, seed=3)
        rf = build(cfg, mode="fast").run()
        rc = build(cfg, mode="causal").run()
        assert rf.completed_jobs == rc.completed_jobs
        assert rf.packets_delivered == rc.packets_delivered
        assert rf.mean_service == pytest.approx(rc.mean_service, rel=0.35)
        assert rf.mean_packet_latency == pytest.approx(
            rc.mean_packet_latency, rel=0.45
        )
        assert rf.mean_packet_blocking >= rc.mean_packet_blocking * 0.9

    def test_modes_rank_strategies_identically(self):
        """The reproduction's load-bearing property: whichever mode is
        used, the strategy ordering is the same."""
        cfg = SimConfig(width=8, length=8, jobs=30, seed=3)
        for metric in ("mean_service", "mean_packet_latency"):
            rank = {}
            for mode in ("fast", "causal"):
                vals = {
                    alloc: getattr(build(cfg, alloc=alloc, mode=mode).run(), metric)
                    for alloc in ("GABL", "Paging(0)", "MBS")
                }
                rank[mode] = sorted(vals, key=vals.get)
            assert rank["fast"] == rank["causal"], metric


class TestScheduling:
    def test_fcfs_head_blocking(self):
        """A huge head job must block later small jobs (FCFS semantics)."""
        cfg = SimConfig(width=8, length=8, jobs=3, seed=1)
        trace = [
            TraceJob(arrival=0.0, size=64, runtime=100.0),  # fills machine
            TraceJob(arrival=1.0, size=60, runtime=100.0),  # blocks queue
            TraceJob(arrival=2.0, size=1, runtime=1.0),  # stuck behind
        ]
        wl = TraceWorkload(cfg, trace, load=1.0)
        sim = build(cfg, workload=wl)
        sim.run()
        jobs = sorted(sim.metrics.per_job, key=lambda j: j.job_id) \
            if sim.metrics.per_job else None
        # with keep_jobs off we check via aggregate ordering instead:
        # job 3 cannot start before job 2, which needs job 1 to finish
        assert sim.metrics.completed == 3

    def test_ssd_reorders_queue(self):
        """Under SSD the 1-proc short job overtakes the blocked big one."""
        cfg = SimConfig(width=8, length=8, jobs=3, seed=1)
        trace = [
            TraceJob(arrival=0.0, size=64, runtime=100.0),
            TraceJob(arrival=1.0, size=60, runtime=100.0),
            TraceJob(arrival=2.0, size=1, runtime=1.0),
        ]

        def run_with(sched):
            wl = TraceWorkload(cfg, trace, load=1.0)
            allocator = make_allocator("GABL", 8, 8)
            sim = Simulator(cfg, allocator, make_scheduler(sched), wl,
                            keep_jobs=True)
            sim.run()
            return {j.job_id: j for j in sim.metrics.per_job}

        fcfs = run_with("FCFS")
        ssd = run_with("SSD")
        # the short job (id 3) waits for the 60-proc job under FCFS but
        # jumps it under SSD
        assert ssd[3].alloc_time < fcfs[3].alloc_time

    def test_window_bypass_extension(self):
        """window > 1 lets a fitting job bypass a blocked head."""
        cfg = SimConfig(width=8, length=8, jobs=3, seed=1,
                        scheduler_window=2)
        trace = [
            TraceJob(arrival=0.0, size=48, runtime=50.0),  # 8x6, 16 left
            TraceJob(arrival=1.0, size=48, runtime=50.0),  # can't fit
            TraceJob(arrival=2.0, size=4, runtime=1.0),  # bypasses
        ]
        wl = TraceWorkload(cfg, trace, load=1.0)
        allocator = make_allocator("GABL", 8, 8)
        sim = Simulator(cfg, allocator, make_scheduler("FCFS", window=2), wl,
                        keep_jobs=True)
        sim.run()
        jobs = {j.job_id: j for j in sim.metrics.per_job}
        assert jobs[3].alloc_time < jobs[2].alloc_time


class TestTraceReplay:
    def test_finite_trace_completes(self):
        cfg = SimConfig(width=8, length=8, jobs=50, seed=2)
        trace = [
            TraceJob(arrival=float(i * 10), size=(i % 8) + 1, runtime=20.0)
            for i in range(30)
        ]
        wl = TraceWorkload(cfg, trace, load=0.05)
        result = build(cfg, workload=wl).run()
        # trace shorter than cfg.jobs: everything completes, run ends
        assert result.completed_jobs == 30

    def test_max_time_cutoff(self):
        cfg = SimConfig(width=8, length=8, jobs=10_000, seed=2, max_time=500.0)
        result = build(cfg, load=0.05).run()
        assert result.sim_time <= 500.0
        assert result.completed_jobs < 10_000

    def test_trace_exhausts_with_queue_backlog(self):
        """A finite trace may run dry while jobs still wait in the
        queue: the backlog must drain to completion, with processors
        and queue fully released at the end."""
        cfg = SimConfig(width=8, length=8, jobs=100, seed=2)
        # one burst of machine-filling jobs: only one runs at a time, so
        # the arrival stream is exhausted long before the queue is
        trace = [
            TraceJob(arrival=float(i), size=64, runtime=10.0)
            for i in range(12)
        ]
        wl = TraceWorkload(cfg, trace, load=0.5)
        sim = build(cfg, workload=wl)
        result = sim.run()
        assert result.completed_jobs == 12
        assert len(sim.scheduler) == 0
        assert sim.metrics.busy_procs == 0
        assert sim.allocator.free_count == 64
        assert result.queue_peak >= 10


class TestWarmup:
    def test_warmup_jobs_excluded(self):
        cfg = SimConfig(width=8, length=8, jobs=40, seed=5, warmup_jobs=10)
        result = build(cfg).run()
        assert result.completed_jobs == 40
        assert result.measured_jobs == 30

    def test_all_warmup_run_reports_zeros(self):
        """A run whose every completion is warm-up (finite trace shorter
        than the warm-up window) yields finite 0.0 means, not nan."""
        cfg = SimConfig(width=8, length=8, jobs=10, seed=2, warmup_jobs=5)
        trace = [
            TraceJob(arrival=float(i * 10), size=4, runtime=5.0)
            for i in range(3)
        ]
        result = build(cfg, workload=TraceWorkload(cfg, trace, load=0.05)).run()
        assert result.completed_jobs == 3
        assert result.measured_jobs == 0
        assert result.mean_turnaround == 0.0
        assert result.mean_fragments == 0.0
        assert result.contiguity_rate == 0.0


class TestMismatchGuard:
    def test_allocator_mesh_mismatch(self, tiny_config):
        allocator = make_allocator("GABL", 4, 4)
        with pytest.raises(ValueError, match="does not match"):
            Simulator(
                tiny_config, allocator, make_scheduler("FCFS"),
                StochasticWorkload(tiny_config, load=0.01),
            )
