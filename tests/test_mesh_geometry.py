"""Unit tests for repro.mesh.geometry (paper section 2 definitions)."""

import pytest
from hypothesis import given, strategies as st

from repro.mesh.geometry import Coord, SubMesh, clip_side, shape_for_size


class TestCoord:
    def test_fields(self):
        c = Coord(3, 5)
        assert c.x == 3 and c.y == 5

    def test_manhattan_zero(self):
        assert Coord(2, 2).manhattan(Coord(2, 2)) == 0

    def test_manhattan_symmetric(self):
        a, b = Coord(1, 7), Coord(4, 2)
        assert a.manhattan(b) == b.manhattan(a) == 8

    def test_tuple_behaviour(self):
        assert Coord(1, 2) == (1, 2)


class TestSubMesh:
    def test_paper_example(self):
        """(0, 0, 2, 1) is the 3x2 sub-mesh S of the paper's Fig. 1."""
        s = SubMesh(0, 0, 2, 1)
        assert s.width == 3
        assert s.length == 2
        assert s.area == 6
        assert s.base == Coord(0, 0)
        assert s.end == Coord(2, 1)

    def test_from_base(self):
        s = SubMesh.from_base(1, 2, 3, 4)
        assert s == SubMesh(1, 2, 3, 5)
        assert s.width == 3 and s.length == 4

    def test_single_node(self):
        s = SubMesh(5, 5, 5, 5)
        assert s.area == 1
        assert list(s.nodes()) == [Coord(5, 5)]

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            SubMesh(3, 0, 2, 0)
        with pytest.raises(ValueError):
            SubMesh(0, 3, 0, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SubMesh(-1, 0, 2, 2)

    def test_zero_side_rejected(self):
        with pytest.raises(ValueError):
            SubMesh.from_base(0, 0, 0, 3)

    def test_contains(self):
        s = SubMesh(1, 1, 3, 3)
        assert s.contains(Coord(2, 2))
        assert s.contains(Coord(1, 1))
        assert s.contains(Coord(3, 3))
        assert not s.contains(Coord(0, 1))
        assert not s.contains(Coord(4, 3))

    def test_contains_submesh(self):
        outer = SubMesh(0, 0, 5, 5)
        assert outer.contains_submesh(SubMesh(1, 1, 4, 4))
        assert outer.contains_submesh(outer)
        assert not outer.contains_submesh(SubMesh(1, 1, 6, 4))

    def test_overlaps(self):
        a = SubMesh(0, 0, 2, 2)
        assert a.overlaps(SubMesh(2, 2, 4, 4))  # share corner (2,2)
        assert not a.overlaps(SubMesh(3, 0, 4, 2))  # adjacent, disjoint
        assert a.overlaps(a)

    def test_nodes_row_major(self):
        s = SubMesh(1, 1, 2, 2)
        assert list(s.nodes()) == [
            Coord(1, 1), Coord(2, 1), Coord(1, 2), Coord(2, 2)
        ]

    def test_nodes_count_is_area(self):
        s = SubMesh.from_base(2, 3, 4, 5)
        assert len(list(s.nodes())) == s.area == 20

    def test_suits_definition4(self):
        """Definition 4: suitable iff w >= a and l >= b."""
        s = SubMesh.from_base(0, 0, 4, 3)
        assert s.suits(4, 3)
        assert s.suits(3, 2)
        assert not s.suits(5, 3)
        assert not s.suits(4, 4)
        assert not s.suits(3, 4)  # no implicit rotation

    def test_fits_in(self):
        s = SubMesh.from_base(0, 0, 2, 5)
        assert s.fits_in(2, 5)
        assert s.fits_in(3, 6)
        assert not s.fits_in(5, 2)  # no implicit rotation

    def test_immutability(self):
        s = SubMesh(0, 0, 1, 1)
        with pytest.raises(AttributeError):
            s.x1 = 5

    @given(
        x=st.integers(0, 10), y=st.integers(0, 10),
        w=st.integers(1, 10), l=st.integers(1, 10),
    )
    def test_from_base_roundtrip(self, x, y, w, l):
        s = SubMesh.from_base(x, y, w, l)
        assert (s.width, s.length) == (w, l)
        assert s.base == Coord(x, y)
        assert s.area == w * l


class TestClipSide:
    def test_in_range(self):
        assert clip_side(5.4, 10) == 5

    def test_below(self):
        assert clip_side(0.01, 10) == 1
        assert clip_side(-3.0, 10) == 1

    def test_above(self):
        assert clip_side(99.0, 10) == 10

    def test_rounding(self):
        assert clip_side(4.5, 10) == 4  # banker's rounding via round()
        assert clip_side(4.6, 10) == 5


class TestShapeForSize:
    def test_exact_square(self):
        assert shape_for_size(16, 16, 22) == (4, 4)

    def test_single(self):
        assert shape_for_size(1, 16, 22) == (1, 1)

    def test_prime(self):
        w, l = shape_for_size(13, 16, 22)
        assert w * l >= 13
        assert w <= 16 and l <= 22

    def test_full_machine(self):
        w, l = shape_for_size(352, 16, 22)
        assert (w, l) == (16, 22)

    def test_too_big(self):
        with pytest.raises(ValueError):
            shape_for_size(353, 16, 22)

    def test_non_positive(self):
        with pytest.raises(ValueError):
            shape_for_size(0, 16, 22)

    @given(size=st.integers(1, 352))
    def test_covers_and_minimal_waste(self, size):
        w, l = shape_for_size(size, 16, 22)
        assert 1 <= w <= 16 and 1 <= l <= 22
        assert w * l >= size
        # waste is at most one side length minus one
        assert w * l - size < max(w, l)

    @given(size=st.integers(1, 64))
    def test_square_inputs_square_outputs(self, size):
        """Perfect squares within caps shape to squares."""
        root = int(size ** 0.5)
        if root * root == size and root <= 8:
            assert shape_for_size(size, 8, 8) == (root, root)
