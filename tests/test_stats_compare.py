"""Unit tests for the pairwise comparison layer (stats/compare.py)."""

import math

import pytest

from repro.stats.compare import (
    HIGHER_IS_BETTER,
    VERDICTS,
    MetricSummary,
    ci_overlap,
    compare_metric,
    relative_delta,
    welch_t_test,
    worst_verdict,
)


def S(mean, variance=0.0, n=1) -> MetricSummary:
    return MetricSummary(mean=mean, variance=variance, n=n)


class TestMetricSummary:
    def test_from_values_matches_ci_module(self):
        from repro.stats.ci import mean_confidence_interval

        values = [3.0, 5.5, 4.25, 6.125]
        s = MetricSummary.from_values(values)
        mean, hw = mean_confidence_interval(values, 0.95)
        assert s.mean == mean  # identical float expressions, not approx
        assert s.n == 4
        assert s.half_width(0.95) == pytest.approx(hw, rel=1e-12)

    def test_from_values_single_observation(self):
        s = MetricSummary.from_values([7.0])
        assert (s.mean, s.variance, s.n) == (7.0, 0.0, 1)
        assert s.half_width() == math.inf

    def test_from_welford_adopts_moments(self):
        from repro.stats.welford import Welford

        acc = Welford()
        for v in (1.0, 2.0, 4.0):
            acc.add(v)
        s = MetricSummary.from_welford(acc)
        assert (s.mean, s.n) == (acc.mean, 3)
        assert s.variance == acc.variance

    def test_dict_round_trip(self):
        s = S(1.5, 0.25, 8)
        assert MetricSummary.from_dict(s.to_dict()) == s

    def test_validation(self):
        with pytest.raises(ValueError):
            S(1.0, n=0)
        with pytest.raises(ValueError):
            S(1.0, variance=-0.1, n=2)
        with pytest.raises(ValueError):
            MetricSummary.from_values([])
        with pytest.raises(ValueError):
            S(1.0, 1.0, 3).half_width(confidence=1.5)


class TestWelch:
    def test_known_value(self):
        # equal variances, n=10 each: classic two-sample t with df=18
        a, b = S(10.0, 4.0, 10), S(12.0, 4.0, 10)
        res = welch_t_test(a, b)
        assert res.t == pytest.approx(2.0 / math.sqrt(0.8), rel=1e-12)
        assert res.df == pytest.approx(18.0, rel=1e-12)
        assert res.p_value == pytest.approx(0.0384, abs=2e-4)

    def test_requires_two_observations(self):
        with pytest.raises(ValueError, match="n >= 2"):
            welch_t_test(S(1.0, 0.0, 1), S(1.0, 1.0, 5))

    def test_degenerate_zero_variance(self):
        same = welch_t_test(S(3.0, 0.0, 4), S(3.0, 0.0, 4))
        assert (same.t, same.p_value) == (0.0, 1.0)
        diff = welch_t_test(S(3.0, 0.0, 4), S(4.0, 0.0, 4))
        assert diff.t == math.inf and diff.p_value == 0.0
        assert welch_t_test(S(4.0, 0.0, 4), S(3.0, 0.0, 4)).t == -math.inf

    def test_ci_overlap(self):
        # tight CIs far apart: no overlap; n=1 has infinite width
        assert not ci_overlap(S(10.0, 0.01, 10), S(11.0, 0.01, 10))
        assert ci_overlap(S(10.0, 4.0, 3), S(11.0, 4.0, 3))
        assert ci_overlap(S(10.0, 0.0, 1), S(1e9, 0.01, 10))


class TestCompareMetric:
    def test_identical_means_bit_for_bit(self):
        c = compare_metric("mean_turnaround", S(123.456), S(123.456))
        assert c.verdict == "identical"
        assert c.delta == 0.0 and c.relative_delta == 0.0
        assert c.p_value is None

    def test_deterministic_regression_and_improvement(self):
        worse = compare_metric("mean_turnaround", S(100.0), S(105.0))
        assert worse.verdict == "regressed"  # turnaround up = bad
        better = compare_metric("mean_turnaround", S(100.0), S(95.0))
        assert better.verdict == "improved"

    def test_orientation_higher_is_better(self):
        assert "utilization" in HIGHER_IS_BETTER
        up = compare_metric("utilization", S(0.5), S(0.6))
        assert up.verdict == "improved"
        down = compare_metric("utilization", S(0.5), S(0.4))
        assert down.verdict == "regressed"
        # explicit override beats the name table
        forced = compare_metric("utilization", S(0.5), S(0.6),
                                higher_is_better=False)
        assert forced.verdict == "regressed"

    def test_rel_tol_dead_band(self):
        c = compare_metric("mean_service", S(100.0), S(100.4), rel_tol=0.005)
        assert c.verdict == "indistinguishable"
        c = compare_metric("mean_service", S(100.0), S(101.0), rel_tol=0.005)
        assert c.verdict == "regressed"

    def test_noisy_samples_are_indistinguishable(self):
        a, b = S(100.0, 400.0, 5), S(104.0, 400.0, 5)
        c = compare_metric("mean_turnaround", a, b)
        assert c.verdict == "indistinguishable"
        assert c.p_value is not None and c.p_value >= 0.05
        assert c.ci_overlap is True

    def test_significant_difference_uses_welch(self):
        a, b = S(100.0, 1.0, 10), S(110.0, 1.0, 10)
        c = compare_metric("mean_turnaround", a, b)
        assert c.verdict == "regressed"
        assert c.p_value is not None and c.p_value < 0.05
        assert c.ci_overlap is False

    def test_zero_baseline_relative_delta(self):
        assert relative_delta(S(0.0), S(1.0)) == math.inf
        assert relative_delta(S(0.0), S(-1.0)) == -math.inf
        c = compare_metric("mean_packet_blocking", S(0.0), S(0.5))
        assert c.verdict == "regressed"

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_metric("m", S(1.0), S(2.0), alpha=0.0)
        with pytest.raises(ValueError):
            compare_metric("m", S(1.0), S(2.0), rel_tol=-1.0)

    def test_to_dict_is_json_ready(self):
        import json

        c = compare_metric("utilization", S(0.5, 0.01, 5), S(0.6, 0.01, 5))
        doc = json.loads(json.dumps(c.to_dict()))
        assert doc["verdict"] == c.verdict
        assert doc["a"]["n"] == 5


class TestWorstVerdict:
    def test_precedence(self):
        assert VERDICTS == (
            "regressed", "improved", "indistinguishable", "identical",
        )
        assert worst_verdict(["identical", "regressed", "improved"]) == "regressed"
        assert worst_verdict(["identical", "improved"]) == "improved"
        assert worst_verdict(["identical", "indistinguishable"]) == "indistinguishable"
        assert worst_verdict(["identical"]) == "identical"
        assert worst_verdict([]) == "identical"
