"""Unit tests for SimConfig, Job and Metrics."""

import pytest

from repro.core.config import PAPER_CONFIG, SimConfig
from repro.core.job import Job
from repro.core.metrics import Metrics


class TestConfig:
    def test_paper_defaults(self):
        """Section 5: 16x22 mesh, t_s=3, P_len=8, num_mes=5, 1000 jobs."""
        c = PAPER_CONFIG
        assert (c.width, c.length) == (16, 22)
        assert c.processors == 352
        assert c.t_s == 3.0
        assert c.p_len == 8
        assert c.num_mes == 5.0
        assert c.jobs == 1000

    def test_with_updates(self):
        c = PAPER_CONFIG.with_(jobs=10, seed=1)
        assert c.jobs == 10 and c.seed == 1
        assert PAPER_CONFIG.jobs == 1000  # immutable original

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 0},
            {"t_s": -1.0},
            {"p_len": 0},
            {"num_mes": 0},
            {"jobs": 0},
            {"warmup_jobs": 1000},
            {"trace_demand_multiplier": 0},
            {"round_gap_factor": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimConfig(**kwargs)


class TestJob:
    def _job(self, **kw):
        base = dict(job_id=1, arrival_time=10.0, width=3, length=2, messages=4)
        base.update(kw)
        return Job(**base)

    def test_size(self):
        assert self._job().size == 6

    def test_lifecycle_metrics(self):
        j = self._job()
        j.alloc_time = 15.0
        j.depart_time = 40.0
        assert j.wait_time == 5.0
        assert j.service_time == 25.0
        assert j.turnaround == 30.0

    def test_incomplete_raises(self):
        j = self._job()
        with pytest.raises(ValueError):
            _ = j.turnaround
        with pytest.raises(ValueError):
            _ = j.service_time
        with pytest.raises(ValueError):
            _ = j.wait_time

    def test_packet_recording(self):
        j = self._job()
        j.record_packet(latency=10.0, blocking=2.0)
        j.record_packet(latency=20.0, blocking=4.0)
        assert j.packet_count == 2
        assert j.latency_sum == 30.0
        assert j.blocking_sum == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._job(width=0)
        with pytest.raises(ValueError):
            self._job(messages=0)


class TestMetrics:
    def _completed_job(self, arrival, alloc, depart, packets=0):
        j = Job(job_id=1, arrival_time=arrival, width=2, length=2, messages=1)
        j.alloc_time = alloc
        j.depart_time = depart
        for _ in range(packets):
            j.record_packet(latency=10.0, blocking=3.0)
        return j

    def test_means(self):
        m = Metrics(processors=64)
        m.on_completion(self._completed_job(0, 5, 25, packets=2))
        m.on_completion(self._completed_job(10, 10, 20, packets=2))
        r = m.result(now=100.0)
        assert r.mean_turnaround == pytest.approx((25 + 10) / 2)
        assert r.mean_service == pytest.approx((20 + 10) / 2)
        assert r.mean_wait == pytest.approx((5 + 0) / 2)
        assert r.mean_packet_latency == pytest.approx(10.0)
        assert r.mean_packet_blocking == pytest.approx(3.0)
        assert r.packets_delivered == 4

    def test_warmup_excluded(self):
        m = Metrics(processors=64, warmup_jobs=1)
        m.on_completion(self._completed_job(0, 0, 1000, packets=5))
        m.on_completion(self._completed_job(0, 0, 10, packets=1))
        r = m.result(now=100.0)
        assert r.completed_jobs == 2
        assert r.measured_jobs == 1
        assert r.mean_turnaround == pytest.approx(10.0)
        assert r.packets_delivered == 1

    def test_utilization_integral(self):
        m = Metrics(processors=100)
        m.on_busy_change(0.0, 50)  # 50 busy from t=0
        m.on_busy_change(10.0, -50)  # idle from t=10
        assert m.utilization_at(20.0) == pytest.approx(0.25)

    def test_utilization_with_open_interval(self):
        m = Metrics(processors=100)
        m.on_busy_change(0.0, 100)
        assert m.utilization_at(10.0) == pytest.approx(1.0)

    def test_busy_count_bounds(self):
        m = Metrics(processors=4)
        with pytest.raises(AssertionError):
            m.on_busy_change(0.0, 5)

    def test_queue_peak(self):
        m = Metrics(processors=4)
        m.on_queue_length(3)
        m.on_queue_length(1)
        assert m.queue_peak == 3

    def test_empty_result_is_safe(self):
        m = Metrics(processors=4)
        r = m.result(now=0.0)
        assert r.mean_turnaround == 0.0
        assert r.utilization == 0.0

    def test_zero_measured_all_warmup(self):
        """Regression: completions exist but all fall in the warm-up
        window -- every mean reports exactly 0.0, never nan."""
        import math

        m = Metrics(processors=64, warmup_jobs=5)
        for _ in range(3):
            m.on_completion(self._completed_job(0, 1, 2, packets=2))
        r = m.result(now=50.0)
        assert r.completed_jobs == 3
        assert r.measured_jobs == 0
        for name in (
            "mean_turnaround", "mean_service", "mean_wait",
            "mean_packet_latency", "mean_packet_blocking",
            "mean_fragments", "contiguity_rate",
        ):
            assert r.metric(name) == 0.0
            assert not math.isnan(r.metric(name))

    def test_metric_lookup(self):
        m = Metrics(processors=4)
        r = m.result(now=1.0)
        assert r.metric("utilization") == r.utilization
        with pytest.raises(AttributeError):
            r.metric("nope")
