"""Tests for the state sampler and the paper-claim verification module."""

import pytest

from repro.alloc import make_allocator
from repro.core.config import SimConfig
from repro.core.sampler import StateSampler
from repro.core.simulator import Simulator
from repro.experiments.claims import (
    CHECKS,
    ClaimReport,
    ClaimResult,
    check_c2_gabl_best,
    check_c4_ssd_beats_fcfs,
    check_c5_utilization,
)
from repro.experiments.figures import FIGURES
from repro.experiments.runner import FigureResult
from repro.sched import make_scheduler
from repro.workload.stochastic import StochasticWorkload


def make_sim(load=0.05, jobs=40):
    cfg = SimConfig(width=8, length=8, jobs=jobs, seed=9)
    return Simulator(
        cfg,
        make_allocator("GABL", 8, 8),
        make_scheduler("FCFS"),
        StochasticWorkload(cfg, load=load),
    )


class TestSampler:
    def test_collects_samples(self):
        sim = make_sim()
        sampler = StateSampler(sim, period=50.0)
        sampler.start()
        sim.run()
        assert len(sampler.samples) > 5
        times = [s.time for s in sampler.samples]
        assert times == sorted(times)
        # period spacing
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(50.0) for g in gaps)

    def test_sample_values_sane(self):
        sim = make_sim()
        sampler = StateSampler(sim, period=25.0)
        sampler.start()
        sim.run()
        for s in sampler.samples:
            assert 0 <= s.busy_processors <= 64
            assert s.queue_length >= 0
            assert s.running_jobs >= 0
            assert 0.0 <= s.utilization(64) <= 1.0

    def test_saturation_fills_queue_early(self):
        """The paper's Figs. 8-10 premise: under heavy load the waiting
        queue fills very early in the run."""
        sim = make_sim(load=0.5, jobs=60)
        sampler = StateSampler(sim, period=20.0)
        sampler.start()
        result = sim.run()
        t_queue = sampler.time_to_queue(10)
        assert t_queue is not None
        assert t_queue < result.sim_time * 0.25
        assert sampler.plateau_utilization() > 0.5

    def test_series_helpers(self):
        sim = make_sim()
        sampler = StateSampler(sim, period=40.0)
        sampler.start()
        sim.run()
        util = sampler.utilization_series()
        queue = sampler.queue_series()
        assert len(util) == len(queue) == len(sampler.samples)
        assert all(0.0 <= u <= 1.0 for _, u in util)

    def test_start_idempotent(self):
        sim = make_sim()
        sampler = StateSampler(sim, period=30.0)
        sampler.start()
        sampler.start()
        sim.run()
        times = [s.time for s in sampler.samples]
        assert len(times) == len(set(times))  # no duplicate ticks

    def test_bad_period(self):
        with pytest.raises(ValueError):
            StateSampler(make_sim(), period=0.0)


def _fake_figs(gabl=10.0, paging=15.0, util=0.8):
    """Synthetic figure set embodying the paper's findings: GABL wins
    everywhere, SSD beats FCFS, and MBS sits above Paging(0) on the real
    workload but below it on the stochastic ones (the C3 exception)."""
    figs = {}
    for fig_id, spec in FIGURES.items():
        if spec.saturation:
            series = {
                f"{a}({s})": (util,)
                for a in ("GABL", "Paging(0)", "MBS")
                for s in ("FCFS", "SSD")
            }
            loads = (0.1,)
        else:
            mbs = paging * (1.2 if spec.workload == "real" else 0.85)
            series = {}
            for s, scale in (("FCFS", 1.0), ("SSD", 0.6)):
                series[f"GABL({s})"] = (gabl * scale, gabl * scale * 2)
                series[f"Paging(0)({s})"] = (paging * scale, paging * scale * 2)
                series[f"MBS({s})"] = (mbs * scale, mbs * scale * 2)
            loads = (0.01, 0.02)
        figs[fig_id] = FigureResult(spec=spec, loads=loads, series=series)
    return figs


class TestClaimChecks:
    def test_all_checks_pass_on_ideal_data(self):
        figs = _fake_figs()
        for check in CHECKS:
            result = check(figs)
            assert isinstance(result, ClaimResult)
            assert result.passed, result

    def test_c2_fails_when_gabl_loses(self):
        figs = _fake_figs(gabl=30.0, paging=15.0)
        assert not check_c2_gabl_best(figs).passed

    def test_c4_fails_when_ssd_worse(self):
        figs = _fake_figs()
        spec = FIGURES["fig3"]
        bad_series = dict(figs["fig3"].series)
        bad_series["GABL(SSD)"] = (1000.0, 2000.0)
        figs["fig3"] = FigureResult(
            spec=spec, loads=figs["fig3"].loads, series=bad_series
        )
        assert not check_c4_ssd_beats_fcfs(figs).passed

    def test_c5_fails_out_of_band(self):
        figs = _fake_figs(util=0.3)
        assert not check_c5_utilization(figs).passed

    def test_report_formatting(self):
        figs = _fake_figs()
        results = tuple(check(figs) for check in CHECKS)
        report = ClaimReport(results=results, scale="unit")
        text = report.format()
        assert "ALL CLAIMS HOLD" in text
        assert report.passed
        assert text.count("[PASS]") == len(CHECKS)

    def test_report_failure_verdict(self):
        bad = ClaimResult("CX", "demo", False, "nope")
        report = ClaimReport(results=(bad,), scale="unit")
        assert "SOME CLAIMS FAILED" in report.format()
        assert not report.passed
