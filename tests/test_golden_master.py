"""Golden-master regression harness.

``tests/golden/*.json`` are frozen ``--out`` reports (see the README
there).  These tests re-run the same experiments from scratch and assert
``repro diff`` verdict ``identical`` -- bit-for-bit equality of every
metric mean -- then prove the harness has teeth by perturbing a metric
and requiring ``regressed`` plus a nonzero exit under
``--fail-on-regress`` (the acceptance path the CI gate relies on).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.diff import diff_reports, load_report

GOLDEN = Path(__file__).resolve().parent / "golden"
EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "scenario_smoke.json"


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Fresh result store: golden runs must re-simulate, not replay."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.experiments.store import reset_global_cache

    reset_global_cache()
    yield
    reset_global_cache()


def _assert_all_identical(golden: Path, fresh: Path) -> None:
    report = diff_reports(load_report(golden), load_report(fresh))
    assert report.matched, "reports did not align on any point"
    assert not report.only_a and not report.only_b
    for point in report.matched:
        for comp in point.comparisons.values():
            assert comp.verdict == "identical", (
                f"{point.label} {comp.metric}: "
                f"{comp.a.mean!r} -> {comp.b.mean!r} ({comp.verdict})"
            )


def test_scenario_smoke_matches_golden(tmp_path):
    fresh = tmp_path / "fresh.json"
    assert main(["scenario", str(EXAMPLE), "--out", str(fresh)]) == 0
    _assert_all_identical(GOLDEN / "scenario_smoke.json", fresh)
    # and the CLI gate agrees, with exit code 0 -- including the
    # trajectory gate: a deterministic rerun pins the run *shape* too
    assert main([
        "diff", str(GOLDEN / "scenario_smoke.json"), str(fresh),
        "--trajectories", "--fail-on-regress",
    ]) == 0
    report = diff_reports(
        load_report(GOLDEN / "scenario_smoke.json"), load_report(fresh),
        trajectories=True,
    )
    for point in report.matched:
        assert point.series, f"{point.label}: no trajectory compared"
        for name, d in point.series.items():
            assert d.verdict == "identical", (
                f"{point.label} trajectory {name}: {d.verdict} "
                f"(max|Δ|={d.max_abs} at t={d.max_at})"
            )


def test_fig9_cell_matches_golden(tmp_path):
    fresh = tmp_path / "fresh.json"
    assert main([
        "sweep", "--workloads", "uniform", "--loads", "0.03",
        "--allocs", "GABL", "--scheds", "FCFS", "--scale", "smoke",
        "--out", str(fresh),
    ]) == 0
    _assert_all_identical(GOLDEN / "fig9_cell.json", fresh)
    assert main([
        "diff", str(GOLDEN / "fig9_cell.json"), str(fresh),
        "--fail-on-regress",
    ]) == 0


def test_perturbed_metric_regresses_and_gates(tmp_path, capsys):
    """Injecting drift into a frozen report MUST trip the gate."""
    golden = GOLDEN / "scenario_smoke.json"
    perturbed = tmp_path / "perturbed.json"
    doc = json.loads(golden.read_text())
    point = doc["points"][0]
    point["metrics"]["mean_turnaround"] *= 1.05
    point["stats"]["mean_turnaround"]["mean"] *= 1.05
    perturbed.write_text(json.dumps(doc))

    rc = main(["diff", str(golden), str(perturbed), "--fail-on-regress"])
    out = capsys.readouterr()
    assert rc == 1
    assert "regressed" in out.out
    assert "FAIL" in out.err
    # without the gate flag the diff still reports, but exits 0
    assert main(["diff", str(golden), str(perturbed)]) == 0
    # an *improvement* (turnaround down) must not trip --fail-on-regress
    doc["points"][0]["metrics"]["mean_turnaround"] /= 1.1025
    doc["points"][0]["stats"]["mean_turnaround"]["mean"] /= 1.1025
    perturbed.write_text(json.dumps(doc))
    assert main(["diff", str(golden), str(perturbed), "--fail-on-regress"]) == 0


def test_perturbed_trajectory_sample_gates(tmp_path, capsys):
    """A mid-series wiggle too small to move any run mean is invisible
    to the scalar diff but MUST trip the trajectory gate with exit 1."""
    golden = GOLDEN / "scenario_smoke.json"
    perturbed = tmp_path / "perturbed.json"
    doc = json.loads(golden.read_text())
    series = doc["points"][0]["trajectory"]["utilization"]
    series[len(series) // 2] += 1e-3  # one sample, metrics untouched
    perturbed.write_text(json.dumps(doc))

    # scalar gate: blind to the shape change
    assert main(["diff", str(golden), str(perturbed), "--fail-on-regress"]) == 0
    capsys.readouterr()
    # trajectory gate: catches it, exit 1
    rc = main([
        "diff", str(golden), str(perturbed),
        "--trajectories", "--fail-on-regress",
    ])
    out = capsys.readouterr()
    assert rc == 1
    assert "diverged" in out.out
    assert "FAIL" in out.err
    # a tolerance band wide enough to absorb the wiggle passes again
    assert main([
        "diff", str(golden), str(perturbed),
        "--trajectories", "--traj-atol", "0.01", "--fail-on-regress",
    ]) == 0
