"""Unit tests for the wormhole engine: latency formulas, contention,
blocking accounting, and fast/causal mode agreement."""

import pytest

from repro.core.engine import Engine
from repro.mesh.geometry import Coord
from repro.network.topology import MeshTopology
from repro.network.wormhole import PathTiming, WormholeNetwork


def make_net(mode="fast", t_s=3.0, p_len=8, w=8, l=8):
    engine = Engine()
    topo = MeshTopology(w, l)
    return WormholeNetwork(topo, engine, t_s=t_s, p_len=p_len, mode=mode), engine


class TestUncontendedLatency:
    @pytest.mark.parametrize("src,dst,hops", [
        (Coord(0, 0), Coord(1, 0), 1),
        (Coord(0, 0), Coord(3, 4), 7),
        (Coord(7, 7), Coord(0, 0), 14),
    ])
    def test_latency_formula_fast(self, src, dst, hops):
        """Uncontended latency is (h+2)(t_s+1) + P_len - 1."""
        net, _ = make_net()
        t = net.transmit(src, dst, now=0.0)
        assert t.t_inject == 0.0
        assert t.latency == pytest.approx((hops + 2) * 4 + 7)
        assert t.blocking == 0.0
        assert t.latency == pytest.approx(net.base_latency(hops))

    def test_latency_formula_causal(self):
        net, engine = make_net(mode="causal")
        seen: list[PathTiming] = []
        net.send(Coord(0, 0), Coord(3, 4), 0.0, seen.append)
        engine.run()
        assert len(seen) == 1
        assert seen[0].latency == pytest.approx((7 + 2) * 4 + 7)
        assert seen[0].blocking == 0.0

    def test_parameter_scaling(self):
        net, _ = make_net(t_s=1.0, p_len=4)
        t = net.transmit(Coord(0, 0), Coord(2, 0), 0.0)
        assert t.latency == pytest.approx((2 + 2) * 2 + 3)


class TestContention:
    def test_shared_channel_serializes(self):
        """Two packets over the same link: the second blocks p_len units."""
        net, _ = make_net()
        a = net.transmit(Coord(0, 0), Coord(2, 0), 0.0)
        b = net.transmit(Coord(0, 1), Coord(2, 1), 0.0)
        assert a.blocking == 0.0 and b.blocking == 0.0  # disjoint rows
        c = net.transmit(Coord(0, 0), Coord(2, 0), 0.0)
        # same source: injection wait is source queueing (not blocking),
        # but the worm then trails the first one link-by-link with no
        # further stalls
        assert c.t_inject == pytest.approx(8.0)
        assert c.blocking == pytest.approx(0.0)

    def test_cross_traffic_blocks(self):
        """A packet crossing a busy channel accrues blocking time."""
        net, _ = make_net()
        net.transmit(Coord(0, 0), Coord(3, 0), 0.0)  # holds east links row 0
        t = net.transmit(Coord(1, 1), Coord(2, 0), 0.0)
        # its second hop (east on row 0 after going south... XY: east first
        # on row 1, then south into contested row 0) -- actually XY goes
        # east at y=1 then south; the ejection at (2,0) is free, so no
        # blocking expected here
        assert t.blocking == 0.0
        u = net.transmit(Coord(0, 0), Coord(3, 0), 0.0)
        # same path as the first packet: injection queueing 8, and the
        # links are timed so the worm streams behind -- no link stall
        assert u.t_inject == pytest.approx(8.0)

    def test_head_on_blocking_measured(self):
        net, _ = make_net()
        # saturate one link with many packets from different sources
        # (via distinct injection channels converging on the same link)
        t1 = net.transmit(Coord(0, 0), Coord(2, 0), 0.0)
        t2 = net.transmit(Coord(1, 0), Coord(3, 0), 0.0)
        # t2's east link (1->2) is held by t1 [4, 12); t2's header arrives
        # at 4 -> no wait (t1 acquired it at 4? t1: inj [0,8), link0->1
        # [4,12), link1->2 [8,16)); t2: inj [0,8), link1->2 arrival at 4,
        # but free_at=16 after t1 -> wait
        assert t2.blocking > 0.0

    def test_blocking_conserves_latency(self):
        """latency == base + blocking for any single packet."""
        net, _ = make_net()
        for i in range(5):
            t = net.transmit(Coord(0, 0), Coord(4, 3), 0.0)
            hops = 7
            assert t.latency == pytest.approx(net.base_latency(hops) + t.blocking)


class TestModesAgree:
    def test_single_packet_identical(self):
        fast, _ = make_net(mode="fast")
        causal, engine = make_net(mode="causal")
        ft = fast.transmit(Coord(0, 0), Coord(5, 5), 0.0)
        out = []
        causal.send(Coord(0, 0), Coord(5, 5), 0.0, out.append)
        engine.run()
        assert out[0].latency == pytest.approx(ft.latency)
        assert out[0].t_deliver == pytest.approx(ft.t_deliver)

    def test_disjoint_packets_identical(self):
        pairs = [(Coord(0, y), Coord(7, y)) for y in range(4)]
        fast, _ = make_net(mode="fast")
        fast_results = [fast.transmit(s, d, 0.0) for s, d in pairs]
        causal, engine = make_net(mode="causal")
        out = []
        for s, d in pairs:
            causal.send(s, d, 0.0, out.append)
        engine.run()
        for f, c in zip(fast_results, out):
            assert c.latency == pytest.approx(f.latency)

    def test_staggered_arrivals_agree_exactly(self):
        """When injections are spread in time, reservation order equals
        arrival order and the two modes match channel-for-channel."""
        pairs = []
        for y in range(4):
            for x in range(3):
                pairs.append((Coord(x, y), Coord(7 - x, y)))
        fast, _ = make_net(mode="fast")
        f_total = sum(
            fast.transmit(s, d, i * 10.0).blocking
            for i, (s, d) in enumerate(pairs)
        )
        causal, engine = make_net(mode="causal")
        out = []
        for i, (s, d) in enumerate(pairs):
            causal.send(s, d, i * 10.0, out.append)
        engine.run()
        c_total = sum(t.blocking for t in out)
        assert f_total == pytest.approx(c_total)

    def test_synchronized_burst_fast_is_conservative(self):
        """Simultaneous injections: fast mode's whole-path reservations
        serialize more aggressively than causal header-by-header progress,
        so fast over-reports blocking -- never under-reports (the bias
        direction DESIGN.md 2.1 documents)."""
        pairs = []
        for y in range(4):
            for x in range(3):
                pairs.append((Coord(x, y), Coord(7 - x, y)))
        fast, _ = make_net(mode="fast")
        f_total = sum(fast.transmit(s, d, 0.0).blocking for s, d in pairs)
        causal, engine = make_net(mode="causal")
        out = []
        for s, d in pairs:
            causal.send(s, d, 0.0, out.append)
        engine.run()
        c_total = sum(t.blocking for t in out)
        assert f_total >= c_total


class TestStateManagement:
    def test_reset(self):
        net, _ = make_net()
        net.transmit(Coord(0, 0), Coord(3, 3), 0.0)
        assert net.packets_sent == 1
        net.reset()
        assert net.packets_sent == 0
        t = net.transmit(Coord(0, 0), Coord(3, 3), 0.0)
        assert t.blocking == 0.0

    def test_invalid_mode(self):
        engine = Engine()
        with pytest.raises(ValueError):
            WormholeNetwork(MeshTopology(4, 4), engine, mode="warp")

    def test_route_cache_reused(self):
        net, _ = make_net()
        net.transmit(Coord(0, 0), Coord(3, 3), 0.0)
        net.transmit(Coord(0, 0), Coord(3, 3), 10.0)
        assert len(net._route_cache) == 1
