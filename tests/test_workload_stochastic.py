"""Unit tests for the stochastic workload generator."""

import itertools

import pytest

from repro.core.config import SimConfig
from repro.workload.stochastic import StochasticWorkload


CFG = SimConfig(width=16, length=22, jobs=10)


def take(wl, n, seed=1):
    return list(itertools.islice(wl.jobs(seed), n))


class TestValidation:
    def test_bad_load(self):
        with pytest.raises(ValueError):
            StochasticWorkload(CFG, load=0.0)

    def test_bad_sides(self):
        with pytest.raises(ValueError):
            StochasticWorkload(CFG, load=0.01, sides="normal")


class TestUniform:
    def test_sides_in_range(self):
        wl = StochasticWorkload(CFG, load=0.01, sides="uniform")
        for j in take(wl, 500):
            assert 1 <= j.width <= 16
            assert 1 <= j.length <= 22
            assert j.messages >= 1

    def test_side_means(self):
        """Uniform over [1, W] and [1, L]: means (W+1)/2, (L+1)/2."""
        wl = StochasticWorkload(CFG, load=0.01, sides="uniform")
        jobs = take(wl, 4000)
        mean_w = sum(j.width for j in jobs) / len(jobs)
        mean_l = sum(j.length for j in jobs) / len(jobs)
        assert mean_w == pytest.approx(8.5, rel=0.05)
        assert mean_l == pytest.approx(11.5, rel=0.05)

    def test_interarrival_mean_is_inverse_load(self):
        """Paper: system load = inverse of mean inter-arrival time."""
        wl = StochasticWorkload(CFG, load=0.02, sides="uniform")
        jobs = take(wl, 4000)
        gaps = [b.arrival_time - a.arrival_time for a, b in zip(jobs, jobs[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(50.0, rel=0.06)

    def test_message_mean_is_num_mes(self):
        wl = StochasticWorkload(CFG, load=0.01, sides="uniform")
        jobs = take(wl, 4000)
        mean_k = sum(j.messages for j in jobs) / len(jobs)
        assert mean_k == pytest.approx(5.0, rel=0.1)

    def test_ssd_demand_equals_messages(self):
        wl = StochasticWorkload(CFG, load=0.01, sides="uniform")
        for j in take(wl, 50):
            assert j.service_demand == float(j.messages)


class TestExponential:
    def test_sides_in_range(self):
        wl = StochasticWorkload(CFG, load=0.01, sides="exponential")
        for j in take(wl, 500):
            assert 1 <= j.width <= 16
            assert 1 <= j.length <= 22

    def test_mean_near_half_side(self):
        """Exponential with mean half the mesh side, clipped into range."""
        wl = StochasticWorkload(CFG, load=0.01, sides="exponential")
        jobs = take(wl, 4000)
        mean_w = sum(j.width for j in jobs) / len(jobs)
        mean_l = sum(j.length for j in jobs) / len(jobs)
        # clipping pulls the mean below W/2 and L/2 but not wildly
        assert 5.0 < mean_w < 8.0
        assert 7.5 < mean_l < 11.0

    def test_smaller_than_uniform_on_average(self):
        uni = StochasticWorkload(CFG, load=0.01, sides="uniform")
        exp = StochasticWorkload(CFG, load=0.01, sides="exponential")
        uni_mean = sum(j.size for j in take(uni, 2000)) / 2000
        exp_mean = sum(j.size for j in take(exp, 2000)) / 2000
        assert exp_mean < uni_mean


class TestDeterminism:
    def test_same_seed_same_stream(self):
        wl = StochasticWorkload(CFG, load=0.01, sides="uniform")
        a = take(wl, 50, seed=9)
        b = take(wl, 50, seed=9)
        assert [(j.arrival_time, j.width, j.length, j.messages) for j in a] == [
            (j.arrival_time, j.width, j.length, j.messages) for j in b
        ]

    def test_different_seeds_differ(self):
        wl = StochasticWorkload(CFG, load=0.01, sides="uniform")
        a = take(wl, 50, seed=1)
        b = take(wl, 50, seed=2)
        assert [j.width for j in a] != [j.width for j in b]

    def test_arrivals_monotone(self):
        wl = StochasticWorkload(CFG, load=0.05, sides="exponential")
        jobs = take(wl, 500)
        assert all(
            a.arrival_time <= b.arrival_time for a, b in zip(jobs, jobs[1:])
        )

    def test_ids_sequential(self):
        wl = StochasticWorkload(CFG, load=0.01, sides="uniform")
        jobs = take(wl, 10)
        assert [j.job_id for j in jobs] == list(range(1, 11))
