"""Oracle test: the vectorised bounded-rectangle query must reproduce
the monotone-stack histogram sweep it replaced, choice-for-choice.

The reference below is the pre-vectorisation implementation (enumerate
every maximal free rectangle, carve the best bounded sub-rectangle out
of each, tie-break by (area, -base_y, -base_x, w)).  The production
query evaluates anchors instead of maximal rectangles; the two
candidate sets dominate each other, so the argmax must be identical --
this suite fuzzes that equivalence across densities, bounds and the
version-cache reuse pattern of a GABL decomposition.
"""

import numpy as np
import pytest

from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import MeshGrid
from repro.mesh.rectfind import largest_free_rect_bounded


def reference_sweep(grid, max_w=None, max_l=None, max_area=None):
    """The original monotone-stack implementation (the oracle)."""
    W, L = grid.width, grid.length
    max_w = W if max_w is None else min(max_w, W)
    max_l = L if max_l is None else min(max_l, L)
    max_area = W * L if max_area is None else max_area
    if max_w <= 0 or max_l <= 0 or max_area <= 0:
        return None
    free = grid.free_mask()
    heights = np.zeros(W, dtype=np.int64)
    best = None

    def carve(span_w, span_l):
        cap_w, cap_l = min(span_w, max_w), min(span_l, max_l)
        if cap_w <= 0 or cap_l <= 0 or max_area <= 0:
            return None
        shape, best_a = None, 0
        ceiling = min(cap_w * cap_l, max_area)
        for w in range(cap_w, 0, -1):
            l = min(cap_l, max_area // w)
            if l <= 0:
                continue
            if w * l > best_a:
                best_a, shape = w * l, (w, l)
                if best_a == ceiling:
                    break
        return shape

    for y in range(L):
        heights = (heights + 1) * free[y]
        hist = heights.tolist()
        hist.append(0)
        stack = []
        for x, h in enumerate(hist):
            start = x
            while stack and stack[-1][1] > h:
                pos, height = stack.pop()
                shape = carve(x - pos, height)
                if shape is not None:
                    w, l = shape
                    cand = (w * l, y - height + 1, pos, w, l)
                    if best is None or (
                        (cand[0], -cand[1], -cand[2], cand[3])
                        > (best[0], -best[1], -best[2], best[3])
                    ):
                        best = cand
                start = pos
            if h > 0 and (not stack or stack[-1][1] < h):
                stack.append((start, h))
    if best is None:
        return None
    return SubMesh.from_base(best[2], best[1], best[3], best[4])


def random_grid(rng, width, length, density) -> MeshGrid:
    grid = MeshGrid(width, length)
    busy = rng.random((length, width)) < density
    coords = [Coord(int(x), int(y)) for y, x in zip(*np.nonzero(busy))]
    if coords:
        grid.allocate_nodes(coords, 1)
    return grid


@pytest.mark.parametrize("seed", range(8))
def test_matches_reference_on_random_grids(seed):
    rng = np.random.default_rng(seed)
    for _ in range(25):
        width = int(rng.integers(1, 18))
        length = int(rng.integers(1, 24))
        grid = random_grid(rng, width, length, rng.uniform(0, 1.05))
        for _ in range(4):
            max_w = int(rng.integers(0, width + 3)) or None
            max_l = int(rng.integers(0, length + 3)) or None
            max_area = int(rng.integers(0, width * length + 3)) or None
            assert largest_free_rect_bounded(
                grid, max_w, max_l, max_area
            ) == reference_sweep(grid, max_w, max_l, max_area), (
                max_w, max_l, max_area, grid.ascii_art()
            )
        assert largest_free_rect_bounded(grid) == reference_sweep(grid)


def test_decomposition_pattern_reuses_version_cache():
    """Interleave queries and mutations exactly like a GABL decompose:
    the version-tagged scratch must never serve stale geometry."""
    rng = np.random.default_rng(1234)
    grid = random_grid(rng, 16, 22, 0.45)
    for _ in range(30):
        bound_w = int(rng.integers(1, 17))
        bound_l = int(rng.integers(1, 23))
        area = int(rng.integers(1, 60))
        expect = reference_sweep(grid, bound_w, bound_l, area)
        got = largest_free_rect_bounded(grid, bound_w, bound_l, area)
        assert got == expect
        if got is not None:
            grid.allocate_submesh(got, 7)  # mutate: version bump
        elif grid.free_count < grid.size:
            # free everything and continue fuzzing from a fresh board
            grid.reset()


def test_full_and_empty_meshes():
    grid = MeshGrid(5, 7)
    assert largest_free_rect_bounded(grid) == SubMesh.from_base(0, 0, 5, 7)
    grid.allocate_submesh(SubMesh(0, 0, 4, 6), 1)
    assert largest_free_rect_bounded(grid) is None
    assert largest_free_rect_bounded(MeshGrid(3, 3), max_area=0) is None
    assert largest_free_rect_bounded(MeshGrid(3, 3), max_w=0) is None
