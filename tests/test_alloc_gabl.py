"""Unit tests for GABL (repro.alloc.gabl)."""

import pytest

from repro.alloc.gabl import GABLAllocator
from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import submeshes_disjoint


class TestContiguousPath:
    def test_empty_mesh_contiguous(self):
        a = GABLAllocator(16, 22)
        alloc = a.allocate(1, 5, 7)
        assert alloc is not None
        assert alloc.contiguous
        assert alloc.submeshes[0].width == 5
        assert alloc.submeshes[0].length == 7

    def test_rotation_used(self):
        a = GABLAllocator(8, 4)
        alloc = a.allocate(1, 3, 7)  # 3x7 cannot fit upright in 8x4
        assert alloc is not None
        assert alloc.contiguous
        s = alloc.submeshes[0]
        assert (s.width, s.length) == (7, 3)

    def test_rotation_disabled(self):
        a = GABLAllocator(8, 4, allow_rotation=False)
        alloc = a.allocate(1, 3, 7)
        assert alloc is not None
        assert not alloc.contiguous  # falls through to decomposition

    def test_first_fit_base(self):
        a = GABLAllocator(8, 8)
        a.allocate(1, 2, 2)
        alloc = a.allocate(2, 2, 2)
        assert alloc.submeshes[0].base == Coord(2, 0)


class TestGreedyDecomposition:
    def test_fig1_scenario_succeeds(self):
        """Paper Fig. 1: 4 free processors, no 2x2 sub-mesh -> GABL still
        allocates the 2x2 request non-contiguously."""
        a = GABLAllocator(4, 4)
        free = {Coord(0, 3), Coord(3, 3), Coord(1, 1), Coord(2, 0)}
        busy = [
            Coord(x, y) for y in range(4) for x in range(4)
            if Coord(x, y) not in free
        ]
        a.grid.allocate_nodes(busy, 999)
        alloc = a.allocate(1, 2, 2)
        assert alloc is not None
        assert alloc.size == 4
        assert alloc.fragment_count == 4
        assert a.free_count == 0

    def test_exact_count_allocated(self):
        a = GABLAllocator(8, 8)
        # fragment the mesh with a comb pattern
        for x in range(0, 8, 2):
            a.grid.allocate_submesh(SubMesh.from_base(x, 0, 1, 7), 999)
        alloc = a.allocate(1, 4, 5)
        assert alloc is not None
        assert alloc.size == 20  # exactly w*l, never more

    def test_fails_when_insufficient(self):
        a = GABLAllocator(8, 8)
        a.grid.allocate_submesh(SubMesh.from_base(0, 0, 8, 7), 999)  # 56 busy
        assert a.free_count == 8
        assert a.allocate(1, 3, 3) is None  # 9 > 8
        alloc = a.allocate(2, 8, 1)  # exactly 8
        assert alloc is not None

    def test_chunks_shrink_monotonically(self):
        """Each chunk's sides never exceed the previous chunk's sides."""
        a = GABLAllocator(8, 8)
        for x in range(0, 8, 3):
            a.grid.allocate_submesh(SubMesh.from_base(x, 0, 1, 8), 999)
        alloc = a.allocate(1, 6, 6)
        assert alloc is not None
        dims = [sorted((s.width, s.length), reverse=True) for s in alloc.submeshes]
        for prev, cur in zip(dims, dims[1:]):
            assert cur[0] <= prev[0] and cur[1] <= prev[1]

    def test_greedy_takes_largest_first(self):
        a = GABLAllocator(8, 8)
        # free regions: a 3x3 island and a 2x8 column
        busy = []
        for y in range(8):
            for x in range(8):
                in_island = 0 <= x <= 2 and 0 <= y <= 2
                in_column = 6 <= x <= 7
                if not (in_island or in_column):
                    busy.append(Coord(x, y))
        a.grid.allocate_nodes(busy, 999)
        alloc = a.allocate(1, 4, 4)  # 16 procs, no contiguous 4x4
        assert alloc is not None
        first = alloc.submeshes[0]
        # the 2x8 column clipped to the 4x4 bound -> 2x4=8; the island
        # clipped -> 3x3=9: the island piece is larger and must come first
        assert first.area == 9

    def test_no_overlap(self):
        a = GABLAllocator(8, 8)
        allocs = []
        for j, (w, l) in enumerate([(3, 5), (5, 3), (2, 2), (4, 4), (1, 6)]):
            alloc = a.allocate(j, w, l)
            if alloc:
                allocs.append(alloc)
        subs = [s for al in allocs for s in al.submeshes]
        assert submeshes_disjoint(subs)
        a.grid.validate()


class TestCompleteness:
    def test_always_succeeds_when_free_enough(self):
        """GABL invariant: allocation succeeds iff free >= w*l."""
        a = GABLAllocator(8, 8)
        jobs = {}
        sizes = [(3, 3), (4, 2), (2, 7), (5, 5), (1, 1), (6, 2)]
        for j, (w, l) in enumerate(sizes):
            alloc = a.allocate(j, w, l)
            expected = w * l <= a.free_count + (alloc.size if alloc else 0)
            if alloc is None:
                assert w * l > a.free_count
            else:
                jobs[j] = alloc
        for alloc in jobs.values():
            a.release(alloc)
        assert a.free_count == 64


class TestBusyList:
    def test_busy_list_tracks_jobs(self):
        a = GABLAllocator(8, 8)
        alloc = a.allocate(1, 4, 4)
        assert len(a.busy_list) == alloc.fragment_count
        a.release(alloc)
        assert len(a.busy_list) == 0

    def test_release_unknown_fails(self):
        a = GABLAllocator(8, 8)
        alloc = a.allocate(1, 2, 2)
        a.release(alloc)
        with pytest.raises(KeyError):
            a.release(alloc)
