"""Unit tests for the Paging index schemes (repro.alloc.indexing)."""

import pytest

from repro.alloc.indexing import (
    SCHEMES,
    row_major,
    scheme,
    shuffled_row_major,
    shuffled_snake,
    snake,
)
from repro.mesh.geometry import Coord


ALL_SCHEMES = sorted(SCHEMES)


class TestCommonProperties:
    @pytest.mark.parametrize("name", ALL_SCHEMES)
    @pytest.mark.parametrize("pw,pl", [(1, 1), (4, 4), (5, 3), (16, 22), (7, 1)])
    def test_is_permutation(self, name, pw, pl):
        order = scheme(name)(pw, pl)
        assert len(order) == pw * pl
        assert len(set(order)) == pw * pl
        assert all(0 <= c.x < pw and 0 <= c.y < pl for c in order)

    @pytest.mark.parametrize("name", ALL_SCHEMES)
    def test_starts_at_origin(self, name):
        assert scheme(name)(4, 4)[0] == Coord(0, 0)


class TestRowMajor:
    def test_order_2x2(self):
        assert row_major(2, 2) == [
            Coord(0, 0), Coord(1, 0), Coord(0, 1), Coord(1, 1)
        ]

    def test_y_outer(self):
        order = row_major(3, 2)
        assert order[:3] == [Coord(0, 0), Coord(1, 0), Coord(2, 0)]


class TestSnake:
    def test_reverses_odd_rows(self):
        order = snake(3, 2)
        assert order == [
            Coord(0, 0), Coord(1, 0), Coord(2, 0),
            Coord(2, 1), Coord(1, 1), Coord(0, 1),
        ]

    def test_adjacent_steps(self):
        """Snake order always moves to a grid-adjacent page."""
        order = snake(5, 4)
        for a, b in zip(order, order[1:]):
            assert abs(a.x - b.x) + abs(a.y - b.y) == 1


class TestShuffled:
    def test_shuffled_row_major_4x4_quadrants(self):
        """Z-order visits the lower-left 2x2 quadrant first."""
        order = shuffled_row_major(4, 4)
        first_quadrant = set(order[:4])
        assert first_quadrant == {
            Coord(0, 0), Coord(1, 0), Coord(0, 1), Coord(1, 1)
        }

    def test_shuffled_differs_from_plain(self):
        assert shuffled_row_major(4, 4) != row_major(4, 4)
        assert shuffled_snake(4, 4) != snake(4, 4)

    def test_shuffled_snake_permutation_nonsquare(self):
        order = shuffled_snake(6, 3)
        assert len(set(order)) == 18


class TestLookup:
    def test_unknown_scheme(self):
        with pytest.raises(KeyError, match="unknown indexing scheme"):
            scheme("diagonal")

    def test_known_schemes(self):
        for name in ALL_SCHEMES:
            assert callable(scheme(name))
