"""Unit tests for the Random scatter baseline."""


from repro.alloc.random_alloc import RandomAllocator, merge_unit_runs
from repro.mesh.geometry import Coord, SubMesh


class TestMergeRuns:
    def test_single(self):
        assert merge_unit_runs([Coord(3, 4)]) == [SubMesh(3, 4, 3, 4)]

    def test_horizontal_run(self):
        runs = merge_unit_runs([Coord(1, 0), Coord(2, 0), Coord(3, 0)])
        assert runs == [SubMesh(1, 0, 3, 0)]

    def test_gap_splits(self):
        runs = merge_unit_runs([Coord(1, 0), Coord(3, 0)])
        assert runs == [SubMesh(1, 0, 1, 0), SubMesh(3, 0, 3, 0)]

    def test_rows_not_merged(self):
        runs = merge_unit_runs([Coord(0, 0), Coord(0, 1)])
        assert len(runs) == 2

    def test_unsorted_input(self):
        runs = merge_unit_runs([Coord(3, 1), Coord(1, 1), Coord(2, 1)])
        assert runs == [SubMesh(1, 1, 3, 1)]


class TestRandomAllocator:
    def test_exact_size(self):
        a = RandomAllocator(8, 8, seed=1)
        alloc = a.allocate(1, 4, 5)
        assert alloc is not None
        assert alloc.size == 20
        assert a.free_count == 44

    def test_complete(self):
        a = RandomAllocator(8, 8, seed=1)
        assert a.allocate(1, 8, 7) is not None
        assert a.allocate(2, 3, 3) is None  # 9 > 8
        assert a.allocate(3, 4, 2) is not None  # exactly 8

    def test_deterministic_per_seed(self):
        a1 = RandomAllocator(8, 8, seed=42)
        a2 = RandomAllocator(8, 8, seed=42)
        assert a1.allocate(1, 3, 3).coords == a2.allocate(1, 3, 3).coords

    def test_different_seeds_differ(self):
        a1 = RandomAllocator(16, 16, seed=1)
        a2 = RandomAllocator(16, 16, seed=2)
        assert a1.allocate(1, 6, 6).coords != a2.allocate(1, 6, 6).coords

    def test_release_and_reset(self):
        a = RandomAllocator(8, 8, seed=3)
        alloc = a.allocate(1, 5, 5)
        a.release(alloc)
        assert a.free_count == 64
        first = a.allocate(2, 3, 3).coords
        a.reset()
        # reset also rewinds the RNG, so the stream repeats
        a.allocate(3, 5, 5)
        again = a.allocate(4, 3, 3).coords
        # streams differ because job order differs -- just exercise reset
        assert a.free_count == 64 - 25 - 9
        a.grid.validate()
        assert first is not None and again is not None
