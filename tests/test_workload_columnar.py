"""Columnar job streams must be bit-identical to the scalar iterators.

``jobs(seed)`` is the definitional stream; ``blocks(seed, count)`` is
the fast columnar form.  For every workload source and every transform
(native vector form or the automatic fallback through
``blocks_from_jobs``), materialising the blocks must reproduce the
scalar jobs *exactly* -- same ids, same bit-for-bit arrival floats,
same sides, demands and trace runtimes -- for any seed and any block
partition.  The suite also covers the refill-sizing policy, the
process-wide block cache, ``Job.__slots__`` and the mid-chunk trace
exhaustion path of the SoA engine's ``feed``.
"""

from __future__ import annotations

import dataclasses
from itertools import islice

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SimConfig
from repro.core.job import Job
from repro.workload import (
    JobBlock,
    LoadScale,
    Merge,
    StochasticWorkload,
    TraceJob,
    TraceWorkload,
    WorkloadTransform,
    blocks_from_jobs,
    build_pipeline,
    job_stream,
    jobs_from_blocks,
    open_stream,
    refill_size,
)
from repro.workload.columnar import (
    FIRST_FILL_SLACK,
    MAX_CHUNK,
    MIN_REFILL,
    BlockCache,
)
from repro.workload.transforms import TRANSFORMS

CFG = SimConfig(width=8, length=8, jobs=40, seed=7)
N = 80  # stream prefix length compared per property


def _trace(n: int = 60) -> list[TraceJob]:
    return [
        TraceJob(arrival=i * 3.7, size=(i % 16) + 1, runtime=5.0 + (i % 9))
        for i in range(n)
    ]


def make_source(name: str):
    if name == "real":
        return TraceWorkload(CFG, _trace(), load=0.05)
    return StochasticWorkload(CFG, load=0.05, sides=name)


class NoVectorForm(WorkloadTransform):
    """A transform with no ``blocks`` override: exercises the fallback."""

    op = "novec"

    def jobs(self, seed):
        for job in self.inner.jobs(seed):
            yield dataclasses.replace(job, messages=job.messages + 1,
                                      service_demand=job.messages + 1.0)


def assert_streams_equal(wl, seed: int, count: int, n: int = N) -> None:
    scalar = list(islice(wl.jobs(seed), n))
    columnar = list(islice(jobs_from_blocks(wl.blocks(seed, count)), n))
    assert len(scalar) == len(columnar)
    for a, b in zip(scalar, columnar):
        assert a.job_id == b.job_id
        assert a.arrival_time == b.arrival_time  # bitwise: == on floats
        assert (a.width, a.length, a.messages) == (b.width, b.length, b.messages)
        assert a.service_demand == b.service_demand
        assert a.trace_runtime == b.trace_runtime


PIPELINES = [
    "{src}",
    "{src} | scale:0.5",
    "{src} | thin:0.8",
    "{src} | jitter:4.0",
    "{src} | burst:64",
    "{src} | clamp:3:5",
    "{src}*0.5 | thin:0.7 | jitter:2.0",
    "{src} + uniform",
    "real*0.5 | thin:0.8 + {src}",
]


class TestColumnarEqualsScalar:
    @pytest.mark.parametrize("src", ("uniform", "exponential", "real"))
    @pytest.mark.parametrize("pipeline", PIPELINES)
    def test_every_workload_times_transform(self, src, pipeline):
        wl = build_pipeline(pipeline.format(src=src), make_source)
        assert_streams_equal(wl, seed=11, count=17)

    @given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 97))
    @settings(max_examples=25, deadline=None)
    def test_stochastic_any_seed_any_partition(self, seed, count):
        for sides in ("uniform", "exponential"):
            assert_streams_equal(make_source(sides), seed, count, n=50)

    @given(seed=st.integers(0, 2**32 - 1), count=st.integers(1, 97))
    @settings(max_examples=15, deadline=None)
    def test_transformed_any_seed_any_partition(self, seed, count):
        wl = build_pipeline("real*0.5 | thin:0.8 + uniform | jitter:3.0",
                            make_source)
        assert_streams_equal(wl, seed, count, n=50)

    def test_every_registered_transform_has_native_blocks(self):
        # the doc promise: all registry transforms carry a vector form
        for op, (cls, _) in TRANSFORMS.items():
            assert "blocks" in vars(cls), f"{op} lost its vector form"

    def test_fallback_transform(self):
        wl = NoVectorForm(make_source("uniform"), salt=1)
        assert wl.block_fingerprint() is None  # fallback is uncacheable
        assert_streams_equal(wl, seed=3, count=13)

    def test_vector_transform_over_fallback(self):
        # the fallback poisons the chain fingerprint but not correctness
        wl = LoadScale(NoVectorForm(make_source("uniform"), salt=1),
                       0.5, salt=2)
        assert wl.block_fingerprint() is None
        assert_streams_equal(wl, seed=3, count=13)

    def test_merge_over_fallback(self):
        wl = Merge(NoVectorForm(make_source("uniform"), salt=1),
                   make_source("exponential"))
        assert wl.block_fingerprint() is None
        assert_streams_equal(wl, seed=9, count=19)

    def test_merge_tie_break_matches_heapq(self):
        # identical deterministic traces: every arrival ties, so order
        # is decided purely by the stable earlier-stream-wins rule
        wl = Merge(TraceWorkload(CFG, _trace(), load=0.05),
                   TraceWorkload(CFG, _trace(), load=0.05))
        assert_streams_equal(wl, seed=1, count=7, n=120)

    def test_job_stream_adapter(self):
        for src in ("uniform", "real"):
            wl = make_source(src)
            a = list(islice(wl.jobs(5), N))
            b = list(islice(job_stream(wl, 5), N))
            assert a == b
        # no native form -> the adapter returns the plain iterator
        wl = NoVectorForm(make_source("uniform"), salt=1)
        assert list(islice(job_stream(wl, 5), N)) == list(islice(wl.jobs(5), N))


class TestJobBlock:
    def test_roundtrip_from_jobs(self):
        jobs = list(islice(make_source("real").jobs(1), 40))
        block = JobBlock.from_jobs(jobs)
        assert list(block.iter_jobs()) == jobs
        assert block.job(3) == jobs[3]
        assert len(block.view(5, 10)) == 5

    def test_blocks_from_jobs_partitions(self):
        jobs = list(islice(make_source("uniform").jobs(2), 50))
        blocks = list(blocks_from_jobs(iter(jobs), count=16))
        assert [len(b) for b in blocks] == [16, 16, 16, 2]
        assert list(jobs_from_blocks(blocks)) == jobs

    def test_runtime_nan_convention(self):
        # a merge of trace + stochastic mixes runtimes and None
        wl = Merge(make_source("real"), make_source("uniform"))
        jobs = list(islice(jobs_from_blocks(wl.blocks(1, 32)), 60))
        kinds = {j.trace_runtime is None for j in jobs}
        assert kinds == {True, False}


class TestRefillPolicy:
    def test_first_fill_covers_target_plus_slack(self):
        assert refill_size(0, 1000) == 1000 + FIRST_FILL_SLACK

    def test_first_fill_caps_at_max_chunk(self):
        assert refill_size(0, 10**6) == MAX_CHUNK

    def test_later_fills_grow_with_consumption(self):
        assert refill_size(100, 1000) == MIN_REFILL
        assert refill_size(4000, 1000) == 1000
        assert refill_size(10**6, 1000) == MAX_CHUNK

    def test_matches_legacy_feed_heuristic(self):
        # the policy factored out of LaneState.feed, value for value
        for provided, target in [(0, 40), (0, 5000), (104, 40),
                                 (2048, 1000), (65536, 1000)]:
            if provided == 0:
                legacy = min(target + 64, 4096)
            else:
                legacy = min(max(512, provided // 4), 4096)
            assert refill_size(provided, target) == legacy


class TestBlockCache:
    def test_cached_streams_share_blocks(self):
        wl = make_source("uniform")
        c1, c2 = open_stream(wl, 123), open_stream(wl, 123)
        b1, b2 = c1.next_block(), c2.next_block()
        assert b1 is b2  # same object: generated once, replayed

    def test_distinct_seeds_distinct_streams(self):
        wl = make_source("uniform")
        b1 = open_stream(wl, 1).next_block()
        b2 = open_stream(wl, 2).next_block()
        assert not np.array_equal(b1.arrival, b2.arrival)

    def test_cache_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_CACHE_MB", "0")
        wl = make_source("uniform")
        b1 = open_stream(wl, 99).next_block()
        b2 = open_stream(wl, 99).next_block()
        assert b1 is not b2
        assert np.array_equal(b1.arrival, b2.arrival)

    def test_eviction_respects_budget(self):
        cache = BlockCache(budget=1)  # ~one stream's worth at most
        wl = make_source("uniform")
        s1 = cache.stream(wl, 1, ("k", 1), count=64)
        s1.block(0)
        s2 = cache.stream(wl, 2, ("k", 2), count=64)
        s2.block(0)
        # over budget: the LRU entry was evicted, the newest survives
        assert cache.stream(wl, 2, ("k", 2), count=64) is s2
        assert cache.stream(wl, 1, ("k", 1), count=64) is not s1


class TestJobSlots:
    def test_job_has_slots(self):
        job = Job(job_id=1, arrival_time=0.0, width=2, length=2, messages=3)
        assert not hasattr(job, "__dict__")
        with pytest.raises((AttributeError, TypeError)):
            job.unknown_attribute = 1


class TestFeedExhaustionMidChunk:
    def test_trace_shorter_than_first_fill(self):
        """Exhaustion lands inside the first refill chunk: the SoA lane
        must finish the backlog and match the reference engine exactly."""
        from repro.experiments.campaign import PointSpec, Scale, build_simulator
        from repro.core.soa import run_point_batch

        scale = Scale("tiny", jobs=100, min_replications=1,
                      max_replications=1, trace_max_jobs=12)
        cfg = SimConfig(width=8, length=8, jobs=100, seed=2)
        spec = PointSpec(workload="real", load=0.5, alloc="GABL",
                         sched="FCFS", scale=scale, config=cfg)
        seeds = [1, 2]
        ref = [build_simulator(spec, s).run() for s in seeds]
        soa = run_point_batch(lambda seed, observers=():
                              build_simulator(spec, seed, observers=observers),
                              seeds)
        for r, g in zip(ref, soa):
            assert dataclasses.asdict(r) == dataclasses.asdict(g)
        assert all(r.completed_jobs == 12 for r in ref)
