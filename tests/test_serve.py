"""Tests for the campaign service (experiments/serve.py), its thin
client, and the end-to-end restart drill: SIGKILL the service
mid-campaign, restart it, and the resumed job completes with zero lost
flushed points and a report metric-identical to a foreground run."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.serve import (
    CampaignService,
    build_campaign,
    job_id,
    make_server,
)
from repro.experiments.service_client import ServiceClient, ServiceError

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

SCENARIO_DOC = {
    "name": "serve-test",
    "workload": "uniform",
    "loads": [0.02],
    "allocs": ["GABL"],
    "scheds": ["FCFS"],
    "scale": "smoke",
}

SWEEP_DOC = {
    "kind": "sweep",
    "name": "serve-sweep",
    "workloads": ["uniform"],
    "loads": [0.02, 0.03],
    "allocs": ["GABL"],
    "scheds": ["FCFS"],
    "scale": "smoke",
}


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(store=tmp_path / "shards")
    server = make_server(svc, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(port=server.server_address[1])
    yield svc, client
    server.shutdown()
    server.server_close()
    svc.close()


class TestDocuments:
    def test_job_id_is_content_hash(self):
        assert job_id(SCENARIO_DOC) == job_id(dict(SCENARIO_DOC))
        assert job_id(SCENARIO_DOC) != job_id(SWEEP_DOC)

    def test_build_scenario_campaign(self):
        name, kind, campaign = build_campaign(SCENARIO_DOC)
        assert (name, kind) == ("serve-test", "scenario")
        assert len(campaign.points) == 1

    def test_build_sweep_campaign(self):
        name, kind, campaign = build_campaign(SWEEP_DOC)
        assert (name, kind) == ("serve-sweep", "sweep")
        assert len(campaign.points) == 2

    def test_bad_documents_raise_value_error(self):
        with pytest.raises(ValueError):
            build_campaign({"kind": "sweep", "loads": [0.02]})  # no workloads
        with pytest.raises(ValueError):
            build_campaign({"kind": "sweep", "workloads": ["uniform"],
                            "loads": [0.02], "bogus": 1})
        with pytest.raises(ValueError):
            build_campaign({"name": "x"})  # scenario missing keys
        with pytest.raises(ValueError):
            build_campaign([1, 2, 3])


class TestServiceEndpoints:
    def test_submit_wait_report(self, service):
        svc, client = service
        summary = client.submit(SCENARIO_DOC)
        assert summary["total"] == 1
        final = client.wait(summary["id"], interval=0.05, timeout=120)
        assert final["state"] == "done"
        assert final["done"] == 1
        report = client.report(summary["id"])
        assert report["schema"] == 3
        assert len(report["points"]) == 1
        assert report["points"][0]["metrics"]
        assert report["job"]["state"] == "done"

    def test_resubmit_is_idempotent(self, service):
        svc, client = service
        first = client.submit(SWEEP_DOC)
        client.wait(first["id"], interval=0.05, timeout=120)
        again = client.submit(dict(SWEEP_DOC))
        assert again["id"] == first["id"]
        assert again["state"] == "done"

    def test_status_lists_jobs(self, service):
        svc, client = service
        jid = client.submit(SCENARIO_DOC)["id"]
        client.wait(jid, interval=0.05, timeout=120)
        status = client.status()
        assert status["service"] == "repro-serve"
        assert jid in {j["id"] for j in status["jobs"]}

    def test_bad_submission_is_http_400(self, service):
        svc, client = service
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.submit({"name": "x", "bogus": True})

    def test_unknown_job_is_http_404(self, service):
        svc, client = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.job("nope")
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.report("nope")

    def test_unreachable_service_raises(self):
        client = ServiceClient(port=1, timeout=0.5)
        with pytest.raises(ServiceError, match="no campaign service"):
            client.status()

    def test_restart_reconciles_done_job_from_store(self, tmp_path, service):
        svc, client = service
        jid = client.submit(SCENARIO_DOC)["id"]
        client.wait(jid, interval=0.05, timeout=120)
        # a fresh service over the same store recovers the manifest and
        # marks the job done without recomputing anything
        twin = CampaignService(store=svc.cache.path)
        try:
            job = twin.job(jid)
            assert job is not None and job.state == "done"
            report = twin.job_report(jid)
            assert len(report["points"]) == 1
        finally:
            twin.close()


# ------------------------------------------------- the restart drill (E2E)
DRILL_DOC = {
    "name": "drill",
    "workload": "uniform",
    "loads": [0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05, 0.055],
    "allocs": ["GABL"],
    "scheds": ["FCFS"],
    "scale": "smoke",
}


def start_serve(store: Path) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve`` on an ephemeral port; returns (proc, port)."""
    env = {**os.environ, "PYTHONPATH": SRC}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--store", str(store)],
        env=env, cwd=str(REPO),
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if "listening on" in line:
            break
    match = re.search(r"http://[\d.]+:(\d+)", line)
    assert match, f"serve did not report its port: {line!r}"
    return proc, int(match.group(1))


def shard_files(store: Path) -> dict[str, tuple[int, int]]:
    return {
        p.name: (p.stat().st_mtime_ns, p.stat().st_size)
        for p in store.glob("*.json")
    }


def test_restart_drill_sigkill_resume_and_match_foreground(tmp_path):
    store = tmp_path / "shards"
    scenario_file = tmp_path / "drill.json"
    scenario_file.write_text(json.dumps(DRILL_DOC))

    # 1. serve, submit, and SIGKILL once at least one point is flushed
    proc, port = start_serve(store)
    try:
        client = ServiceClient(port=port)
        jid = client.submit(DRILL_DOC)["id"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if shard_files(store):
                break
            time.sleep(0.01)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    flushed = shard_files(store)

    # 2. restart over the same store: the job resumes from the manifest
    #    and completes without touching any flushed shard
    proc, port = start_serve(store)
    try:
        client = ServiceClient(port=port)
        final = client.wait(jid, interval=0.1, timeout=300)
        assert final["state"] == "done"
        assert final["done"] == len(DRILL_DOC["loads"])
        report = client.report(jid)
        client.shutdown()
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    after = shard_files(store)
    for name, stamp in flushed.items():
        assert after[name] == stamp, f"flushed shard {name} was recomputed"
    assert len(report["points"]) == len(DRILL_DOC["loads"])

    # 3. metric-identical to a foreground run of the same spec, and
    #    `repro diff` agrees (no regressed/diverged under the CI gate)
    served_path = tmp_path / "served.json"
    served_path.write_text(json.dumps(report))
    fg_path = tmp_path / "foreground.json"
    env = {
        **os.environ,
        "PYTHONPATH": SRC,
        "REPRO_CACHE_DIR": str(tmp_path / "fg-cache"),
    }
    fg = subprocess.run(
        [sys.executable, "-m", "repro", "scenario", str(scenario_file),
         "--out", str(fg_path)],
        env=env, cwd=str(REPO), capture_output=True, text=True, timeout=300,
    )
    assert fg.returncode == 0, fg.stderr
    fg_metrics = {
        p["key"]: p["metrics"]
        for p in json.loads(fg_path.read_text())["points"]
    }
    served_metrics = {p["key"]: p["metrics"] for p in report["points"]}
    assert served_metrics == fg_metrics
    assert main([
        "diff", str(fg_path), str(served_path), "--fail-on-regress",
    ]) == 0


# ------------------------------------------- diff subset degradation (CLI)
def _write_report(tmp_path, name, points):
    doc = {
        "schema": 3, "kind": "campaign", "name": name,
        "metric_names": ["mean_turnaround"], "points": points,
    }
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return p


def _point(key):
    return {
        "key": key, "label": key,
        "metrics": {"mean_turnaround": 1.0},
        "stats": {"mean_turnaround": {"mean": 1.0, "variance": 0.0, "n": 2}},
        "replications": 2,
    }


class TestDiffAgainstInProgressReports:
    def test_empty_side_warns_and_exits_zero(self, tmp_path, capsys):
        a = _write_report(tmp_path, "full.json", [_point("k1")])
        b = _write_report(tmp_path, "empty.json", [])
        assert main(["diff", str(a), str(b)]) == 0
        err = capsys.readouterr().err
        assert "no points yet" in err

    def test_empty_side_still_fails_the_ci_gate(self, tmp_path, capsys):
        a = _write_report(tmp_path, "full.json", [_point("k1")])
        b = _write_report(tmp_path, "empty.json", [])
        assert main(["diff", str(a), str(b), "--fail-on-regress"]) == 2

    def test_disjoint_nonempty_reports_still_exit_two(self, tmp_path, capsys):
        a = _write_report(tmp_path, "a.json", [_point("k1")])
        b = _write_report(tmp_path, "b.json", [_point("k2")])
        assert main(["diff", str(a), str(b)]) == 2

    def test_strict_subset_aligns_with_warning(self, tmp_path, capsys):
        a = _write_report(tmp_path, "full.json", [_point("k1"), _point("k2")])
        b = _write_report(tmp_path, "partial.json", [_point("k1")])
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr()
        assert "1 matched point" in out.out
