"""Tests for the trajectory analysis layer (repro.experiments.trajectory)
and the ``repro plot`` rendering (repro.experiments.plot)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.diff import (
    DiffError,
    diff_reports,
    load_report,
    parse_report,
)
from repro.experiments.plot import (
    Chart,
    ascii_chart,
    plot_report,
    report_charts,
)
from repro.experiments.trajectory import (
    diff_trajectories,
    trajectory_verdict,
)

GOLDEN = Path(__file__).resolve().parent / "golden"


def _traj(times, **series):
    return {"times": list(times), **{k: list(v) for k, v in series.items()}}


class TestDiffTrajectories:
    def test_identical_payloads(self):
        t = _traj([0.0, 1.0], utilization=[0.5, 0.6], queue_length=[1, 2])
        diffs = diff_trajectories(t, t)
        assert set(diffs) == {"utilization", "queue_length"}
        assert all(d.verdict == "identical" for d in diffs.values())
        assert trajectory_verdict(diffs) == "identical"

    def test_divergence_maps_to_regressed(self):
        a = _traj([0.0, 1.0], utilization=[0.5, 0.6])
        b = _traj([0.0, 1.0], utilization=[0.5, 0.8])
        diffs = diff_trajectories(a, b)
        assert diffs["utilization"].verdict == "diverged"
        assert trajectory_verdict(diffs) == "regressed"

    def test_band_maps_to_indistinguishable(self):
        a = _traj([0.0, 1.0], utilization=[0.5, 0.6])
        b = _traj([0.0, 1.0], utilization=[0.5, 0.62])
        diffs = diff_trajectories(a, b, atol=0.05)
        assert trajectory_verdict(diffs) == "indistinguishable"

    def test_only_shared_series_compared(self):
        a = _traj([0.0], utilization=[0.5], busy=[3])
        b = _traj([0.0], utilization=[0.5], completed=[1])
        assert set(diff_trajectories(a, b)) == {"utilization"}

    def test_empty_when_a_side_has_no_times(self):
        a = _traj([0.0], utilization=[0.5])
        assert diff_trajectories(a, {}) == {}
        assert diff_trajectories({}, a) == {}
        assert trajectory_verdict({}) == "identical"


class TestReportTrajectoryDiff:
    def _report(self, util_b=None):
        """A minimal schema-3 two-report pair sharing one point."""
        def doc(util):
            return {
                "schema": 3,
                "name": "t",
                "points": [{
                    "key": "k1",
                    "label": "p1",
                    "workload": "uniform",
                    "load": 0.02,
                    "alloc": "GABL",
                    "sched": "FCFS",
                    "metrics": {"utilization": 0.5},
                    "trajectory": _traj(
                        [0.0, 64.0], utilization=util,
                    ),
                }],
            }
        a = parse_report(doc([0.5, 0.6]), source="a")
        b = parse_report(doc(util_b or [0.5, 0.6]), source="b")
        return a, b

    def test_identical_reports_stay_identical(self):
        report = diff_reports(*self._report(), trajectories=True)
        assert report.verdict == "identical"
        assert report.to_dict()["trajectories"]["verdict_counts"] == {
            "identical": 1,
        }

    def test_series_divergence_is_a_regression(self):
        report = diff_reports(
            *self._report(util_b=[0.5, 0.9]), trajectories=True
        )
        assert report.verdict == "regressed"
        assert len(report.regressions) == 1
        point = report.to_dict()["points"][0]
        assert point["trajectory"]["utilization"]["verdict"] == "diverged"
        assert "trajectory utilization" in report.format()

    def test_without_flag_series_are_ignored(self):
        report = diff_reports(*self._report(util_b=[0.5, 0.9]))
        assert report.verdict == "identical"
        assert "trajectories" not in report.to_dict()

    def test_vacuous_trajectory_gate_is_fatal(self):
        a, b = self._report()
        stripped = parse_report(
            {
                "schema": 3,
                "name": "t",
                "points": [{
                    "key": "k1", "label": "p1",
                    "metrics": {"utilization": 0.5},
                }],
            },
            source="stripped",
        )
        with pytest.raises(DiffError, match="no matched point embeds"):
            diff_reports(a, stripped, trajectories=True)

    def test_one_sided_trajectories_warn_but_compare_the_rest(self):
        doc_a = {
            "schema": 3, "name": "t",
            "points": [
                {
                    "key": "k1", "label": "p1",
                    "metrics": {"utilization": 0.5},
                    "trajectory": _traj([0.0], utilization=[0.5]),
                },
                {
                    "key": "k2", "label": "p2",
                    "metrics": {"utilization": 0.4},
                },
            ],
        }
        doc_b = json.loads(json.dumps(doc_a))
        report = diff_reports(
            parse_report(doc_a, "a"), parse_report(doc_b, "b"),
            trajectories=True,
        )
        assert report.traj_skipped == ("p2",)
        assert any("lack embedded trajectories" in w for w in report.warnings())


class TestMalformedTrajectories:
    def test_truncated_series_is_a_parse_error_not_a_regression(
        self, tmp_path, capsys
    ):
        """A trajectory series shorter than its times axis must exit 2
        (malformed report), never 1 (fake regression) or a traceback."""
        from repro.cli import main

        golden = GOLDEN / "scenario_smoke.json"
        broken = tmp_path / "broken.json"
        doc = json.loads(golden.read_text())
        doc["points"][0]["trajectory"]["utilization"] = [0.5] * 5
        broken.write_text(json.dumps(doc))
        rc = main([
            "diff", str(golden), str(broken),
            "--trajectories", "--fail-on-regress",
        ])
        assert rc == 2
        assert "not a list parallel to 'times'" in capsys.readouterr().err

    def test_missing_times_with_series_is_a_parse_error(self):
        with pytest.raises(DiffError, match="no 'times' list"):
            parse_report({
                "schema": 3, "name": "t",
                "points": [{
                    "key": "k", "label": "p",
                    "metrics": {"utilization": 0.5},
                    "trajectory": {"utilization": [0.5]},
                }],
            }, source="t")

    def test_non_increasing_times_becomes_diff_error(self):
        def rep(times):
            return parse_report({
                "schema": 3, "name": "t",
                "points": [{
                    "key": "k", "label": "p",
                    "metrics": {"utilization": 0.5},
                    "trajectory": _traj(times, utilization=[0.5, 0.6]),
                }],
            }, source="t")

        with pytest.raises(DiffError, match="malformed trajectory"):
            diff_reports(
                rep([0.0, 1.0]), rep([1.0, 1.0]), trajectories=True
            )


class TestGoldenReportRoundTrip:
    def test_golden_scenario_parses_with_trajectories(self):
        report = load_report(GOLDEN / "scenario_smoke.json")
        assert report.has_trajectories()
        point = report.points[0]
        assert point.load == 0.02
        assert point.alloc == "GABL"
        assert len(point.trajectory["times"]) == len(
            point.trajectory["utilization"]
        )


class TestPlotRendering:
    def test_report_charts_defaults_on_golden(self):
        report = load_report(GOLDEN / "scenario_smoke.json")
        charts = report_charts(report)
        titles = [c.title for c in charts]
        assert "utilization vs. time" in titles
        assert "queue_length vs. time" in titles

    def test_explicit_metric_routing(self):
        report = load_report(GOLDEN / "scenario_smoke.json")
        charts = report_charts(report, metrics=["completed"])
        assert [c.title for c in charts] == ["completed vs. time"]

    def test_ascii_chart_render(self):
        chart = Chart(
            title="t", xlabel="x", ylabel="y",
            series={"s": ([0.0, 1.0, 2.0], [0.0, 1.0, 4.0])},
        )
        text = ascii_chart(chart, height=6, width=20)
        assert "t  [y: 0 .. 4]" in text
        assert "A = s" in text
        assert "x: x" in text

    def test_distinct_points_get_distinct_series(self):
        report = load_report(GOLDEN / "scenario_smoke.json")
        charts = report_charts(report, metrics=["utilization"])
        assert len(charts[0].series) == len(report.points)

    def test_compare_overlays_both_reports(self):
        report = load_report(GOLDEN / "scenario_smoke.json")
        charts = report_charts(report, compare=report)
        labels = list(charts[0].series)
        assert any(lbl.startswith("A:") for lbl in labels)
        assert any(lbl.startswith("B:") for lbl in labels)

    def test_plot_report_renders_text(self):
        report = load_report(GOLDEN / "scenario_smoke.json")
        text = plot_report(report)
        assert "utilization vs. time" in text

    def test_truncation_collisions_keep_series_distinct(self):
        """Labels differing only in their truncated middle must not
        merge into one curve or overwrite one another."""
        long_a = "real | scale:0.5 + uniform | thin:0.6"
        long_b = "real | scale:0.25 + uniform | thin:0.6"
        doc = {
            "schema": 3, "name": "t",
            "points": [
                {
                    "key": f"k{i}-{w}", "label": f"{w} load={ld:g} GABL(FCFS)",
                    "workload": w, "load": ld, "alloc": "GABL",
                    "sched": "FCFS",
                    "metrics": {"utilization": 0.5 + i / 10},
                }
                for w in (long_a, long_b)
                for i, ld in enumerate((0.01, 0.02))
            ],
        }
        report = parse_report(doc, source="t")
        charts = report_charts(report, metrics=["utilization"])
        assert len(charts) == 1
        series = charts[0].series
        assert len(series) == 2  # one curve per workload, none merged
        assert all(len(xs) == 2 for xs, _ in series.values())
        assert len(set(series)) == 2  # display labels stay distinct

    def test_png_not_written_for_empty_charts(self, tmp_path, capsys):
        report = parse_report(
            {
                "schema": 3, "name": "t",
                "points": [{
                    "key": "k", "label": "p",
                    "metrics": {"utilization": 0.5},
                }],
            },
            source="t",
        )
        png = tmp_path / "blank.png"
        text = plot_report(report, png=str(png))
        assert "nothing to plot" in text
        assert "PNG written" not in text
        assert not png.exists()
        assert "PNG not written" in capsys.readouterr().err

    def test_empty_report_notes_nothing_to_plot(self):
        report = parse_report(
            {
                "schema": 3, "name": "t",
                "points": [{
                    "key": "k", "label": "p",
                    "metrics": {"utilization": 0.5},
                }],
            },
            source="t",
        )
        assert "nothing to plot" in plot_report(report)
