"""Equivalence gates for the lossy-channel layer.

Two tiers, per the channel layer's contract
(:mod:`repro.network.channel`):

* **Same seed -> bit-exact.**  Channel fates come from a dedicated RNG
  stream that is a pure function of the replication seed, so the same
  lossy point must produce *identical* metrics whether it runs under the
  reference engine or the SoA lockstep engine's fallback path, and
  whether the campaign dispatches it serially, on a thread pool or on a
  process pool.
* **Disjoint seeds -> statistically identical.**  Across seed sets the
  runs are distinct samples of one distribution; the
  :mod:`tests.statgate` harness (Welch verdicts at ``alpha=0.01``) must
  find no directional difference between implementations -- and *must*
  flag genuinely different physics (higher loss) to prove the gate has
  teeth.
"""

import pytest

from repro.core.config import SimConfig
from repro.experiments.campaign import (
    Campaign,
    PointSpec,
    Scale,
    run_spec_batch,
    run_spec_replication,
)
from repro.experiments.store import ResultCache
from repro.stats.compare import MetricSummary
from tests.statgate import assert_statistically_identical, replicate

LOSSY = SimConfig(
    width=8, length=8, jobs=40, seed=3,
    channel="loss:0.1 + delay:exp:0.05", arq="selective-repeat",
)
EQ_SCALE = Scale("chan-eq", jobs=40, min_replications=2,
                 max_replications=2, trace_max_jobs=200)


def lossy_spec(config: SimConfig = LOSSY, **config_over) -> PointSpec:
    if config_over:
        config = config.with_(**config_over)
    return PointSpec(
        workload="uniform", load=0.02, alloc="GABL", sched="FCFS",
        scale=EQ_SCALE, config=config,
    )


class TestSameSeedBitExact:
    @pytest.mark.parametrize(
        "arq", ["stop-and-wait", "go-back-n", "selective-repeat"]
    )
    def test_reference_vs_soa_fallback(self, arq):
        """The SoA engine falls back to interleaved reference runs when a
        channel is active; the fallback must be bit-identical, per seed,
        to the plain reference engine under every ARQ protocol."""
        seeds = (3, 4, 5)
        ref = [
            run_spec_replication(lossy_spec(arq=arq), s) for s in seeds
        ]
        soa = run_spec_batch(lossy_spec(arq=arq, engine="soa"), seeds)
        assert ref == soa

    @pytest.mark.parametrize("executor_kind", ["thread", "process"])
    def test_executors_agree_with_serial(self, executor_kind, tmp_path):
        """One lossy campaign, three dispatch strategies, identical
        results: replication seeds and channel fates are pure functions
        of the spec, never of the worker that runs them."""
        def run(kind: str, jobs: int):
            campaign = Campaign(
                [lossy_spec(), lossy_spec(arq="go-back-n")]
            )
            results = campaign.run(
                jobs=jobs, executor_kind=kind,
                cache=ResultCache(tmp_path / kind),
            )
            return {spec.key(): dict(result)
                    for spec, result in results.items()}

        serial = run("serial", 1)
        other = run(executor_kind, 2)
        assert serial == other


class TestDisjointSeedStatistics:
    def test_reference_vs_soa_fallback_statistically(self):
        """Fed *disjoint* seed sets, the two engines are independent
        samples of the same lossy model: the statistical gate must pass
        at alpha=0.01 on every campaign metric."""
        a = replicate(
            lambda seed: run_spec_replication(lossy_spec(), seed),
            seeds=range(100, 108),
        )
        b = replicate(
            lambda seed: run_spec_replication(lossy_spec(engine="soa"), seed),
            seeds=range(200, 208),
        )
        assert_statistically_identical(a, b, alpha=0.01)

    def test_gate_flags_different_loss_rates(self):
        """The gate is not vacuous: raising the loss rate changes the
        physics (more retransmissions, longer turnarounds) and must be
        flagged as a directional difference."""
        a = replicate(
            lambda seed: run_spec_replication(
                lossy_spec(channel="loss:0.02", arq="selective-repeat"), seed
            ),
            seeds=range(100, 106),
        )
        b = replicate(
            lambda seed: run_spec_replication(
                lossy_spec(channel="loss:0.35", arq="stop-and-wait"), seed
            ),
            seeds=range(200, 206),
        )
        with pytest.raises(AssertionError, match="statistically distinct"):
            assert_statistically_identical(a, b, alpha=0.01)


class TestStatgateHarness:
    """Unit coverage of the gate itself on synthetic summaries."""

    @staticmethod
    def summary(values):
        return {"m": MetricSummary.from_values(values)}

    def test_identical_summaries_pass(self):
        a = self.summary([1.0, 1.1, 0.9, 1.05])
        assert_statistically_identical(a, dict(a))

    def test_noise_within_alpha_passes(self):
        a = self.summary([10.0, 10.2, 9.8, 10.1, 9.9])
        b = self.summary([10.1, 9.9, 10.05, 10.0, 9.95])
        comparisons = assert_statistically_identical(a, b, alpha=0.01)
        assert [c.metric for c in comparisons] == ["m"]

    def test_clear_shift_fails(self):
        a = self.summary([10.0, 10.2, 9.8, 10.1, 9.9])
        b = self.summary([20.0, 20.2, 19.8, 20.1, 19.9])
        with pytest.raises(AssertionError, match="statistically distinct"):
            assert_statistically_identical(a, b, alpha=0.01)

    def test_rel_tol_dead_band(self):
        a = self.summary([100.0, 100.0, 100.0])
        b = self.summary([100.5, 100.5, 100.5])
        with pytest.raises(AssertionError):
            assert_statistically_identical(a, b)
        assert_statistically_identical(a, b, rel_tol=0.01)

    def test_metric_mismatch_is_an_error(self):
        a = self.summary([1.0, 2.0])
        with pytest.raises(ValueError, match="absent"):
            assert_statistically_identical(a, {})

    def test_replicate_requires_stable_metric_set(self):
        outputs = iter([{"m": 1.0}, {"other": 2.0}])
        with pytest.raises(ValueError, match="reported metrics"):
            replicate(lambda seed: next(outputs), seeds=[0, 1])

    def test_replicate_needs_seeds(self):
        with pytest.raises(ValueError, match="at least one seed"):
            replicate(lambda seed: {"m": 0.0}, seeds=[])
