"""Property and unit tests for the workload transform pipeline.

Every transform must preserve the two stream invariants the simulator
and the bit-identical network backends rely on: arrival times are
non-decreasing and live on the dyadic ``TIME_GRID``.  The identity
pipeline must be bit-identical to the raw workload, and every seeded
construct (Thin, Jitter, Merge) must be a pure function of the
replication seed.
"""

from __future__ import annotations

from itertools import islice

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import TIME_GRID, SimConfig
from repro.workload import (
    Burstify,
    Jitter,
    LoadScale,
    Merge,
    ShapeClamp,
    SpecError,
    StochasticWorkload,
    Thin,
    TraceJob,
    TraceWorkload,
    build_pipeline,
    canonical_workload,
    parse_workload_spec,
    spec_is_deterministic,
    spec_to_str,
)

CFG = SimConfig(width=8, length=8, jobs=40, seed=7)
N = 60  # stream prefix length inspected per property


def uniform_wl(load: float = 0.02) -> StochasticWorkload:
    return StochasticWorkload(CFG, load=load, sides="uniform")


def trace_wl() -> TraceWorkload:
    trace = [
        TraceJob(arrival=float(i) * 3.7, size=(i % 16) + 1, runtime=5.0 + i)
        for i in range(40)
    ]
    return TraceWorkload(CFG, trace, load=0.05)


def take(wl, seed: int, n: int = N):
    return list(islice(wl.jobs(seed), n))


def assert_invariants(jobs) -> None:
    arrivals = [j.arrival_time for j in jobs]
    assert all(a <= b for a, b in zip(arrivals, arrivals[1:])), (
        "arrivals must be non-decreasing"
    )
    assert all((a * TIME_GRID).is_integer() for a in arrivals), (
        "arrivals must sit on the dyadic grid"
    )
    assert all(a >= 0 for a in arrivals)


# ------------------------------------------------------------ invariants
TRANSFORM_CASES = [
    pytest.param(lambda wl: LoadScale(wl, 0.37), id="scale-compress"),
    pytest.param(lambda wl: LoadScale(wl, 2.5), id="scale-stretch"),
    pytest.param(lambda wl: Thin(wl, 0.5), id="thin"),
    pytest.param(lambda wl: Jitter(wl, 5.0), id="jitter"),
    pytest.param(lambda wl: Burstify(wl, 16.0), id="burst"),
    pytest.param(lambda wl: ShapeClamp(wl, 3, 3), id="clamp"),
    pytest.param(lambda wl: Merge(wl, uniform_wl(0.01)), id="merge"),
]


@pytest.mark.parametrize("make", TRANSFORM_CASES)
@pytest.mark.parametrize("base", [uniform_wl, trace_wl])
def test_invariants_preserved(make, base):
    jobs = take(make(base()), seed=11)
    assert jobs, "transform emptied the stream prefix"
    assert_invariants(jobs)


@pytest.mark.parametrize("make", TRANSFORM_CASES)
def test_transform_deterministic_under_seed_reuse(make):
    wl1, wl2 = make(uniform_wl()), make(uniform_wl())
    assert take(wl1, seed=3) == take(wl2, seed=3)


@given(
    factor=st.floats(min_value=0.05, max_value=8.0,
                     allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_loadscale_property(factor, seed):
    jobs = take(LoadScale(uniform_wl(), factor), seed, n=30)
    assert_invariants(jobs)


@given(
    sigma=st.floats(min_value=0.0, max_value=50.0,
                    allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_jitter_property(sigma, seed):
    jobs = take(Jitter(uniform_wl(), sigma), seed, n=30)
    assert_invariants(jobs)


@given(
    interval=st.floats(min_value=0.5, max_value=200.0,
                       allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_burstify_property(interval, seed):
    jobs = take(Burstify(uniform_wl(), interval), seed, n=30)
    assert_invariants(jobs)


# -------------------------------------------------------------- identity
def test_identity_pipeline_is_bit_identical():
    """A bare-source pipeline IS the raw workload; scale:1 re-emits a
    bit-identical stream."""
    base = uniform_wl()
    assert build_pipeline("uniform", lambda n: base) is base
    ident = LoadScale(uniform_wl(), 1.0)
    assert take(ident, seed=9, n=120) == take(uniform_wl(), seed=9, n=120)


def test_identity_on_trace_is_bit_identical():
    ident = LoadScale(trace_wl(), 1.0)
    assert take(ident, seed=0) == take(trace_wl(), seed=0)


# ----------------------------------------------------------------- merge
def test_merge_deterministic_under_seed_reuse():
    def make():
        return Merge(uniform_wl(0.01), uniform_wl(0.03), trace_wl())

    for seed in (0, 5, 12345):
        assert take(make(), seed) == take(make(), seed)


def test_merge_decorrelates_streams_and_renumbers():
    merged = Merge(uniform_wl(0.01), uniform_wl(0.01))
    jobs = take(merged, seed=4)
    assert [j.job_id for j in jobs] == list(range(1, len(jobs) + 1))
    # the two streams must not be clones of each other: arrival gaps of
    # stream 1 and 2 interleave rather than duplicating pairwise
    arrivals = [j.arrival_time for j in jobs]
    assert len(set(arrivals)) > len(arrivals) // 2


def test_merge_orders_by_arrival():
    a = TraceWorkload(
        CFG, [TraceJob(arrival=float(t), size=2, runtime=1.0)
              for t in (0, 10, 20)], load=0.1)
    b = TraceWorkload(
        CFG, [TraceJob(arrival=float(t), size=3, runtime=1.0)
              for t in (5, 15, 25)], load=0.1)
    jobs = list(Merge(a, b).jobs(0))
    assert_invariants(jobs)
    assert len(jobs) == 6
    assert [j.width * j.length >= 1 for j in jobs]


def test_merge_requires_two():
    with pytest.raises(ValueError):
        Merge(uniform_wl())


# ------------------------------------------------------------ spec layer
def test_parse_roundtrip_canonical():
    spec = "real*0.5 | thin:0.8 + uniform"
    canon = canonical_workload(spec)
    assert canon == "real | scale:0.5 | thin:0.8 + uniform"
    assert canonical_workload(canon) == canon  # idempotent
    assert spec_to_str(parse_workload_spec(canon)) == canon


def test_bare_source_canonicalises_to_plain_name():
    assert canonical_workload("uniform") == "uniform"
    assert canonical_workload({"source": "real"}) == "real"


def test_dict_ast_equivalent_to_string():
    ast = {
        "merge": [
            {"op": "thin", "args": [0.8],
             "inner": {"op": "scale", "args": [0.5],
                       "inner": {"source": "real"}}},
            {"source": "uniform"},
        ]
    }
    assert canonical_workload(ast) == "real | scale:0.5 | thin:0.8 + uniform"


def test_spec_errors():
    for bad in (
        "bogus | thin:0.5",
        "uniform | nope:1",
        "uniform | thin",          # missing arg
        "uniform | thin:0.5:2",    # extra arg
        "uniform | thin:x",
        "",
        "real * zz",
    ):
        with pytest.raises(SpecError):
            parse_workload_spec(bad)
    with pytest.raises(SpecError):
        parse_workload_spec({"merge": [{"source": "real"}]})  # < 2 terms
    with pytest.raises(SpecError):
        # merge below a transform is outside the grammar
        parse_workload_spec(
            {"op": "thin", "args": [0.5],
             "inner": {"merge": [{"source": "real"}, {"source": "uniform"}]}}
        )


def test_spec_determinism_classification():
    assert spec_is_deterministic("real")
    assert spec_is_deterministic("real | scale:0.5 | burst:16 | clamp:4:4")
    assert spec_is_deterministic("real*0.5 + real")
    assert not spec_is_deterministic("real | thin:0.9")
    assert not spec_is_deterministic("real | jitter:2")
    assert not spec_is_deterministic("uniform")
    assert not spec_is_deterministic("real + uniform")


def test_built_pipeline_invariants():
    def source(name):
        return trace_wl() if name == "real" else uniform_wl()

    wl = build_pipeline(
        "real*0.5 | jitter:3 + uniform | thin:0.7 | burst:8", source
    )
    jobs = take(wl, seed=21)
    assert_invariants(jobs)
    assert [j.job_id for j in jobs] == list(range(1, len(jobs) + 1))
