"""Tests for the report differ (experiments/diff.py) and the ``repro
diff`` CLI target: alignment by point key, verdict classification,
grid-mismatch tolerance, schema validation and CI exit codes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.diff import (
    REPORT_SCHEMA,
    DiffError,
    diff_reports,
    load_report,
    parse_report,
)

METRIC_NAMES = ("mean_turnaround", "utilization")


def make_point(key, turnaround=100.0, utilization=0.5, n=1, variance=0.0):
    return {
        "key": key,
        "label": f"label-{key}",
        "metrics": {"mean_turnaround": turnaround, "utilization": utilization},
        "stats": {
            "mean_turnaround": {
                "mean": turnaround, "variance": variance, "n": n,
            },
            "utilization": {"mean": utilization, "variance": 0.0, "n": n},
        },
        "replications": n,
    }


def make_report(points, name="test") -> dict:
    return {
        "schema": REPORT_SCHEMA,
        "kind": "campaign",
        "name": name,
        "metric_names": list(METRIC_NAMES),
        "points": points,
    }


def write(tmp_path: Path, name: str, doc) -> Path:
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return p


class TestParseReport:
    def test_round_trip(self, tmp_path):
        path = write(tmp_path, "r.json", make_report([make_point("k1")]))
        rep = load_report(path)
        assert rep.name == "test"
        assert rep.points[0].key == "k1"
        assert rep.points[0].summary("mean_turnaround").mean == 100.0
        assert rep.metric_names() == METRIC_NAMES

    def test_missing_file(self, tmp_path):
        with pytest.raises(DiffError, match="cannot read"):
            load_report(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(DiffError, match="not valid JSON"):
            load_report(p)

    def test_old_schema_rejected_with_guidance(self):
        # a pre-1.3 scenario report: no "schema", no point keys
        old = {"scenario": {"name": "x"}, "points": [
            {"label": "a", "metrics": {"m": 1.0}},
        ]}
        with pytest.raises(DiffError, match="predates"):
            parse_report(old, source="old.json")

    def test_unsupported_schema_number(self):
        doc = make_report([make_point("k")])
        doc["schema"] = REPORT_SCHEMA + 1
        with pytest.raises(DiffError, match="unsupported report schema"):
            parse_report(doc)

    def test_malformed_points(self):
        for mutate in (
            lambda d: d.pop("points"),
            lambda d: d.__setitem__("points", "zap"),
            lambda d: d["points"][0].pop("key"),
            lambda d: d["points"][0].pop("metrics"),
            lambda d: d["points"][0].__setitem__(
                "stats", {"m": {"mean": "NaNsense"}}
            ),
        ):
            doc = make_report([make_point("k")])
            mutate(doc)
            with pytest.raises(DiffError):
                parse_report(doc)

    def test_top_level_must_be_object(self):
        with pytest.raises(DiffError, match="JSON object"):
            parse_report([1, 2, 3])

    def test_scenario_name_fallback(self):
        doc = make_report([make_point("k")])
        del doc["name"]
        doc["scenario"] = {"name": "from-scenario"}
        assert parse_report(doc).name == "from-scenario"

    def test_mean_only_point_degrades_to_deterministic(self):
        doc = make_report([{
            "key": "k", "label": "k", "metrics": {"mean_turnaround": 5.0},
        }])
        point = parse_report(doc).points[0]
        s = point.summary("mean_turnaround")
        assert (s.mean, s.variance, s.n) == (5.0, 0.0, 1)


class TestDiffReports:
    def test_identical_reports(self, tmp_path):
        a = parse_report(make_report([make_point("k1"), make_point("k2")]))
        b = parse_report(make_report([make_point("k1"), make_point("k2")]))
        report = diff_reports(a, b)
        assert report.verdict == "identical"
        assert len(report.matched) == 2
        assert report.verdict_counts() == {"identical": 4}
        assert not report.regressions and not report.warnings()

    def test_regression_detected_with_orientation(self):
        a = parse_report(make_report([make_point("k1")]))
        b = parse_report(make_report(
            [make_point("k1", turnaround=110.0, utilization=0.6)]
        ))
        report = diff_reports(a, b)
        point = report.matched[0]
        assert point.comparisons["mean_turnaround"].verdict == "regressed"
        assert point.comparisons["utilization"].verdict == "improved"
        assert point.verdict == "regressed"  # worst wins
        assert report.regressions

    def test_welch_indistinguishable_on_noisy_points(self):
        a = parse_report(make_report(
            [make_point("k1", turnaround=100.0, n=5, variance=400.0)]
        ))
        b = parse_report(make_report(
            [make_point("k1", turnaround=104.0, n=5, variance=400.0)]
        ))
        comp = diff_reports(a, b).matched[0].comparisons["mean_turnaround"]
        assert comp.verdict == "indistinguishable"
        assert comp.p_value is not None and comp.p_value > 0.05

    def test_grid_subset_superset(self):
        a = parse_report(make_report([make_point("k1"), make_point("k2")]))
        b = parse_report(make_report([make_point("k2"), make_point("k3")]))
        report = diff_reports(a, b)
        assert [p.key for p in report.matched] == ["k2"]
        assert [p.key for p in report.only_a] == ["k1"]
        assert [p.key for p in report.only_b] == ["k3"]
        assert len(report.warnings()) == 2

    def test_metric_filter(self):
        a = parse_report(make_report([make_point("k1")]))
        b = parse_report(make_report([make_point("k1", turnaround=200.0)]))
        report = diff_reports(a, b, metrics=["utilization"])
        assert report.metrics == ("utilization",)
        assert report.verdict == "identical"  # the regression is filtered out
        with pytest.raises(DiffError, match="not present in both"):
            diff_reports(a, b, metrics=["bogus"])

    def test_metric_filter_cannot_pass_vacuously(self):
        """A watched metric missing from one report is an error, never a
        silent 'identical' gate pass."""
        a = parse_report(make_report([make_point("k1")]))
        stripped = make_report([make_point("k1")])
        del stripped["points"][0]["metrics"]["mean_turnaround"]
        del stripped["points"][0]["stats"]["mean_turnaround"]
        b = parse_report(stripped)
        with pytest.raises(DiffError, match="not present in both"):
            diff_reports(a, b, metrics=["mean_turnaround"])
        # without the filter the shared metrics still compare fine
        assert diff_reports(a, b).metrics == ("utilization",)

    def test_metric_filter_missing_on_one_point_is_an_error(self):
        a = parse_report(make_report([make_point("k1"), make_point("k2")]))
        ragged = make_report([make_point("k1"), make_point("k2")])
        del ragged["points"][1]["metrics"]["mean_turnaround"]
        b = parse_report(ragged)
        with pytest.raises(DiffError, match="missing from point"):
            diff_reports(a, b, metrics=["mean_turnaround"])

    def test_bad_alpha_and_rel_tol_are_diff_errors(self):
        a = parse_report(make_report([make_point("k1")]))
        with pytest.raises(DiffError, match="alpha"):
            diff_reports(a, a, alpha=1.5)
        with pytest.raises(DiffError, match="rel_tol"):
            diff_reports(a, a, rel_tol=-0.1)

    def test_rel_tol_dead_band(self):
        a = parse_report(make_report([make_point("k1", turnaround=100.0)]))
        b = parse_report(make_report([make_point("k1", turnaround=100.2)]))
        assert diff_reports(a, b).verdict == "regressed"
        assert diff_reports(a, b, rel_tol=0.01).verdict == "indistinguishable"

    def test_to_dict_is_json_ready(self):
        a = parse_report(make_report([make_point("k1")]))
        b = parse_report(make_report([make_point("k1", turnaround=150.0)]))
        doc = json.loads(json.dumps(diff_reports(a, b).to_dict()))
        assert doc["verdict"] == "regressed"
        assert doc["points"][0]["metrics"]["mean_turnaround"]["verdict"] == (
            "regressed"
        )


class TestDiffCLI:
    def test_wrong_arity(self, tmp_path, capsys):
        assert main(["diff"]) == 2
        assert "exactly two" in capsys.readouterr().err
        p = write(tmp_path, "a.json", make_report([make_point("k")]))
        assert main(["diff", str(p)]) == 2
        assert main(["diff", str(p), str(p), str(p)]) == 2

    def test_cannot_combine_with_other_targets(self, tmp_path, capsys):
        p = write(tmp_path, "a.json", make_report([make_point("k")]))
        assert main(["fig9", "diff", str(p), str(p)]) == 2
        assert "combined" in capsys.readouterr().err

    def test_identical_exit_zero(self, tmp_path, capsys):
        p = write(tmp_path, "a.json", make_report([make_point("k")]))
        assert main(["diff", str(p), str(p), "--fail-on-regress"]) == 0
        assert "identical" in capsys.readouterr().out

    def test_fail_on_regress_exit_codes(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_report([make_point("k")]))
        b = write(
            tmp_path, "b.json",
            make_report([make_point("k", turnaround=120.0)]),
        )
        assert main(["diff", str(a), str(b)]) == 0
        assert main(["diff", str(a), str(b), "--fail-on-regress"]) == 1
        assert "FAIL" in capsys.readouterr().err
        # improvements never gate
        assert main(["diff", str(b), str(a), "--fail-on-regress"]) == 0

    def test_malformed_and_old_schema_exit_two(self, tmp_path, capsys):
        good = write(tmp_path, "good.json", make_report([make_point("k")]))
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        assert main(["diff", str(good), str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        old = write(tmp_path, "old.json", {"points": []})
        assert main(["diff", str(good), str(old)]) == 2
        assert "predates" in capsys.readouterr().err
        assert main(["diff", str(good), str(tmp_path / "gone.json")]) == 2

    def test_disjoint_grids_exit_two(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_report([make_point("k1")]))
        b = write(tmp_path, "b.json", make_report([make_point("k2")]))
        assert main(["diff", str(a), str(b)]) == 2
        assert "share no points" in capsys.readouterr().err

    def test_mismatched_grid_warning_but_exit_zero(self, tmp_path, capsys):
        a = write(tmp_path, "a.json",
                  make_report([make_point("k1"), make_point("k2")]))
        b = write(tmp_path, "b.json", make_report([make_point("k1")]))
        assert main(["diff", str(a), str(b), "--fail-on-regress"]) == 0
        err = capsys.readouterr().err
        assert "only in A" in err

    def test_metric_filter_and_alpha(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_report([make_point("k")]))
        b = write(tmp_path, "b.json",
                  make_report([make_point("k", turnaround=120.0)]))
        rc = main(["diff", str(a), str(b), "--metric", "utilization",
                   "--fail-on-regress"])
        assert rc == 0  # regression filtered out
        assert main(["diff", str(a), str(b), "--metric", "bogus"]) == 2
        assert "not present in both" in capsys.readouterr().err
        assert main(["diff", str(a), str(b), "--alpha", "0.01",
                     "--rel-tol", "0.5"]) == 0

    def test_bad_alpha_exits_two_not_one(self, tmp_path, capsys):
        """A typo'd flag must read as 'usage error' (2), never as a
        metric regression (1) -- even under --fail-on-regress."""
        a = write(tmp_path, "a.json", make_report([make_point("k")]))
        rc = main(["diff", str(a), str(a), "--alpha", "1.5",
                   "--fail-on-regress"])
        assert rc == 2
        assert "alpha" in capsys.readouterr().err
        rc = main(["diff", str(a), str(a), "--rel-tol", "-3"])
        assert rc == 2
        assert "rel_tol" in capsys.readouterr().err

    def test_out_writes_machine_readable_diff(self, tmp_path, capsys):
        a = write(tmp_path, "a.json", make_report([make_point("k")]))
        b = write(tmp_path, "b.json",
                  make_report([make_point("k", turnaround=120.0)]))
        out = tmp_path / "diff.json"
        assert main(["diff", str(a), str(b), "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == "diff"
        assert doc["verdict"] == "regressed"
        assert doc["verdict_counts"]["regressed"] == 1
