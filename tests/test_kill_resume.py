"""Kill-and-resume drill for the campaign engine: SIGKILL a running
campaign subprocess mid-flight, restart it against the same store, and
assert that no flushed point recomputes and the final metrics are
bit-identical to an uninterrupted run."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

#: enough smoke points (~0.1s each, serial) to leave a kill window
SWEEP_ARGS = [
    "sweep",
    "--workloads", "uniform",
    "--loads", "0.02,0.025,0.03,0.035,0.04,0.045,0.05,0.055",
    "--allocs", "GABL",
    "--scheds", "FCFS",
    "--scale", "smoke",
]


def run_sweep(cache_dir: Path, out: Path | None = None, **popen_kw):
    env = {
        **os.environ,
        "PYTHONPATH": SRC,
        "REPRO_CACHE_DIR": str(cache_dir),
    }
    cmd = [sys.executable, "-m", "repro", *SWEEP_ARGS]
    if out is not None:
        cmd += ["--out", str(out)]
    return subprocess.Popen(
        cmd, env=env, cwd=str(REPO),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        **popen_kw,
    )


def shard_files(cache_dir: Path) -> dict[str, tuple[int, int]]:
    """name -> (mtime_ns, size) for every flushed shard."""
    shards = cache_dir / "results.shards"
    if not shards.is_dir():
        return {}
    return {
        p.name: (p.stat().st_mtime_ns, p.stat().st_size)
        for p in shards.glob("*.json")
    }


def report_metrics(path: Path) -> dict[str, dict]:
    doc = json.loads(path.read_text())
    return {p["key"]: p["metrics"] for p in doc["points"]}


def test_sigkill_mid_campaign_then_resume(tmp_path):
    cache_dir = tmp_path / "cache"

    # 1. start the campaign and SIGKILL it once >= 1 point is flushed
    proc = run_sweep(cache_dir)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline and proc.poll() is None:
        if shard_files(cache_dir):
            break
        time.sleep(0.01)
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    flushed = shard_files(cache_dir)
    assert flushed, "no point was flushed before the kill window closed"

    # 2. resume against the same store: flushed shards must not be
    #    rewritten (byte-for-byte cache hits, not recomputes)
    out = tmp_path / "resumed.json"
    resumed = run_sweep(cache_dir, out=out)
    _, err = resumed.communicate(timeout=300)
    assert resumed.returncode == 0, err
    after = shard_files(cache_dir)
    for name, stamp in flushed.items():
        assert after[name] == stamp, f"flushed shard {name} was recomputed"
    if len(flushed) < 8:  # the kill landed mid-campaign
        assert "points already cached" in err

    # 3. the resumed report is bit-identical to an uninterrupted run
    clean_out = tmp_path / "clean.json"
    clean = run_sweep(tmp_path / "fresh-cache", out=clean_out)
    _, err = clean.communicate(timeout=300)
    assert clean.returncode == 0, err
    assert report_metrics(out) == report_metrics(clean_out)
