"""Auto-saturation acceptance: the detected knee must reproduce the
paper's pinned ``SATURATION_LOADS`` constants within one ladder step,
and the scan must land in ``--out`` reports."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.figures import SATURATION_LOADS, sweep_ceiling
from repro.experiments.trajectory import (
    run_saturation_figure,
    scan_saturation,
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.experiments.store import reset_global_cache

    reset_global_cache()
    yield
    reset_global_cache()


def test_sweep_ceiling_tops_each_workload_sweep():
    assert sweep_ceiling("uniform") == 0.013
    assert sweep_ceiling("exponential") == 0.02
    assert sweep_ceiling("real") == 0.06
    with pytest.raises(KeyError):
        sweep_ceiling("real | thin:0.5")


def test_fig9_knee_matches_paper_constant_within_one_step():
    """The tentpole acceptance: --auto-saturation reproduces the pinned
    uniform saturation load on the fig9 cell within one ladder step."""
    scan = scan_saturation("uniform", scale="smoke")
    assert scan.saturated
    knee = scan.knee
    # the ladder step at the knee bounds the allowed discrepancy
    step = scan.loads[scan.knee_index] - scan.loads[scan.knee_index - 1]
    assert abs(knee - SATURATION_LOADS["uniform"]) <= step
    # the scan stopped at the knee instead of exhausting the ladder
    assert scan.knee_index == len(scan.loads) - 1


def test_scan_records_ladder_evidence():
    scan = scan_saturation("uniform", scale="smoke")
    doc = scan.to_dict()
    assert doc["knee"] == scan.knee
    assert doc["loads"] == list(scan.loads)
    assert len(doc["utilization"]) == len(doc["loads"])
    assert "knee" in scan.format() or "saturation" in scan.format()


def test_run_saturation_figure_uses_detected_load():
    figure, scan, points = run_saturation_figure("fig9", scale="smoke")
    assert figure.loads == (scan.knee,)
    assert set(figure.series) == {
        "GABL(FCFS)", "Paging(0)(FCFS)", "MBS(FCFS)",
        "GABL(SSD)", "Paging(0)(SSD)", "MBS(SSD)",
    }
    assert len(points) == 6
    with pytest.raises(ValueError, match="load-sweep figure"):
        run_saturation_figure("fig3", scale="smoke")


def test_cli_auto_saturation_fig9_report(tmp_path, capsys):
    """CLI acceptance: the detected knee appears in the --out report."""
    out = tmp_path / "fig9.json"
    rc = main(["fig9", "--auto-saturation", "--out", str(out)])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "saturation scan" in stdout
    assert "detected saturation load" in stdout
    doc = json.loads(out.read_text())
    assert doc["schema"] == 3
    scan = doc["saturation"][0]
    assert scan["figure"] == "fig9"
    assert scan["saturated"] is True
    assert scan["knee"] == pytest.approx(
        SATURATION_LOADS["uniform"], rel=0.15
    )
    assert len(doc["points"]) == 6


def test_cli_auto_saturation_scenario_report(tmp_path, capsys):
    scenario = tmp_path / "s.json"
    scenario.write_text(json.dumps({
        "name": "sat",
        "workload": "uniform",
        "loads": [0.013],
        "config": {"seed": 11},
    }))
    out = tmp_path / "report.json"
    rc = main([
        "scenario", str(scenario), "--auto-saturation", "--out", str(out),
    ])
    assert rc == 0
    doc = json.loads(out.read_text())
    scan = doc["saturation"]
    assert scan["saturated"] is True
    # the knee load joined the simulated grid
    assert scan["knee"] in doc["scenario"]["loads"]
    assert any(p["load"] == scan["knee"] for p in doc["points"])
