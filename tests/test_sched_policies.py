"""Unit tests for the FCFS and SSD schedulers."""

import pytest

from repro.core.job import Job
from repro.sched import FCFSScheduler, SSDScheduler, make_scheduler


def job(jid: int, demand: float, arrival: float = 0.0) -> Job:
    return Job(
        job_id=jid,
        arrival_time=arrival,
        width=2,
        length=2,
        messages=max(1, int(demand)),
        service_demand=demand,
    )


class TestFCFS:
    def test_fifo_order(self):
        s = FCFSScheduler()
        jobs = [job(i, demand=10 - i) for i in range(3)]
        for j in jobs:
            s.add(j)
        assert s.peek() == [jobs[0]]
        s.remove(jobs[0])
        assert s.peek() == [jobs[1]]

    def test_peek_many(self):
        s = FCFSScheduler()
        jobs = [job(i, 1) for i in range(5)]
        for j in jobs:
            s.add(j)
        assert s.peek(3) == jobs[:3]
        assert s.peek(10) == jobs

    def test_remove_middle(self):
        s = FCFSScheduler(window=3)
        jobs = [job(i, 1) for i in range(3)]
        for j in jobs:
            s.add(j)
        s.remove(jobs[1])
        assert s.peek(5) == [jobs[0], jobs[2]]
        assert len(s) == 2

    def test_empty_peek(self):
        assert FCFSScheduler().peek() == []

    def test_reset(self):
        s = FCFSScheduler()
        s.add(job(1, 1))
        s.reset()
        assert len(s) == 0


class TestSSD:
    def test_shortest_first(self):
        """SSD considers the shortest service demand first (paper s4)."""
        s = SSDScheduler()
        big = job(1, demand=100)
        small = job(2, demand=5)
        mid = job(3, demand=50)
        for j in (big, small, mid):
            s.add(j)
        assert s.peek() == [small]
        s.remove(small)
        assert s.peek() == [mid]
        s.remove(mid)
        assert s.peek() == [big]

    def test_ties_broken_by_arrival(self):
        s = SSDScheduler()
        first = job(1, demand=7)
        second = job(2, demand=7)
        s.add(first)
        s.add(second)
        assert s.peek() == [first]

    def test_peek_many_sorted(self):
        s = SSDScheduler()
        jobs = [job(i, demand=d) for i, d in enumerate([9, 1, 5, 3, 7])]
        for j in jobs:
            s.add(j)
        heads = s.peek(3)
        assert [j.service_demand for j in heads] == [1, 3, 5]

    def test_remove_non_head(self):
        s = SSDScheduler(window=2)
        a, b, c = job(1, 1), job(2, 2), job(3, 3)
        for j in (a, b, c):
            s.add(j)
        s.remove(b)  # lazy removal path
        assert len(s) == 2
        assert s.peek(5) == [a, c]

    def test_interleaved_add_remove(self):
        s = SSDScheduler()
        a = job(1, 10)
        s.add(a)
        s.remove(a)
        assert len(s) == 0
        assert s.peek() == []
        b = job(2, 1)
        s.add(b)
        assert s.peek() == [b]

    def test_reset(self):
        s = SSDScheduler()
        s.add(job(1, 5))
        s.reset()
        assert len(s) == 0
        assert s.peek() == []


class TestResetReuse:
    """reset() must make an instance fully reusable across replications
    (the campaign engine and benchmarks drive one scheduler object
    through many runs)."""

    @pytest.mark.parametrize("name", ["FCFS", "SSD"])
    def test_state_fully_cleared(self, name):
        s = make_scheduler(name, window=2)
        for i in range(1, 6):
            s.add(job(i, demand=i))
        s.remove(s.peek(2)[1])  # leave a lazy tombstone in SSD's heap
        s.reset()
        assert len(s) == 0
        assert s.peek(10) == []
        assert s._seq == 0
        if name == "SSD":
            assert s._heap == []
            assert s._removed == set()
            assert s._size == 0
        else:
            assert len(s._queue) == 0

    @pytest.mark.parametrize("name", ["FCFS", "SSD"])
    def test_replication_reuse_matches_fresh_instance(self, name):
        """The same arrival sequence drains in the same order through a
        reset scheduler as through a brand-new one (queue state and
        tie-breaking _seq both rewound)."""

        def drive(s) -> list[int]:
            # fresh job objects each replication, as the simulator makes
            for i in range(1, 10):
                s.add(job(i, demand=(i * 13) % 7))
            order = []
            while len(s):
                head = s.peek()[0]
                s.remove(head)
                order.append(head.job_id)
            return order

        fresh = drive(make_scheduler(name))
        reused = make_scheduler(name)
        drive(reused)  # first replication
        reused.reset()
        assert drive(reused) == fresh


class TestFactoryAndWindow:
    def test_make(self):
        assert isinstance(make_scheduler("FCFS"), FCFSScheduler)
        assert isinstance(make_scheduler("SSD"), SSDScheduler)

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_scheduler("SJF")

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FCFSScheduler(window=0)

    def test_window_passthrough(self):
        s = make_scheduler("SSD", window=4)
        assert s.window == 4


class TestDemandKeys:
    def test_stochastic_default_demand_is_messages(self):
        j = Job(job_id=1, arrival_time=0, width=2, length=2, messages=7)
        assert j.service_demand == 7.0

    def test_trace_demand_overrides(self):
        j = Job(
            job_id=1, arrival_time=0, width=2, length=2,
            messages=7, service_demand=1234.5,
        )
        assert j.service_demand == 1234.5
