"""Thread-parallel campaign execution: equivalence and thread safety.

The contract under test (ISSUE 8): running a campaign on the in-process
thread executor produces metrics *bit-identical* to serial and process
execution across the strategy matrix, because replication seeds are a
pure function of the spec and the compiled lane driver confines all
mutable state to per-batch arrays while the GIL is released.  The
supporting shared state -- the columnar block cache, the lazy
compile-once kernel build, the trace memos and the coalesced result
store -- must survive concurrent first use from N threads.
"""

from __future__ import annotations

import os
import threading
from concurrent import futures

import numpy as np
import pytest

from repro.core import _soa_native
from repro.core.config import SimConfig
from repro.experiments.campaign import (
    Campaign,
    PointSpec,
    Scale,
    sdsc_trace,
)
from repro.experiments.store import ResultCache
from repro.network import _native as network_native
from repro.workload import _native as workload_native
from repro.workload.columnar import BlockCache
from repro.workload.stochastic import StochasticWorkload

TINY = SimConfig(width=8, length=8, jobs=30, seed=7)
TINY_SCALE = Scale("tiny", jobs=30, min_replications=2, max_replications=2,
                   trace_max_jobs=120)

ALLOCS = ("GABL", "Paging(0)", "MBS")
SCHEDS = ("FCFS", "SSD")


def _campaign(engine: str = "soa") -> Campaign:
    specs = [
        PointSpec(workload=w, load=ld, alloc=a, sched=s, scale=TINY_SCALE,
                  config=TINY.with_(engine=engine))
        for w in ("uniform", "exponential")
        for ld in (0.02, 0.08)
        for a in ALLOCS
        for s in SCHEDS
    ]
    return Campaign(specs)


def _keyed(results) -> dict:
    return {spec.key(): dict(v) for spec, v in results.items()}


class TestThreadEquivalence:
    """thread -j N == serial, bit for bit, on every metric."""

    @pytest.mark.parametrize("engine", ("soa", "reference"))
    def test_thread_matches_serial_strategy_matrix(self, tmp_path, engine):
        campaign = _campaign(engine)
        serial = campaign.run(
            jobs=1, cache=ResultCache(tmp_path / f"serial-{engine}")
        )
        threaded = campaign.run(
            jobs=4, cache=ResultCache(tmp_path / f"thread-{engine}"),
            executor_kind="thread",
        )
        assert _keyed(serial) == _keyed(threaded)

    def test_thread_matches_process(self, tmp_path):
        campaign = Campaign([
            PointSpec(workload="uniform", load=0.05, alloc=a, sched="FCFS",
                      scale=TINY_SCALE, config=TINY.with_(engine="soa"))
            for a in ALLOCS
        ])
        threaded = campaign.run(
            jobs=2, cache=ResultCache(tmp_path / "thread"),
            executor_kind="thread",
        )
        proc = campaign.run(
            jobs=2, cache=ResultCache(tmp_path / "process"),
            executor_kind="process",
        )
        assert _keyed(threaded) == _keyed(proc)

    def test_thread_matches_serial_trace_replay(self, tmp_path):
        campaign = Campaign([
            PointSpec(workload="real", load=ld, alloc="GABL", sched=s,
                      scale=TINY_SCALE, config=TINY.with_(engine="soa"))
            for ld in (0.02, 0.05) for s in SCHEDS
        ])
        serial = campaign.run(jobs=1, cache=ResultCache(tmp_path / "serial"))
        threaded = campaign.run(
            jobs=4, cache=ResultCache(tmp_path / "thread"),
            executor_kind="thread",
        )
        assert _keyed(serial) == _keyed(threaded)

    def test_thread_matches_serial_without_native(self, tmp_path, monkeypatch):
        # REPRO_NATIVE=0: the thread executor must still be exact over
        # the interleaved-reference fallback (GIL-bound, but correct)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        _soa_native.reset_kernel_cache()
        network_native.reset_kernel_cache()
        workload_native.reset_kernel_cache()
        try:
            campaign = Campaign([
                PointSpec(workload="uniform", load=0.05, alloc=a, sched="SSD",
                          scale=TINY_SCALE, config=TINY.with_(engine="soa"))
                for a in ALLOCS
            ])
            serial = campaign.run(
                jobs=1, cache=ResultCache(tmp_path / "serial")
            )
            threaded = campaign.run(
                jobs=4, cache=ResultCache(tmp_path / "thread"),
                executor_kind="thread",
            )
            assert _keyed(serial) == _keyed(threaded)
        finally:
            monkeypatch.delenv("REPRO_NATIVE")
            _soa_native.reset_kernel_cache()
            network_native.reset_kernel_cache()
            workload_native.reset_kernel_cache()

    def test_auto_kind_falls_back_for_reference_engine(self, tmp_path):
        # auto-selection (executor_kind=None) on a reference-engine
        # campaign must not silently serialise behind the GIL; whatever
        # backend it picks, the results stay exact
        campaign = Campaign([
            PointSpec(workload="uniform", load=0.05, alloc="GABL", sched=s,
                      scale=TINY_SCALE, config=TINY.with_(engine="reference"))
            for s in SCHEDS
        ])
        serial = campaign.run(jobs=1, cache=ResultCache(tmp_path / "serial"))
        auto = campaign.run(jobs=2, cache=ResultCache(tmp_path / "auto"))
        assert _keyed(serial) == _keyed(auto)


class TestSharedStateThreadSafety:
    def test_block_cache_concurrent_first_use(self):
        # N threads race to open the SAME stream on a fresh cache: every
        # thread must observe the identical block sequence, and the
        # cache must hold exactly one stream at the end
        cache = BlockCache()
        workload = StochasticWorkload(TINY, load=0.05, sides="uniform")
        key = (workload.block_fingerprint(), 123)

        def pull() -> list:
            stream = cache.stream(workload, 123, key, count=64)
            out = []
            i = 0
            while True:
                blk = stream.block(i)
                if blk is None or i >= 4:
                    break
                out.append((blk.job_id[0], blk.arrival[-1]))
                i += 1
            return out

        barrier = threading.Barrier(8)

        def worker() -> list:
            barrier.wait()
            return pull()

        with futures.ThreadPoolExecutor(8) as pool:
            got = [f.result() for f in [pool.submit(worker) for _ in range(8)]]
        assert all(g == got[0] for g in got)
        assert len(cache._streams) == 1

    def test_trace_memo_concurrent_first_use(self):
        # the sdsc trace memo and the replay column memo must come up
        # once under concurrent first use and agree across threads
        from repro.workload import trace as trace_mod

        trace_mod._COLUMN_MEMO.clear()
        jobs = sdsc_trace(120)
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            wl = trace_mod.TraceWorkload(TINY, jobs, load=0.05, max_jobs=120)
            return wl._columns()

        with futures.ThreadPoolExecutor(6) as pool:
            blocks = [
                f.result() for f in [pool.submit(worker) for _ in range(6)]
            ]
        assert all(b is blocks[0] for b in blocks)
        assert len(trace_mod._COLUMN_MEMO) == 1

    @pytest.mark.parametrize("module", (
        network_native, _soa_native, workload_native,
    ))
    def test_compile_once_under_concurrent_first_use(self, module, monkeypatch):
        # hammer the lazy kernel load from N threads after a cache
        # reset: the double-checked KERNEL_LOCK must admit exactly one
        # build, and every thread sees the same kernel object
        builds = []
        barrier = threading.Barrier(8)
        real_build = module._build

        def counting_build():
            builds.append(threading.get_ident())
            return real_build()

        monkeypatch.setattr(module, "_build", counting_build)
        module.reset_kernel_cache()
        try:
            def worker():
                barrier.wait()
                return module.load_kernel()

            with futures.ThreadPoolExecutor(8) as pool:
                kernels = [
                    f.result()
                    for f in [pool.submit(worker) for _ in range(8)]
                ]
            if os.environ.get("REPRO_NATIVE") == "0":
                # disabled: the loader memoises None without building
                assert len(builds) == 0
                assert all(k is None for k in kernels)
            else:
                assert len(builds) == 1
                assert all(k is kernels[0] for k in kernels)
        finally:
            monkeypatch.undo()
            module.reset_kernel_cache()


class TestNativeDrawHelper:
    def test_uniform_blocks_match_scalar_stream(self):
        # the C draw loop consumes numpy's own bit stream: blocks()
        # must equal the definitional jobs() iterator draw for draw
        workload = StochasticWorkload(TINY, load=0.05, sides="uniform")
        from itertools import islice

        scalar = list(islice(workload.jobs(99), 200))
        cols = []
        for blk in workload.blocks(99, count=64):
            cols.extend(blk.iter_jobs())
            if len(cols) >= 200:
                break
        for a, b in zip(scalar, cols):
            assert (a.arrival_time, a.width, a.length, a.messages) == \
                (b.arrival_time, b.width, b.length, b.messages)

    def test_fallback_matches_native(self, monkeypatch):
        workload = StochasticWorkload(TINY, load=0.05, sides="uniform")
        native_blk = next(workload.blocks(5, count=128))
        monkeypatch.setenv("REPRO_NATIVE", "0")
        workload_native.reset_kernel_cache()
        try:
            fallback_blk = next(workload.blocks(5, count=128))
        finally:
            monkeypatch.delenv("REPRO_NATIVE")
            workload_native.reset_kernel_cache()
        np.testing.assert_array_equal(native_blk.arrival, fallback_blk.arrival)
        np.testing.assert_array_equal(native_blk.width, fallback_blk.width)
        np.testing.assert_array_equal(native_blk.length, fallback_blk.length)
        np.testing.assert_array_equal(
            native_blk.messages, fallback_blk.messages
        )


class TestCoalescedWrites:
    def test_put_many_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        items = [(f"k{i}", {"means": {"x": float(i)}}) for i in range(5)]
        cache.put_many(items)
        for k, v in items:
            assert cache.get(k) == v
        # a fresh instance reads the same shards back from disk
        fresh = ResultCache(tmp_path / "c")
        for k, v in items:
            assert fresh.get(k) == v

    def test_put_many_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        cache = ResultCache(tmp_path / "c")
        cache.put_many([("k", {"v": 1})])
        assert cache.get("k") == {"v": 1}
        assert not (tmp_path / "c").exists()
