"""Unit tests for the Paging allocation strategy."""

import pytest

from repro.alloc.paging import PagingAllocator
from repro.mesh.geometry import Coord
from repro.mesh.grid import submeshes_disjoint


class TestConstruction:
    def test_paging0(self):
        a = PagingAllocator(16, 22, size_index=0)
        assert a.name == "Paging(0)"
        assert a.page_side == 1
        assert a.free_pages == 352
        assert a.complete

    def test_paging2_pages_are_4x4(self):
        """Paper: 'Paging(2) means that the pages are 4x4 sub-mesh'."""
        a = PagingAllocator(16, 16, size_index=2)
        assert a.page_side == 4
        assert a.free_pages == 16
        assert not a.complete  # internal fragmentation possible

    def test_divisible_mesh_accepted(self):
        a = PagingAllocator(16, 22, size_index=1)  # 2x2 pages fit 16x22
        assert a.free_pages == 8 * 11

    def test_indivisible_mesh_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            PagingAllocator(15, 22, size_index=1)
        with pytest.raises(ValueError, match="not divisible"):
            PagingAllocator(16, 22, size_index=2)  # 22 % 4 != 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            PagingAllocator(8, 8, size_index=-1)


class TestPagesNeeded:
    def test_paging0_exact(self):
        a = PagingAllocator(8, 8, size_index=0)
        assert a.pages_needed(3, 5) == 15

    def test_paging1_rounds_up(self):
        a = PagingAllocator(8, 8, size_index=1)
        assert a.pages_needed(3, 5) == 2 * 3  # ceil(3/2) * ceil(5/2)
        assert a.pages_needed(2, 2) == 1
        assert a.pages_needed(1, 1) == 1


class TestAllocate:
    def test_first_pages_row_major(self):
        a = PagingAllocator(8, 8, size_index=0)
        alloc = a.allocate(1, 3, 1)
        assert alloc is not None
        assert [c for c in alloc.coords] == [Coord(0, 0), Coord(1, 0), Coord(2, 0)]
        # a row run merges into one sub-mesh
        assert alloc.contiguous

    def test_exact_size(self):
        a = PagingAllocator(8, 8, size_index=0)
        alloc = a.allocate(1, 4, 5)
        assert alloc is not None
        assert alloc.size == 20
        assert a.free_count == 64 - 20

    def test_skips_busy_pages(self):
        a = PagingAllocator(8, 8, size_index=0)
        first = a.allocate(1, 3, 1)
        second = a.allocate(2, 2, 1)
        assert second is not None
        assert second.coords[0] == Coord(3, 0)
        assert submeshes_disjoint(list(first.submeshes) + list(second.submeshes))

    def test_complete_succeeds_iff_enough_free(self):
        a = PagingAllocator(8, 8, size_index=0)
        assert a.allocate(1, 8, 7) is not None  # 56 procs
        assert a.allocate(2, 3, 3) is None  # 9 > 8 free
        assert a.allocate(3, 8, 1) is not None  # exactly 8 free

    def test_release_restores(self):
        a = PagingAllocator(8, 8, size_index=0)
        alloc = a.allocate(1, 5, 5)
        a.release(alloc)
        assert a.free_count == 64
        assert a.free_pages == 64
        a.grid.validate()

    def test_internal_fragmentation_paging1(self):
        """Paging(1): a 1x1 request consumes a whole 2x2 page."""
        a = PagingAllocator(8, 8, size_index=1)
        alloc = a.allocate(1, 1, 1)
        assert alloc is not None
        assert alloc.size == 4  # whole page granted
        assert a.free_count == 60

    def test_paging1_can_fail_with_free_processors(self):
        """Internal fragmentation: free >= request but no free page."""
        a = PagingAllocator(4, 4, size_index=1)
        # take all 4 pages with 1x1 requests (each burns a 2x2 page)
        for j in range(4):
            assert a.allocate(j, 1, 1) is not None
        assert a.free_count == 0  # all pages held
        assert a.allocate(9, 1, 1) is None

    def test_snake_indexing_used(self):
        a = PagingAllocator(4, 4, size_index=0, indexing="snake")
        a.allocate(1, 4, 1)  # row 0
        nxt = a.allocate(2, 1, 1)
        assert nxt.coords[0] == Coord(3, 1)  # snake turns around

    def test_stats(self):
        a = PagingAllocator(8, 8, size_index=0)
        a.allocate(1, 2, 2)
        a.allocate(2, 8, 8)  # fails
        assert a.stats.attempts == 2
        assert a.stats.successes == 1
        assert a.stats.failures == 1


class TestReset:
    def test_reset_full_cycle(self):
        a = PagingAllocator(8, 8, size_index=0)
        a.allocate(1, 5, 5)
        a.reset()
        assert a.free_count == 64
        assert a.free_pages == 64
        assert a.allocate(2, 8, 8) is not None


class TestInvariants:
    def test_no_overlap_many_jobs(self):
        a = PagingAllocator(8, 8, size_index=0)
        allocs = []
        for j, (w, l) in enumerate([(3, 3), (2, 5), (4, 2), (1, 7), (5, 1)]):
            alloc = a.allocate(j, w, l)
            assert alloc is not None
            allocs.append(alloc)
        all_subs = [s for al in allocs for s in al.submeshes]
        assert submeshes_disjoint(all_subs)
        total = sum(al.size for al in allocs)
        assert a.free_count == 64 - total
        a.grid.validate()
