"""Unit tests for mesh topology and XY routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.geometry import Coord
from repro.network.routing import route_hops, xy_route, xy_route_nodes
from repro.network.topology import Direction, MeshTopology


@pytest.fixture
def topo() -> MeshTopology:
    return MeshTopology(4, 4)


class TestTopology:
    def test_counts(self, topo):
        assert topo.node_count == 16
        assert topo.channel_count == 96  # 6 per node

    def test_node_roundtrip(self, topo):
        for nid in range(topo.node_count):
            assert topo.node_id(topo.coord_of(nid)) == nid

    def test_channel_roundtrip(self, topo):
        for nid in (0, 7, 15):
            for d in Direction:
                ch = topo.channel(nid, d)
                assert topo.channel_owner(ch) == (nid, d)

    def test_link_exists_boundaries(self, topo):
        origin = topo.node_id(Coord(0, 0))
        assert topo.link_exists(origin, Direction.EAST)
        assert topo.link_exists(origin, Direction.NORTH)
        assert not topo.link_exists(origin, Direction.WEST)
        assert not topo.link_exists(origin, Direction.SOUTH)
        corner = topo.node_id(Coord(3, 3))
        assert not topo.link_exists(corner, Direction.EAST)
        assert not topo.link_exists(corner, Direction.NORTH)

    def test_neighbour(self, topo):
        n = topo.node_id(Coord(1, 1))
        assert topo.neighbour(n, Direction.EAST) == topo.node_id(Coord(2, 1))
        assert topo.neighbour(n, Direction.NORTH) == topo.node_id(Coord(1, 2))
        assert topo.neighbour(n, Direction.WEST) == topo.node_id(Coord(0, 1))
        assert topo.neighbour(n, Direction.SOUTH) == topo.node_id(Coord(1, 0))

    def test_neighbour_off_mesh_raises(self, topo):
        with pytest.raises(ValueError):
            topo.neighbour(topo.node_id(Coord(0, 0)), Direction.WEST)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 4)


class TestXYRoute:
    def test_structure(self, topo):
        path = xy_route(topo, Coord(0, 0), Coord(2, 1))
        # injection + 2 east + 1 north + ejection
        assert len(path) == 5
        src_id = topo.node_id(Coord(0, 0))
        dst_id = topo.node_id(Coord(2, 1))
        assert path[0] == topo.channel(src_id, Direction.INJ)
        assert path[-1] == topo.channel(dst_id, Direction.EJ)

    def test_x_before_y(self, topo):
        path = xy_route(topo, Coord(0, 0), Coord(2, 2))
        dirs = [topo.channel_owner(c)[1] for c in path[1:-1]]
        assert dirs == [
            Direction.EAST, Direction.EAST, Direction.NORTH, Direction.NORTH
        ]

    def test_westward_and_southward(self, topo):
        path = xy_route(topo, Coord(3, 3), Coord(1, 1))
        dirs = [topo.channel_owner(c)[1] for c in path[1:-1]]
        assert dirs == [
            Direction.WEST, Direction.WEST, Direction.SOUTH, Direction.SOUTH
        ]

    def test_adjacent(self, topo):
        path = xy_route(topo, Coord(1, 1), Coord(2, 1))
        assert len(path) == 3

    def test_self_route_rejected(self, topo):
        with pytest.raises(ValueError):
            xy_route(topo, Coord(1, 1), Coord(1, 1))

    @settings(max_examples=80, deadline=None)
    @given(
        sx=st.integers(0, 15), sy=st.integers(0, 21),
        dx=st.integers(0, 15), dy=st.integers(0, 21),
    )
    def test_length_is_manhattan_plus_two(self, sx, sy, dx, dy):
        src, dst = Coord(sx, sy), Coord(dx, dy)
        if src == dst:
            return
        topo = MeshTopology(16, 22)
        path = xy_route(topo, src, dst)
        assert len(path) == src.manhattan(dst) + 2

    @settings(max_examples=50, deadline=None)
    @given(
        sx=st.integers(0, 7), sy=st.integers(0, 7),
        dx=st.integers(0, 7), dy=st.integers(0, 7),
    )
    def test_channels_unique(self, sx, sy, dx, dy):
        """Minimal routes never revisit a channel (deadlock-freedom basis)."""
        src, dst = Coord(sx, sy), Coord(dx, dy)
        if src == dst:
            return
        topo = MeshTopology(8, 8)
        path = xy_route(topo, src, dst)
        assert len(set(path)) == len(path)


class TestRouteNodes:
    def test_node_walk(self):
        topo = MeshTopology(4, 4)
        nodes = xy_route_nodes(topo, Coord(0, 0), Coord(2, 1))
        assert nodes == [
            Coord(0, 0), Coord(1, 0), Coord(2, 0), Coord(2, 1)
        ]

    def test_hops(self):
        assert route_hops(Coord(0, 0), Coord(3, 4)) == 7


class TestRouteArrays:
    """The vectorised route generator must match xy_route hop-for-hop."""

    @pytest.mark.parametrize("wrap", [False, True])
    @pytest.mark.parametrize("dims", [(8, 8), (16, 22), (1, 9), (5, 1)])
    def test_all_pairs_match_scalar_routes(self, wrap, dims):
        import numpy as np

        from repro.network.routing import xy_route_arrays

        topo = MeshTopology(*dims, wrap=wrap)
        w = topo.width
        pairs = [
            (s, d)
            for s in range(topo.node_count)
            for d in range(topo.node_count)
            if s != d
        ]
        src = np.array([s for s, _ in pairs])
        dst = np.array([d for _, d in pairs])
        chan, off = xy_route_arrays(topo, src, dst)
        for p, (s, d) in enumerate(pairs):
            expected = xy_route(
                topo, Coord(s % w, s // w), Coord(d % w, d // w)
            )
            got = chan[off[p]:off[p + 1]].tolist()
            assert got == expected, (s, d, wrap, dims)

    def test_empty_input(self):
        import numpy as np

        from repro.network.routing import xy_route_arrays

        chan, off = xy_route_arrays(MeshTopology(4, 4), np.array([]), np.array([]))
        assert len(chan) == 0 and off.tolist() == [0]
