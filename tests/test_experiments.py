"""Tests for the experiment registry, runner, caching and reporting."""

import pytest

from repro.core.config import SimConfig
from repro.experiments.figures import COMBOS, FIGURES, combo_label
from repro.experiments.report import (
    ascii_plot,
    check_ranking,
    endpoint_ratio,
    format_figure,
    series_leq,
)
from repro.experiments.runner import (
    METRICS,
    ResultCache,
    Scale,
    SCALES,
    FigureResult,
    run_figure,
    run_point,
    sdsc_trace,
)
from repro.workload.trace import TraceJob

TINY = SimConfig(width=8, length=8, jobs=15, seed=11)


class TestRegistry:
    def test_all_fifteen_figures(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(2, 17)}

    def test_six_combos_in_paper_order(self):
        assert len(COMBOS) == 6
        assert COMBOS[0] == ("GABL", "FCFS")
        assert combo_label("GABL", "SSD") == "GABL(SSD)"

    def test_figure_metric_names_valid(self):
        valid = set(METRICS)
        for spec in FIGURES.values():
            assert spec.metric in valid

    def test_workload_coverage(self):
        workloads = {spec.workload for spec in FIGURES.values()}
        assert workloads == {"real", "uniform", "exponential"}

    def test_smoke_loads_subset_span(self):
        for spec in FIGURES.values():
            assert len(spec.smoke_loads) <= len(spec.loads)
            assert spec.loads_for("smoke") == spec.smoke_loads
            assert spec.loads_for("paper") == spec.loads

    def test_saturation_figures(self):
        for fig in ("fig8", "fig9", "fig10"):
            assert FIGURES[fig].saturation
            assert len(FIGURES[fig].loads) == 1


class TestScales:
    def test_presets(self):
        assert set(SCALES) == {"smoke", "quick", "paper"}
        assert SCALES["paper"].jobs == 1000
        assert SCALES["paper"].max_replications == 20

    def test_unknown(self):
        with pytest.raises(KeyError):
            Scale.by_name("gigantic")


class TestRunPoint:
    def test_returns_all_metrics(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        out = run_point(
            "uniform", 0.01, "GABL", "FCFS",
            scale="smoke", config=TINY, cache=cache,
        )
        assert set(out) == set(METRICS)
        assert out["mean_turnaround"] > 0

    def test_cache_hit_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        a = run_point("uniform", 0.01, "MBS", "SSD",
                      scale="smoke", config=TINY, cache=cache)
        b = run_point("uniform", 0.01, "MBS", "SSD",
                      scale="smoke", config=TINY, cache=cache)
        assert a == b

    def test_cache_persists_to_disk(self, tmp_path):
        path = tmp_path / "c.json"
        c1 = ResultCache(path)
        a = run_point("uniform", 0.01, "GABL", "FCFS",
                      scale="smoke", config=TINY, cache=c1)
        c2 = ResultCache(path)  # fresh instance reads the file
        b = run_point("uniform", 0.01, "GABL", "FCFS",
                      scale="smoke", config=TINY, cache=c2)
        assert a == b

    def test_distinct_keys_not_conflated(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        a = run_point("uniform", 0.01, "GABL", "FCFS",
                      scale="smoke", config=TINY, cache=cache)
        b = run_point("uniform", 0.02, "GABL", "FCFS",
                      scale="smoke", config=TINY, cache=cache)
        assert a != b

    def test_custom_trace(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        trace = [
            TraceJob(arrival=float(i * 5), size=(i % 4) + 1, runtime=30.0)
            for i in range(40)
        ]
        out = run_point("real", 0.05, "GABL", "FCFS",
                        scale="smoke", config=TINY, cache=cache, trace=trace)
        assert out["mean_service"] > 0


class TestRunFigure:
    def test_figure_shape(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        result = run_figure("fig3", scale="smoke", config=TINY, cache=cache)
        assert result.spec.fig_id == "fig3"
        assert len(result.loads) == 2
        assert set(result.series) == {combo_label(a, s) for a, s in COMBOS}
        for series in result.series.values():
            assert len(series) == len(result.loads)
            assert all(v > 0 for v in series)

    def test_series_for(self, tmp_path):
        cache = ResultCache(tmp_path / "c.json")
        result = run_figure("fig9", scale="smoke", config=TINY, cache=cache)
        assert result.series_for("GABL", "FCFS") == result.series["GABL(FCFS)"]


class TestSDSCTraceCache:
    def test_prefix_memoised(self):
        t1 = sdsc_trace(max_jobs=50)
        t2 = sdsc_trace(max_jobs=50)
        assert t1 is t2
        assert len(t1) == 50

    def test_full_consistent_with_prefix(self):
        full = sdsc_trace()
        prefix = sdsc_trace(max_jobs=10)
        assert full[:10] == list(prefix)


def _fake_result() -> FigureResult:
    spec = FIGURES["fig3"]
    return FigureResult(
        spec=spec,
        loads=(0.01, 0.02),
        series={
            "GABL(FCFS)": (10.0, 20.0),
            "Paging(0)(FCFS)": (15.0, 30.0),
            "MBS(FCFS)": (12.0, 25.0),
        },
    )


class TestReport:
    def test_format_figure_contains_everything(self):
        text = format_figure(_fake_result())
        assert "FIG3" in text
        assert "GABL(FCFS)" in text
        assert "0.01" in text and "0.02" in text
        assert "20.0" in text

    def test_series_leq(self):
        assert series_leq((1, 2), (3, 4))
        assert not series_leq((5, 5), (1, 1))
        assert series_leq((10, 10), (10, 10))  # slack covers equality

    def test_endpoint_ratio(self):
        assert endpoint_ratio((1, 2), (1, 4)) == pytest.approx(0.5)
        assert endpoint_ratio((1, 2), (1, 0)) == float("inf")

    def test_check_ranking_passes(self):
        problems = check_ranking(
            _fake_result(), ["GABL(FCFS)", "MBS(FCFS)", "Paging(0)(FCFS)"]
        )
        assert problems == []

    def test_check_ranking_flags_violation(self):
        problems = check_ranking(
            _fake_result(), ["Paging(0)(FCFS)", "GABL(FCFS)"]
        )
        assert len(problems) == 1
        assert "expected" in problems[0]

    def test_ascii_plot_renders(self):
        art = ascii_plot(_fake_result())
        assert "A = GABL(FCFS)" in art
        assert "A" in art.split("\n")[1] or "A" in art
