"""The README/quickstart public API must keep working."""

import repro
from repro import (
    PAPER_CONFIG,
    SimConfig,
    Simulator,
    make_allocator,
    make_scheduler,
)
from repro.workload import StochasticWorkload


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quickstart_snippet():
    """The exact flow shown in the package docstring."""
    cfg = SimConfig(jobs=20, seed=42)
    sim = Simulator(
        cfg,
        make_allocator("GABL", cfg.width, cfg.length),
        make_scheduler("FCFS"),
        StochasticWorkload(cfg, load=0.01, sides="uniform"),
    )
    result = sim.run()
    assert result.completed_jobs == 20
    assert result.mean_turnaround > 0


def test_paper_config_is_paper():
    assert PAPER_CONFIG.processors == 352
