"""Unit tests for the contiguous First-Fit / Best-Fit baselines."""

import pytest

from repro.alloc.contiguous import BestFitAllocator, FirstFitAllocator
from repro.mesh.geometry import Coord, SubMesh


class TestFirstFit:
    def test_basic(self):
        a = FirstFitAllocator(8, 8)
        alloc = a.allocate(1, 3, 3)
        assert alloc is not None
        assert alloc.contiguous
        assert alloc.submeshes[0].base == Coord(0, 0)

    def test_rotation(self):
        a = FirstFitAllocator(8, 4)
        alloc = a.allocate(1, 2, 6)
        assert alloc is not None
        assert alloc.submeshes[0].width == 6

    def test_external_fragmentation_failure(self):
        """Enough free processors but no contiguous sub-mesh -> fail.

        This is exactly the external fragmentation the paper's non-
        contiguous strategies eliminate."""
        a = FirstFitAllocator(4, 4)
        # checkerboard 2x2 blocks: 8 free processors, max free rect 2x2
        a.grid.allocate_submesh(SubMesh.from_base(0, 0, 2, 2), 999)
        a.grid.allocate_submesh(SubMesh.from_base(2, 2, 2, 2), 999)
        assert a.free_count == 8
        assert a.allocate(1, 2, 4) is None
        assert a.allocate(2, 4, 2) is None
        assert not a.complete

    def test_release(self):
        a = FirstFitAllocator(8, 8)
        alloc = a.allocate(1, 8, 8)
        assert a.allocate(2, 1, 1) is None
        a.release(alloc)
        assert a.allocate(2, 1, 1) is not None


class TestBestFit:
    def test_prefers_walls(self):
        """On an empty mesh, a corner base maximises boundary contact."""
        a = BestFitAllocator(8, 8)
        alloc = a.allocate(1, 3, 3)
        assert alloc.submeshes[0].base == Coord(0, 0)

    def test_packs_against_existing(self):
        a = BestFitAllocator(8, 8)
        a.allocate(1, 4, 8)  # fills x in [0,4)
        alloc = a.allocate(2, 4, 4)
        # remaining free strip is x in [4,8): both candidate bases touch the
        # allocation on the left; the corner one also touches two walls
        assert alloc.submeshes[0].base in (Coord(4, 0), Coord(4, 4))

    def test_fails_like_first_fit(self):
        a = BestFitAllocator(4, 4)
        a.grid.allocate_submesh(SubMesh.from_base(1, 1, 2, 2), 999)
        assert a.allocate(1, 4, 4) is None

    def test_contact_count(self):
        a = BestFitAllocator(4, 4)
        full = SubMesh.from_base(0, 0, 4, 4)
        # the whole mesh touches only walls: perimeter cells = 4*4 on each
        # side counted once per adjacent-outside edge
        contact = a._boundary_contact(full)
        assert contact == 16  # 4 per side

    def test_rotation(self):
        a = BestFitAllocator(8, 4)
        alloc = a.allocate(1, 2, 6)
        assert alloc is not None


class TestBothStrategies:
    @pytest.mark.parametrize("cls", [FirstFitAllocator, BestFitAllocator])
    def test_never_splits(self, cls):
        a = cls(8, 8)
        for j in range(4):
            alloc = a.allocate(j, 3, 3)
            if alloc is not None:
                assert alloc.fragment_count == 1

    @pytest.mark.parametrize("cls", [FirstFitAllocator, BestFitAllocator])
    def test_full_cycle(self, cls):
        a = cls(8, 8)
        allocs = [a.allocate(j, 4, 4) for j in range(4)]
        assert all(al is not None for al in allocs)
        assert a.free_count == 0
        for al in allocs:
            a.release(al)
        assert a.free_count == 64
        a.grid.validate()
