"""Tests for the simulator lifecycle-hook architecture."""

from __future__ import annotations

import pytest

from repro.alloc import make_allocator
from repro.core.config import SimConfig
from repro.core.hooks import SimObserver, TrajectoryObserver
from repro.core.simulator import Simulator
from repro.sched import make_scheduler
from repro.workload.stochastic import StochasticWorkload


def build(cfg: SimConfig, observers=()) -> Simulator:
    return Simulator(
        cfg,
        make_allocator("GABL", cfg.width, cfg.length),
        make_scheduler("FCFS"),
        StochasticWorkload(cfg, load=0.02),
        observers=observers,
    )


class Recorder(SimObserver):
    """Counts every hook invocation."""

    def __init__(self) -> None:
        self.arrivals = 0
        self.starts = 0
        self.completions = 0
        self.busy_changes = 0
        self.ended_at: float | None = None
        self.busy = 0

    def on_arrival(self, now, job, queue_length):
        self.arrivals += 1

    def on_start(self, now, job, queue_length):
        assert job.alloc_time == now
        assert job.allocation is not None
        self.starts += 1

    def on_complete(self, now, job):
        assert job.depart_time == now
        self.completions += 1

    def on_busy_change(self, now, delta):
        self.busy_changes += 1
        self.busy += delta
        assert self.busy >= 0

    def on_end(self, now):
        self.ended_at = now


class TestObserverDispatch:
    def test_hooks_fire_consistently(self, tiny_config):
        rec = Recorder()
        sim = build(tiny_config, observers=(rec,))
        result = sim.run()
        assert rec.completions == result.completed_jobs == tiny_config.jobs
        assert rec.starts >= rec.completions
        assert rec.arrivals >= rec.starts
        assert rec.busy_changes == rec.starts + rec.completions
        assert rec.ended_at == result.sim_time
        # observer sees the same busy accounting as the metrics
        assert rec.busy == sim.metrics.busy_procs

    def test_metrics_is_first_observer(self, tiny_config):
        sim = build(tiny_config)
        assert sim.observers[0] is sim.metrics

    def test_observers_do_not_perturb_run(self, tiny_config):
        r_plain = build(tiny_config).run()
        r_observed = build(
            tiny_config, observers=(Recorder(), TrajectoryObserver(32.0))
        ).run()
        assert r_plain == r_observed  # bit-identical RunResult


class TestTrajectoryObserver:
    def test_sampling_grid_and_lengths(self, tiny_config):
        traj = TrajectoryObserver(64.0, processors=tiny_config.processors)
        result = build(tiny_config, observers=(traj,)).run()
        s = traj.series()
        n = int(result.sim_time // 64.0) + 1
        assert len(s["times"]) == n
        assert s["times"][0] == 0.0
        assert s["times"][-1] <= result.sim_time
        for key in ("queue_length", "busy", "completed", "utilization"):
            assert len(s[key]) == n
        assert s["completed"][-1] <= result.completed_jobs
        assert all(0.0 <= u <= 1.0 for u in s["utilization"])
        # cumulative completions never decrease
        assert all(a <= b for a, b in zip(s["completed"], s["completed"][1:]))

    def test_carry_forward_between_events(self):
        """Grid points between events repeat the pre-event state."""
        traj = TrajectoryObserver(1.0)
        traj.on_busy_change(0.5, 4)   # state becomes 4 after t=0.5
        traj.on_busy_change(3.5, -4)  # idle again after t=3.5
        traj.on_end(4.0)
        assert traj.times == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert traj.busy == [0, 4, 4, 4, 0]

    def test_t0_sample_precedes_an_arrival_at_t0(self):
        """The t=0 sample is the empty system even when the first
        arrival lands exactly at t=0 (the documented g^- contract)."""
        traj = TrajectoryObserver(1.0)
        traj.on_arrival(0.0, job=None, queue_length=1)
        traj.on_arrival(0.25, job=None, queue_length=2)
        traj.on_end(1.0)
        assert traj.times == [0.0, 1.0]
        assert traj.queue_length == [0, 2]

    def test_event_exactly_on_grid_point_is_not_folded_in(self):
        """A sample at grid time g carries the state at g^-: events at
        exactly g show up from the *next* sample on."""
        traj = TrajectoryObserver(2.0)
        traj.on_busy_change(2.0, 8)   # lands exactly on the grid
        traj.on_busy_change(4.0, -8)  # and again
        traj.on_end(6.0)
        assert traj.times == [0.0, 2.0, 4.0, 6.0]
        assert traj.busy == [0, 0, 8, 0]

    def test_tail_after_final_completion_is_carried_to_the_end(self):
        """A run ending long after its last event still samples the
        tail, carrying the final state forward (documented behavior)."""
        traj = TrajectoryObserver(1.0)
        traj.on_busy_change(0.5, 4)
        traj.on_complete(2.5, job=None)
        traj.on_busy_change(2.5, -4)
        traj.on_end(6.0)  # e.g. a max_time cutoff well past the event
        assert traj.times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert traj.busy == [0, 4, 4, 0, 0, 0, 0]
        assert traj.completed == [0, 0, 0, 1, 1, 1, 1]
        # sample count invariant: floor(final_clock / interval) + 1
        assert len(traj.times) == int(6.0 // 1.0) + 1

    def test_end_exactly_on_grid_point_keeps_count_invariant(self):
        traj = TrajectoryObserver(2.0)
        traj.on_busy_change(1.0, 3)
        traj.on_end(4.0)
        assert traj.times == [0.0, 2.0, 4.0]
        assert traj.busy == [0, 3, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryObserver(0.0)
        with pytest.raises(ValueError):
            TrajectoryObserver(16.0).utilization()


class TestMetricsObserverAdapters:
    def test_on_arrival_tracks_queue_peak(self, tiny_config):
        sim = build(tiny_config)
        m = sim.metrics
        job = next(StochasticWorkload(tiny_config, load=0.02).jobs(1))
        m.on_arrival(1.0, job, queue_length=5)
        m.on_arrival(2.0, job, queue_length=2)
        assert m.queue_peak == 5
