"""Property-based tests (hypothesis) over all allocation strategies.

These are the repository's core invariants (DESIGN.md section 5):

* never double-allocate a processor;
* a successful allocation covers exactly the requested count (modulo
  Paging's documented internal fragmentation);
* release restores the free count, and a full release cycle returns the
  grid to empty;
* the three *complete* strategies of the paper succeed iff
  ``free >= w*l``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.alloc import make_allocator
from repro.alloc.base import Allocator
from repro.mesh.grid import submeshes_disjoint

COMPLETE_SPECS = ["Paging(0)", "MBS", "GABL", "Random", "ANCA"]
ALL_SPECS = COMPLETE_SPECS + ["FF", "BF"]

# a stream of (w, l) requests on an 8x8 mesh
requests = st.lists(
    st.tuples(st.integers(1, 8), st.integers(1, 8)), min_size=1, max_size=25
)
# per-request action: True = hold, False = release immediately
actions = st.lists(st.booleans(), min_size=25, max_size=25)


def _drive(alloc: Allocator, reqs, holds) -> None:
    """Feed a request stream, releasing non-held allocations at random
    points, and check the invariants continuously."""
    held = {}
    for j, ((w, l), hold) in enumerate(zip(reqs, holds)):
        free_before = alloc.free_count
        allocation = alloc.allocate(j, w, l)
        if allocation is None:
            if alloc.complete and isinstance(alloc.complete, bool):
                # complete strategies only fail when genuinely out of room
                if type(alloc).__name__ != "PagingAllocator" or alloc.page_side == 1:
                    assert w * l > free_before
            continue
        assert allocation.size >= w * l
        assert free_before - alloc.free_count == allocation.size
        assert submeshes_disjoint(list(allocation.submeshes))
        assert len(set(allocation.coords)) == allocation.size
        if hold:
            held[j] = allocation
        else:
            alloc.release(allocation)
        alloc.grid.validate()
    for allocation in held.values():
        alloc.release(allocation)
    assert alloc.free_count == alloc.grid.size
    alloc.grid.validate()


@pytest.mark.parametrize("spec", ALL_SPECS)
@settings(max_examples=25, deadline=None)
@given(reqs=requests, holds=actions)
def test_invariants_hold(spec, reqs, holds):
    alloc = make_allocator(spec, 8, 8)
    _drive(alloc, reqs, holds)


@pytest.mark.parametrize("spec", COMPLETE_SPECS)
@settings(max_examples=25, deadline=None)
@given(reqs=requests)
def test_complete_strategies_succeed_iff_free(spec, reqs):
    """Paper section 5: they 'always succeed to allocate processors to a
    job when the number of free processors is greater than or equal the
    allocation request'."""
    alloc = make_allocator(spec, 8, 8)
    for j, (w, l) in enumerate(reqs):
        free = alloc.free_count
        allocation = alloc.allocate(j, w, l)
        if w * l <= free:
            assert allocation is not None, f"{spec} failed with {free} free"
        else:
            assert allocation is None


@pytest.mark.parametrize("spec", ALL_SPECS)
@settings(max_examples=20, deadline=None)
@given(
    w=st.integers(1, 8),
    l=st.integers(1, 8),
    repeat=st.integers(2, 6),
)
def test_alloc_release_is_idempotent_on_state(spec, w, l, repeat):
    """Allocating and releasing the same request repeatedly must not leak."""
    alloc = make_allocator(spec, 8, 8)
    for j in range(repeat):
        allocation = alloc.allocate(j, w, l)
        assert allocation is not None
        alloc.release(allocation)
    assert alloc.free_count == 64
    alloc.grid.validate()


@pytest.mark.parametrize("spec", COMPLETE_SPECS)
def test_fill_machine_with_unit_jobs(spec):
    """Degenerate stress: fill every processor with 1x1 jobs, then free."""
    alloc = make_allocator(spec, 8, 8)
    allocations = []
    for j in range(64):
        a = alloc.allocate(j, 1, 1)
        assert a is not None
        allocations.append(a)
    assert alloc.free_count == 0
    assert alloc.allocate(999, 1, 1) is None
    for a in allocations:
        alloc.release(a)
    assert alloc.free_count == 64


@pytest.mark.parametrize("spec", ALL_SPECS)
def test_oversized_request_rejected(spec):
    alloc = make_allocator(spec, 8, 8)
    with pytest.raises(ValueError):
        alloc.allocate(1, 9, 8)  # 72 > 64 processors
    with pytest.raises(ValueError):
        alloc.allocate(1, 1, 0)


@pytest.mark.parametrize("spec", COMPLETE_SPECS)
def test_long_thin_request_scatters(spec):
    """A 9x1 request exceeds the 8-wide mesh but only needs 9 processors;
    complete strategies must still satisfy it."""
    alloc = make_allocator(spec, 8, 8)
    allocation = alloc.allocate(1, 9, 1)
    assert allocation is not None
    assert allocation.size == 9
