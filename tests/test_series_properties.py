"""Hypothesis properties for the series utilities (repro.stats.series).

The invariants pinned here are the ones the trajectory subsystem leans
on: resampling must be lossless on the source grid, deviation symmetric,
the tolerance-band verdict monotone in the band width (a wider band can
never turn a pass into a failure), and the saturation knee a pure
function of the *values* -- invariant under any rescaling of the time or
load axis.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import series as S

# finite, moderately sized floats keep the math exact enough to compare
_value = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def step_series(draw, min_size=1, max_size=24):
    """A strictly increasing time grid with parallel values."""
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=min_size, max_size=max_size, unique=True,
        )
    )
    times.sort()
    values = draw(
        st.lists(_value, min_size=len(times), max_size=len(times))
    )
    return times, values


@given(step_series())
@settings(max_examples=200)
def test_resample_is_identity_on_source_grid(series):
    times, values = series
    assert S.resample(times, values, times) == values


@given(step_series(min_size=2), step_series(min_size=2))
@settings(max_examples=100)
def test_resample_union_preserves_endpoint_values(sa, sb):
    """On the union grid, each series still passes through its own
    source samples (resampling never invents or moves data)."""
    times_a, values_a = sa
    times_b, values_b = sb
    grid = S.union_grid(times_a, times_b)
    on_grid = dict(zip(grid, S.resample(times_a, values_a, grid)))
    for t, v in zip(times_a, values_a):
        assert on_grid[t] == v


@given(
    st.lists(_value, min_size=1, max_size=32),
    st.lists(_value, min_size=1, max_size=32),
)
@settings(max_examples=200)
def test_max_deviation_symmetry(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    worst_ab, at_ab = S.max_deviation(a, b)
    worst_ba, at_ba = S.max_deviation(b, a)
    assert worst_ab == worst_ba
    assert at_ab == at_ba
    # and deviation against self is always zero
    assert S.max_deviation(a, a) == (0.0, 0)


@given(
    step_series(min_size=2),
    step_series(min_size=2),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
)
@settings(max_examples=100)
def test_band_verdict_monotone_in_band_width(sa, sb, atol, extra_a, rtol, extra_r):
    """Widening the tolerance band never worsens the verdict."""
    ta, va = sa
    tb, vb = sb
    narrow = S.diff_series("m", ta, va, tb, vb, atol=atol, rtol=rtol)
    wide = S.diff_series(
        "m", ta, va, tb, vb, atol=atol + extra_a, rtol=rtol + extra_r
    )
    rank = {v: i for i, v in enumerate(S.SERIES_VERDICTS)}  # worst first
    assert rank[wide.verdict] >= rank[narrow.verdict]
    assert wide.exceedances <= narrow.exceedances
    # the band does not change the measured deviation, only the verdict
    assert wide.max_abs == narrow.max_abs
    assert wide.area == narrow.area


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=2, max_size=32,
    ),
    st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
)
@settings(max_examples=200)
def test_saturation_knee_invariant_under_time_rescaling(utils, scale):
    """The knee is detected on values alone: rescaling the time axis by
    any positive factor maps the onset timestamp exactly."""
    times = [float(i) for i in range(len(utils))]
    onset = S.saturation_time(times, utils)
    rescaled = S.saturation_time([t * scale for t in times], utils)
    if onset is None:
        assert rescaled is None
    else:
        assert rescaled == onset * scale
    # and the index-level detector agrees regardless of any axis
    assert S.detect_saturation(utils) == S.detect_saturation(list(utils))


@given(step_series(min_size=2))
@settings(max_examples=100)
def test_identical_series_diff_is_identical(series):
    times, values = series
    d = S.diff_series("m", times, values, times, values)
    assert d.verdict == S.IDENTICAL
    assert d.max_abs == 0.0
    assert d.area == 0.0
