"""Unit tests for the DES kernel (repro.core.engine / events)."""

import pytest

from repro.core.engine import Engine
from repro.core.events import Event, Priority


class TestScheduling:
    def test_runs_in_time_order(self):
        e = Engine()
        order = []
        e.schedule(5.0, order.append, "b")
        e.schedule(1.0, order.append, "a")
        e.schedule(9.0, order.append, "c")
        e.run()
        assert order == ["a", "b", "c"]
        assert e.now == 9.0

    def test_priority_breaks_ties(self):
        e = Engine()
        order = []
        e.schedule(1.0, order.append, "arrival", priority=Priority.ARRIVAL)
        e.schedule(1.0, order.append, "departure", priority=Priority.DEPARTURE)
        e.schedule(1.0, order.append, "network", priority=Priority.NETWORK)
        e.run()
        assert order == ["network", "departure", "arrival"]

    def test_seq_breaks_remaining_ties(self):
        e = Engine()
        order = []
        for i in range(5):
            e.schedule(2.0, order.append, i, priority=Priority.STATS)
        e.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_at(self):
        e = Engine()
        seen = []
        e.schedule_at(4.5, seen.append, True)
        e.run()
        assert seen == [True] and e.now == 4.5

    def test_past_scheduling_rejected(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run()
        with pytest.raises(ValueError, match="past"):
            e.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            e.schedule(-1.0, lambda: None)

    def test_callbacks_can_schedule(self):
        e = Engine()
        hits = []

        def chain(n):
            hits.append(n)
            if n < 3:
                e.schedule(1.0, chain, n + 1)

        e.schedule(0.0, chain, 0)
        e.run()
        assert hits == [0, 1, 2, 3]
        assert e.now == 3.0


class TestRunControl:
    def test_until_stops_clock(self):
        e = Engine()
        seen = []
        e.schedule(1.0, seen.append, 1)
        e.schedule(10.0, seen.append, 2)
        e.run(until=5.0)
        assert seen == [1]
        assert e.now == 5.0
        e.run()  # drains the rest
        assert seen == [1, 2]

    def test_stop_predicate(self):
        e = Engine()
        seen = []
        for i in range(10):
            e.schedule(float(i + 1), seen.append, i)
        e.run(stop=lambda: len(seen) >= 4)
        assert len(seen) == 4

    def test_max_events(self):
        e = Engine()
        for i in range(10):
            e.schedule(float(i), lambda: None)
        e.run(max_events=3)
        assert e.processed == 3

    def test_max_events_zero_executes_nothing(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run(max_events=0)
        assert e.processed == 0
        assert e.pending == 1
        assert e.now == 0.0

    def test_max_events_budget_is_per_call(self):
        e = Engine()
        for i in range(10):
            e.schedule(float(i), lambda: None)
        e.run(max_events=3)
        e.run(max_events=3)  # a fresh budget, not the cumulative count
        assert e.processed == 6

    def test_max_events_stop_does_not_clamp_to_until(self):
        # events at t=1..4 remain pending, so jumping the clock to
        # until=10 would let a resumed run move time backwards
        e = Engine()
        for i in range(5):
            e.schedule(float(i), lambda: None)
        e.run(until=10.0, max_events=2)
        assert e.now == 1.0
        assert e.pending == 3

    def test_stop_predicate_does_not_clamp_to_until(self):
        e = Engine()
        seen = []
        for i in range(5):
            e.schedule(float(i + 1), seen.append, i)
        e.run(until=10.0, stop=lambda: len(seen) >= 2)
        assert e.now == 2.0
        e.run(until=10.0)  # resume drains the rest, then clamps
        assert len(seen) == 5
        assert e.now == 10.0

    def test_until_clamps_when_budget_not_exhausted(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run(until=5.0, max_events=10)
        assert e.now == 5.0

    def test_step(self):
        e = Engine()
        seen = []
        e.schedule(1.0, seen.append, "x")
        assert e.step() is True
        assert seen == ["x"]
        assert e.step() is False

    def test_empty_run_with_until_advances_clock(self):
        e = Engine()
        e.run(until=7.0)
        assert e.now == 7.0


class TestCancellation:
    def test_cancelled_not_run(self):
        e = Engine()
        seen = []
        ev = e.schedule(1.0, seen.append, "dead")
        e.schedule(2.0, seen.append, "alive")
        ev.cancel()
        e.run()
        assert seen == ["alive"]

    def test_pending_counts(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.schedule(2.0, lambda: None)
        assert e.pending == 2


class TestReset:
    def test_reset_clears_everything(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.run()
        e.reset()
        assert e.now == 0.0
        assert e.pending == 0
        assert e.processed == 0


class TestEventOrdering:
    def test_event_dataclass_ordering(self):
        a = Event(1.0, 0, 1, lambda: None)
        b = Event(1.0, 0, 2, lambda: None)
        c = Event(1.0, 1, 0, lambda: None)
        d = Event(0.5, 9, 9, lambda: None)
        assert a < b < c
        assert d < a
