"""Tests for the torus topology extension and the single-flit-buffer
(sfb) wormhole mode."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.mesh.geometry import Coord
from repro.network.routing import xy_route, xy_route_nodes
from repro.network.topology import Direction, MeshTopology
from repro.network.wormhole import WormholeNetwork


class TestTorusTopology:
    def test_wraparound_links_exist(self):
        t = MeshTopology(4, 4, wrap=True)
        east_edge = t.node_id(Coord(3, 1))
        assert t.link_exists(east_edge, Direction.EAST)
        assert t.neighbour(east_edge, Direction.EAST) == t.node_id(Coord(0, 1))
        north_edge = t.node_id(Coord(2, 3))
        assert t.neighbour(north_edge, Direction.NORTH) == t.node_id(Coord(2, 0))

    def test_mesh_has_no_wrap(self):
        t = MeshTopology(4, 4, wrap=False)
        assert not t.link_exists(t.node_id(Coord(3, 1)), Direction.EAST)

    def test_distance_wraps(self):
        t = MeshTopology(8, 8, wrap=True)
        assert t.distance(Coord(0, 0), Coord(7, 0)) == 1
        assert t.distance(Coord(0, 0), Coord(4, 0)) == 4
        assert t.distance(Coord(1, 1), Coord(6, 7)) == 3 + 2
        m = MeshTopology(8, 8, wrap=False)
        assert m.distance(Coord(0, 0), Coord(7, 0)) == 7


class TestTorusRouting:
    def test_route_takes_short_way(self):
        t = MeshTopology(8, 8, wrap=True)
        path = xy_route(t, Coord(0, 0), Coord(7, 0))
        assert len(path) == 3  # inj + one wrap link + ej
        _, direction = t.channel_owner(path[1])
        assert direction == Direction.WEST  # 0 -> 7 is one hop westwards

    def test_tie_breaks_positive(self):
        t = MeshTopology(8, 8, wrap=True)
        path = xy_route(t, Coord(0, 0), Coord(4, 0))
        dirs = {t.channel_owner(c)[1] for c in path[1:-1]}
        assert dirs == {Direction.EAST}

    def test_nodes_walk_wraps(self):
        t = MeshTopology(4, 4, wrap=True)
        nodes = xy_route_nodes(t, Coord(3, 3), Coord(0, 0))
        assert nodes == [Coord(3, 3), Coord(0, 3), Coord(0, 0)]

    @settings(max_examples=60, deadline=None)
    @given(
        sx=st.integers(0, 7), sy=st.integers(0, 7),
        dx=st.integers(0, 7), dy=st.integers(0, 7),
    )
    def test_route_length_is_torus_distance(self, sx, sy, dx, dy):
        src, dst = Coord(sx, sy), Coord(dx, dy)
        if src == dst:
            return
        t = MeshTopology(8, 8, wrap=True)
        path = xy_route(t, src, dst)
        assert len(path) == t.distance(src, dst) + 2

    @settings(max_examples=40, deadline=None)
    @given(
        sx=st.integers(0, 7), sy=st.integers(0, 7),
        dx=st.integers(0, 7), dy=st.integers(0, 7),
    )
    def test_torus_never_longer_than_mesh(self, sx, sy, dx, dy):
        src, dst = Coord(sx, sy), Coord(dx, dy)
        if src == dst:
            return
        torus = MeshTopology(8, 8, wrap=True)
        mesh = MeshTopology(8, 8, wrap=False)
        assert len(xy_route(torus, src, dst)) <= len(xy_route(mesh, src, dst))


def make_sfb(w=8, l=8, t_s=3.0, p_len=8):
    engine = Engine()
    net = WormholeNetwork(
        MeshTopology(w, l), engine, t_s=t_s, p_len=p_len, mode="sfb"
    )
    return net, engine


class TestSFBMode:
    def test_uncontended_latency_matches_causal(self):
        net, engine = make_sfb()
        seen = []
        net.send(Coord(0, 0), Coord(3, 4), 0.0, seen.append)
        engine.run()
        assert len(seen) == 1
        assert seen[0].latency == pytest.approx((7 + 2) * 4 + 7)
        assert seen[0].blocking == 0.0

    def test_injection_held_longer_than_deep_buffer(self):
        """With 1-flit buffers the tail leaves the injection channel only
        when the header is P_len channels ahead -- so a source's second
        packet starts later than in the deep-buffer modes."""
        net, engine = make_sfb()
        seen = []
        # long path: 14 hops, so injection releases when the header is
        # p_len=8 channels in
        net.send(Coord(0, 0), Coord(7, 7), 0.0, lambda t: seen.append(t))
        net.send(Coord(0, 0), Coord(7, 7), 0.0, lambda t: seen.append(t))
        engine.run()
        assert len(seen) == 2
        # deep-buffer modes inject the second packet at t=8; sfb must wait
        # for 8 header hops (8 * 4 = 32)
        assert seen[1].t_inject == pytest.approx(32.0)

    def test_chained_blocking_holds_upstream_channels(self):
        """A worm blocked downstream keeps its upstream channels; a cross
        worm needing one of them must wait (the wormhole tree-saturation
        effect that deep buffers absorb)."""
        net, engine = make_sfb(p_len=8)
        order = []
        # worm A: long eastward route on row 0
        net.send(Coord(0, 0), Coord(7, 0), 0.0, lambda t: order.append(("A", t)))
        # worm B: same route injected just after -> queues behind A's
        # held channels for a long time
        net.send(Coord(1, 0), Coord(6, 0), 0.0, lambda t: order.append(("B", t)))
        engine.run()
        a = dict(order)["A"]
        b = dict(order)["B"]
        assert b.blocking > 0.0

    def test_torus_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError, match="torus"):
            WormholeNetwork(
                MeshTopology(4, 4, wrap=True), engine, mode="sfb"
            )

    def test_reset_clears_holders(self):
        net, engine = make_sfb()
        net.send(Coord(0, 0), Coord(5, 5), 0.0, lambda t: None)
        net.reset()
        assert all(h is None for h in net._holder)
        seen = []
        net.send(Coord(0, 0), Coord(5, 5), 0.0, seen.append)
        engine.run()
        assert seen[0].blocking == 0.0

    def test_many_packets_all_deliver(self):
        """Saturation storm: every node sends across the mesh; the engine
        must drain without deadlock (XY total order) and deliver all."""
        net, engine = make_sfb(w=6, l=6)
        seen = []
        for y in range(6):
            for x in range(6):
                dst = Coord(5 - x, 5 - y)
                if dst == Coord(x, y):
                    continue
                net.send(Coord(x, y), dst, 0.0, seen.append)
        engine.run()
        assert len(seen) == 36
        assert all(t.t_deliver > 0 for t in seen)


class TestSimulatorIntegration:
    def test_torus_config_runs(self):
        from repro.alloc import make_allocator
        from repro.core.simulator import Simulator
        from repro.sched import make_scheduler
        from repro.workload.stochastic import StochasticWorkload

        cfg = SimConfig(width=8, length=8, jobs=25, seed=4, topology="torus")
        sim = Simulator(
            cfg,
            make_allocator("GABL", 8, 8),
            make_scheduler("FCFS"),
            StochasticWorkload(cfg, load=0.02),
        )
        r = sim.run()
        assert r.completed_jobs == 25

    def test_torus_latency_below_mesh(self):
        """Wraparound shortens routes, so mean latency drops.  Asserted
        in causal mode (exact arbitration); fast mode's conservative
        reservation ordering can inflate blocking on the wrap links, so
        there only the base (uncontended) component is compared."""
        from repro.alloc import make_allocator
        from repro.core.simulator import Simulator
        from repro.sched import make_scheduler
        from repro.workload.stochastic import StochasticWorkload

        def run(topology, mode):
            cfg = SimConfig(width=8, length=8, jobs=30, seed=4,
                            topology=topology)
            sim = Simulator(
                cfg,
                make_allocator("Random", 8, 8, seed=1),
                make_scheduler("FCFS"),
                StochasticWorkload(cfg, load=0.02),
                network_mode=mode,
            )
            r = sim.run()
            return r.mean_packet_latency, r.mean_packet_blocking

        t_lat, t_blk = run("torus", "causal")
        m_lat, m_blk = run("mesh", "causal")
        assert t_lat < m_lat
        # base component is shorter in fast mode too
        tf_lat, tf_blk = run("torus", "fast")
        mf_lat, mf_blk = run("mesh", "fast")
        assert tf_lat - tf_blk < mf_lat - mf_blk

    def test_sfb_config_runs_and_blocks_more(self):
        from repro.alloc import make_allocator
        from repro.core.simulator import Simulator
        from repro.sched import make_scheduler
        from repro.workload.stochastic import StochasticWorkload

        def run(mode):
            cfg = SimConfig(width=8, length=8, jobs=25, seed=4)
            sim = Simulator(
                cfg,
                make_allocator("GABL", 8, 8),
                make_scheduler("FCFS"),
                StochasticWorkload(cfg, load=0.015),
                network_mode=mode,
            )
            return sim.run()

        sfb = run("sfb")
        causal = run("causal")
        assert sfb.completed_jobs == causal.completed_jobs
        # chained blocking can only add stall time
        assert sfb.mean_packet_blocking >= causal.mean_packet_blocking

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            SimConfig(topology="hypercube")
