"""Unit tests for repro.mesh.busylist."""

import pytest

from repro.mesh.busylist import BusyList
from repro.mesh.geometry import SubMesh


@pytest.fixture
def bl() -> BusyList:
    return BusyList()


def test_empty(bl):
    assert len(bl) == 0
    assert bl.job_count == 0
    assert bl.peak_length == 0
    assert bl.total_allocated() == 0


def test_add_and_len(bl):
    bl.add(1, SubMesh(0, 0, 1, 1))
    bl.add(1, SubMesh(2, 2, 2, 2))
    bl.add(2, SubMesh(3, 3, 4, 4))
    assert len(bl) == 3
    assert bl.job_count == 2
    assert bl.total_allocated() == 4 + 1 + 4


def test_job_submeshes(bl):
    a, b = SubMesh(0, 0, 0, 0), SubMesh(1, 1, 1, 1)
    bl.add(5, a)
    bl.add(5, b)
    assert bl.job_submeshes(5) == [a, b]
    assert bl.job_submeshes(6) == []


def test_remove_job(bl):
    a = SubMesh(0, 0, 1, 1)
    bl.add(7, a)
    bl.add(8, SubMesh(3, 3, 3, 3))
    removed = bl.remove_job(7)
    assert removed == [a]
    assert len(bl) == 1
    assert bl.job_count == 1


def test_remove_unknown_job(bl):
    with pytest.raises(KeyError):
        bl.remove_job(99)


def test_peak_tracking(bl):
    for i in range(5):
        bl.add(1, SubMesh(i, i, i, i))
    bl.remove_job(1)
    assert len(bl) == 0
    assert bl.peak_length == 5


def test_mean_length_sampling(bl):
    bl.sample_length()  # 0
    bl.add(1, SubMesh(0, 0, 0, 0))
    bl.sample_length()  # 1
    bl.add(2, SubMesh(1, 1, 1, 1))
    bl.sample_length()  # 2
    assert bl.mean_length == pytest.approx(1.0)


def test_mean_length_no_samples(bl):
    assert bl.mean_length == 0.0


def test_iteration(bl):
    subs = [SubMesh(0, 0, 0, 0), SubMesh(1, 1, 1, 1), SubMesh(2, 2, 2, 2)]
    bl.add(1, subs[0])
    bl.add(2, subs[1])
    bl.add(1, subs[2])
    assert sorted(iter(bl), key=lambda s: s.x1) == subs
