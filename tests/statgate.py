"""Statistical-equivalence gate for stochastic simulation outputs.

Non-trivial channel policies break the repo's bit-exact cross-backend
invariant *by design*: different backends interleave channel-RNG draws
differently, so the same physical configuration yields different sample
paths.  What must still hold is **distributional** equivalence -- two
implementations of the same model, fed disjoint seed sets, must be
statistically indistinguishable on every reported metric.

This module is that gate.  It builds on the production comparison
machinery (:mod:`repro.stats.compare`): metrics are summarised with
:class:`~repro.stats.compare.MetricSummary` and judged by
:func:`~repro.stats.compare.compare_metric`'s Welch verdicts, so tests
and the ``repro diff`` CI gate share one definition of "same".

Usage::

    a = replicate(lambda seed: run_spec_replication(spec_a, seed), seeds_a)
    b = replicate(lambda seed: run_spec_replication(spec_b, seed), seeds_b)
    assert_statistically_identical(a, b, alpha=0.01)

The replication driver is deterministic: seeds are explicit, ordered,
and threaded straight through to the runs, so a failing comparison
reproduces exactly.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.stats.compare import (
    IMPROVED,
    REGRESSED,
    MetricComparison,
    MetricSummary,
    compare_metric,
)


def replicate(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> dict[str, MetricSummary]:
    """Run ``run(seed)`` for every seed and summarise each metric.

    ``run`` returns a metric-name -> value mapping (e.g.
    :func:`repro.experiments.campaign.run_spec_replication`).  Every
    replication must report the same metric set; seeds are executed in
    the order given, so the driver is fully deterministic.
    """
    if not seeds:
        raise ValueError("replicate needs at least one seed")
    values: dict[str, list[float]] = {}
    names: tuple[str, ...] | None = None
    for seed in seeds:
        metrics = run(seed)
        got = tuple(metrics)
        if names is None:
            names = got
            values = {name: [] for name in names}
        elif set(got) != set(names):
            raise ValueError(
                f"seed {seed} reported metrics {sorted(got)}, "
                f"expected {sorted(names)}"
            )
        for name in names:
            values[name].append(float(metrics[name]))
    return {name: MetricSummary.from_values(v) for name, v in values.items()}


def assert_statistically_identical(
    a: Mapping[str, MetricSummary],
    b: Mapping[str, MetricSummary],
    alpha: float = 0.01,
    rel_tol: float = 0.0,
    metrics: Sequence[str] | None = None,
) -> list[MetricComparison]:
    """Assert no metric of ``b`` differs *directionally* from ``a``.

    Each shared metric goes through
    :func:`~repro.stats.compare.compare_metric` at significance
    ``alpha`` with relative dead band ``rel_tol``; any ``improved`` or
    ``regressed`` verdict fails the assertion (equivalence gating is
    two-sided -- a statistically significant *improvement* is still a
    divergence between supposedly identical implementations).
    ``identical`` and ``indistinguishable`` both pass.

    ``metrics`` restricts the comparison to a subset; by default every
    metric of ``a`` is checked and must be present in ``b``.  Returns
    the full comparison list so callers can report or log the evidence.
    """
    names = tuple(metrics) if metrics is not None else tuple(a)
    missing = [n for n in names if n not in a or n not in b]
    if missing:
        raise ValueError(f"metrics absent from a summary side: {missing}")
    comparisons = [
        compare_metric(name, a[name], b[name], alpha=alpha, rel_tol=rel_tol)
        for name in names
    ]
    failures = [
        c for c in comparisons if c.verdict in (IMPROVED, REGRESSED)
    ]
    if failures:
        lines = [
            f"  {c.metric}: {c.verdict} "
            f"(a={c.a.mean:.6g} n={c.a.n}, b={c.b.mean:.6g} n={c.b.n}, "
            f"delta={c.delta:+.6g}, p={c.p_value})"
            for c in failures
        ]
        raise AssertionError(
            f"{len(failures)} metric(s) statistically distinct "
            f"at alpha={alpha}:\n" + "\n".join(lines)
        )
    return comparisons
