"""SoA engine equivalence: lockstep batches == per-run reference, bit-for-bit.

The contract under test (ISSUE 6): ``repro.core.soa.run_point_batch``
-- through the compiled lane driver when available, and through the
interleaved-reference fallback otherwise -- produces ``RunResult``
metrics *exactly* equal to running each replication through
``Simulator.run()``, across allocators x schedulers x workloads x seeds
x topologies, including lockstep-specific shapes (uneven lane
termination, trajectory observers, replication-controller batches).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import soa
from repro.core import _soa_native as native
from repro.core.config import PAPER_CONFIG, SimConfig
from repro.core.hooks import TrajectoryObserver
from repro.core.soa import run_point_batch
from repro.experiments.campaign import (
    Campaign,
    PointSpec,
    Scale,
    build_simulator,
    run_spec_batch,
    run_spec_replication,
)
from repro.experiments.store import ResultCache
from repro.stats.replication import ReplicationController

SMOKE = Scale.by_name("smoke")
#: small-mesh scale so the full strategy sweep stays fast
TINY_SCALE = Scale("tiny", jobs=40, min_replications=1, max_replications=1,
                   trace_max_jobs=200)
TINY = SimConfig(width=8, length=8, jobs=40, seed=3)
#: non-square, non-power-of-two mesh: multiple MBS cover roots and a
#: width/length asymmetry that exercises GABL's rotation fallback
ODD = SimConfig(width=6, length=10, jobs=40, seed=3)

ALLOCS = ("GABL", "Paging(0)", "MBS")
SCHEDS = ("FCFS", "SSD")


def _spec(alloc="GABL", sched="FCFS", workload="uniform", load=0.7,
          config=TINY, scale=TINY_SCALE, **cfg):
    if cfg:
        config = config.with_(**cfg)
    return PointSpec(workload=workload, load=load, alloc=alloc, sched=sched,
                     scale=scale, config=config)


def _reference(spec, seeds):
    return [build_simulator(spec, s).run() for s in seeds]


def _batch(spec, seeds, observer_factory=None):
    return run_point_batch(
        lambda seed, observers=(): build_simulator(spec, seed,
                                                   observers=observers),
        seeds,
        observer_factory=observer_factory,
    )


def assert_equal_results(ref, got):
    assert len(ref) == len(got)
    for r, g in zip(ref, got):
        assert dataclasses.asdict(r) == dataclasses.asdict(g)


class TestStrategySweep:
    @pytest.mark.parametrize("alloc", ALLOCS)
    @pytest.mark.parametrize("sched", SCHEDS)
    @pytest.mark.parametrize("workload", ("uniform", "exponential"))
    def test_alloc_sched_workload(self, alloc, sched, workload):
        spec = _spec(alloc, sched, workload)
        seeds = [1, 2, 3]
        assert_equal_results(_reference(spec, seeds), _batch(spec, seeds))

    @pytest.mark.parametrize("alloc", ALLOCS)
    @pytest.mark.parametrize("topology", ("mesh", "torus"))
    def test_topology_odd_mesh(self, alloc, topology):
        spec = _spec(alloc, "SSD", config=ODD, topology=topology)
        seeds = [5, 6]
        assert_equal_results(_reference(spec, seeds), _batch(spec, seeds))

    def test_paper_mesh_real_trace(self):
        spec = _spec("MBS", "FCFS", workload="real", config=PAPER_CONFIG,
                     scale=SMOKE)
        seeds = [1]
        assert_equal_results(_reference(spec, seeds), _batch(spec, seeds))

    @pytest.mark.parametrize("kw", (
        {"warmup_jobs": 10},
        {"scheduler_window": 3},
        {"max_time": 300.0},
        {"round_gap_factor": 1.0},
    ))
    def test_config_variants(self, kw):
        spec = _spec("GABL", "SSD", **kw)
        seeds = [1, 2]
        assert_equal_results(_reference(spec, seeds), _batch(spec, seeds))

    def test_saturating_load(self):
        spec = _spec("MBS", "FCFS", load=2.5)
        seeds = [1, 2]
        assert_equal_results(_reference(spec, seeds), _batch(spec, seeds))


class TestLockstepShapes:
    def test_uneven_lane_termination(self):
        # a max_time horizon ends lanes at different event counts; each
        # lane must stop exactly where its solo run does
        spec = _spec("Paging(0)", "FCFS", max_time=250.0, jobs=10_000,
                     scale=Scale("open", jobs=10_000, min_replications=1,
                                 max_replications=1, trace_max_jobs=200))
        seeds = [1, 2, 3, 4]
        ref = _reference(spec, seeds)
        assert len({r.sim_time for r in ref} | {r.completed_jobs for r in ref}) > 2
        assert_equal_results(ref, _batch(spec, seeds))

    def test_single_seed_batch(self):
        spec = _spec()
        assert_equal_results(_reference(spec, [9]), _batch(spec, [9]))

    def test_empty_batch(self):
        assert _batch(_spec(), []) == []

    def test_trajectory_observers(self):
        # extra observers force the interleaved-reference path; both the
        # metrics and the recorded series must match solo runs exactly
        spec = _spec("GABL", "FCFS")
        seeds = [1, 2]
        solo_obs = {}
        ref = []
        for s in seeds:
            obs = TrajectoryObserver(50.0, spec.run_config.processors)
            ref.append(build_simulator(spec, s, observers=(obs,)).run())
            solo_obs[s] = obs
        batch_obs = {}

        def factory(seed):
            obs = TrajectoryObserver(50.0, spec.run_config.processors)
            batch_obs[seed] = obs
            return (obs,)

        got = _batch(spec, seeds, observer_factory=factory)
        assert_equal_results(ref, got)
        for s in seeds:
            assert solo_obs[s].times == batch_obs[s].times
            assert solo_obs[s].queue_length == batch_obs[s].queue_length
            assert solo_obs[s].busy == batch_obs[s].busy
            assert solo_obs[s].completed == batch_obs[s].completed

    def test_unsupported_allocator_falls_back(self):
        spec = _spec(alloc="FF")
        seeds = [1, 2]
        probe = build_simulator(spec, seeds[0])
        assert not soa.native_supported(probe)
        assert_equal_results(_reference(spec, seeds), _batch(spec, seeds))

    def test_native_disabled_env(self, monkeypatch):
        # REPRO_NATIVE=0 must force the fallback and change nothing
        spec = _spec("MBS", "SSD")
        seeds = [1, 2]
        ref = _reference(spec, seeds)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset_kernel_cache()
        try:
            assert native.load_kernel() is None
            assert not soa.native_supported(build_simulator(spec, seeds[0]))
            assert_equal_results(ref, _batch(spec, seeds))
        finally:
            monkeypatch.delenv("REPRO_NATIVE")
            native.reset_kernel_cache()


class TestCampaignIntegration:
    def test_run_spec_batch_matches_per_seed(self):
        spec = _spec("GABL", "SSD", workload="exponential")
        seeds = (1, 2, 3)
        assert run_spec_batch(spec, seeds) == [
            run_spec_replication(spec, s) for s in seeds
        ]

    def test_engine_shares_cache_key(self):
        a = _spec(config=TINY.with_(engine="reference"))
        b = _spec(config=TINY.with_(engine="soa"))
        assert a.key() == b.key()

    def test_replication_controller_batches(self):
        # batch_size>1 batches driven through the lockstep path must
        # reproduce the sequential reference controller exactly: same
        # replication count, same samples, same means
        spec = _spec(
            workload="exponential",
            scale=Scale("reps", jobs=25, min_replications=3,
                        max_replications=9, trace_max_jobs=200),
        )
        metrics = ("mean_turnaround", "utilization")

        def controller(batch_size):
            return ReplicationController(
                metrics, min_replications=3, max_replications=9,
                base_seed=spec.run_config.seed, batch_size=batch_size,
                max_relative_error=1e-9,  # never converges early
            )

        seq = controller(1)
        while seeds := seq.next_seeds():
            seq.add_batch([run_spec_replication(spec, s) for s in seeds])
        lock = controller(3)
        while seeds := lock.next_seeds():
            lock.add_batch(run_spec_batch(spec, seeds))
        assert lock.completed == seq.completed == 9
        a, b = seq.result(), lock.result()
        assert a.replications == b.replications
        for m in metrics:
            assert a.metrics[m].mean == b.metrics[m].mean
            assert a.metrics[m].values == b.metrics[m].values

    def test_campaign_end_to_end_equal(self, tmp_path):
        def run(engine):
            camp = Campaign.sweep(
                workloads=("uniform",), loads=(0.5, 1.5),
                allocs=("GABL", "MBS"), scheds=("FCFS",),
                scale=TINY_SCALE, config=TINY.with_(engine=engine),
            )
            cache = ResultCache(str(tmp_path / engine))
            return {s.label(): dict(r)
                    for s, r in camp.run(cache=cache).items()}

        assert run("reference") == run("soa")
