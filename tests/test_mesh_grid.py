"""Unit tests for repro.mesh.grid (occupancy state)."""

import pytest

from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import FREE, MeshGrid, submeshes_disjoint


class TestConstruction:
    def test_dimensions(self):
        g = MeshGrid(16, 22)
        assert g.width == 16 and g.length == 22
        assert g.size == 352
        assert g.free_count == 352
        assert g.busy_count == 0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshGrid(0, 5)
        with pytest.raises(ValueError):
            MeshGrid(5, -1)


class TestNodeIds:
    def test_row_major(self):
        g = MeshGrid(4, 4)
        assert g.node_id(Coord(0, 0)) == 0
        assert g.node_id(Coord(3, 0)) == 3
        assert g.node_id(Coord(0, 1)) == 4
        assert g.node_id(Coord(3, 3)) == 15

    def test_roundtrip(self):
        g = MeshGrid(5, 7)
        for nid in range(g.size):
            assert g.node_id(g.coord_of(nid)) == nid

    def test_out_of_range(self):
        g = MeshGrid(4, 4)
        with pytest.raises(ValueError):
            g.coord_of(16)
        with pytest.raises(ValueError):
            g.node_id(Coord(4, 0))


class TestAllocateRelease:
    def test_submesh_cycle(self, grid8):
        s = SubMesh.from_base(1, 1, 3, 2)
        grid8.allocate_submesh(s, 42)
        assert grid8.free_count == 64 - 6
        assert grid8.owner_at(Coord(1, 1)) == 42
        assert not grid8.is_free(Coord(3, 2))
        assert grid8.is_free(Coord(4, 1))
        grid8.release_submesh(s, 42)
        assert grid8.free_count == 64
        grid8.validate()

    def test_double_allocation_rejected(self, grid8):
        s = SubMesh.from_base(0, 0, 2, 2)
        grid8.allocate_submesh(s, 1)
        with pytest.raises(ValueError, match="double allocation"):
            grid8.allocate_submesh(SubMesh.from_base(1, 1, 2, 2), 2)
        grid8.validate()

    def test_release_wrong_owner_rejected(self, grid8):
        s = SubMesh.from_base(0, 0, 2, 2)
        grid8.allocate_submesh(s, 1)
        with pytest.raises(ValueError, match="not owned"):
            grid8.release_submesh(s, 2)

    def test_release_free_rejected(self, grid8):
        with pytest.raises(ValueError, match="not owned"):
            grid8.release_submesh(SubMesh.from_base(0, 0, 1, 1), 1)

    def test_out_of_bounds_rejected(self, grid8):
        with pytest.raises(ValueError):
            grid8.allocate_submesh(SubMesh.from_base(7, 7, 2, 2), 1)

    def test_nodes_cycle(self, grid8):
        nodes = [Coord(0, 0), Coord(5, 5), Coord(7, 0)]
        grid8.allocate_nodes(nodes, 9)
        assert grid8.free_count == 61
        assert grid8.owner_at(Coord(5, 5)) == 9
        grid8.release_nodes(nodes, 9)
        assert grid8.free_count == 64
        grid8.validate()

    def test_nodes_double_alloc_atomic(self, grid8):
        grid8.allocate_nodes([Coord(1, 1)], 1)
        with pytest.raises(ValueError):
            grid8.allocate_nodes([Coord(0, 0), Coord(1, 1)], 2)
        # atomicity: the non-conflicting node must not have been taken
        assert grid8.is_free(Coord(0, 0))
        grid8.validate()

    def test_owned_by(self, grid8):
        s = SubMesh.from_base(2, 3, 2, 1)
        grid8.allocate_submesh(s, 7)
        assert grid8.owned_by(7) == [Coord(2, 3), Coord(3, 3)]
        assert grid8.owned_by(8) == []

    def test_version_bumps(self, grid8):
        v0 = grid8.version
        grid8.allocate_nodes([Coord(0, 0)], 1)
        assert grid8.version > v0

    def test_reset(self, grid8):
        grid8.allocate_submesh(SubMesh.from_base(0, 0, 4, 4), 1)
        grid8.reset()
        assert grid8.free_count == 64
        assert grid8.owner_at(Coord(0, 0)) == FREE


class TestQueries:
    def test_submesh_free(self, grid8):
        assert grid8.submesh_free(SubMesh.from_base(0, 0, 8, 8))
        grid8.allocate_nodes([Coord(4, 4)], 1)
        assert not grid8.submesh_free(SubMesh.from_base(3, 3, 3, 3))
        assert grid8.submesh_free(SubMesh.from_base(0, 0, 4, 4))

    def test_free_mask_shape(self, grid8):
        mask = grid8.free_mask()
        assert mask.shape == (8, 8)  # (L, W)
        assert mask.all()

    def test_free_mask_indexing(self, grid8):
        grid8.allocate_nodes([Coord(2, 5)], 1)  # x=2, y=5
        mask = grid8.free_mask()
        assert not mask[5, 2]
        assert mask[2, 5]

    def test_ascii_art(self):
        g = MeshGrid(3, 2)
        g.allocate_nodes([Coord(0, 0)], 1)
        art = g.ascii_art()
        rows = art.split("\n")
        assert rows[-1] == "#.."  # y=0 printed last
        assert rows[0] == "..."


class TestDisjointHelper:
    def test_disjoint(self):
        assert submeshes_disjoint(
            [SubMesh(0, 0, 1, 1), SubMesh(2, 2, 3, 3)]
        )

    def test_overlapping(self):
        assert not submeshes_disjoint(
            [SubMesh(0, 0, 2, 2), SubMesh(2, 2, 3, 3)]
        )

    def test_empty_and_single(self):
        assert submeshes_disjoint([])
        assert submeshes_disjoint([SubMesh(0, 0, 5, 5)])
