"""Tests for the campaign engine: specs, dedup, executors, parallel
equivalence, and the sharded concurrency-safe result store."""

import json
from concurrent import futures

import pytest

from repro.core.config import SimConfig
from repro.core import _soa_native
from repro.experiments.campaign import (
    Campaign,
    PointSpec,
    ProcessPoolExecutor,
    Scale,
    SerialExecutor,
    ThreadPoolExecutor,
    make_executor,
    run_spec_replication,
    trace_fingerprint,
)
from repro.workload.trace import TraceJob
from repro.experiments.runner import METRICS, run_figure, run_point
from repro.experiments.store import ResultCache

TINY = SimConfig(width=8, length=8, jobs=15, seed=11)
SMOKE = Scale.by_name("smoke")
#: two replications so the parallel path exercises batching
TWO_REPS = Scale("two", jobs=12, min_replications=2, max_replications=2,
                 trace_max_jobs=100)


def _spec(**overrides) -> PointSpec:
    base = dict(workload="uniform", load=0.01, alloc="GABL", sched="FCFS",
                scale=SMOKE, config=TINY)
    base.update(overrides)
    return PointSpec(**base)


class TestPointSpec:
    def test_key_is_structured_json(self):
        payload = json.loads(_spec().key())
        assert payload["workload"] == "uniform"
        assert payload["alloc"] == "GABL"
        assert payload["config"]["width"] == 8
        assert payload["config"]["jobs"] == SMOKE.jobs  # scale pins jobs

    def test_key_cannot_alias_on_separator_fields(self):
        # a joined-string key would make these two cells identical
        a = _spec(alloc="A|B", sched="C")
        b = _spec(alloc="A", sched="B|C")
        assert a.key() != b.key()

    def test_key_ignores_user_jobs_override(self):
        # run job count comes from the scale, so configs differing only
        # in `jobs` are the same cell -- as specs AND as keys
        a = _spec(config=TINY.with_(jobs=50))
        b = _spec(config=TINY.with_(jobs=70))
        assert a.key() == b.key()
        assert a == b  # equality agrees with key(): dedup cannot strand
        assert a.config.jobs == SMOKE.jobs

    def test_trace_source_distinguishes_cells(self):
        assert _spec(workload="real").key() != \
            _spec(workload="real", trace_source="ext:abc").key()

    def test_different_traces_cannot_alias(self):
        t1 = [TraceJob(arrival=float(i * 5), size=2, runtime=30.0)
              for i in range(10)]
        t2 = [TraceJob(arrival=float(i * 5), size=2, runtime=60.0)
              for i in range(10)]
        f1, f2 = trace_fingerprint(t1), trace_fingerprint(t2)
        assert f1 != f2
        assert f1 == trace_fingerprint(list(t1))  # content-determined
        a = _spec(workload="real", trace_source=f1)
        b = _spec(workload="real", trace_source=f2)
        assert a.key() != b.key()

    def test_real_workload_is_deterministic_single_run(self):
        assert _spec(workload="real", scale=TWO_REPS).replication_bounds == (1, 1)
        assert _spec(scale=TWO_REPS).replication_bounds == (2, 2)

    def test_spec_is_hashable_and_picklable(self):
        import pickle

        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, _spec()}) == 1


class TestCampaignEnumeration:
    def test_dedup_within_campaign(self):
        c = Campaign([_spec(), _spec(), _spec(load=0.02)])
        assert len(c.points) == 2

    def test_figures_sharing_a_sweep_collapse(self):
        # figs 3 and 6 read the same uniform sweep (different metrics of
        # the same cells); fig9 adds its saturation load
        only3 = Campaign.from_figures(("fig3",))
        both = Campaign.from_figures(("fig3", "fig6"))
        plus9 = Campaign.from_figures(("fig3", "fig6", "fig9"))
        assert len(both.points) == len(only3.points) == 12
        assert len(plus9.points) == 18

    def test_sweep_grid(self):
        c = Campaign.sweep(["uniform", "exponential"], [0.01, 0.02],
                           ["GABL"], ["FCFS", "SSD"], scale="smoke")
        assert len(c.points) == 8


class TestExecutors:
    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        # auto (no spec knowledge): thread when the native SoA driver
        # is available, process otherwise
        auto = make_executor(4)
        if _soa_native.load_kernel() is not None:
            assert isinstance(auto, ThreadPoolExecutor)
        else:
            assert isinstance(auto, ProcessPoolExecutor)
        with pytest.raises(ValueError):
            ProcessPoolExecutor(1)

    def test_make_executor_kinds(self):
        assert isinstance(make_executor(4, "serial"), SerialExecutor)
        assert isinstance(make_executor(4, "thread"), ThreadPoolExecutor)
        assert isinstance(make_executor(4, "process"), ProcessPoolExecutor)
        # a process pool cannot run on one worker: degrades to serial
        assert isinstance(make_executor(1, "process"), SerialExecutor)
        with pytest.raises(ValueError):
            make_executor(4, "fibers")

    def test_auto_prefers_process_for_reference_engine(self):
        # reference-engine points are pure Python (GIL-bound): a thread
        # pool would serialise them, so auto-selection must not pick it
        exe = make_executor(4, specs=(_spec(),))
        assert isinstance(exe, ProcessPoolExecutor)

    def test_worker_function_is_picklable_task(self):
        out = run_spec_replication(_spec(), seed=TINY.seed)
        assert set(out) == set(METRICS)
        assert out["mean_turnaround"] > 0


class TestParallelEquivalence:
    def _campaign(self) -> Campaign:
        return Campaign.sweep(["uniform"], [0.01, 0.02], ["GABL", "MBS"],
                              ["FCFS"], scale=TWO_REPS, config=TINY)

    def test_process_pool_matches_serial(self, tmp_path):
        """Same campaign, -j 1 vs -j 2: byte-identical metric dicts."""
        campaign = self._campaign()
        serial = campaign.run(jobs=1, cache=ResultCache(tmp_path / "serial"))
        parallel = campaign.run(jobs=2, cache=ResultCache(tmp_path / "pool"))
        assert {s.key(): v for s, v in serial.items()} == \
            {s.key(): v for s, v in parallel.items()}

    def test_run_point_parallel_matches_serial(self, tmp_path):
        kwargs = dict(scale=TWO_REPS, config=TINY)
        a = run_point("uniform", 0.01, "GABL", "FCFS",
                      cache=ResultCache(tmp_path / "a"), jobs=1, **kwargs)
        b = run_point("uniform", 0.01, "GABL", "FCFS",
                      cache=ResultCache(tmp_path / "b"), jobs=2, **kwargs)
        assert a == b

    def test_external_trace_parallel_matches_serial(self, tmp_path):
        # exercises the ship-trace-once pool initializer path
        trace = [TraceJob(arrival=float(i * 4), size=(i % 4) + 1, runtime=25.0)
                 for i in range(40)]
        kwargs = dict(scale=SMOKE, config=TINY, trace=trace)
        a = run_point("real", 0.05, "GABL", "FCFS",
                      cache=ResultCache(tmp_path / "a"), jobs=1, **kwargs)
        b = run_point("real", 0.05, "GABL", "FCFS",
                      cache=ResultCache(tmp_path / "b"), jobs=2, **kwargs)
        assert a == b

    def test_run_figure_jobs_param(self, tmp_path):
        a = run_figure("fig9", scale="smoke", config=TINY,
                       cache=ResultCache(tmp_path / "a"), jobs=1)
        b = run_figure("fig9", scale="smoke", config=TINY,
                       cache=ResultCache(tmp_path / "b"), jobs=2)
        assert a.series == b.series

    def test_campaign_results_hit_the_store(self, tmp_path):
        campaign = self._campaign()
        cache = ResultCache(tmp_path / "c")
        campaign.run(jobs=1, cache=cache)
        for spec in campaign.points:
            assert cache.get(spec.key()) is not None
        # a fresh run against the warm store simulates nothing and agrees
        again = campaign.run(jobs=1, cache=ResultCache(tmp_path / "c"))
        assert set(again) == set(campaign.points)


def _legacy_key(spec: PointSpec) -> str:
    """The pre-shard cache key format, reconstructed for a spec."""
    cfg, sc = spec.run_config, spec.scale
    return "|".join(str(v) for v in (
        spec.workload, spec.load, spec.alloc, spec.sched, sc.jobs,
        sc.min_replications, sc.max_replications, sc.trace_max_jobs,
        spec.network_mode, cfg.width, cfg.length, cfg.topology, cfg.t_s,
        cfg.p_len, cfg.num_mes, cfg.trace_demand_multiplier,
        cfg.round_gap_factor, cfg.max_messages, cfg.seed,
        cfg.scheduler_window, "sdsc",
    ))


class TestLegacyMigration:
    def test_legacy_keys_translate_to_structured_keys(self):
        from repro.experiments.store import _translate_legacy_key

        for spec in (_spec(), _spec(workload="real", load=0.05),
                     _spec(scale=Scale.by_name("paper"), sched="SSD")):
            assert _translate_legacy_key(_legacy_key(spec)) == spec.key()

    def test_migrated_entries_reachable_via_run_point(self, tmp_path):
        """A pre-shard results.json keeps serving cache hits unchanged."""
        spec = _spec()
        legacy = tmp_path / "c.json"
        legacy.write_text(json.dumps(
            {_legacy_key(spec): {m: 1.25 for m in METRICS}}
        ))
        out = run_point("uniform", 0.01, "GABL", "FCFS", scale=SMOKE,
                        config=TINY, cache=ResultCache(legacy))
        assert out == {m: 1.25 for m in METRICS}  # hit, not re-simulated


def _put_range(args) -> int:
    """Concurrent-writer worker: put n distinct keys into a shared dir."""
    cache_dir, start, n = args
    cache = ResultCache(cache_dir)
    for i in range(start, start + n):
        cache.put(f"key-{i}", {"m": float(i)})
    return n


class TestShardedStore:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = _spec().key()
        cache.put(key, {"m": 1.5, "k": 2.0})
        assert ResultCache(tmp_path / "c").get(key) == {"m": 1.5, "k": 2.0}

    def test_one_shard_per_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        for i in range(5):
            cache.put(f"key-{i}", {"m": float(i)})
        assert len(list(cache.path.glob("*.json"))) == 5
        assert not list(cache.path.glob("*.tmp"))

    def test_put_does_not_rewrite_other_shards(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("a", {"m": 1.0})
        shard = next(cache.path.glob("*.json"))
        before = shard.stat().st_mtime_ns
        cache.put("b", {"m": 2.0})
        assert shard.stat().st_mtime_ns == before

    def test_concurrent_writers_distinct_keys(self, tmp_path):
        """Two worker processes populate one store without corruption."""
        cache_dir = tmp_path / "shared"
        with futures.ProcessPoolExecutor(max_workers=2) as pool:
            counts = list(pool.map(
                _put_range, [(cache_dir, 0, 40), (cache_dir, 40, 40)]
            ))
        assert counts == [40, 40]
        cache = ResultCache(cache_dir)
        for i in range(80):
            assert cache.get(f"key-{i}") == {"m": float(i)}, f"key-{i} lost"
        assert not list(cache.path.glob("*.tmp"))