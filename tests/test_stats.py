"""Unit tests for the statistics package (Welford, CI, replications)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.ci import mean_confidence_interval, relative_error
from repro.stats.replication import ReplicationController, run_replications
from repro.stats.welford import Welford


class TestWelford:
    def test_empty(self):
        w = Welford()
        assert w.n == 0
        assert w.variance == 0.0
        assert w.sem == 0.0

    def test_single(self):
        w = Welford()
        w.add(5.0)
        assert w.mean == 5.0
        assert w.variance == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        xs = rng.normal(10, 3, size=500)
        w = Welford()
        for x in xs:
            w.add(float(x))
        assert w.mean == pytest.approx(float(np.mean(xs)))
        assert w.variance == pytest.approx(float(np.var(xs, ddof=1)))
        assert w.std == pytest.approx(float(np.std(xs, ddof=1)))

    def test_merge(self):
        rng = np.random.default_rng(2)
        xs = rng.exponential(2.0, size=301)
        a, b = Welford(), Welford()
        for x in xs[:150]:
            a.add(float(x))
        for x in xs[150:]:
            b.add(float(x))
        a.merge(b)
        assert a.n == 301
        assert a.mean == pytest.approx(float(np.mean(xs)))
        assert a.variance == pytest.approx(float(np.var(xs, ddof=1)))

    def test_merge_empty_cases(self):
        a, b = Welford(), Welford()
        b.add(3.0)
        a.merge(b)
        assert a.mean == 3.0
        a.merge(Welford())
        assert a.n == 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_property_matches_reference(self, xs):
        w = Welford()
        for x in xs:
            w.add(x)
        assert w.mean == pytest.approx(sum(xs) / len(xs), rel=1e-9, abs=1e-6)


class TestCI:
    def test_known_value(self):
        """95% CI of [1..10]: mean 5.5, sd=3.0277, sem=0.9574,
        t(0.975, 9)=2.2622 -> half-width 2.1659."""
        values = list(range(1, 11))
        mean, hw = mean_confidence_interval(values)
        assert mean == pytest.approx(5.5)
        assert hw == pytest.approx(2.1659, rel=1e-3)

    def test_single_value_infinite(self):
        mean, hw = mean_confidence_interval([4.2])
        assert mean == 4.2
        assert math.isinf(hw)

    def test_constant_values_zero_width(self):
        mean, hw = mean_confidence_interval([7.0] * 5)
        assert mean == 7.0 and hw == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_bad_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1, 2], confidence=1.5)

    def test_wider_confidence_wider_interval(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        _, hw95 = mean_confidence_interval(values, 0.95)
        _, hw99 = mean_confidence_interval(values, 0.99)
        assert hw99 > hw95

    def test_relative_error(self):
        assert relative_error(10.0, 0.5) == pytest.approx(0.05)
        assert relative_error(0.0, 0.5) == math.inf
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(-10.0, 0.5) == pytest.approx(0.05)


class TestReplications:
    def test_deterministic_single_run(self):
        calls = []

        def run(seed):
            calls.append(seed)
            return {"m": 42.0}

        res = run_replications(run, ["m"], min_replications=1, max_replications=1)
        assert res.replications == 1
        assert res.converged
        assert res.mean("m") == 42.0

    def test_stops_when_converged(self):
        """Low-variance stream converges at min_replications."""
        rng = np.random.default_rng(0)

        def run(seed):
            return {"m": 100.0 + float(rng.normal(0, 0.01))}

        res = run_replications(run, ["m"], min_replications=3, max_replications=20)
        assert res.replications == 3
        assert res.converged
        assert res["m"].relative_error <= 0.05

    def test_runs_to_cap_when_noisy(self):
        rng = np.random.default_rng(1)

        def run(seed):
            return {"m": float(rng.uniform(0, 1000))}

        res = run_replications(run, ["m"], min_replications=3, max_replications=5)
        assert res.replications == 5
        assert not res.converged

    def test_paper_stopping_rule(self):
        """95% confidence, 5% relative error (paper section 5)."""
        rng = np.random.default_rng(2)

        def run(seed):
            return {"m": float(rng.normal(50, 2.0))}

        res = run_replications(run, ["m"], min_replications=3, max_replications=50)
        assert res.converged
        assert res["m"].relative_error <= 0.05

    def test_multiple_metrics_all_must_converge(self):
        rng = np.random.default_rng(3)

        def run(seed):
            return {"stable": 10.0, "noisy": float(rng.uniform(0, 100))}

        res = run_replications(
            run, ["stable", "noisy"], min_replications=3, max_replications=6
        )
        assert res.replications == 6
        assert not res.converged

    def test_distinct_seeds_passed(self):
        seeds = []

        def run(seed):
            seeds.append(seed)
            return {"m": float(seed)}

        run_replications(run, ["m"], min_replications=3, max_replications=3,
                         base_seed=100)
        assert seeds == [100, 101, 102]

    def test_validation(self):
        run = lambda seed: {"m": 1.0}
        with pytest.raises(ValueError):
            run_replications(run, ["m"], min_replications=0)
        with pytest.raises(ValueError):
            run_replications(run, ["m"], min_replications=5, max_replications=2)


def _stream(seed: int) -> dict:
    """Synthetic metric stream: deterministic per seed, converges slowly."""
    rng = np.random.default_rng(seed)
    return {"m": float(rng.normal(100, 15.0)), "k": float(rng.normal(5, 0.1))}


class TestReplicationController:
    """The batched controller must reproduce the sequential rule."""

    def _drive(self, **kwargs):
        ctrl = ReplicationController(["m", "k"], **kwargs)
        seen = []
        while seeds := ctrl.next_seeds():
            seen.append(seeds)
            ctrl.add_batch([_stream(s) for s in seeds])
        return ctrl, seen

    def test_warmup_batch_is_min_replications(self):
        ctrl, seen = self._drive(min_replications=3, max_replications=20,
                                 base_seed=10)
        assert seen[0] == (10, 11, 12)
        assert all(len(batch) == 1 for batch in seen[1:])

    def test_matches_sequential_stopping_rule(self):
        for base_seed in (0, 7, 42):
            seq = run_replications(_stream, ["m", "k"], min_replications=3,
                                   max_replications=20, base_seed=base_seed)
            ctrl, _ = self._drive(min_replications=3, max_replications=20,
                                  base_seed=base_seed)
            bat = ctrl.result()
            assert bat.replications == seq.replications
            assert bat.converged == seq.converged
            assert bat["m"].values == seq["m"].values
            assert bat.mean("m") == seq.mean("m")
            assert bat.mean("k") == seq.mean("k")

    def test_single_deterministic_run(self):
        ctrl, seen = self._drive(min_replications=1, max_replications=1)
        assert seen == [(0,)]
        assert ctrl.result().converged

    def test_cap_without_convergence(self):
        def noisy(seed):
            return {"m": float(np.random.default_rng(seed).uniform(0, 1e6)),
                    "k": 1.0}

        ctrl = ReplicationController(["m", "k"], min_replications=3,
                                     max_replications=5)
        while seeds := ctrl.next_seeds():
            ctrl.add_batch([noisy(s) for s in seeds])
        res = ctrl.result()
        assert res.replications == 5
        assert not res.converged

    def test_larger_batch_size_never_exceeds_cap(self):
        ctrl = ReplicationController(["m", "k"], min_replications=3,
                                     max_replications=7, batch_size=3)
        issued = []
        while seeds := ctrl.next_seeds():
            issued.extend(seeds)
            ctrl.add_batch([{"m": float(np.random.default_rng(s).uniform(0, 1e6)),
                             "k": 1.0} for s in seeds])
        assert len(issued) == 7  # 3 warm-up + 3 + 1 (clipped at the cap)
        assert issued == list(range(7))

    def test_results_before_feedback_rejected(self):
        ctrl = ReplicationController(["m"], min_replications=2,
                                     max_replications=4)
        ctrl.next_seeds()
        with pytest.raises(RuntimeError):
            ctrl.next_seeds()
        with pytest.raises(ValueError):
            ctrl.add_batch([{"m": 1.0}] * 3)  # more results than seeds
