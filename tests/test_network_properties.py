"""Property-style tests of the wormhole engines' documented agreements.

The ``fast`` docstring claims that with *time-staggered* injections its
whole-path reservation order coincides exactly with ``causal`` mode's
FIFO-by-arrival arbitration: when each packet is injected after the
previous packet's header has finished every channel crossing, arrival
order at every shared channel equals reservation order, so the two
engines must agree packet-for-packet -- not just on aggregates -- even
while channels are still occupied by earlier packets' bodies (a long
``p_len`` keeps real cross-packet contention in play).  This was an
untested prose claim; here it is enforced as a property over randomly
generated packet sets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine
from repro.mesh.geometry import Coord
from repro.network.backend import make_backend
from repro.network.topology import MeshTopology

WIDTH = LENGTH = 8
#: long packets relative to the flight time => heavy channel occupancy
P_LEN = 48
T_S = 1.0

coord = st.tuples(
    st.integers(0, WIDTH - 1), st.integers(0, LENGTH - 1)
).map(lambda p: Coord(*p))

packet = st.tuples(coord, coord).filter(lambda sd: sd[0] != sd[1])


def staggered_times(n: int) -> list[float]:
    """Injection times spaced by one worst-case header flight.

    ``(max_hops + 2) * hop_cost`` bounds how long any header needs to
    finish all its channel crossings, so packet ``i + 1`` is always
    injected after packet ``i``'s reservations are physically decided --
    while channels stay occupied for ``P_LEN`` cycles, far longer, so
    later packets still block on earlier ones.
    """
    flight = (WIDTH + LENGTH + 2) * (T_S + 1.0)
    return [i * flight for i in range(n)]


@settings(max_examples=60, deadline=None)
@given(st.lists(packet, min_size=1, max_size=14))
def test_fast_equals_causal_on_staggered_injections(packets):
    topo = MeshTopology(WIDTH, LENGTH)
    fast = make_backend("fast", topo, Engine(), t_s=T_S, p_len=P_LEN)
    times = staggered_times(len(packets))
    fast_timings = [
        fast.transmit(src, dst, at)
        for (src, dst), at in zip(packets, times)
    ]

    engine = Engine()
    causal = make_backend("causal", topo, engine, t_s=T_S, p_len=P_LEN)
    causal_timings: list = [None] * len(packets)

    def collect(i):
        # deliveries may complete out of injection order; index by packet
        return lambda timing: causal_timings.__setitem__(i, timing)

    for i, ((src, dst), at) in enumerate(zip(packets, times)):
        engine.schedule_at(at, causal.send, src, dst, at, collect(i))
    engine.run()

    assert None not in causal_timings
    # exact agreement, packet for packet -- including blocking accounting
    assert causal_timings == fast_timings


@settings(max_examples=40, deadline=None)
@given(st.lists(packet, min_size=1, max_size=14))
def test_batch_equals_fast_on_staggered_injections(packets):
    """The batch backend's single-packet path shares the reference
    arithmetic, so it inherits the staggered agreement with causal."""
    topo = MeshTopology(WIDTH, LENGTH)
    fast = make_backend("fast", topo, Engine(), t_s=T_S, p_len=P_LEN)
    batch = make_backend("batch", topo, Engine(), t_s=T_S, p_len=P_LEN)
    times = staggered_times(len(packets))
    for (src, dst), at in zip(packets, times):
        assert batch.transmit(src, dst, at) == fast.transmit(src, dst, at)
