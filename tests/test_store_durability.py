"""Durability tests for the sharded result store: orphaned-temp
reaping, the keys() scan, the async writer thread, and the campaign
drain loop's flush-on-teardown contract."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.store import (
    TEMP_REAP_AGE,
    AsyncResultWriter,
    ResultCache,
    _shard_name,
)


@pytest.fixture(autouse=True)
def disk_cache(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")  # force the disk path on


def backdate(path, age=TEMP_REAP_AGE + 120.0):
    old = time.time() - age
    os.utime(path, (old, old))


class TestTempReaping:
    def test_orphaned_tmp_reaped_on_open(self, tmp_path):
        cache = ResultCache(tmp_path / "shards")
        cache.put("k1", {"v": 1})
        # a writer killed between mkstemp and os.replace leaves this
        orphan = cache.path / "tmpabc123.tmp"
        orphan.write_text('{"partial')
        backdate(orphan)
        reopened = ResultCache(tmp_path / "shards")
        assert not orphan.exists()
        assert reopened.get("k1") == {"v": 1}  # resume is clean

    def test_fresh_tmp_survives_open(self, tmp_path):
        # a *live* concurrent writer's in-flight temp must not be reaped
        cache = ResultCache(tmp_path / "shards")
        cache.path.mkdir(parents=True, exist_ok=True)
        inflight = cache.path / "tmpxyz.tmp"
        inflight.write_text("{}")
        ResultCache(tmp_path / "shards")
        assert inflight.exists()

    def test_keys_ignores_temps_and_foreign_files(self, tmp_path):
        cache = ResultCache(tmp_path / "shards")
        cache.put_many([("k1", {"v": 1}), ("k2", {"v": 2})])
        orphan = cache.path / "tmporphan.tmp"
        orphan.write_text('{"key": "ghost"}')
        backdate(orphan)
        # jobs/ manifests and stray json must not surface as point keys
        (cache.path / "jobs").mkdir()
        (cache.path / "jobs" / "deadbeef.json").write_text('{"id": "x"}')
        (cache.path / "notes.json").write_text('{"key": "fake"}')
        fresh = ResultCache(tmp_path / "shards")
        assert sorted(fresh.keys()) == ["k1", "k2"]

    def test_keys_merges_memory_and_disk(self, tmp_path):
        a = ResultCache(tmp_path / "shards")
        a.put("disk-key", {"v": 1})
        b = ResultCache(tmp_path / "shards")
        b.put("mem-key", {"v": 2})
        assert sorted(b.keys()) == ["disk-key", "mem-key"]

    def test_reap_returns_count(self, tmp_path):
        cache = ResultCache(tmp_path / "shards")
        cache.path.mkdir(parents=True, exist_ok=True)
        for i in range(3):
            p = cache.path / f"tmp{i}.tmp"
            p.write_text("x")
            backdate(p)
        assert ResultCache(tmp_path / "shards")._reap_temps() in (0, 3)
        assert not list(cache.path.glob("*.tmp"))


class TestAsyncResultWriter:
    def test_writes_reach_cache_and_disk(self, tmp_path):
        cache = ResultCache(tmp_path / "shards")
        writer = AsyncResultWriter(cache)
        writer.put("k1", {"v": 1})
        writer.put_many([("k2", {"v": 2}), ("k3", {"v": 3})])
        writer.flush()
        assert cache.get("k2") == {"v": 2}
        shard = cache.path / _shard_name("k3")
        assert json.loads(shard.read_text())["value"] == {"v": 3}
        writer.close()

    def test_get_reads_through(self, tmp_path):
        cache = ResultCache(tmp_path / "shards")
        cache.put("k1", {"v": 1})
        writer = AsyncResultWriter(cache)
        assert writer.get("k1") == {"v": 1}
        writer.close()

    def test_close_is_idempotent_and_put_after_close_raises(self, tmp_path):
        writer = AsyncResultWriter(ResultCache(tmp_path / "shards"))
        writer.put("k", {"v": 0})
        writer.close()
        writer.close()
        with pytest.raises(RuntimeError):
            writer.put("k2", {"v": 1})

    def test_drop_in_for_campaign_run(self, tmp_path, monkeypatch):
        # the writer duck-types the cache API Campaign.run consumes
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.campaign import Campaign

        campaign = Campaign.sweep(
            workloads=("uniform",), loads=(0.02,),
            allocs=("GABL",), scheds=("FCFS",), scale="smoke",
        )
        cache = ResultCache(tmp_path / "shards")
        writer = AsyncResultWriter(cache)
        results = campaign.run(cache=writer)
        writer.flush()
        spec = campaign.points[0]
        assert cache.get(spec.key()) is not None
        writer.close()
        # a rerun against the same store is a pure cache hit
        again = Campaign.sweep(
            workloads=("uniform",), loads=(0.02,),
            allocs=("GABL",), scheds=("FCFS",), scale="smoke",
        ).run(cache=ResultCache(tmp_path / "shards"))
        assert dict(again[spec]) == dict(results[spec])


class TestDrainLoopFlush:
    def test_interrupt_mid_campaign_flushes_finished_points(
        self, tmp_path, monkeypatch
    ):
        """A KeyboardInterrupt right after the first point completes
        must not lose it: the finally-flush writes every finished point
        before the executor tears down."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.campaign import Campaign

        campaign = Campaign.sweep(
            workloads=("uniform",), loads=(0.02, 0.03, 0.04),
            allocs=("GABL",), scheds=("FCFS",), scale="smoke",
        )
        cache = ResultCache(tmp_path / "shards")
        seen = []

        def explode(msg: str) -> None:
            if msg.startswith("["):  # a "[done/total] label" completion line
                seen.append(msg)
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(cache=cache, progress=explode)
        assert seen  # the interrupt fired after a completion
        flushed = [k for k in ResultCache(tmp_path / "shards").keys()]
        assert flushed, "finished point was dropped by the teardown path"

    def test_on_point_callback_sees_hits_and_fresh_points(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments.campaign import Campaign

        def sweep():
            return Campaign.sweep(
                workloads=("uniform",), loads=(0.02, 0.03),
                allocs=("GABL",), scheds=("FCFS",), scale="smoke",
            )

        cache = ResultCache(tmp_path / "shards")
        calls: list[tuple[str, int, int]] = []
        sweep().run(
            cache=cache,
            on_point=lambda s, r, d, t: calls.append((s.label(), d, t)),
        )
        assert len(calls) == 2
        assert [c[1:] for c in calls] == [(1, 2), (2, 2)]
        # on a resumed run every point is a cache hit; the callback
        # still reports each one (the service's progress feed)
        replay: list[tuple[int, int]] = []
        sweep().run(
            cache=ResultCache(tmp_path / "shards"),
            on_point=lambda s, r, d, t: replay.append((d, t)),
        )
        assert replay == [(1, 2), (2, 2)]
