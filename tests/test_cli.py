"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs away from the repo-level result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    # reset the process-wide cache singleton between tests
    from repro.experiments.store import reset_global_cache

    reset_global_cache()
    yield
    reset_global_cache()


def test_point_command(capsys):
    rc = main([
        "point", "--workload", "uniform", "--load", "0.02",
        "--alloc", "GABL", "--sched", "FCFS", "--scale", "smoke",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GABL(FCFS)" in out
    assert "turnaround=" in out


def test_point_accepts_pipeline_spec(capsys):
    rc = main([
        "point", "--workload", "uniform | thin:0.5", "--load", "0.02",
        "--scale", "smoke",
    ])
    assert rc == 0
    assert "uniform | thin:0.5" in capsys.readouterr().out


def test_point_rejects_bad_pipeline_spec(capsys):
    rc = main([
        "point", "--workload", "uniform | bogus:1", "--load", "0.02",
        "--scale", "smoke",
    ])
    assert rc == 2
    assert "bad point parameters" in capsys.readouterr().err


def test_point_rejects_out_of_range_transform_arg(capsys):
    rc = main([
        "point", "--workload", "uniform | thin:0", "--load", "0.02",
        "--scale", "smoke",
    ])
    assert rc == 2
    assert "bad point parameters" in capsys.readouterr().err


def test_point_requires_args(capsys):
    rc = main(["point", "--scale", "smoke"])
    assert rc == 2
    assert "requires" in capsys.readouterr().err


def test_unknown_target(capsys):
    rc = main(["fig99", "--scale", "smoke"])
    assert rc == 2
    assert "unknown target" in capsys.readouterr().err


def test_figure_command_smoke(capsys, monkeypatch):
    # shrink the work: figure on the paper mesh is slow, so reuse the
    # point cache across series by running the cheapest figure
    rc = main(["fig9", "--scale", "smoke"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FIG9" in out
    assert "GABL(SSD)" in out


def test_swf_option(tmp_path, capsys):
    swf = tmp_path / "t.swf"
    lines = [
        f"{i} {i * 50} 0 60 {(i % 5) + 1} -1 -1 {(i % 5) + 1} "
        "-1 -1 1 1 1 1 -1 -1 -1 -1"
        for i in range(1, 41)
    ]
    swf.write_text("\n".join(lines))
    rc = main([
        "point", "--workload", "real", "--load", "0.05",
        "--swf", str(swf), "--scale", "smoke",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "loaded 40 jobs" in out


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_network_mode_choices_include_batch(capsys):
    rc = main([
        "point", "--workload", "uniform", "--load", "0.02",
        "--network-mode", "batch", "--scale", "smoke",
    ])
    assert rc == 0
    assert "turnaround=" in capsys.readouterr().out


# ------------------------------------------------------------ --help audit
#: every CLI target and the contract fragments its --help must name:
#: the report schema written by --out (where applicable) and the
#: documented exit codes
_HELP_CONTRACTS = {
    "fig9": ["schema-3", "figures report"],
    "all": ["text tables"],
    "claims": ["exit 0 all pass; 1 a claim failed"],
    "point": ["2 missing/bad parameters"],
    "sweep": ["schema-3 campaign report"],
    "scenario": ["schema-3 scenario report", "2 bad scenario file"],
    "diff": [
        "schema-3 diff report",
        "1 regression",
        "2 malformed/old-schema reports or disjoint",
    ],
    "plot": ["schema-2/3 report", "2 unreadable report"],
    "serve": ["resumes\n                     unfinished jobs", "0 on clean shutdown"],
    "submit": ["--wait polls until done", "2 bad file or unreachable service"],
    "status": ["2 unknown job or unreachable service"],
}


@pytest.mark.parametrize("target", sorted(_HELP_CONTRACTS))
def test_help_for_every_target_exits_zero_and_names_contract(
    target, capsys
):
    """`repro <target> --help` exits 0 and the help text documents the
    target's report schema and exit-code contract."""
    with pytest.raises(SystemExit) as exc:
        main([target, "--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    # figure ids appear as the fig2..fig16 range in the contract table
    assert (target in out) or (target.startswith("fig") and "fig2..fig16" in out)
    for fragment in _HELP_CONTRACTS[target]:
        assert fragment in out, f"--help lost {fragment!r} for {target}"


def test_help_names_out_schema_for_out_capable_targets(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    # the --out option itself names the current schema
    assert "schema-3" in out
    # and the schema history is summarised once
    assert "1 legacy" in out and "2 keys+stats" in out


# ------------------------------------------------------------- plot target
def test_plot_requires_exactly_one_report(capsys):
    assert main(["plot"]) == 2
    assert "exactly one report file" in capsys.readouterr().err
    assert main(["plot", "a.json", "b.json"]) == 2


def test_plot_rejects_unreadable_report(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["plot", str(bad)]) == 2
    assert "plot error" in capsys.readouterr().err


def test_plot_golden_scenario_ascii(capsys):
    from pathlib import Path

    golden = Path(__file__).resolve().parent / "golden" / "scenario_smoke.json"
    rc = main(["plot", str(golden)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "utilization vs. time" in out
    assert "queue_length vs. time" in out
    assert "A = " in out


def test_plot_compare_and_png_flags(tmp_path, capsys):
    from pathlib import Path

    golden = Path(__file__).resolve().parent / "golden" / "scenario_smoke.json"
    png = tmp_path / "out.png"
    rc = main([
        "plot", str(golden), "--compare", str(golden),
        "--metric", "utilization", "--png", str(png),
    ])
    assert rc == 0
    captured = capsys.readouterr()
    assert "B:" in captured.out
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        assert not png.exists()
        assert "matplotlib not importable" in captured.err
    else:
        assert png.exists()

def test_plot_cannot_combine_with_other_targets(capsys):
    assert main(["fig9", "plot", "x.json"]) == 2
    assert "cannot be combined" in capsys.readouterr().err
