"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs away from the repo-level result cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    # reset the process-wide cache singleton between tests
    from repro.experiments.store import reset_global_cache

    reset_global_cache()
    yield
    reset_global_cache()


def test_point_command(capsys):
    rc = main([
        "point", "--workload", "uniform", "--load", "0.02",
        "--alloc", "GABL", "--sched", "FCFS", "--scale", "smoke",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GABL(FCFS)" in out
    assert "turnaround=" in out


def test_point_accepts_pipeline_spec(capsys):
    rc = main([
        "point", "--workload", "uniform | thin:0.5", "--load", "0.02",
        "--scale", "smoke",
    ])
    assert rc == 0
    assert "uniform | thin:0.5" in capsys.readouterr().out


def test_point_rejects_bad_pipeline_spec(capsys):
    rc = main([
        "point", "--workload", "uniform | bogus:1", "--load", "0.02",
        "--scale", "smoke",
    ])
    assert rc == 2
    assert "bad point parameters" in capsys.readouterr().err


def test_point_rejects_out_of_range_transform_arg(capsys):
    rc = main([
        "point", "--workload", "uniform | thin:0", "--load", "0.02",
        "--scale", "smoke",
    ])
    assert rc == 2
    assert "bad point parameters" in capsys.readouterr().err


def test_point_requires_args(capsys):
    rc = main(["point", "--scale", "smoke"])
    assert rc == 2
    assert "requires" in capsys.readouterr().err


def test_unknown_target(capsys):
    rc = main(["fig99", "--scale", "smoke"])
    assert rc == 2
    assert "unknown target" in capsys.readouterr().err


def test_figure_command_smoke(capsys, monkeypatch):
    # shrink the work: figure on the paper mesh is slow, so reuse the
    # point cache across series by running the cheapest figure
    rc = main(["fig9", "--scale", "smoke"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FIG9" in out
    assert "GABL(SSD)" in out


def test_swf_option(tmp_path, capsys):
    swf = tmp_path / "t.swf"
    lines = [
        f"{i} {i * 50} 0 60 {(i % 5) + 1} -1 -1 {(i % 5) + 1} "
        "-1 -1 1 1 1 1 -1 -1 -1 -1"
        for i in range(1, 41)
    ]
    swf.write_text("\n".join(lines))
    rc = main([
        "point", "--workload", "real", "--load", "0.05",
        "--swf", str(swf), "--scale", "smoke",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "loaded 40 jobs" in out


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_network_mode_choices_include_batch(capsys):
    rc = main([
        "point", "--workload", "uniform", "--load", "0.02",
        "--network-mode", "batch", "--scale", "smoke",
    ])
    assert rc == 0
    assert "turnaround=" in capsys.readouterr().out
