"""Unit + property tests for repro.mesh.rectfind against brute force."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import MeshGrid
from repro.mesh.rectfind import (
    all_suitable_bases,
    find_suitable_submesh,
    free_submesh_exists,
    largest_free_rect,
    largest_free_rect_bounded,
)
from tests.conftest import (
    brute_force_largest_bounded,
    brute_force_suitable,
    random_occupancy,
)


class TestFindSuitable:
    def test_empty_grid(self, grid8):
        s = find_suitable_submesh(grid8, 3, 4)
        assert s == SubMesh.from_base(0, 0, 3, 4)

    def test_full_size(self, grid8):
        assert find_suitable_submesh(grid8, 8, 8) is not None

    def test_too_big(self, grid8):
        assert find_suitable_submesh(grid8, 9, 1) is None
        assert find_suitable_submesh(grid8, 1, 9) is None

    def test_invalid_request(self, grid8):
        with pytest.raises(ValueError):
            find_suitable_submesh(grid8, 0, 3)

    def test_row_major_first(self, grid8):
        # block the origin so the first fit moves right
        grid8.allocate_nodes([Coord(0, 0)], 1)
        s = find_suitable_submesh(grid8, 2, 2)
        assert s == SubMesh.from_base(1, 0, 2, 2)

    def test_wraps_to_next_row(self, grid8):
        # block all of row 0
        grid8.allocate_submesh(SubMesh.from_base(0, 0, 8, 1), 1)
        s = find_suitable_submesh(grid8, 2, 2)
        assert s == SubMesh.from_base(0, 1, 2, 2)

    def test_paper_fig1_scenario(self):
        """Fig. 1: no 2x2 contiguous sub-mesh among 4 scattered free nodes."""
        g = MeshGrid(4, 4)
        free = {Coord(0, 3), Coord(3, 3), Coord(1, 1), Coord(2, 0)}
        busy = [
            Coord(x, y) for y in range(4) for x in range(4)
            if Coord(x, y) not in free
        ]
        g.allocate_nodes(busy, 1)
        assert g.free_count == 4
        assert find_suitable_submesh(g, 2, 2) is None

    @settings(max_examples=60, deadline=None)
    @given(
        density=st.floats(0.0, 0.9),
        seed=st.integers(0, 1000),
        w=st.integers(1, 8),
        l=st.integers(1, 8),
    )
    def test_matches_brute_force(self, density, seed, w, l):
        g = MeshGrid(8, 8)
        random_occupancy(g, density, seed)
        assert find_suitable_submesh(g, w, l) == brute_force_suitable(g, w, l)


class TestAllSuitableBases:
    def test_empty_grid_count(self, grid8):
        bases = all_suitable_bases(grid8, 3, 3)
        assert len(bases) == 6 * 6

    def test_order_row_major(self, grid8):
        bases = all_suitable_bases(grid8, 7, 7)
        assert bases == [Coord(0, 0), Coord(1, 0), Coord(0, 1), Coord(1, 1)]

    def test_oversize_empty(self, grid8):
        assert all_suitable_bases(grid8, 9, 9) == []

    def test_every_base_is_free(self, grid8):
        random_occupancy(grid8, 0.4, 3)
        for b in all_suitable_bases(grid8, 2, 3):
            assert grid8.submesh_free(SubMesh.from_base(b.x, b.y, 2, 3))


class TestLargestFreeRect:
    def test_empty_grid(self, grid8):
        r = largest_free_rect(grid8)
        assert r is not None and r.area == 64

    def test_full_grid(self, grid8):
        grid8.allocate_submesh(SubMesh.from_base(0, 0, 8, 8), 1)
        assert largest_free_rect(grid8) is None

    def test_l_shape(self):
        # busy block leaves an L: best free rect is 8x4 = 32
        g = MeshGrid(8, 8)
        g.allocate_submesh(SubMesh.from_base(4, 4, 4, 4), 1)
        r = largest_free_rect(g)
        assert r is not None and r.area == 32

    def test_returned_rect_is_free(self, grid8):
        random_occupancy(grid8, 0.3, 11)
        r = largest_free_rect(grid8)
        assert r is not None
        assert grid8.submesh_free(r)

    @settings(max_examples=60, deadline=None)
    @given(density=st.floats(0.0, 0.95), seed=st.integers(0, 1000))
    def test_area_matches_brute_force(self, density, seed):
        g = MeshGrid(8, 8)
        random_occupancy(g, density, seed)
        r = largest_free_rect(g)
        expected = brute_force_largest_bounded(g)
        if expected == 0:
            assert r is None
        else:
            assert r is not None and r.area == expected


class TestLargestBounded:
    def test_side_bounds(self, grid8):
        r = largest_free_rect_bounded(grid8, max_w=3, max_l=5)
        assert r is not None
        assert r.width <= 3 and r.length <= 5
        assert r.area == 15

    def test_area_bound(self, grid8):
        r = largest_free_rect_bounded(grid8, max_area=10)
        assert r is not None
        assert r.area <= 10

    def test_area_bound_one(self, grid8):
        r = largest_free_rect_bounded(grid8, max_area=1)
        assert r is not None and r.area == 1

    def test_zero_area_bound(self, grid8):
        assert largest_free_rect_bounded(grid8, max_area=0) is None

    def test_respects_occupancy(self, grid8):
        random_occupancy(grid8, 0.5, 5)
        r = largest_free_rect_bounded(grid8, max_w=4, max_l=4, max_area=9)
        if r is not None:
            assert grid8.submesh_free(r)
            assert r.width <= 4 and r.length <= 4 and r.area <= 9

    @settings(max_examples=80, deadline=None)
    @given(
        density=st.floats(0.0, 0.95),
        seed=st.integers(0, 500),
        mw=st.integers(1, 8),
        ml=st.integers(1, 8),
        ma=st.integers(1, 64),
    )
    def test_bounded_matches_brute_force(self, density, seed, mw, ml, ma):
        g = MeshGrid(8, 8)
        random_occupancy(g, density, seed)
        r = largest_free_rect_bounded(g, mw, ml, ma)
        expected = brute_force_largest_bounded(g, mw, ml, ma)
        if expected == 0:
            assert r is None
        else:
            assert r is not None
            assert r.area == expected
            assert g.submesh_free(r)
            assert r.width <= mw and r.length <= ml and r.area <= ma


class TestExists:
    def test_exists_on_empty(self, grid8):
        assert free_submesh_exists(grid8, 8, 8)

    def test_not_exists_when_blocked(self, grid8):
        grid8.allocate_nodes([Coord(4, 4)], 1)
        assert not free_submesh_exists(grid8, 8, 8)
