"""Unit tests for repro.stats.distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.distribution import (
    Histogram,
    percentile,
    summarize,
)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.5], 95) == 7.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60),
        q=st.floats(0, 100),
    )
    def test_matches_numpy(self, data, q):
        assert percentile(data, q) == pytest.approx(
            float(np.percentile(np.array(data), q)), rel=1e-9, abs=1e-6
        )


class TestSummarize:
    def test_known_values(self):
        s = summarize(range(1, 101))
        assert s.n == 100
        assert s.mean == pytest.approx(50.5)
        assert s.median == pytest.approx(50.5)
        assert s.minimum == 1 and s.maximum == 100
        assert s.p95 == pytest.approx(95.05)

    def test_tail_ratio(self):
        heavy = summarize([1] * 90 + [1000] * 10)
        light = summarize([1] * 100)
        assert heavy.tail_ratio > light.tail_ratio

    def test_cv_zero_mean(self):
        s = summarize([-1.0, 1.0])
        assert s.cv == 0.0

    def test_format_line(self):
        line = summarize([1.0, 2.0, 3.0]).format("demo")
        assert "demo" in line and "n=3" in line

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestHistogram:
    def test_binning(self):
        h = Histogram(0, 10, bins=10)
        h.extend([0.5, 1.5, 1.6, 9.9])
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1
        assert h.n == 4

    def test_under_overflow(self):
        h = Histogram(0, 10, bins=5)
        h.extend([-1, 10, 11])
        assert h.underflow == 1
        assert h.overflow == 2
        assert sum(h.counts) == 0

    def test_edge_values(self):
        h = Histogram(0, 10, bins=10)
        h.add(0.0)  # inclusive low edge
        h.add(10.0)  # exclusive high edge -> overflow
        assert h.counts[0] == 1
        assert h.overflow == 1

    def test_bin_edges(self):
        h = Histogram(0, 10, bins=5)
        assert h.bin_edges(0) == (0.0, 2.0)
        assert h.bin_edges(4) == (8.0, 10.0)

    def test_render(self):
        h = Histogram(0, 4, bins=2)
        h.extend([1, 1, 3])
        art = h.render(width=10)
        assert "##########" in art  # the peak bin at full width
        assert art.count("\n") == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(5, 5)
        with pytest.raises(ValueError):
            Histogram(0, 1, bins=0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0, 100), max_size=100))
    def test_conservation(self, data):
        h = Histogram(0, 100, bins=7)
        h.extend(data)
        assert sum(h.counts) + h.underflow + h.overflow == len(data)
