"""Unit tests for trace replay, the synthetic SDSC trace and the SWF parser."""


import pytest

from repro.core.config import SimConfig
from repro.workload.sdsc import SDSC_PUBLISHED, synthesize_sdsc_trace, verify
from repro.workload.swf import SWFError, load_swf, parse_swf, parse_swf_line
from repro.workload.trace import TraceJob, TraceWorkload, trace_stats

CFG = SimConfig(width=16, length=22, jobs=10)


def small_trace():
    return [
        TraceJob(arrival=0.0, size=10, runtime=100.0),
        TraceJob(arrival=100.0, size=32, runtime=50.0),
        TraceJob(arrival=250.0, size=1, runtime=900.0),
        TraceJob(arrival=300.0, size=352, runtime=10.0),
    ]


class TestTraceJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceJob(arrival=0.0, size=0, runtime=1.0)
        with pytest.raises(ValueError):
            TraceJob(arrival=0.0, size=1, runtime=0.0)
        with pytest.raises(ValueError):
            TraceJob(arrival=-1.0, size=1, runtime=1.0)


class TestTraceStats:
    def test_small_trace(self):
        s = trace_stats(small_trace())
        assert s.jobs == 4
        assert s.mean_interarrival == pytest.approx(100.0)
        assert s.mean_size == pytest.approx((10 + 32 + 1 + 352) / 4)
        assert s.max_size == 352
        # 32, 1 and 352... power-of-two check: 32 yes, 1 yes, 10 no, 352 no
        assert s.power_of_two_fraction == pytest.approx(0.5)

    def test_needs_two_jobs(self):
        with pytest.raises(ValueError):
            trace_stats(small_trace()[:1])


class TestTraceWorkload:
    def test_load_scaling(self):
        """The paper's factor f: arrivals rescale so that the mean
        inter-arrival equals 1/load."""
        wl = TraceWorkload(CFG, small_trace(), load=0.01)
        jobs = list(wl.jobs(seed=1))
        gaps = [b.arrival_time - a.arrival_time for a, b in zip(jobs, jobs[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(100.0)

    def test_ssd_key_is_runtime(self):
        wl = TraceWorkload(CFG, small_trace(), load=0.01)
        jobs = list(wl.jobs(seed=1))
        assert [j.service_demand for j in jobs] == [100.0, 50.0, 900.0, 10.0]
        assert all(j.trace_runtime is not None for j in jobs)

    def test_shapes_cover_sizes(self):
        wl = TraceWorkload(CFG, small_trace(), load=0.01)
        for j, tj in zip(wl.jobs(seed=1), small_trace()):
            assert j.size >= tj.size
            assert j.width <= 16 and j.length <= 22

    def test_messages_deterministic_and_rank_matched(self):
        """Demands are quantile-matched to runtime ranks: deterministic,
        identical across seeds, and ordered like the runtimes."""
        wl = TraceWorkload(CFG, small_trace(), load=0.01)
        a = [j.messages for j in wl.jobs(seed=5)]
        b = [j.messages for j in wl.jobs(seed=99)]
        assert a == b
        runtimes = [tj.runtime for tj in small_trace()]
        pairs = sorted(zip(runtimes, a))
        demands_by_runtime = [k for _, k in pairs]
        assert demands_by_runtime == sorted(demands_by_runtime)

    def test_demand_mean_matches_num_mes(self):
        """The exponential marginal keeps the paper's mean num_mes."""
        from repro.workload.sdsc import synthesize_sdsc_trace

        trace = synthesize_sdsc_trace(jobs=2000, seed=4)
        wl = TraceWorkload(CFG, trace, load=0.01)
        ks = [j.messages for j in wl.jobs(seed=1)]
        assert sum(ks) / len(ks) == pytest.approx(CFG.num_mes, rel=0.15)

    def test_max_jobs_prefix(self):
        wl = TraceWorkload(CFG, small_trace(), load=0.01, max_jobs=2)
        assert len(list(wl.jobs(seed=1))) == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload(CFG, [], load=0.01)

    def test_bad_load_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload(CFG, small_trace(), load=-1)


class TestSyntheticSDSC:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthesize_sdsc_trace()

    def test_job_count(self, trace):
        assert len(trace) == SDSC_PUBLISHED["jobs"] == 10658

    def test_published_statistics(self, trace):
        stats = verify(trace)  # raises on drift > 15%
        assert stats.jobs == 10658
        assert stats.max_size <= 352

    def test_favours_non_powers_of_two(self, trace):
        stats = trace_stats(trace)
        assert stats.power_of_two_fraction < 0.35

    def test_heavy_tailed_runtimes(self, trace):
        runtimes = sorted(j.runtime for j in trace)
        mean = sum(runtimes) / len(runtimes)
        median = runtimes[len(runtimes) // 2]
        assert mean > 2.5 * median  # log-normal sigma=1.9 heavy tail

    def test_bursty_arrivals(self, trace):
        """Hyper-exponential inter-arrivals: CV > 1."""
        gaps = [
            b.arrival - a.arrival for a, b in zip(trace, trace[1:])
        ]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        cv = var ** 0.5 / mean
        assert cv > 1.1

    def test_deterministic(self):
        a = synthesize_sdsc_trace(jobs=100, seed=3)
        b = synthesize_sdsc_trace(jobs=100, seed=3)
        assert a == b

    def test_verify_rejects_drift(self):
        bad = [
            TraceJob(arrival=float(i), size=1, runtime=1.0)
            for i in range(100)
        ]
        with pytest.raises(AssertionError):
            verify(bad)

    def test_too_few_jobs(self):
        with pytest.raises(ValueError):
            synthesize_sdsc_trace(jobs=1)


SWF_SAMPLE = """\
; SDSC Paragon style header comment
;   Computer: Intel Paragon
1 0 10 3600 16 -1 -1 16 -1 -1 1 1 1 1 -1 -1 -1 -1
2 120 0 60 1 -1 -1 1 -1 -1 1 2 1 1 -1 -1 -1 -1
3 240 5 -1 8 -1 -1 8 -1 -1 0 3 1 1 -1 -1 -1 -1
4 360 5 100 400 -1 -1 400 -1 -1 1 4 1 1 -1 -1 -1 -1
"""


class TestSWF:
    def test_parse_line(self):
        job = parse_swf_line("1 0 10 3600 16 -1 -1 16 -1 -1 1 1 1 1 -1 -1 -1 -1")
        assert job == TraceJob(arrival=0.0, size=16, runtime=3600.0)

    def test_comments_and_blank(self):
        assert parse_swf_line("; comment") is None
        assert parse_swf_line("") is None

    def test_cancelled_job_skipped(self):
        # run time -1 => unusable record
        assert parse_swf_line("3 240 5 -1 8 -1 -1 8 -1 -1 0 3 1 1") is None

    def test_malformed_raises(self):
        with pytest.raises(SWFError):
            parse_swf_line("1 2 3")
        with pytest.raises(SWFError):
            parse_swf_line("a b c d e f")

    def test_parse_stream(self):
        jobs = parse_swf(SWF_SAMPLE.splitlines())
        assert len(jobs) == 3  # job 3 skipped (runtime -1)
        assert jobs[0].size == 16

    def test_max_size_filter(self):
        jobs = parse_swf(SWF_SAMPLE.splitlines(), max_size=352)
        assert len(jobs) == 2  # job 4 (400 procs) filtered out

    def test_load_swf_roundtrip(self, tmp_path):
        p = tmp_path / "sample.swf"
        p.write_text(SWF_SAMPLE)
        jobs = load_swf(p, max_size=352, max_jobs=1)
        assert len(jobs) == 1
        assert jobs[0].runtime == 3600.0

    def test_trace_workload_accepts_swf(self, tmp_path):
        p = tmp_path / "sample.swf"
        p.write_text(SWF_SAMPLE)
        jobs = load_swf(p, max_size=352)
        wl = TraceWorkload(CFG, jobs, load=0.01)
        out = list(wl.jobs(seed=1))
        assert len(out) == 2
