"""Unit tests for the all-to-all traffic generator."""

import pytest

from repro.alloc.base import Allocation
from repro.core.engine import Engine
from repro.core.job import Job
from repro.mesh.geometry import Coord, SubMesh
from repro.network.topology import MeshTopology
from repro.network.traffic import AllToAllTraffic, destination_schedule
from repro.network.wormhole import WormholeNetwork


class TestDestinationSchedule:
    @pytest.mark.parametrize("n", [2, 3, 4, 7, 36, 98])
    @pytest.mark.parametrize("k", [1, 2, 5, 11, 200])
    def test_rounds_are_permutations_without_self(self, n, k):
        table = destination_schedule(n, k)
        assert len(table) == k
        for row in table:
            assert sorted(row) == list(range(n))
            assert all(row[i] != i for i in range(n))

    def test_single_processor_empty(self):
        assert destination_schedule(1, 5) == []
        assert destination_schedule(0, 5) == []

    def test_full_exchange_covers_all_partners(self):
        """With K >= 2(n-1) rounds every partner is reached."""
        n = 6
        table = destination_schedule(n, 2 * (n - 1))
        partners = {row[0] for row in table}  # targets of processor 0
        assert partners == set(range(1, n))

    def test_near_rounds_are_nearest_partners(self):
        table = destination_schedule(10, 4)
        # rounds 0 and 2 are near rounds with offsets 1 and 2
        assert table[0][0] == 1
        assert table[2][0] == 2

    def test_far_rounds_cross_the_ring(self):
        table = destination_schedule(10, 2)
        # round 1 is a far round: offset around half the ring, backwards
        offset = table[1][0]
        assert offset not in (1, 2, 9)


def _run_job(coords, messages, mode, round_gap=None):
    """Launch one job's traffic on an 8x8 mesh and run to completion."""
    engine = Engine()
    topo = MeshTopology(8, 8)
    net = WormholeNetwork(topo, engine, mode=mode)
    traffic = AllToAllTraffic(net, engine, round_gap=round_gap)
    submeshes = tuple(SubMesh(c.x, c.y, c.x, c.y) for c in coords)
    job = Job(job_id=1, arrival_time=0.0, width=1, length=len(coords),
              messages=messages)
    job.allocation = Allocation(1, submeshes, tuple(coords))
    done = []
    traffic.launch(job, 0.0, lambda j: done.append(engine.now))
    engine.run()
    assert len(done) == 1
    return job, done[0], net


class TestLaunch:
    @pytest.mark.parametrize("mode", ["fast", "causal"])
    def test_packet_count(self, mode):
        coords = [Coord(0, 0), Coord(1, 0), Coord(2, 0)]
        job, _, net = _run_job(coords, messages=4, mode=mode)
        assert job.packet_count == 3 * 4
        assert net.packets_sent == 12

    @pytest.mark.parametrize("mode", ["fast", "causal"])
    def test_completion_after_last_delivery(self, mode):
        coords = [Coord(0, 0), Coord(4, 4)]
        job, t_done, _ = _run_job(coords, messages=1, mode=mode)
        # one round of 2 packets, 8 hops each: done at base latency
        assert t_done == pytest.approx((8 + 2) * 4 + 7)

    def test_round_gap_spaces_rounds(self):
        coords = [Coord(0, 0), Coord(4, 0)]
        _, fast_done, _ = _run_job(coords, messages=3, mode="fast",
                                   round_gap=100.0)
        # last round injected at t=200
        assert fast_done == pytest.approx(200 + (4 + 2) * 4 + 7)

    def test_modes_agree_on_totals(self):
        coords = [Coord(x, y) for x in range(3) for y in range(3)]
        jf, tf, _ = _run_job(coords, messages=5, mode="fast")
        jc, tc, _ = _run_job(coords, messages=5, mode="causal")
        assert jf.packet_count == jc.packet_count
        assert tf == pytest.approx(tc, rel=0.2)
        assert jf.latency_sum == pytest.approx(jc.latency_sum, rel=0.2)

    def test_single_processor_job_local_work(self):
        engine = Engine()
        topo = MeshTopology(8, 8)
        net = WormholeNetwork(topo, engine)
        traffic = AllToAllTraffic(net, engine, round_gap=16.0)
        job = Job(job_id=1, arrival_time=0.0, width=1, length=1, messages=6)
        c = Coord(2, 2)
        job.allocation = Allocation(1, (SubMesh(2, 2, 2, 2),), (c,))
        done = []
        traffic.launch(job, 0.0, lambda j: done.append(engine.now))
        engine.run()
        assert done == [pytest.approx(6 * 16.0)]
        assert job.packet_count == 0

    def test_round_gap_validation(self):
        engine = Engine()
        net = WormholeNetwork(MeshTopology(4, 4), engine, p_len=8)
        with pytest.raises(ValueError):
            AllToAllTraffic(net, engine, round_gap=4.0)

    def test_paging_internal_fragment_excluded(self):
        """Traffic must only use the first w*l coords of an allocation."""
        engine = Engine()
        topo = MeshTopology(8, 8)
        net = WormholeNetwork(topo, engine)
        traffic = AllToAllTraffic(net, engine)
        # job requested 1x2=2 procs but was granted 4 (a 2x2 page)
        s = SubMesh(0, 0, 1, 1)
        job = Job(job_id=1, arrival_time=0.0, width=1, length=2, messages=3)
        job.allocation = Allocation(1, (s,), tuple(s.nodes()))
        done = []
        traffic.launch(job, 0.0, lambda j: done.append(True))
        engine.run()
        assert job.packet_count == 2 * 3  # only 2 communicating procs
