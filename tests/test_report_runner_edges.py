"""Edge-case tests for reporting, runner plumbing and misc strategy knobs."""

import json

import pytest

from repro.experiments.figures import FIGURES
from repro.experiments.report import (
    ascii_plot,
    endpoint_ratio,
    format_figure,
    mean_of,
    series_leq,
)
from repro.experiments.runner import FigureResult, ResultCache, make_workload, Scale
from repro.core.config import SimConfig


def fig(series, loads=(0.01, 0.02), fig_id="fig3"):
    return FigureResult(spec=FIGURES[fig_id], loads=loads, series=series)


class TestReportEdges:
    def test_format_small_values_get_decimals(self):
        r = fig({"GABL(FCFS)": (0.71, 0.82), "MBS(FCFS)": (0.69, 0.80)})
        text = format_figure(r)
        assert "0.710" in text and "0.800" in text

    def test_format_large_values_one_decimal(self):
        r = fig({"GABL(FCFS)": (1000.5, 2000.25)})
        text = format_figure(r)
        assert "1000.5" in text
        assert "2000.2" in text or "2000.3" in text

    def test_explicit_precision(self):
        r = fig({"A": (1.23456,)}, loads=(0.01,))
        assert "1.2346" in format_figure(r, precision=4)

    def test_ascii_plot_constant_series(self):
        r = fig({"A": (5.0, 5.0), "B": (5.0, 5.0)})
        art = ascii_plot(r)  # flat series must not divide by zero
        assert "A = A" in art

    def test_mean_of_empty(self):
        assert mean_of([]) == 0.0

    def test_series_leq_slack_boundary(self):
        assert series_leq((10.0,), (10.0,), slack=1.0)
        assert not series_leq((10.1,), (10.0,), slack=1.0)

    def test_endpoint_ratio_zero_denominator(self):
        assert endpoint_ratio((2.0,), (0.0,)) == float("inf")


class TestResultCacheEdges:
    def test_corrupt_legacy_file_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")  # force the disk path on
        path = tmp_path / "c.json"
        path.write_text("{not json")
        cache = ResultCache(path)  # must not raise
        assert cache.get("anything") is None
        cache.put("k", {"m": 1.0})
        # the put lands in a shard readable by a fresh instance
        assert ResultCache(path).get("k") == {"m": 1.0}

    def test_legacy_file_migrated_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"old-key": {"m": 3.0}}))
        cache = ResultCache(path)
        assert cache.get("old-key") == {"m": 3.0}
        assert not path.exists()  # renamed after import
        assert path.with_suffix(".json.migrated").exists()
        # shards now carry the entry; a fresh instance reads them
        assert ResultCache(path).get("old-key") == {"m": 3.0}

    def test_corrupt_shard_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        cache = ResultCache(tmp_path / "c.json")
        cache.put("k", {"m": 1.0})
        shards = list(cache.path.glob("*.json"))
        assert len(shards) == 1
        shards[0].write_text("{torn write")
        assert ResultCache(tmp_path / "c.json").get("k") is None

    def test_memory_only_when_disk_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        path = tmp_path / "c.json"
        cache = ResultCache(path)
        cache.put("k", {"m": 2.0})
        assert cache.get("k") == {"m": 2.0}
        assert not path.exists()
        assert not cache.path.exists()


class TestWorkloadFactory:
    CFG = SimConfig(width=8, length=8, jobs=10)
    SC = Scale("t", jobs=10, min_replications=1, max_replications=1,
               trace_max_jobs=50)

    def test_uniform(self):
        wl = make_workload("uniform", self.CFG, 0.01, self.SC)
        assert wl.name == "stochastic-uniform"

    def test_exponential(self):
        wl = make_workload("exponential", self.CFG, 0.01, self.SC)
        assert wl.name == "stochastic-exponential"

    def test_real_uses_trace_prefix(self):
        wl = make_workload("real", self.CFG, 0.01, self.SC)
        assert wl.name == "real-trace"
        assert len(wl.trace) == 50

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_workload("adversarial", self.CFG, 0.01, self.SC)


class TestStrategyKnobs:
    def test_gabl_rotation_off_changes_behaviour(self):
        from repro.alloc.gabl import GABLAllocator
        from repro.mesh.geometry import SubMesh

        def fragments(rotation):
            a = GABLAllocator(8, 8, allow_rotation=rotation)
            a.grid.allocate_submesh(SubMesh.from_base(0, 4, 8, 4), 999)
            alloc = a.allocate(1, 3, 6)  # fits only rotated (6x3)
            assert alloc is not None
            return alloc.fragment_count

        assert fragments(True) == 1
        assert fragments(False) > 1

    def test_mbs_deterministic_block_choice(self):
        from repro.alloc.mbs import MBSAllocator

        a1, a2 = MBSAllocator(16, 16), MBSAllocator(16, 16)
        s1 = a1.allocate(1, 5, 5).submeshes
        s2 = a2.allocate(1, 5, 5).submeshes
        assert s1 == s2

    def test_paging_all_schemes_complete(self):
        from repro.alloc.paging import PagingAllocator

        for scheme in ("row-major", "snake", "shuffled-row-major",
                       "shuffled-snake"):
            a = PagingAllocator(8, 8, size_index=0, indexing=scheme)
            allocs = [a.allocate(j, 4, 4) for j in range(4)]
            assert all(x is not None for x in allocs)
            assert a.free_count == 0

    def test_anca_rotation_flag(self):
        from repro.alloc.anca import ANCAAllocator

        a = ANCAAllocator(8, 4, allow_rotation=False)
        alloc = a.allocate(1, 3, 7)  # cannot fit upright; splits instead
        assert alloc is not None
        assert alloc.size == 21
        assert not alloc.contiguous
