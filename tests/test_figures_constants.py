"""Pins the figure registry's hand-calibrated constants.

``SATURATION_LOADS`` is the guarded baseline the ROADMAP's future
trajectory-aware stopping rule must reproduce (or consciously update):
these tests pin the exact values and their relationship to the paper's
figure axes, so any drift is a deliberate, reviewed change."""

from repro.experiments.figures import (
    FIGURES,
    SATURATION_LOADS,
    WORKLOADS,
)


class TestSaturationLoads:
    def test_pinned_values(self):
        """The exact constants (paper section 5: utilization is read at a
        load where 'the waiting queue is filled very early')."""
        assert SATURATION_LOADS == {
            "real": 0.1,
            "uniform": 0.03,
            "exponential": 0.05,
        }

    def test_one_load_per_workload(self):
        assert set(SATURATION_LOADS) == set(WORKLOADS)

    def test_sits_beyond_every_swept_axis(self):
        """Each saturation load lies strictly past the highest load any
        line-chart figure sweeps for that workload -- i.e. past the knee
        the paper's x axes end at."""
        for workload, sat_load in SATURATION_LOADS.items():
            swept = [
                max(spec.loads)
                for spec in FIGURES.values()
                if spec.workload == workload and not spec.saturation
            ]
            assert swept, f"no line-chart figures for {workload}"
            assert sat_load > max(swept), (
                f"{workload}: saturation load {sat_load} must exceed the "
                f"swept axis maximum {max(swept)}"
            )

    def test_bar_chart_figures_use_exactly_these_loads(self):
        """Figs. 8-10 are the utilization bar charts: one cell, at the
        pinned saturation load, at every scale preset."""
        bars = {"fig8": "real", "fig9": "uniform", "fig10": "exponential"}
        for fig_id, workload in bars.items():
            spec = FIGURES[fig_id]
            assert spec.saturation
            assert spec.workload == workload
            expected = (SATURATION_LOADS[workload],)
            assert spec.loads == expected
            assert spec.smoke_loads == expected
