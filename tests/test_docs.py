"""Docs-tree gates: links resolve, the public API surface is documented.

These mirror the CI ``docs`` job so the gates also run locally (and
without ruff installed): ``tools/check_links.py`` validates every
intra-repo markdown link and heading anchor, ``tools/check_docstrings.py``
is the dependency-free mirror of the scoped ruff D1xx docstring rules.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_docstrings  # noqa: E402
import check_links  # noqa: E402
import gen_cli_docs  # noqa: E402


def test_docs_tree_exists():
    for page in ("architecture.md", "cli.md", "scenarios.md"):
        assert (REPO / "docs" / page).is_file(), f"docs/{page} missing"


def test_readme_links_into_docs():
    readme = (REPO / "README.md").read_text()
    for page in ("docs/architecture.md", "docs/cli.md", "docs/scenarios.md"):
        assert page in readme, f"README no longer links {page}"


def test_markdown_links_resolve(capsys):
    assert check_links.main([]) == 0, capsys.readouterr().err


def test_github_slugs():
    assert check_links.github_slug("The network transport layer") \
        == "the-network-transport-layer"
    assert check_links.github_slug("`diff A.json B.json`") \
        == "diff-ajson-bjson"


def test_broken_link_is_detected(tmp_path):
    md = tmp_path / "x.md"
    md.write_text("see [missing](nope.md) and [bad](x.md#no-such-heading)\n")
    errors = check_links.check_file(md, tmp_path)
    assert len(errors) == 2


def test_cli_options_table_current(capsys):
    """docs/cli.md's generated options table matches the live parser
    (the local mirror of the CI ``gen_cli_docs.py --check`` gate)."""
    assert gen_cli_docs.main(["--check"]) == 0, capsys.readouterr().err


def test_cli_options_table_covers_every_flag():
    table = gen_cli_docs.render_table()
    for flag in ("--engine", "--scale", "--network-mode", "--topology",
                 "--fail-on-regress", "--auto-saturation"):
        assert f"`{flag}`" in table, f"{flag} missing from generated table"


def test_public_api_docstrings_complete(capsys):
    """The scoped packages' public surface carries docstrings (the local
    mirror of the ruff D100-D104 CI gate)."""
    assert check_docstrings.main([]) == 0, capsys.readouterr().err


def test_docstring_checker_detects_gaps(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    bad = pkg / "mod.py"
    bad.write_text(
        "def documented():\n    '''ok'''\n\n"
        "def naked():\n    pass\n\n"
        "class Naked:\n    def method(self):\n        pass\n\n"
        "class _Private:\n    pass\n"
    )
    errors = check_docstrings.check_module(bad, tmp_path)
    codes = sorted(e.split()[1] for e in errors)
    assert codes == ["D100", "D101", "D102", "D103"]
