"""Unit tests for the Multiple Buddy Strategy (repro.alloc.mbs)."""

import pytest

from repro.alloc.mbs import MBSAllocator, base4_digits, cover_with_squares
from repro.mesh.grid import submeshes_disjoint


class TestBase4:
    def test_small(self):
        assert base4_digits(1) == [1]
        assert base4_digits(3) == [3]
        assert base4_digits(4) == [0, 1]
        assert base4_digits(5) == [1, 1]

    def test_paper_form(self):
        """p = sum d_i * 4^i with 0 <= d_i <= 3."""
        for p in range(1, 400):
            digits = base4_digits(p)
            assert all(0 <= d <= 3 for d in digits)
            assert sum(d * 4**i for i, d in enumerate(digits)) == p

    def test_non_positive(self):
        with pytest.raises(ValueError):
            base4_digits(0)


class TestCover:
    def test_square_power_of_two(self):
        cover = cover_with_squares(16, 16)
        assert cover == [(4, 0, 0)]

    def test_paper_mesh_16x22(self):
        cover = cover_with_squares(16, 22)
        # one 16x16, four 4x4, eight 2x2 = 256 + 64 + 32 = 352
        sides = sorted((1 << k for k, _, _ in cover), reverse=True)
        assert sides == [16, 4, 4, 4, 4, 2, 2, 2, 2, 2, 2, 2, 2]
        assert sum(s * s for s in sides) == 352

    def test_cover_is_exact_partition(self):
        for w, l in [(16, 22), (8, 8), (5, 7), (1, 1), (3, 10)]:
            cover = cover_with_squares(w, l)
            cells = set()
            for k, x, y in cover:
                side = 1 << k
                for dy in range(side):
                    for dx in range(side):
                        cell = (x + dx, y + dy)
                        assert cell not in cells, "overlapping cover"
                        cells.add(cell)
            assert len(cells) == w * l


class TestAllocate:
    def test_power_of_four_is_contiguous(self):
        a = MBSAllocator(16, 16)
        alloc = a.allocate(1, 4, 4)  # 16 = 2^2 * 2^2 -> one 4x4 block
        assert alloc is not None
        assert alloc.contiguous
        assert alloc.submeshes[0].area == 16

    def test_non_power_gets_multiple_blocks(self):
        a = MBSAllocator(16, 16)
        alloc = a.allocate(1, 5, 7)  # 35 = 2*16 + 3*1
        assert alloc is not None
        assert alloc.size == 35
        sides = sorted(s.area for s in alloc.submeshes)
        assert sides == [1, 1, 1, 16, 16]

    def test_blocks_are_squares(self):
        a = MBSAllocator(16, 22)
        alloc = a.allocate(1, 6, 5)  # 30 = 16 + 3*4 + 2
        assert alloc is not None
        for s in alloc.submeshes:
            assert s.width == s.length
            assert s.width in (1, 2, 4, 8, 16)

    def test_complete_on_exact_capacity(self):
        a = MBSAllocator(8, 8)
        assert a.allocate(1, 8, 8) is not None
        assert a.free_count == 0

    def test_succeeds_iff_free(self):
        a = MBSAllocator(8, 8)
        assert a.allocate(1, 7, 9 - 2) is not None  # 49
        assert a.allocate(2, 4, 4) is None  # 16 > 15 free
        assert a.allocate(3, 5, 3) is not None  # 15 == 15 free

    def test_splitting_produces_buddies(self):
        a = MBSAllocator(8, 8)  # one 8x8 root
        alloc = a.allocate(1, 2, 2)  # needs a 2x2: split 8->4->2
        assert alloc is not None
        # after splitting, free blocks: 3 of 4x4 + 3 of 2x2
        assert a.free_blocks_at(2) == 3
        assert a.free_blocks_at(1) == 3
        assert a.free_count == 60

    def test_merge_restores_root(self):
        a = MBSAllocator(8, 8)
        alloc = a.allocate(1, 3, 3)
        a.release(alloc)
        assert a.free_count == 64
        # buddy merges must rebuild the single 8x8 root
        assert a.free_blocks_at(3) == 1
        assert a.free_blocks_at(2) == 0
        assert a.free_blocks_at(1) == 0
        assert a.free_blocks_at(0) == 0

    def test_interleaved_alloc_release(self):
        a = MBSAllocator(16, 22)
        a1 = a.allocate(1, 5, 5)
        a2 = a.allocate(2, 7, 3)
        a3 = a.allocate(3, 2, 9)
        assert all(x is not None for x in (a1, a2, a3))
        subs = list(a1.submeshes) + list(a2.submeshes) + list(a3.submeshes)
        assert submeshes_disjoint(subs)
        a.release(a2)
        a4 = a.allocate(4, 10, 2)
        assert a4 is not None
        a.release(a1)
        a.release(a3)
        a.release(a4)
        assert a.free_count == 352
        a.grid.validate()

    def test_big_request_on_paper_mesh(self):
        a = MBSAllocator(16, 22)
        alloc = a.allocate(1, 16, 22)  # 352 = 16*22, larger than max block
        assert alloc is not None
        assert alloc.size == 352
        assert a.free_count == 0

    def test_reset(self):
        a = MBSAllocator(16, 22)
        a.allocate(1, 7, 7)
        a.reset()
        assert a.free_count == 352
        assert a.allocate(2, 16, 16) is not None


class TestMBSWeakness:
    def test_non_power_of_two_fragments(self):
        """The paper's explanation for MBS's real-workload weakness:
        contiguity is only sought for sizes of the form 2^(2n)."""
        a = MBSAllocator(16, 16)
        p17 = a.allocate(1, 17, 1)  # 17 = 16 + 1 -> at least 2 blocks
        assert p17 is not None
        assert p17.fragment_count >= 2
        a.reset()
        p16 = a.allocate(2, 4, 4)  # 16 = 4^2 -> single block
        assert p16.fragment_count == 1
