"""Property-based tests (hypothesis) of the ARQ protocols.

:class:`~repro.network.arq.FlowArq` is a pure state machine and
:func:`~repro.network.channel.resolve_launch` is a pure function of its
transmit callback and fate/delay sampler, so both are testable with a
*stub* transport (fixed latency, no contention) and *scripted* channel
fates -- hypothesis explores arbitrary drop/delay patterns and the
invariants must hold for every one of them:

* every packet is delivered exactly once per flow, whatever the drop
  pattern (all three protocols);
* go-back-n acceptance is in sequence order (the receiver has no
  reorder buffer);
* no drop pattern finishes *earlier* than the lossless run (originals
  follow the fixed round schedule, so failures only ever add work);
* on a perfect channel the protocols never act: all three produce
  identical delivery schedules, attempt-for-attempt;
* stop-and-wait throughput is monotone non-increasing in the loss rate
  (seed-averaged, on the real channel sampler).
"""

from hypothesis import given, settings, strategies as st

from repro.network.arq import ARQ_PROTOCOLS, MAX_ATTEMPTS, FlowArq
from repro.network.backend import PathTiming
from repro.network.channel import ChannelModel, parse_channel, resolve_launch

ROUND_GAP = 16.0
STUB_LATENCY = 4.0


def stub_transmit(src, dst, now):
    """Contention-free transport: inject immediately, fixed latency."""
    return PathTiming(t_inject=now, t_deliver=now + STUB_LATENCY, blocking=0.0)


class ScriptedSampler:
    """Channel sampler whose fates/delays follow explicit scripts.

    Once a script is exhausted the channel turns perfect (every attempt
    succeeds, zero extra delay), which bounds every run: any finite drop
    pattern terminates.
    """

    def __init__(self, fates=(), delays=()):
        self._fates = list(fates)
        self._delays = list(delays)

    def fate(self):
        return self._fates.pop(0) if self._fates else True

    def delay(self):
        return self._delays.pop(0) if self._delays else 0.0


def scripted_model(protocol, fates=(), delays=()):
    model = ChannelModel(
        parse_channel("loss:0.5"), protocol, seed=0, p_len=16,
        round_gap=ROUND_GAP,
    )
    model.sampler = ScriptedSampler(fates, delays)
    return model


def launch(protocol, n, total, fates=(), delays=()):
    return resolve_launch(
        stub_transmit, scripted_model(protocol, fates, delays),
        coords=list(range(n)), offsets=[1] * total, now=0.0,
        round_gap=ROUND_GAP,
    )


protocols = st.sampled_from(ARQ_PROTOCOLS)
fate_scripts = st.lists(st.booleans(), max_size=64)
delay_scripts = st.lists(
    st.integers(min_value=0, max_value=512).map(lambda v: v / 8.0),
    max_size=48,
)


class TestDeliveryInvariants:
    @given(protocol=protocols, n=st.integers(1, 4), total=st.integers(1, 6),
           fates=fate_scripts, delays=delay_scripts)
    @settings(max_examples=120, deadline=None)
    def test_exactly_once_under_any_pattern(
        self, protocol, n, total, fates, delays
    ):
        result = launch(protocol, n, total, fates, delays)
        assert result.stats.packets == n * total
        for accepts in result.accepts:
            assert sorted(accepts) == list(range(total))
        # attempts cover at least one physical send per packet, and a
        # resend for (at least) every scripted drop that was consumed
        assert result.attempts >= n * total

    @given(n=st.integers(1, 3), total=st.integers(2, 6),
           fates=fate_scripts, delays=delay_scripts)
    @settings(max_examples=120, deadline=None)
    def test_go_back_n_accepts_in_order(self, n, total, fates, delays):
        result = launch("go-back-n", n, total, fates, delays)
        for accepts in result.accepts:
            times = [accepts[k] for k in range(total)]
            assert all(a <= b for a, b in zip(times, times[1:]))

    @given(protocol=protocols, n=st.integers(1, 3), total=st.integers(1, 5),
           fates=fate_scripts)
    @settings(max_examples=120, deadline=None)
    def test_losses_never_finish_earlier(self, protocol, n, total, fates):
        """Originals follow the fixed round schedule, so a drop pattern
        can only add retransmissions -- the last delivery of any lossy
        run is at or after the lossless one's."""
        lossless = launch(protocol, n, total)
        lossy = launch(protocol, n, total, fates)
        assert lossy.stats.last_delivery >= lossless.stats.last_delivery
        assert lossy.attempts >= lossless.attempts

    @given(n=st.integers(1, 4), total=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_perfect_channel_is_protocol_invariant(self, n, total):
        """On a perfect, delay-free channel no protocol ever acts:
        identical accept schedules and exactly one attempt per packet,
        for all three protocols."""
        results = [launch(p, n, total) for p in ARQ_PROTOCOLS]
        baseline = results[0]
        assert baseline.attempts == n * total
        for other in results[1:]:
            assert other.accepts == baseline.accepts
            assert other.attempts == baseline.attempts
            assert other.stats == baseline.stats

    @given(n=st.integers(1, 3), total=st.integers(1, 6),
           delays=delay_scripts)
    @settings(max_examples=80, deadline=None)
    def test_lossless_delays_keep_saw_and_sr_identical(
        self, n, total, delays
    ):
        """Channel delays can reorder deliveries without any loss.
        Neither stop-and-wait nor selective-repeat discards out-of-order
        arrivals, so they stay schedule-identical; go-back-n may act
        (its receiver drops reordered packets), which is exactly why it
        is excluded here."""
        saw = launch("stop-and-wait", n, total, fates=(), delays=list(delays))
        sr = launch(
            "selective-repeat", n, total, fates=(), delays=list(delays)
        )
        assert saw.accepts == sr.accepts
        assert saw.attempts == sr.attempts == n * total
        assert saw.stats == sr.stats


class TestStopAndWaitThroughput:
    def test_monotone_non_increasing_in_loss(self):
        """Seed-averaged makespan grows (throughput falls) as the loss
        rate rises, on the real channel sampler."""
        n, total, seeds = 3, 5, range(12)

        def mean_makespan(loss: float) -> float:
            spans = []
            for seed in seeds:
                model = ChannelModel(
                    parse_channel(f"loss:{loss}"), "stop-and-wait",
                    seed=seed, p_len=16, round_gap=ROUND_GAP,
                )
                result = resolve_launch(
                    stub_transmit, model, coords=list(range(n)),
                    offsets=[1] * total, now=0.0, round_gap=ROUND_GAP,
                )
                spans.append(result.stats.last_delivery)
            return sum(spans) / len(spans)

        makespans = [mean_makespan(p) for p in (0.0, 0.15, 0.35, 0.6)]
        assert all(a <= b for a, b in zip(makespans, makespans[1:]))
        assert makespans[0] < makespans[-1]


class TestFlowArqStateMachine:
    @given(protocol=protocols, seq=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_duplicate_arrival_rejected(self, protocol, seq):
        flow = FlowArq(protocol, total=8, timeout=32.0, spacing=16.0)
        if protocol == "go-back-n":
            for s in range(seq + 1):
                assert flow.on_arrival(s, float(s))
        else:
            assert flow.on_arrival(seq, 1.0)
        t_first = flow.accepted[seq]
        assert not flow.on_arrival(seq, t_first + 99.0)
        assert flow.accepted[seq] == t_first

    def test_go_back_n_discards_out_of_order(self):
        flow = FlowArq("go-back-n", total=3, timeout=32.0, spacing=16.0)
        assert not flow.on_arrival(2, 1.0)  # ahead of the cursor: dropped
        assert flow.on_arrival(0, 2.0)
        assert flow.on_arrival(1, 3.0)
        assert flow.on_arrival(2, 4.0)  # cursor caught up
        assert flow.done

    def test_send_suppressed_after_accept(self):
        flow = FlowArq("selective-repeat", total=2, timeout=32.0, spacing=16.0)
        assert flow.should_send(0)
        assert flow.on_arrival(0, 5.0)
        assert not flow.should_send(0)

    def test_stop_and_wait_paces_resends(self):
        flow = FlowArq("stop-and-wait", total=4, timeout=32.0, spacing=16.0)
        for seq in range(4):
            flow.should_send(seq)
        sends = [flow.on_failure(seq, 100.0)[0][0] for seq in range(4)]
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert all(g >= flow.timeout for g in gaps)

    def test_backoff_doubles_and_caps(self):
        flow = FlowArq("selective-repeat", total=1, timeout=8.0, spacing=16.0)
        delays = []
        for _ in range(14):
            flow.should_send(0)
            flow.pending.discard(0)
            delays.append(flow.detect_delay(0))
        assert delays[0] == 8.0
        assert delays[1] == 16.0
        assert delays[-1] == delays[-2]  # capped

    def test_attempt_cap_raises(self):
        flow = FlowArq("selective-repeat", total=1, timeout=1.0, spacing=1.0)
        try:
            for _ in range(MAX_ATTEMPTS + 1):
                flow.should_send(0)
                flow.pending.discard(0)
        except RuntimeError as exc:
            assert "exceeded" in str(exc)
        else:
            raise AssertionError("MAX_ATTEMPTS cap never tripped")
