"""Unit tests for ANCA (Adaptive Non-Contiguous Allocation, ref [4])."""


from repro.alloc.anca import ANCAAllocator
from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import submeshes_disjoint


class TestContiguousFirst:
    def test_empty_mesh_single_submesh(self):
        a = ANCAAllocator(8, 8)
        alloc = a.allocate(1, 5, 6)
        assert alloc is not None
        assert alloc.contiguous
        assert alloc.submeshes[0].width == 5

    def test_rotation(self):
        a = ANCAAllocator(8, 4)
        alloc = a.allocate(1, 3, 7)
        assert alloc is not None
        assert alloc.contiguous


class TestHalving:
    def test_splits_longer_side(self):
        a = ANCAAllocator(8, 8)
        # occupy column x=3: free strips are 3 wide (x 0..2) and 4 wide
        # (x 4..7); a 6x8 request must split.  The longer side (l=8)
        # halves into two 6x4 subrequests; the first fits rotated as 4x6
        # in the right strip, the second halves again into two 3x4s in
        # the left strip.
        a.grid.allocate_submesh(SubMesh.from_base(3, 0, 1, 8), 999)
        alloc = a.allocate(1, 6, 8)
        assert alloc is not None
        assert alloc.size == 48
        assert alloc.fragment_count == 3
        assert sorted(s.area for s in alloc.submeshes) == [12, 12, 24]

    def test_recursive_halving_to_units(self):
        """Paper Fig. 1 scenario: 4 scattered free processors, 2x2 request."""
        a = ANCAAllocator(4, 4)
        free = {Coord(0, 3), Coord(3, 3), Coord(1, 1), Coord(2, 0)}
        busy = [
            Coord(x, y) for y in range(4) for x in range(4)
            if Coord(x, y) not in free
        ]
        a.grid.allocate_nodes(busy, 999)
        alloc = a.allocate(1, 2, 2)
        assert alloc is not None
        assert alloc.size == 4
        assert a.free_count == 0

    def test_odd_split_conserves_count(self):
        a = ANCAAllocator(8, 8)
        a.grid.allocate_submesh(SubMesh.from_base(0, 0, 8, 4), 999)
        # request 5x5 = 25 with only a 8x4 strip free (32 procs)
        alloc = a.allocate(1, 5, 5)
        assert alloc is not None
        assert alloc.size == 25
        assert submeshes_disjoint(list(alloc.submeshes))

    def test_fails_only_when_insufficient(self):
        a = ANCAAllocator(8, 8)
        a.grid.allocate_submesh(SubMesh.from_base(0, 0, 8, 7), 999)
        assert a.allocate(1, 3, 3) is None  # 9 > 8 free
        assert a.allocate(2, 4, 2) is not None  # exactly 8

    def test_release_cycle(self):
        a = ANCAAllocator(8, 8)
        allocs = [a.allocate(j, 3, 5) for j in range(4)]
        for al in allocs:
            assert al is not None
            a.release(al)
        assert a.free_count == 64
        a.grid.validate()


class TestVersusGABL:
    def test_anca_fragments_more_than_gabl(self):
        """ANCA halves the request blindly; GABL carves what is available.
        On a mesh with one large irregular free region GABL stays closer
        to contiguous."""
        from repro.alloc.gabl import GABLAllocator

        def fragment_count(cls):
            a = cls(8, 8)
            # leave an L-shaped free region
            a.grid.allocate_submesh(SubMesh.from_base(5, 0, 3, 5), 999)
            alloc = a.allocate(1, 6, 6)
            assert alloc is not None
            return alloc.fragment_count

        assert fragment_count(GABLAllocator) <= fragment_count(ANCAAllocator)
