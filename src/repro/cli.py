"""Command-line interface: regenerate paper figures as text tables.

Usage::

    python -m repro fig3                 # one figure, smoke scale
    python -m repro fig2 fig5 --scale quick
    python -m repro all --scale paper    # every figure, paper fidelity
    python -m repro fig2 --swf SDSC-Par-95.swf   # real archive trace
    python -m repro point --workload uniform --load 0.02 \
        --alloc GABL --sched SSD         # a single simulation point
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.core.config import PAPER_CONFIG, SimConfig
from repro.experiments.figures import FIGURES
from repro.experiments.report import ascii_plot, format_figure, summarize_point
from repro.experiments.runner import SCALES, default_scale, run_figure, run_point
from repro.workload.swf import load_swf


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-mesh",
        description=(
            "Reproduce Bani-Mohammad et al. (IPDPS 2008): allocation and "
            "scheduling in 2D mesh multicomputers."
        ),
    )
    p.add_argument(
        "targets",
        nargs="+",
        help="figure ids (fig2..fig16), 'all', 'claims', or 'point'",
    )
    p.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="fidelity preset (default: REPRO_SCALE env or 'smoke')",
    )
    p.add_argument("--plot", action="store_true", help="add ASCII plots")
    p.add_argument(
        "--network-mode",
        choices=("fast", "causal", "sfb"),
        default="fast",
        help="wormhole engine mode (see DESIGN.md 2.1)",
    )
    p.add_argument(
        "--topology",
        choices=("mesh", "torus"),
        default="mesh",
        help="interconnect topology (torus = the paper's future work)",
    )
    p.add_argument(
        "--swf",
        default=None,
        help="replay this SWF trace file for the real workload",
    )
    # 'point' options
    p.add_argument("--workload", choices=("real", "uniform", "exponential"))
    p.add_argument("--load", type=float)
    p.add_argument("--alloc", default="GABL")
    p.add_argument("--sched", default="FCFS")
    return p


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    scale = args.scale or default_scale()
    config = PAPER_CONFIG.with_(topology=args.topology)
    trace = None
    if args.swf:
        trace = load_swf(args.swf, max_size=PAPER_CONFIG.processors)
        print(f"loaded {len(trace)} jobs from {args.swf}")

    targets: list[str] = []
    for t in args.targets:
        if t == "all":
            targets.extend(FIGURES)
        else:
            targets.append(t)

    for target in targets:
        if target == "claims":
            from repro.experiments.claims import verify_all

            report = verify_all(scale=scale, network_mode=args.network_mode)
            print(report.format())
            if not report.passed:
                return 1
            continue
        if target == "point":
            if args.workload is None or args.load is None:
                print("point requires --workload and --load", file=sys.stderr)
                return 2
            t0 = time.perf_counter()
            point = run_point(
                args.workload, args.load, args.alloc, args.sched,
                scale=scale, config=config,
                network_mode=args.network_mode, trace=trace,
            )
            dt = time.perf_counter() - t0
            print(
                f"{args.alloc}({args.sched}) {args.workload} load={args.load}: "
                f"{summarize_point(point)}  [{dt:.1f}s]"
            )
            continue
        if target not in FIGURES:
            print(f"unknown target {target!r}", file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        result = run_figure(
            target, scale=scale, config=config,
            network_mode=args.network_mode, trace=trace,
        )
        dt = time.perf_counter() - t0
        print(format_figure(result))
        if args.plot:
            print(ascii_plot(result))
        print(f"[{target}: scale={scale}, {dt:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
