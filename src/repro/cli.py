"""Command-line interface: regenerate paper figures as text tables.

Usage::

    python -m repro fig3                 # one figure, smoke scale
    python -m repro fig2 fig5 --scale quick
    python -m repro all --scale paper    # every figure, paper fidelity
    python -m repro all --scale paper -j 4   # ... on 4 worker processes
    python -m repro fig2 --swf SDSC-Par-95.swf   # real archive trace
    python -m repro point --workload uniform --load 0.02 \
        --alloc GABL --sched SSD         # a single simulation point
    python -m repro sweep --workloads uniform,exponential \
        --loads 0.005,0.009,0.013 --allocs GABL,MBS --scheds FCFS,SSD \
        -j 4                             # a custom grid campaign
    python -m repro scenario examples/scenario_smoke.json \
        --out results/scenario.json      # a declarative scenario file
    python -m repro diff baseline.json candidate.json \
        --fail-on-regress                # statistical report comparison
    python -m repro diff baseline.json candidate.json \
        --trajectories --fail-on-regress # ... also gate on run *shape*
    python -m repro fig9 --auto-saturation --out report.json
                                         # detect the saturation knee
    python -m repro plot results/scenario.json --metric utilization \
        --compare other.json --png out.png   # trajectory/sweep charts
    python -m repro serve --port 8037 --store results/shards
                                         # long-running campaign service
    python -m repro submit examples/scenario_smoke.json --wait
                                         # queue a job on the service
    python -m repro status               # every service job's progress
    python -m repro plot JOB_ID --follow # live charts of a running job

Figure targets are executed as one deduplicated campaign: cells shared
between figures (e.g. the uniform sweep behind figs 3/6/9/12/15) are
simulated once, and ``--jobs/-j N`` fans the work out over N worker
processes with identical results to a serial run (replication seeds are
derived from each point's spec, never from worker state).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro import __version__
from repro.core.config import ENGINES, NETWORK_MODES, PAPER_CONFIG
from repro.experiments.campaign import Campaign
from repro.experiments.figures import FIGURES
from repro.experiments.report import ascii_plot, format_figure, summarize_point
from repro.experiments.runner import SCALES, default_scale, run_figure, run_point
from repro.network.arq import ARQ_PROTOCOLS
from repro.workload.swf import load_swf
from repro.workload.transforms import SpecError


#: per-target contracts: report schema written by --out and exit codes.
#: Shown in --help (and audited by tests/test_cli.py): every target that
#: writes a report names its schema here, and every nonzero exit is
#: documented.  Report schemas: 1 = pre-1.3 scenario reports (no point
#: keys; rejected by diff), 2 = point keys + replication summaries,
#: 3 = current (embedded trajectory series + saturation block).
_TARGET_CONTRACTS = """\
targets and their contracts (report schemas: 1 legacy, 2 keys+stats,
3 current = 2 + embedded trajectory series + saturation block):

  fig2..fig16, all   regenerate paper figures as text tables.
                     exit 0 done; 2 unknown target/bad arguments.
                     with --auto-saturation, fig8/9/10 detect their
                     saturation load and --out writes a schema-3
                     figures report embedding the scan.
  claims             verify the paper's headline claims.
                     exit 0 all pass; 1 a claim failed.
  point              one cell (--workload, --load [--alloc --sched]).
                     exit 0 done; 2 missing/bad parameters.
  sweep              grid campaign (--workloads, --loads, ...).
                     --out writes a schema-3 campaign report.
                     exit 0 done; 2 missing/bad grid parameters.
  scenario FILE...   run declarative scenario JSON files.
                     --out writes a schema-3 scenario report (with
                     trajectory series when 'sample_interval' is set;
                     with a saturation block under --auto-saturation).
                     exit 0 done; 2 bad scenario file.
  diff A.json B.json statistical comparison of two --out reports
                     (schemas 2 and 3 readable; --trajectories needs
                     schema-3 embedded series).  --out writes a
                     schema-3 diff report.  a strict-subset grid (an
                     in-progress campaign) aligns on the intersection
                     with a warning; an empty side warns and exits 0
                     unless --fail-on-regress (a CI gate must never
                     pass vacuously).
                     exit 0 clean; 1 regression (regressed mean or
                     diverged trajectory) under --fail-on-regress;
                     2 malformed/old-schema reports or disjoint
                     non-empty grids.
  plot REPORT.json   ASCII charts of a schema-2/3 report (trajectory
                     series and per-load sweep curves); --compare
                     overlays a second report, --png adds a PNG when
                     matplotlib is importable.  with --follow the
                     argument is a service job id: charts re-render
                     every --interval seconds until the job finishes.
                     exit 0 rendered; 2 unreadable report or
                     unreachable service.
  serve              long-running campaign service on --host/--port
                     (store: --store or the default cache dir).
                     accepts submitted scenario/sweep JSON, streams
                     finished points to the sharded store, resumes
                     unfinished jobs on restart.
                     exit 0 on clean shutdown; 2 bad arguments.
  submit FILE...     queue scenario/sweep JSON files on the service.
                     --wait polls until done (--out then writes each
                     job's schema-3 report).
                     exit 0 accepted (and done, with --wait); 1 a job
                     failed; 2 bad file or unreachable service.
  status [JOB_ID]    service overview, or one job's progress/ETA.
                     exit 0; 2 unknown job or unreachable service.
"""


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-mesh",
        description=(
            "Reproduce Bani-Mohammad et al. (IPDPS 2008): allocation and "
            "scheduling in 2D mesh multicomputers."
        ),
        epilog=_TARGET_CONTRACTS,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "targets",
        nargs="+",
        help="figure ids (fig2..fig16), 'all', 'claims', 'point', 'sweep', "
        "'scenario' followed by one or more scenario JSON files, "
        "'diff' followed by exactly two --out report files, "
        "'plot' followed by one --out report file (or a job id with "
        "--follow), 'serve' (the campaign service), 'submit' followed "
        "by scenario/sweep JSON files, or 'status' with an optional "
        "job id",
    )
    p.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    p.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="fidelity preset (default: REPRO_SCALE env or 'smoke')",
    )
    p.add_argument(
        "-j", "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel workers for simulation points (default: 1, serial)",
    )
    p.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=None,
        help="parallel backend for -j N: thread (in-process workers; the "
        "compiled SoA driver releases the GIL so lanes run concurrently "
        "and share caches), process (worker processes) or serial. "
        "Default: auto -- thread when the native driver carries every "
        "point (--engine soa), process otherwise. Results are identical "
        "across backends",
    )
    p.add_argument("--plot", action="store_true", help="add ASCII plots")
    p.add_argument(
        "--network-mode",
        choices=NETWORK_MODES,
        default=None,
        help="network transport backend: batch (vectorised, the default), "
        "fast (bit-identical reference), causal (exact per-hop "
        "arbitration) or sfb (single-flit-buffer wormhole)",
    )
    p.add_argument(
        "--topology",
        choices=("mesh", "torus"),
        default=None,
        help="interconnect topology (default mesh; torus = the paper's "
        "future work)",
    )
    p.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="execution engine: reference (one event loop per "
        "replication, the default) or soa (lockstep replication batches "
        "through the compiled structure-of-arrays driver; bit-identical "
        "results, REPRO_NATIVE=0 falls back to interleaved reference "
        "runs)",
    )
    p.add_argument(
        "--channel",
        default=None,
        metavar="SPEC",
        help="lossy interconnect channel policy, e.g. 'loss:0.05 + "
        "delay:exp:0.1' (terms: loss:P, corrupt:P, delay:fixed:T, "
        "delay:exp:MEAN, delay:uniform:LO:HI). Default: perfect links. "
        "A policy that can fail packets requires --arq",
    )
    p.add_argument(
        "--arq",
        choices=ARQ_PROTOCOLS,
        default=None,
        help="retransmission protocol recovering channel losses "
        "(inert without a lossy --channel)",
    )
    p.add_argument(
        "--swf",
        default=None,
        help="replay this SWF trace file for the real workload",
    )
    # 'point' options
    p.add_argument(
        "--workload",
        default=None,
        help="point: real/uniform/exponential or a pipeline spec such as "
        "'real*0.5 | thin:0.8 + uniform'",
    )
    p.add_argument("--load", type=float, help="point: offered system load")
    p.add_argument("--alloc", default="GABL", help="point: allocator name")
    p.add_argument("--sched", default="FCFS", help="point: scheduler name")
    # 'sweep' options (comma-separated grids)
    p.add_argument(
        "--workloads",
        default=None,
        help="sweep: comma-separated workloads "
        "(real,uniform,exponential, or pipeline specs)",
    )
    p.add_argument(
        "--loads", default=None, help="sweep: comma-separated load values"
    )
    p.add_argument(
        "--allocs", default="GABL", help="sweep: comma-separated allocators"
    )
    p.add_argument(
        "--scheds", default="FCFS", help="sweep: comma-separated schedulers"
    )
    p.add_argument(
        "--channels",
        default=None,
        help="sweep: comma-separated channel policy specs forming a "
        "lossy-interconnect grid axis (e.g. 'loss:0,loss:0.05,loss:0.15')",
    )
    p.add_argument(
        "--arqs",
        default=None,
        help="sweep: comma-separated ARQ protocols crossed with --channels",
    )
    # 'scenario' / 'sweep' / 'diff' options
    p.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="scenario/sweep/auto-saturation figures: write the "
        "machine-readable schema-3 JSON report (metrics + replication "
        "stats + trajectory series, diffable); diff: write the verdict "
        "report as JSON",
    )
    # 'diff' options
    p.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help="diff: compare only this metric (repeatable; default all "
        "metrics the two reports share)",
    )
    p.add_argument(
        "--alpha",
        type=float,
        default=0.05,
        help="diff: significance level for Welch's t-test (default 0.05)",
    )
    p.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        dest="rel_tol",
        help="diff: relative-delta dead band; deltas within it are "
        "'indistinguishable' (default 0, exact)",
    )
    p.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="diff: exit 1 when any metric verdict is 'regressed' or any "
        "trajectory series 'diverged' (the CI-gate mode)",
    )
    p.add_argument(
        "--trajectories",
        action="store_true",
        help="diff: also compare the embedded trajectory series "
        "(schema-3 reports) sample by sample on a common grid",
    )
    p.add_argument(
        "--traj-atol",
        type=float,
        default=0.0,
        dest="traj_atol",
        help="diff: absolute per-sample tolerance band for --trajectories "
        "(default 0, exact)",
    )
    p.add_argument(
        "--traj-rtol",
        type=float,
        default=0.0,
        dest="traj_rtol",
        help="diff: relative per-sample tolerance band for --trajectories "
        "(fraction of the baseline sample; default 0, exact)",
    )
    # saturation options
    p.add_argument(
        "--auto-saturation",
        action="store_true",
        dest="auto_saturation",
        help="detect the saturation load from a utilization load ladder "
        "instead of the fixed SATURATION_LOADS constants "
        "(fig8/9/10 and scenario targets); the scan lands in --out "
        "reports' 'saturation' block",
    )
    # 'plot' options
    p.add_argument(
        "--compare",
        default=None,
        metavar="REPORT",
        help="plot: overlay this second --out report on the same axes",
    )
    p.add_argument(
        "--png",
        default=None,
        metavar="PATH",
        help="plot: also write a PNG (needs matplotlib; ASCII is always "
        "rendered)",
    )
    # 'serve' / 'submit' / 'status' options (the campaign service)
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve/submit/status/plot --follow: service address "
        "(default 127.0.0.1)",
    )
    p.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="serve/submit/status/plot --follow: service port "
        "(default 8037)",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="serve: result-store shard directory (default: "
        "REPRO_CACHE_DIR or ./.repro-cache); job manifests live in "
        "DIR/jobs",
    )
    p.add_argument(
        "--wait",
        action="store_true",
        help="submit: poll each submitted job until it finishes "
        "(exit 1 when a job fails)",
    )
    p.add_argument(
        "--follow",
        action="store_true",
        help="plot: treat the argument as a service job id and "
        "re-render its partial report every --interval seconds until "
        "the job finishes",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="submit --wait / plot --follow: poll interval "
        "(default 2.0)",
    )
    return p


def _progress(msg: str) -> None:
    print(msg, file=sys.stderr)


def _run_scenarios(files: Sequence[str], args, trace) -> int:
    import dataclasses

    from repro.experiments.scenario import Scenario

    for path in files:
        try:
            scenario = Scenario.load(path)
            # explicitly-given CLI flags override the file's settings
            overrides: dict = {}
            if args.scale is not None:
                overrides["scale"] = args.scale
            if args.network_mode is not None:
                overrides["network_mode"] = args.network_mode
            config_overrides = {}
            if args.topology is not None:
                config_overrides["topology"] = args.topology
            if args.engine is not None:
                config_overrides["engine"] = args.engine
            if args.channel is not None:
                config_overrides["channel"] = args.channel
            if args.arq is not None:
                config_overrides["arq"] = args.arq
            if config_overrides:
                overrides["config"] = {**scenario.config, **config_overrides}
            if overrides:
                scenario = dataclasses.replace(scenario, **overrides)
        except (OSError, ValueError) as exc:
            print(f"bad scenario file {path}: {exc}", file=sys.stderr)
            return 2
        mode = scenario.network_mode or scenario.sim_config().network_mode
        _progress(
            f"scenario {scenario.name}: {len(scenario.points())} points, "
            f"scale={scenario.scale}, network={mode}, "
            f"topology={scenario.sim_config().topology}, jobs={args.jobs}"
        )
        t0 = time.perf_counter()
        result = scenario.run(
            jobs=args.jobs, trace=trace, progress=_progress,
            auto_saturation=args.auto_saturation, executor=args.executor,
        )
        dt = time.perf_counter() - t0
        print(result.format())
        print(f"[scenario {scenario.name}: {len(result.points)} points, {dt:.1f}s]")
        if args.out:
            import json
            from pathlib import Path

            out = Path(args.out)
            if len(files) > 1:
                # one report per scenario file: a shared --out path would
                # silently overwrite every report but the last
                out = out.with_name(
                    f"{out.stem}-{scenario.name}{out.suffix or '.json'}"
                )
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(result.to_dict(), indent=2))
            print(f"report written to {out}")
    return 0


def _run_diff(files: Sequence[str], args) -> int:
    """The ``diff`` target: align, classify, and gate on two reports."""
    from repro.experiments.diff import DiffError, diff_reports, load_report

    try:
        report = diff_reports(
            load_report(files[0]),
            load_report(files[1]),
            metrics=args.metric,
            alpha=args.alpha,
            rel_tol=args.rel_tol,
            trajectories=args.trajectories,
            traj_atol=args.traj_atol,
            traj_rtol=args.traj_rtol,
        )
    except DiffError as exc:
        print(f"diff error: {exc}", file=sys.stderr)
        return 2
    print(report.format())
    for warning in report.warnings():
        print(f"warning: {warning}", file=sys.stderr)
    if args.out:
        import json
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_dict(), indent=2))
        print(f"diff report written to {out}")
    if not report.matched:
        empty = [r for r in (report.a, report.b) if not r.points]
        if empty and not args.fail_on_regress:
            # an in-progress campaign legitimately serves an empty (or
            # not-yet-overlapping) report; plot --follow and ad-hoc
            # service diffs must degrade gracefully.  --fail-on-regress
            # still hard-fails: a CI gate must never pass vacuously.
            for side in empty:
                print(
                    f"warning: report {side.source} has no points yet "
                    "(in-progress campaign?); nothing to compare",
                    file=sys.stderr,
                )
            return 0
        print(
            "diff error: the two reports share no points "
            "(disjoint grids or different configs)",
            file=sys.stderr,
        )
        return 2
    if args.fail_on_regress and report.regressions:
        print(
            f"FAIL: {len(report.regressions)} point(s) regressed",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_plot(files: Sequence[str], args) -> int:
    """The ``plot`` target: render a report's series as charts."""
    from repro.experiments.diff import DiffError, load_report
    from repro.experiments.plot import plot_report

    if args.follow:
        return _run_plot_follow(files[0], args)
    try:
        report = load_report(files[0])
        compare = load_report(args.compare) if args.compare else None
    except DiffError as exc:
        print(f"plot error: {exc}", file=sys.stderr)
        return 2
    print(plot_report(
        report, metrics=args.metric, compare=compare, png=args.png,
    ))
    return 0


def _service_client(args):
    """A :class:`ServiceClient` bound to the --host/--port flags."""
    from repro.experiments.serve import DEFAULT_PORT
    from repro.experiments.service_client import ServiceClient

    return ServiceClient(
        host=args.host, port=args.port if args.port is not None else DEFAULT_PORT
    )


def _run_plot_follow(jid: str, args) -> int:
    """``plot JOB_ID --follow``: live charts of a running service job."""
    import time as _time

    from repro.experiments.diff import DiffError, parse_report
    from repro.experiments.plot import plot_report
    from repro.experiments.service_client import (
        FINISHED_STATES, ServiceError, format_job,
    )

    client = _service_client(args)
    try:
        while True:
            payload = client.report(jid)
            job = payload.get("job", {})
            try:
                report = parse_report(payload, source=f"job:{jid}")
            except DiffError as exc:
                print(f"plot error: {exc}", file=sys.stderr)
                return 2
            print(plot_report(report, metrics=args.metric, png=args.png))
            _progress(format_job(job))
            if job.get("state") in FINISHED_STATES:
                return 0 if job.get("state") == "done" else 1
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except ServiceError as exc:
        print(f"plot error: {exc}", file=sys.stderr)
        return 2


def _run_serve(args) -> int:
    """The ``serve`` target: run the campaign service until interrupted."""
    from repro.experiments.serve import DEFAULT_PORT, serve

    serve(
        store=args.store,
        host=args.host,
        port=args.port if args.port is not None else DEFAULT_PORT,
        jobs=args.jobs,
        executor=args.executor,
        progress=_progress,
    )
    return 0


def _run_submit(files: Sequence[str], args) -> int:
    """The ``submit`` target: queue scenario/sweep files on the service."""
    import json
    from pathlib import Path

    from repro.experiments.service_client import ServiceError, format_job

    client = _service_client(args)
    jobs = []
    for path in files:
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            print(f"bad submission file {path}: {exc}", file=sys.stderr)
            return 2
        try:
            summary = client.submit(doc)
        except ServiceError as exc:
            print(f"submit error: {exc}", file=sys.stderr)
            return 2
        print(format_job(summary))
        jobs.append(summary["id"])
    if not args.wait:
        return 0
    failed = 0
    for jid in jobs:
        try:
            final = client.wait(
                jid, interval=args.interval,
                progress=lambda s: _progress(format_job(s)),
            )
        except ServiceError as exc:
            print(f"submit error: {exc}", file=sys.stderr)
            return 2
        if final.get("state") != "done":
            failed += 1
            continue
        if args.out:
            out = Path(args.out)
            if len(jobs) > 1:
                out = out.with_name(f"{out.stem}-{jid}{out.suffix or '.json'}")
            try:
                report = client.report(jid)
            except ServiceError as exc:
                print(f"submit error: {exc}", file=sys.stderr)
                return 2
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(report, indent=2))
            print(f"report written to {out}")
    if failed:
        print(f"FAIL: {failed} job(s) failed", file=sys.stderr)
        return 1
    return 0


def _run_status(rest: Sequence[str], args) -> int:
    """The ``status`` target: service overview or one job's progress."""
    from repro.experiments.service_client import ServiceError, format_job

    client = _service_client(args)
    try:
        if rest:
            print(format_job(client.job(rest[0])))
            return 0
        status = client.status()
    except ServiceError as exc:
        print(f"status error: {exc}", file=sys.stderr)
        return 2
    print(
        f"repro-serve {status.get('version', '?')} at {client.base} "
        f"(store: {status.get('store', '?')}, "
        f"up {status.get('uptime_seconds', 0.0):.0f}s)"
    )
    jobs = status.get("jobs", [])
    if not jobs:
        print("no jobs submitted")
        return 0
    for job in jobs:
        print(format_job(job))
    return 0


def _run_auto_saturation_figures(
    fig_targets: Sequence[str], args, scale, config, trace
) -> int:
    """Saturation figures under ``--auto-saturation``: scan, run, report."""
    import json
    from pathlib import Path

    from repro.experiments.diff import campaign_report
    from repro.experiments.trajectory import run_saturation_figure

    all_points: dict = {}
    scans = []
    for fig_id in fig_targets:
        t0 = time.perf_counter()
        figure, scan, points = run_saturation_figure(
            fig_id, scale=scale, config=config,
            network_mode=args.network_mode, trace=trace, jobs=args.jobs,
        )
        dt = time.perf_counter() - t0
        print(scan.format())
        if not scan.saturated:
            print(
                f"note: falling back to the pinned saturation load for "
                f"{fig_id}",
                file=sys.stderr,
            )
        print(format_figure(figure))
        if args.plot:
            print(ascii_plot(figure))
        print(f"[{fig_id}: scale={scale}, auto-saturation, {dt:.1f}s]\n")
        scans.append({"figure": fig_id, **scan.to_dict()})
        all_points.update(points)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(campaign_report(
            tuple(all_points), all_points,
            name="auto-saturation", kind="figures", saturation=scans,
        ), indent=2))
        print(f"report written to {out}")
    return 0


def _run_sweep(args, scale, config, trace) -> int:
    if args.workloads is None or args.loads is None:
        print("sweep requires --workloads and --loads", file=sys.stderr)
        return 2
    try:
        loads = tuple(float(x) for x in args.loads.split(",") if x)
    except ValueError:
        print(f"bad --loads value {args.loads!r}", file=sys.stderr)
        return 2
    channels: tuple[str | None, ...] = (None,)
    if args.channels is not None:
        channels = tuple(x.strip() for x in args.channels.split(",") if x.strip())
    arqs: tuple[str | None, ...] = (None,)
    if args.arqs is not None:
        arqs = tuple(x.strip() for x in args.arqs.split(",") if x.strip())
    try:
        campaign = Campaign.sweep(
            workloads=tuple(x.strip() for x in args.workloads.split(",") if x),
            loads=loads,
            allocs=tuple(x for x in args.allocs.split(",") if x),
            scheds=tuple(x for x in args.scheds.split(",") if x),
            scale=scale, config=config,
            network_mode=args.network_mode, trace=trace,
            channels=channels, arqs=arqs,
        )
    except SpecError as exc:
        print(f"bad workload spec: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"bad --channels/--arqs axis: {exc}", file=sys.stderr)
        return 2
    print(f"sweep: {len(campaign.points)} unique points, "
          f"scale={scale}, jobs={args.jobs}")
    t0 = time.perf_counter()
    results = campaign.run(
        jobs=args.jobs, progress=_progress, executor_kind=args.executor
    )
    dt = time.perf_counter() - t0
    for spec in campaign.points:
        print(f"{spec.label()}: {summarize_point(results[spec])}")
    print(f"[sweep: {len(campaign.points)} points, {dt:.1f}s]")
    if args.out:
        import json
        from pathlib import Path

        from repro.experiments.diff import campaign_report

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(
            campaign_report(campaign.points, results, name="sweep"), indent=2
        ))
        print(f"report written to {out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    scale = args.scale or default_scale()
    try:
        config = PAPER_CONFIG.with_(
            topology=args.topology or "mesh",
            engine=args.engine or "reference",
            channel=args.channel,
            arq=args.arq,
        )
    except ValueError as exc:
        print(f"bad --channel/--arq: {exc}", file=sys.stderr)
        return 2
    trace = None
    if args.swf:
        trace = load_swf(args.swf, max_size=PAPER_CONFIG.processors)
        print(f"loaded {len(trace)} jobs from {args.swf}")

    targets: list[str] = []
    for t in args.targets:
        if t == "all":
            targets.extend(FIGURES)
        else:
            targets.append(t)

    # the service targets stand alone: serve runs the service, submit
    # consumes the following targets as JSON files, status takes an
    # optional job id
    if "serve" in targets:
        if targets != ["serve"]:
            print(
                "serve cannot be combined with other targets", file=sys.stderr
            )
            return 2
        return _run_serve(args)
    if "submit" in targets:
        idx = targets.index("submit")
        submit_files = targets[idx + 1:]
        if targets[:idx]:
            print(
                "submit cannot be combined with other targets",
                file=sys.stderr,
            )
            return 2
        if not submit_files:
            print(
                "submit requires at least one scenario/sweep JSON file",
                file=sys.stderr,
            )
            return 2
        return _run_submit(submit_files, args)
    if "status" in targets:
        idx = targets.index("status")
        if targets[:idx] or len(targets) > idx + 2:
            print(
                "status takes at most one job id and no other targets",
                file=sys.stderr,
            )
            return 2
        return _run_status(targets[idx + 1:], args)

    # 'diff' consumes the (exactly two) following targets as report files
    if "diff" in targets:
        idx = targets.index("diff")
        diff_files = targets[idx + 1:]
        if targets[:idx]:
            print(
                "diff cannot be combined with other targets", file=sys.stderr
            )
            return 2
        if len(diff_files) != 2:
            print(
                "diff requires exactly two report files "
                "(repro diff a.json b.json)",
                file=sys.stderr,
            )
            return 2
        return _run_diff(diff_files, args)

    # 'plot' consumes the (exactly one) following target as a report file
    if "plot" in targets:
        idx = targets.index("plot")
        plot_files = targets[idx + 1:]
        if targets[:idx]:
            print(
                "plot cannot be combined with other targets", file=sys.stderr
            )
            return 2
        if len(plot_files) != 1:
            print(
                "plot requires exactly one report file "
                "(repro plot report.json [--compare other.json])",
                file=sys.stderr,
            )
            return 2
        return _run_plot(plot_files, args)

    # 'scenario' consumes every following target as a scenario JSON file
    scenario_files: list[str] = []
    if "scenario" in targets:
        idx = targets.index("scenario")
        scenario_files = targets[idx + 1:]
        targets = targets[:idx]
        if not scenario_files:
            print("scenario requires at least one JSON file", file=sys.stderr)
            return 2

    # under --auto-saturation the saturation bar charts (fig8/9/10) are
    # run at their *detected* knee instead of the pinned constant, so
    # they leave the fixed-load union campaign below
    auto_sat_figs: list[str] = []
    if args.auto_saturation:
        auto_sat_figs = [
            t for t in targets if t in FIGURES and FIGURES[t].saturation
        ]
        targets = [t for t in targets if t not in auto_sat_figs]

    # run the union of all requested figures as ONE deduplicated campaign
    # (shared sweeps simulate once; -j parallelises across every cell)
    fig_targets = [t for t in targets if t in FIGURES]
    if fig_targets:
        campaign = Campaign.from_figures(
            fig_targets, scale=scale, config=config,
            network_mode=args.network_mode, trace=trace,
        )
        _progress(
            f"campaign: {len(campaign.points)} unique points for "
            f"{len(fig_targets)} figure(s), scale={scale}, jobs={args.jobs}"
        )
        campaign.run(
            jobs=args.jobs, progress=_progress, executor_kind=args.executor
        )

    for target in targets:
        if target == "claims":
            from repro.experiments.claims import verify_all

            report = verify_all(scale=scale, network_mode=args.network_mode,
                                jobs=args.jobs)
            print(report.format())
            if not report.passed:
                return 1
            continue
        if target == "sweep":
            rc = _run_sweep(args, scale, config, trace)
            if rc != 0:
                return rc
            continue
        if target == "point":
            if args.workload is None or args.load is None:
                print("point requires --workload and --load", file=sys.stderr)
                return 2
            t0 = time.perf_counter()
            try:
                point = run_point(
                    args.workload, args.load, args.alloc, args.sched,
                    scale=scale, config=config,
                    network_mode=args.network_mode, trace=trace,
                    jobs=args.jobs, executor=args.executor,
                )
            except (SpecError, KeyError) as exc:
                print(f"bad point parameters: {exc}", file=sys.stderr)
                return 2
            dt = time.perf_counter() - t0
            print(
                f"{args.alloc}({args.sched}) {args.workload} load={args.load}: "
                f"{summarize_point(point)}  [{dt:.1f}s]"
            )
            continue
        if target not in FIGURES:
            print(f"unknown target {target!r}", file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        result = run_figure(
            target, scale=scale, config=config,
            network_mode=args.network_mode, trace=trace,
        )
        dt = time.perf_counter() - t0
        print(format_figure(result))
        if args.plot:
            print(ascii_plot(result))
        print(f"[{target}: scale={scale}, {dt:.1f}s]\n")

    if auto_sat_figs:
        rc = _run_auto_saturation_figures(
            auto_sat_figs, args, scale, config, trace
        )
        if rc != 0:
            return rc

    if scenario_files:
        rc = _run_scenarios(scenario_files, args, trace)
        if rc != 0:
            return rc
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
