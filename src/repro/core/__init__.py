"""Simulation core: configuration, DES kernel, jobs, metrics, orchestrator."""

from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.job import Job
from repro.core.metrics import Metrics, RunResult
from repro.core.simulator import Simulator

__all__ = ["SimConfig", "Engine", "Job", "Metrics", "RunResult", "Simulator"]
