"""Simulation configuration (the paper's section-5 parameter table).

Defaults are the paper's: a 16x22 mesh (chosen to match the 352-node SDSC
Paragon partition that generated the trace), router delay ``t_s = 3`` time
units, ``P_len = 8`` flits per packet, and a mean of ``num_mes = 5``
messages per processor per job, all-to-all pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

#: network timing engines selectable through :attr:`SimConfig.network_mode`
#: (kept as a literal so the config layer does not import the network
#: package; the registry in repro.network.backend is the source of truth)
NETWORK_MODES = ("batch", "fast", "causal", "sfb")

#: simulation engines selectable through :attr:`SimConfig.engine`:
#: "reference" runs one Python event loop per replication (the original
#: implementation), "soa" advances a whole replication batch in lockstep
#: through the structure-of-arrays driver (repro.core.soa), which runs
#: the event loop, schedulers and allocators in a compiled kernel when a
#: C compiler is available.  Both engines are bit-identical (enforced by
#: tests/test_engine_equivalence.py), so the choice never affects results.
ENGINES = ("reference", "soa")

#: resolution of the dyadic simulation-time grid (ticks per time unit).
#: Workloads snap arrival times onto it so that -- together with
#: grid-exact timing constants -- every derived event time is an exact
#: binary float, making all network backends bit-identical regardless
#: of how their sums are associated (see repro.network.batch).
TIME_GRID = 1024.0


@dataclass(frozen=True, slots=True)
class SimConfig:
    """All knobs of one simulation run."""

    # --- machine (paper: 16 x 22 mesh, 352 processors)
    width: int = 16
    length: int = 22
    #: "mesh" (the paper) or "torus" (its stated future-work direction)
    topology: str = "mesh"

    # --- interconnect (paper: wormhole switching, t_s = 3, P_len = 8)
    t_s: float = 3.0  #: router decision delay per node, time units
    p_len: int = 8  #: packet size in flits; links move one flit/time unit

    # --- network transport backend (see repro.network.backend)
    #: timing engine: "batch" (vectorised, the default), "fast" (the
    #: bit-identical reference loop), "causal" (exact per-hop
    #: arbitration) or "sfb" (single-flit-buffer wormhole)
    network_mode: str = "batch"

    # --- traffic (paper: all-to-all, num_mes = 5)
    num_mes: float = 5.0  #: mean messages per processor per job
    max_messages: int = 512  #: cap on per-processor messages (trace tail)
    #: trace jobs' mean communication demand is
    #: ``num_mes * trace_demand_multiplier`` messages per processor,
    #: calibrated so simulated real-workload service times land in the
    #: 200-1500 time-unit range of the paper's Fig. 5 (DESIGN.md 2.3)
    trace_demand_multiplier: float = 1.0
    #: communication rounds are spaced ``round_gap_factor * p_len`` time
    #: units apart (the compute phase between message exchanges of the
    #: ProcSimity job model); 1.0 means back-to-back injection
    round_gap_factor: float = 2.0

    # --- run control
    jobs: int = 1000  #: completed jobs per run (paper: 1000)
    warmup_jobs: int = 0  #: completions excluded from statistics
    seed: int = 12345  #: master RNG seed
    max_time: float | None = None  #: optional wall-clock cut-off (sim time)

    # --- scheduling
    scheduler_window: int = 1  #: 1 = paper's head-blocking semantics

    # --- execution engine (see repro.core.soa; results are identical)
    engine: str = "reference"  #: "reference" (per-run loop) or "soa" (lockstep)

    # --- lossy interconnect (see repro.network.channel)
    #: channel policy spec (e.g. ``"loss:0.05 + delay:exp:0.1"``) or None
    #: for the paper's perfect links; stored in canonical form.  A policy
    #: that can fail packets requires :attr:`arq`.
    channel: str | None = None
    #: ARQ retransmission protocol: "stop-and-wait", "go-back-n" or
    #: "selective-repeat" (inert unless :attr:`channel` can fail packets)
    arq: str | None = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("mesh dimensions must be positive")
        if self.topology not in ("mesh", "torus"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.network_mode not in NETWORK_MODES:
            raise ValueError(
                f"unknown network mode {self.network_mode!r}; "
                f"choose from {NETWORK_MODES}"
            )
        if self.t_s < 0:
            raise ValueError("t_s must be non-negative")
        if self.p_len < 1:
            raise ValueError("p_len must be at least one flit")
        if self.num_mes <= 0:
            raise ValueError("num_mes must be positive")
        if self.trace_demand_multiplier <= 0:
            raise ValueError("trace_demand_multiplier must be positive")
        if self.round_gap_factor < 1.0:
            raise ValueError("round_gap_factor must be >= 1 (injection floor)")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINES}"
            )
        if self.jobs <= 0:
            raise ValueError("jobs must be positive")
        if not 0 <= self.warmup_jobs < self.jobs:
            raise ValueError("warmup_jobs must be in [0, jobs)")
        if self.channel is not None or self.arq is not None:
            # lazy import: the channel grammar lives with the network
            # layer; configs without a channel never touch it
            from repro.network.arq import ARQ_PROTOCOLS
            from repro.network.channel import parse_channel

            if self.arq is not None and self.arq not in ARQ_PROTOCOLS:
                raise ValueError(
                    f"unknown ARQ protocol {self.arq!r}; "
                    f"choose from {ARQ_PROTOCOLS}"
                )
            if self.channel is not None:
                policy = parse_channel(self.channel)
                if policy.failure_rate > 0.0 and self.arq is None:
                    raise ValueError(
                        f"channel {policy.spec()!r} can fail packets and "
                        f"needs an ARQ protocol (arq=...; choose from "
                        f"{ARQ_PROTOCOLS})"
                    )
                object.__setattr__(self, "channel", policy.spec())

    @property
    def processors(self) -> int:
        """Machine size ``W * L``."""
        return self.width * self.length

    def with_(self, **changes: Any) -> "SimConfig":
        """Functional update (configs are immutable)."""
        return replace(self, **changes)


#: the exact parameterisation of the paper's experiments
PAPER_CONFIG = SimConfig()
