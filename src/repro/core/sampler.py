"""Periodic time-series sampling of simulation state.

The utilization figures (8-10) are measured under a load where "the
waiting queue is filled very early, allowing each strategy to reach its
upper limits of utilization" -- a claim about *dynamics*.  The sampler
records (time, busy processors, queue length, jobs running) at a fixed
period so that saturation onset, utilization plateaus and queue growth
can be inspected and asserted, not just the final means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.events import Priority

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.simulator import Simulator


@dataclass(frozen=True, slots=True)
class Sample:
    """One snapshot of the running system."""

    time: float
    busy_processors: int
    queue_length: int
    running_jobs: int

    def utilization(self, processors: int) -> float:
        return self.busy_processors / processors


class StateSampler:
    """Attach to a simulator to record periodic state snapshots."""

    __slots__ = ("simulator", "period", "samples", "_started")

    def __init__(self, simulator: "Simulator", period: float) -> None:
        if period <= 0:
            raise ValueError(f"sampling period must be positive, got {period}")
        self.simulator = simulator
        self.period = period
        self.samples: list[Sample] = []
        self._started = False

    def start(self) -> None:
        """Begin sampling (idempotent); call before ``simulator.run()``."""
        if self._started:
            return
        self._started = True
        self.simulator.engine.schedule(
            self.period, self._tick, priority=Priority.STATS
        )

    def _tick(self) -> None:
        sim = self.simulator
        running = sim._started - sim.metrics.completed
        self.samples.append(
            Sample(
                time=sim.engine.now,
                busy_processors=sim.metrics.busy_procs,
                queue_length=len(sim.scheduler),
                running_jobs=running,
            )
        )
        sim.engine.schedule(self.period, self._tick, priority=Priority.STATS)

    # ------------------------------------------------------------ analysis
    def utilization_series(self) -> list[tuple[float, float]]:
        """(time, utilization) pairs."""
        p = self.simulator.config.processors
        return [(s.time, s.busy_processors / p) for s in self.samples]

    def queue_series(self) -> list[tuple[float, int]]:
        """(time, queue length) pairs."""
        return [(s.time, s.queue_length) for s in self.samples]

    def time_to_queue(self, threshold: int) -> float | None:
        """First sample time at which the queue reached ``threshold``."""
        for s in self.samples:
            if s.queue_length >= threshold:
                return s.time
        return None

    def plateau_utilization(self, skip_fraction: float = 0.3) -> float:
        """Mean sampled utilization after the initial ramp-up."""
        if not self.samples:
            return 0.0
        start = int(len(self.samples) * skip_fraction)
        tail = self.samples[start:] or self.samples
        p = self.simulator.config.processors
        return sum(s.busy_processors for s in tail) / (len(tail) * p)
