"""Simulator lifecycle hooks: the observer architecture.

The simulator no longer talks to a hard-wired metrics object; it
broadcasts job lifecycle events to a list of :class:`SimObserver`\\ s:

* ``on_arrival``  -- a job joined the scheduler queue;
* ``on_start``    -- a job was allocated and its traffic launched;
* ``on_complete`` -- a job's last packet was delivered and it departed;
* ``on_busy_change`` -- the number of busy processors changed;
* ``on_end``      -- the run finished (clock at its final value).

:class:`~repro.core.metrics.Metrics` is the default observer (always
first, so aggregate metrics exist for every run); additional observers
such as :class:`TrajectoryObserver` attach per run.  Observers are
passive -- they never schedule events or touch simulation state -- so a
run's event trajectory, and therefore its :class:`RunResult`, is
bit-identical whether or not extra observers are attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import Job

#: the keys every :meth:`TrajectoryObserver.series` export carries, in
#: order (``utilization`` is appended when ``processors`` is known); the
#: stable contract report consumers key on
SERIES_KEYS: tuple[str, ...] = ("times", "queue_length", "busy", "completed")


class SimObserver:
    """Base observer: every hook defaults to a no-op.

    Subclasses override only the hooks they need.  ``queue_length`` is
    the scheduler's queue size *after* the triggering add/remove, so
    observers need not track the queue themselves.
    """

    __slots__ = ()

    def on_arrival(self, now: float, job: "Job", queue_length: int) -> None:
        """``job`` arrived and was enqueued."""

    def on_start(self, now: float, job: "Job", queue_length: int) -> None:
        """``job`` was allocated (``job.allocation`` is set) and started."""

    def on_complete(self, now: float, job: "Job") -> None:
        """``job`` departed (its processors are already released)."""

    def on_busy_change(self, now: float, delta: int) -> None:
        """Busy processor count changed by ``delta`` at ``now``."""

    def on_end(self, now: float) -> None:
        """The run ended with the clock at ``now``."""


class TrajectoryObserver(SimObserver):
    """Record queue-length / utilization / throughput time series.

    Samples are taken on a fixed grid every ``sample_interval`` time
    units.  The observer is event-driven: whenever a hook fires it first
    emits samples for every grid point that the clock has reached --
    carrying the pre-event state forward, since nothing changed between
    events -- and only then folds in the new event.

    The sampling contract (pinned by ``tests/test_core_hooks.py`` and
    documented in ``docs/scenarios.md``):

    * a sample at grid time ``g`` records the state at ``g^-`` -- after
      every event strictly before ``g`` and before any event at exactly
      ``g``.  In particular the **t=0 sample is always the empty
      system** (queue 0, busy 0, completed 0), even when the first
      arrival occurs at t=0;
    * ``on_end`` flushes the remaining grid up to the final clock value,
      so the state after the last event is carried forward through the
      **tail** (e.g. a ``max_time`` cutoff long after the final
      completion still yields samples through the cutoff);
    * a finished run always has exactly
      ``floor(final_clock / sample_interval) + 1`` samples, t=0
      included.

    Series (parallel lists, one entry per grid point):

    * ``times``        -- sample timestamps;
    * ``queue_length`` -- jobs waiting in the scheduler queue;
    * ``busy``         -- busy processors (divide by ``processors`` for
      instantaneous utilization, see :meth:`utilization`);
    * ``completed``    -- cumulative completed jobs (difference a window
      to get throughput).
    """

    __slots__ = (
        "sample_interval",
        "processors",
        "times",
        "queue_length",
        "busy",
        "completed",
        "_queue",
        "_busy",
        "_completed",
        "_next",
    )

    def __init__(self, sample_interval: float, processors: int = 0) -> None:
        if sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        self.sample_interval = float(sample_interval)
        self.processors = processors
        self.times: list[float] = []
        self.queue_length: list[int] = []
        self.busy: list[int] = []
        self.completed: list[int] = []
        self._queue = 0
        self._busy = 0
        self._completed = 0
        self._next = 0.0

    # ------------------------------------------------------------ sampling
    def _sample_until(self, now: float) -> None:
        """Emit samples for every grid point the clock has reached.

        Hooks flush the grid *before* folding in their event, so a grid
        point equal to ``now`` is emitted with the pre-event state: each
        sample at time ``g`` is the state at ``g^-``."""
        while self._next <= now:
            self.times.append(self._next)
            self.queue_length.append(self._queue)
            self.busy.append(self._busy)
            self.completed.append(self._completed)
            self._next += self.sample_interval

    # --------------------------------------------------------------- hooks
    def on_arrival(self, now: float, job, queue_length: int) -> None:
        """Flush the grid, then record the post-arrival queue length."""
        self._sample_until(now)
        self._queue = queue_length

    def on_start(self, now: float, job, queue_length: int) -> None:
        """Flush the grid, then record the post-start queue length."""
        self._sample_until(now)
        self._queue = queue_length

    def on_complete(self, now: float, job) -> None:
        """Flush the grid, then count the completion."""
        self._sample_until(now)
        self._completed += 1

    def on_busy_change(self, now: float, delta: int) -> None:
        """Flush the grid, then apply the busy-processor delta."""
        self._sample_until(now)
        self._busy += delta

    def on_end(self, now: float) -> None:
        """Flush the tail: carry the final state through the last grid
        point at or before the run's final clock value."""
        self._sample_until(now)

    # -------------------------------------------------------------- output
    def utilization(self) -> list[float]:
        """Instantaneous utilization per sample (needs ``processors``)."""
        if self.processors <= 0:
            raise ValueError("TrajectoryObserver needs processors > 0")
        return [b / self.processors for b in self.busy]

    def series(self) -> dict[str, list]:
        """All series as a JSON-serializable dict -- the stable export.

        This is the trajectory payload embedded in scenario ``--out``
        reports and consumed by ``repro diff --trajectories`` and
        ``repro plot``: the keys are exactly :data:`SERIES_KEYS` (plus
        ``utilization`` whenever ``processors`` is known), every value
        is a plain list, and all lists are parallel to ``times``.
        Downstream tooling may rely on this shape.
        """
        out: dict[str, list] = {
            "times": list(self.times),
            "queue_length": list(self.queue_length),
            "busy": list(self.busy),
            "completed": list(self.completed),
        }
        if self.processors > 0:
            out["utilization"] = self.utilization()
        return out
