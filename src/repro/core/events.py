"""Event primitives of the discrete-event simulation kernel.

Events are ordered by ``(time, priority, seq)``: ties at the same instant
are broken first by an explicit priority class (departures before arrivals
before dispatch, so freed processors are visible to the dispatcher within
the same time step), then by scheduling order, which makes runs fully
deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class Priority(enum.IntEnum):
    """Tie-break classes for simultaneous events (lower runs first)."""

    NETWORK = 0  #: channel releases / worm grants
    DEPARTURE = 1  #: job completion & deallocation
    ARRIVAL = 2  #: job arrival
    DISPATCH = 3  #: scheduler pass
    STATS = 4  #: sampling hooks


@dataclass(order=True, slots=True)
class Event:
    """One scheduled callback."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; the kernel skips it on pop."""
        self.cancelled = True
