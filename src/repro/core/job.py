"""Parallel job model.

A job "arrives in the system, requests a particular sized partition of the
system's processors and executes on the partition for a period of time"
(paper section 1).  The request is a sub-mesh shape ``w x l``; the
communication demand ``messages`` is the per-processor packet count that,
together with network contention, *determines* the execution time (the
paper: "execution times of jobs are not simulator inputs").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.base import Allocation


@dataclass(slots=True)
class Job:
    """One parallel job flowing through the simulator."""

    job_id: int
    arrival_time: float
    width: int  #: requested sub-mesh width  (paper's ``a``)
    length: int  #: requested sub-mesh length (paper's ``b``)
    messages: int  #: packets each allocated processor sends (``K_j``)
    service_demand: float = 0.0  #: SSD priority key, known at arrival
    trace_runtime: float | None = None  #: recorded runtime (trace jobs only)

    # lifecycle timestamps, filled by the simulator
    alloc_time: float | None = None
    depart_time: float | None = None
    allocation: Allocation | None = None

    # per-job packet bookkeeping (merged into metrics at completion)
    pending_packets: int = 0
    packet_count: int = 0
    latency_sum: float = 0.0
    blocking_sum: float = 0.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError(f"job {self.job_id}: request sides must be positive")
        if self.messages < 1:
            raise ValueError(f"job {self.job_id}: messages must be >= 1")
        if self.service_demand == 0.0:
            # default SSD key: communication demand (DESIGN.md section 2.4)
            self.service_demand = float(self.messages)

    # ------------------------------------------------------------- derived
    @property
    def size(self) -> int:
        """Requested processor count ``w * l``."""
        return self.width * self.length

    @property
    def turnaround(self) -> float:
        """Arrival to departure (paper's *turnaround time*)."""
        if self.depart_time is None:
            raise ValueError(f"job {self.job_id} has not departed")
        return self.depart_time - self.arrival_time

    @property
    def service_time(self) -> float:
        """Allocation to departure (paper's *service time*)."""
        if self.depart_time is None or self.alloc_time is None:
            raise ValueError(f"job {self.job_id} has not completed service")
        return self.depart_time - self.alloc_time

    @property
    def wait_time(self) -> float:
        """Arrival to allocation (queueing delay)."""
        if self.alloc_time is None:
            raise ValueError(f"job {self.job_id} has not been allocated")
        return self.alloc_time - self.arrival_time

    def record_packet(self, latency: float, blocking: float) -> None:
        """Accumulate one delivered packet's statistics."""
        self.packet_count += 1
        self.latency_sum += latency
        self.blocking_sum += blocking

    def record_packets(
        self, count: int, latency_sum: float, blocking_sum: float
    ) -> None:
        """Bulk-accumulate a whole launch's packet statistics.

        Synchronous network backends resolve every packet of a launch at
        once and report pre-reduced sums (one call per job instead of
        one per packet); the per-job totals are identical to repeated
        :meth:`record_packet` calls.
        """
        self.packet_count += count
        self.latency_sum += latency_sum
        self.blocking_sum += blocking_sum
