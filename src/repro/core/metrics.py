"""Run-level metric collection.

The paper's five performance parameters (section 5):

* **average turnaround time** -- arrival to departure, per job;
* **average service time** -- allocation to departure, per job;
* **average packet latency** -- injection to delivery, per packet;
* **average packet blocking time** -- time spent stalled in the network
  holding channels, per packet;
* **mean system utilization** -- time-weighted fraction of allocated
  processors.

Packet statistics are accumulated per job while it runs -- one
:meth:`~repro.core.job.Job.record_packet` per delivery under the
event-driven network backends, or a single bulk
:meth:`~repro.core.job.Job.record_packets` per launch under the
synchronous ones -- and merged here on completion, so the warm-up
exclusion treats a job and its packets atomically regardless of how the
samples were ingested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hooks import SimObserver
from repro.core.job import Job


@dataclass(frozen=True, slots=True)
class RunResult:
    """Aggregated output of one simulation run."""

    completed_jobs: int
    measured_jobs: int
    mean_turnaround: float
    mean_service: float
    mean_wait: float
    mean_packet_latency: float
    mean_packet_blocking: float
    utilization: float
    sim_time: float
    packets_delivered: int
    mean_fragments: float
    contiguity_rate: float
    queue_peak: int

    def metric(self, name: str) -> float:
        """Fetch a metric by experiment-registry name."""
        return getattr(self, name)


class Metrics(SimObserver):
    """Streaming accumulators for one run.

    Implements the :class:`~repro.core.hooks.SimObserver` interface and
    is the simulator's *default* observer: every run carries one, so the
    aggregate :class:`RunResult` always exists.  The pre-observer entry
    points (:meth:`on_queue_length`, :meth:`on_completion`) remain the
    implementation; the hook methods adapt to them.
    """

    __slots__ = (
        "processors",
        "warmup_jobs",
        "completed",
        "measured",
        "turnaround_sum",
        "service_sum",
        "wait_sum",
        "latency_sum",
        "blocking_sum",
        "packets",
        "busy_integral",
        "busy_procs",
        "last_change",
        "measure_start",
        "queue_peak",
        "fragments_sum",
        "contiguous_jobs",
        "per_job",
        "keep_jobs",
    )

    def __init__(
        self, processors: int, warmup_jobs: int = 0, keep_jobs: bool = False
    ) -> None:
        self.processors = processors
        self.warmup_jobs = warmup_jobs
        self.completed = 0
        self.measured = 0
        self.turnaround_sum = 0.0
        self.service_sum = 0.0
        self.wait_sum = 0.0
        self.latency_sum = 0.0
        self.blocking_sum = 0.0
        self.packets = 0
        self.busy_integral = 0.0
        self.busy_procs = 0
        self.last_change = 0.0
        self.measure_start = 0.0
        self.queue_peak = 0
        self.fragments_sum = 0
        self.contiguous_jobs = 0
        self.per_job: list[Job] = []
        self.keep_jobs = keep_jobs

    # -------------------------------------------------------- utilization
    def on_busy_change(self, now: float, delta: int) -> None:
        """Processor occupancy changed by ``delta`` at time ``now``."""
        self.busy_integral += self.busy_procs * (now - self.last_change)
        self.busy_procs += delta
        self.last_change = now
        if not 0 <= self.busy_procs <= self.processors:
            raise AssertionError(
                f"busy processor count {self.busy_procs} out of range"
            )

    def utilization_at(self, now: float) -> float:
        """Time-weighted mean utilization from measure_start to ``now``."""
        span = now - self.measure_start
        if span <= 0:
            return 0.0
        integral = self.busy_integral + self.busy_procs * (now - self.last_change)
        return integral / (self.processors * span)

    # ----------------------------------------------------------- lifecycle
    def on_arrival(self, now: float, job: Job, queue_length: int) -> None:
        self.on_queue_length(queue_length)

    def on_complete(self, now: float, job: Job) -> None:
        self.on_completion(job)

    def on_queue_length(self, length: int) -> None:
        if length > self.queue_peak:
            self.queue_peak = length

    def on_completion(self, job: Job) -> None:
        """A job departed; fold it into the aggregates unless warming up."""
        self.completed += 1
        if self.completed <= self.warmup_jobs:
            return
        self.measured += 1
        self.turnaround_sum += job.turnaround
        self.service_sum += job.service_time
        self.wait_sum += job.wait_time
        self.latency_sum += job.latency_sum
        self.blocking_sum += job.blocking_sum
        self.packets += job.packet_count
        if job.allocation is not None:
            self.fragments_sum += job.allocation.fragment_count
            if job.allocation.contiguous:
                self.contiguous_jobs += 1
        if self.keep_jobs:
            self.per_job.append(job)

    # -------------------------------------------------------------- output
    def result(self, now: float) -> RunResult:
        """Freeze the accumulators into a :class:`RunResult`.

        **Zero-measured semantics:** a run can finish with ``measured ==
        0`` (every completion fell inside the warm-up window, or a
        ``max_time`` cut-off landed before the first measured
        completion).  Every per-job mean -- turnaround, service, wait,
        fragments, contiguity rate -- and every per-packet mean then
        reports exactly ``0.0``, never ``nan`` or a division error:
        downstream consumers (campaign cache files, replication CIs)
        require all metric values to be finite and JSON-round-trippable.
        """
        n = max(self.measured, 1)  # all numerators are 0.0 when measured == 0
        return RunResult(
            completed_jobs=self.completed,
            measured_jobs=self.measured,
            mean_turnaround=self.turnaround_sum / n,
            mean_service=self.service_sum / n,
            mean_wait=self.wait_sum / n,
            mean_packet_latency=self.latency_sum / max(self.packets, 1),
            mean_packet_blocking=self.blocking_sum / max(self.packets, 1),
            utilization=self.utilization_at(now),
            sim_time=now,
            packets_delivered=self.packets,
            mean_fragments=self.fragments_sum / n,
            contiguity_rate=self.contiguous_jobs / n,
            queue_peak=self.queue_peak,
        )
