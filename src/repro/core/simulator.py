"""Simulation orchestrator: arrivals -> queue -> allocate -> traffic -> depart.

Wires the DES kernel, an allocation strategy, a scheduling strategy, the
wormhole network and a workload into one run, mirroring ProcSimity's main
loop:

* a job arrives and joins the scheduler's queue;
* the dispatcher considers queue heads in policy order; an allocation
  attempt that succeeds starts the job's all-to-all traffic, a failure
  stops dispatching (head-blocking, the paper's semantics);
* when the last packet of a job is delivered the job departs, its
  processors are freed, and the dispatcher runs again.

A run ends after ``config.jobs`` completions (the paper uses 1000) or at
``config.max_time`` for the saturation/utilization experiments.

Job lifecycle events are broadcast to a list of
:class:`~repro.core.hooks.SimObserver` objects
(``on_arrival``/``on_start``/``on_complete``/``on_busy_change``/
``on_end``).  The run's :class:`Metrics` is always the first observer;
extra observers (e.g. :class:`~repro.core.hooks.TrajectoryObserver` for
time-resolved queue/utilization series) attach via the ``observers``
argument.  Observers are passive, so attaching them never changes the
simulated trajectory.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.alloc.base import Allocator
from repro.core.config import SimConfig
from repro.core.engine import Engine
from repro.core.events import Priority
from repro.core.hooks import SimObserver
from repro.core.job import Job
from repro.core.metrics import Metrics, RunResult
from repro.network import make_backend
from repro.network.topology import MeshTopology
from repro.network.traffic import AllToAllTraffic
from repro.sched.policies import Scheduler
from repro.workload.base import Workload
from repro.workload.columnar import job_stream


class Simulator:
    """One simulation run over a fixed strategy combination."""

    def __init__(
        self,
        config: SimConfig,
        allocator: Allocator,
        scheduler: Scheduler,
        workload: Workload,
        network_mode: str | None = None,
        seed: int | None = None,
        keep_jobs: bool = False,
        observers: Sequence[SimObserver] = (),
    ) -> None:
        if (allocator.width, allocator.length) != (config.width, config.length):
            raise ValueError(
                f"allocator mesh {allocator.width}x{allocator.length} does not "
                f"match config {config.width}x{config.length}"
            )
        self.config = config
        self.allocator = allocator
        self.scheduler = scheduler
        self.workload = workload
        self.engine = Engine()
        self.topology = MeshTopology(
            config.width, config.length, wrap=config.topology == "torus"
        )
        self.network = make_backend(
            config.network_mode if network_mode is None else network_mode,
            self.topology,
            self.engine,
            t_s=config.t_s,
            p_len=config.p_len,
        )
        self.seed = config.seed if seed is None else seed
        channel = None
        if config.channel is not None:
            from repro.network.channel import ChannelModel, parse_channel

            policy = parse_channel(config.channel)
            if not policy.trivial:
                # seeded off the run's lane seed on an independent
                # sub-stream, so the workload draws are untouched and the
                # same seed reproduces the same fates everywhere
                channel = ChannelModel(
                    policy,
                    config.arq,
                    self.seed,
                    config.p_len,
                    config.round_gap_factor * config.p_len,
                )
        self.traffic = AllToAllTraffic(
            self.network,
            self.engine,
            round_gap=config.round_gap_factor * config.p_len,
            channel=channel,
        )
        self.metrics = Metrics(
            config.processors, warmup_jobs=config.warmup_jobs, keep_jobs=keep_jobs
        )
        #: lifecycle observers; metrics always first so aggregates exist
        self.observers: tuple[SimObserver, ...] = (self.metrics, *observers)
        self._jobs: Iterator[Job] | None = None
        self._done = False
        self._arrived = 0
        self._started = 0

    # ------------------------------------------------------------------ run
    def run(self) -> RunResult:
        """Execute the run and return the aggregated metrics."""
        self.start()
        self.advance()
        return self.finalize()

    # ------------------------------------------------- incremental execution
    # The split API lets a driver interleave several independent runs
    # (repro.core.soa advances a replication batch in lockstep rounds).
    # ``start(); advance(); finalize()`` is exactly ``run()``.
    def start(self) -> None:
        """Prime the run: open the job stream, schedule the first arrival.

        The stream comes through the block-buffered adapter
        (:func:`repro.workload.columnar.job_stream`): workloads with a
        native columnar form materialise jobs from (process-cached)
        column blocks, others keep the plain sequential iterator.
        Either way the jobs are identical to ``workload.jobs(seed)``.
        """
        self._jobs = job_stream(self.workload, self.seed)
        self._schedule_next_arrival()

    def advance(self, max_events: int | None = None) -> bool:
        """Process up to ``max_events`` events; return True once finished.

        With ``max_events=None`` the run executes to completion in one
        call.  A run is finished when the completion target is reached,
        the event heap drains, or ``config.max_time`` is hit -- in all
        three cases further calls are no-ops.
        """
        before = self.engine.processed
        self.engine.run(
            until=self.config.max_time,
            stop=lambda: self._done,
            max_events=max_events,
        )
        if self._done or max_events is None:
            return True
        # budget not exhausted => the engine stopped for a terminal reason
        # (empty heap or the max_time horizon), not the event budget
        return self.engine.processed - before < max_events

    def finalize(self) -> RunResult:
        """Close out the run and return the aggregated metrics."""
        now = self.engine.now
        for obs in self.observers:
            obs.on_end(now)
        return self.metrics.result(now)

    @property
    def completed(self) -> int:
        """Jobs that have departed so far."""
        return self.metrics.completed

    # ------------------------------------------------------------- arrivals
    def _schedule_next_arrival(self) -> None:
        assert self._jobs is not None
        job = next(self._jobs, None)
        if job is None:
            return  # finite trace exhausted
        # guard against pathological workloads that jump backwards
        at = max(job.arrival_time, self.engine.now)
        self.engine.schedule_at(at, self._on_arrival, job, priority=Priority.ARRIVAL)

    def _on_arrival(self, job: Job) -> None:
        self._arrived += 1
        self.scheduler.add(job)
        now = self.engine.now
        queued = len(self.scheduler)
        for obs in self.observers:
            obs.on_arrival(now, job, queued)
        self._schedule_next_arrival()
        self._dispatch()

    # ------------------------------------------------------------- dispatch
    def _dispatch(self) -> None:
        """Allocate queue heads until the policy window blocks."""
        allocator = self.allocator
        scheduler = self.scheduler
        progress = True
        while progress and len(scheduler):
            progress = False
            for job in scheduler.peek(self.config.scheduler_window):
                allocation = allocator.allocate(job.job_id, job.width, job.length)
                if allocation is not None:
                    scheduler.remove(job)
                    self._start(job, allocation)
                    progress = True
                    break

    def _start(self, job: Job, allocation) -> None:
        now = self.engine.now
        job.alloc_time = now
        job.allocation = allocation
        self._started += 1
        queued = len(self.scheduler)
        for obs in self.observers:
            obs.on_busy_change(now, allocation.size)
        for obs in self.observers:
            obs.on_start(now, job, queued)
        self.traffic.launch(job, now, self._on_complete)

    # ------------------------------------------------------------ departure
    def _on_complete(self, job: Job) -> None:
        now = self.engine.now
        job.depart_time = now
        assert job.allocation is not None
        self.allocator.release(job.allocation)
        for obs in self.observers:
            obs.on_busy_change(now, -job.allocation.size)
        for obs in self.observers:
            obs.on_complete(now, job)
        if self.metrics.completed >= self.config.jobs:
            self._done = True
            return
        self._dispatch()
