"""Compiled lane driver for the structure-of-arrays engine.

One *lane* is one replication: the whole discrete-event loop of
:class:`repro.core.simulator.Simulator` -- arrivals, FCFS/SSD queueing,
GABL/Paging(0)/MBS allocation, all-to-all launches through the batch
network recurrence, departures and metric accumulation -- runs inside a
single C function over flat NumPy-owned arrays.  The driver returns to
Python only to refill the arrival arrays from the (non-vectorisable)
workload generator, so a replication batch advances in lockstep with a
handful of FFI calls per lane.

The C translation unit embeds :data:`repro.network._native._SOURCE`
verbatim, so packet timing goes through the *same* ``solve_rounds``
routine the batch backend uses, and every float64 operation elsewhere
(busy-time integral, metric sums, departure times) is performed in the
reference engine's exact order -- compiled with ``-ffp-contract=off`` --
making the lane driver bit-identical to the reference engine
(``tests/test_engine_equivalence.py``).

Like the network kernel, this module is strictly optional:
:mod:`repro.core.soa` falls back to lockstepped reference simulators
(same results) when compilation is impossible.  Set ``REPRO_NATIVE=0``
to disable compilation and dispatch entirely.

**GIL-release contract.**  ``soa_advance`` is loaded through
:class:`ctypes.CDLL`, so the GIL is dropped for the entire duration of
every call -- the whole event loop between two refills runs without the
interpreter.  The pointer-table ABI confines every mutable word the
driver touches to the per-lane flat arrays named in the ``P_*`` table
below (plus the lane's ``CI``/``CF`` blocks); the C code reads and
writes nothing else.  Lanes from *different* batches therefore advance
concurrently from a thread pool with no shared state at all, which is
what makes the campaign's ``--executor thread`` mode scale
(:mod:`repro.experiments.campaign`).  The only cross-thread step, the
lazy first-use compile, serialises on
:data:`repro.network._native.KERNEL_LOCK` so N threads build once.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

from repro.network._native import _SOURCE as _NETWORK_SOURCE
from repro.network._native import KERNEL_LOCK, _cache_dir, _compiler

#: pointer-table slots of ``soa_advance``'s first argument; must match
#: the ``P_*`` enum in the C source below, slot for slot.
P_F = 0          # f8 scalar block (see F_* below)
P_I = 1          # i64 scalar block (see I_* below)
P_ARR = 2        # f8[cap]  arrival times
P_JW = 3         # i64[cap] request widths
P_JL = 4         # i64[cap] request lengths
P_JMSG = 5       # i64[cap] messages per processor
P_JDEM = 6       # f8[cap]  SSD service-demand keys
P_JAT = 7        # f8[cap]  allocation times
P_JPK = 8        # i64[cap] delivered packets per job
P_JLAT = 9       # f8[cap]  per-job packet latency sums
P_JBLK = 10      # f8[cap]  per-job packet blocking sums
P_JNS = 11       # i64[cap] fragment counts
P_OWNER = 12     # i64[W*L] grid owner (-1 = free)
P_FREEAT = 13    # f8[W*L*6] channel free-at times
P_MEMO = 14      # u8[W*L]  failed-request memo, indexed (w-1)*L + (l-1)
P_FCFS = 15      # i64[cap] FCFS queue storage
P_SSDK = 16      # f8[cap]  SSD heap keys
P_SSDS = 17      # i64[cap] SSD heap insertion sequence numbers
P_SSDJ = 18      # i64[cap] SSD heap job indices
P_REM = 19       # u8[cap]  SSD lazy-removal flags
P_CT = 20        # f8[W*L+8]  completion-heap times
P_CS = 21        # i64[W*L+8] completion-heap sequence numbers
P_CJ = 22        # i64[W*L+8] completion-heap job indices
P_IDS = 23       # i64[W*L] allocation coords scratch (node ids, in order)
P_OFFS = 24      # i64[max_messages] destination-offset scratch
P_PKK = 25       # f8[window]  scheduler peek scratch: keys
P_PKS = 26       # i64[window] scheduler peek scratch: sequence numbers
P_PKJ = 27       # i64[window] scheduler peek scratch: job indices
P_HTS = 28       # i64[L*W] column-height scratch
P_ERO = 29       # i64[L*W] width-erosion scratch
P_SAT = 30       # i64[(W+1)*(L+1)] summed-area-table scratch
P_NK = 31        # i64[ncap] MBS node level k
P_NX = 32        # i64[ncap] MBS node base x
P_NY = 33        # i64[ncap] MBS node base y
P_NPAR = 34      # i64[ncap] MBS node parent (-1 for roots)
P_NCHILD = 35    # i64[ncap] MBS node first child (-1 = not yet split)
P_NSTATE = 36    # u8[ncap]  MBS node state
P_NEPOCH = 37    # i64[ncap] MBS node epoch
P_NOWN = 38      # i64[ncap] MBS node owning job (-1)
P_MHE = 39       # i64[heap arena] MBS free-heap entry epochs
P_MHN = 40       # i64[heap arena] MBS free-heap entry node indices
P_MHL = 41       # i64[max_k+1] MBS free-heap lengths per level
P_MHOFF = 42     # i64[max_k+2] MBS free-heap arena offsets per level
P_RK = 43        # i64[n_roots] MBS root cover: levels
P_RX = 44        # i64[n_roots] MBS root cover: base x
P_RY = 45        # i64[n_roots] MBS root cover: base y
P_COUNT = 46

#: f8 scalar slots (P_F)
F_NOW = 0
F_LASTCHANGE = 1
F_BUSYINT = 2
F_TURN = 3
F_SERV = 4
F_WAIT = 5
F_LAT = 6
F_BLK = 7
F_PENDING = 8
F_COUNT = 9

#: i64 scalar slots (P_I)
I_NEXT = 0       # next arrival index to consume
I_HASPEND = 1    # a pending arrival event exists
I_COMPLETED = 2
I_MEASURED = 3
I_PACKETS = 4
I_FRAG = 5
I_CONTIG = 6
I_QPEAK = 7
I_BUSY = 8
I_SEQ = 9        # completion-event sequence counter
I_SSEQ = 10      # scheduler insertion sequence counter
I_FHEAD = 11     # FCFS queue head
I_FLEN = 12      # FCFS queue length
I_SLEN = 13      # SSD heap length (including stale entries)
I_SSIZE = 14     # SSD live size
I_CLEN = 15      # completion heap length
I_FREE = 16      # free processors
I_VERSION = 17   # grid version (bumped on every occupancy change)
I_MEMOVER = 18   # grid version the failure memo was built against
I_MBSINIT = 19   # MBS arena initialised
I_NCNT = 20      # MBS nodes created
I_COUNT = 21

#: i64 parameter slots (third argument)
CI_MAGIC = 0
CI_W = 1
CI_L = 2
CI_WRAP = 3
CI_ALLOC = 4     # 0 = GABL, 1 = Paging(0), 2 = MBS
CI_SCHED = 5     # 0 = FCFS, 1 = SSD
CI_WINDOW = 6
CI_JOBS = 7
CI_WARMUP = 8
CI_NPROV = 9     # arrivals materialised so far
CI_EXH = 10      # the workload iterator is exhausted
CI_HASUNTIL = 11
CI_NODECAP = 12
CI_NROOTS = 13
CI_MAXK = 14
CI_COUNT = 15

#: f8 parameter slots (fourth argument)
CF_HOP = 0
CF_OCC = 1
CF_DRAIN = 2
CF_GAP = 3
CF_UNTIL = 4
CF_COUNT = 5

#: pointer-table layout fingerprint, checked by the C entry point so a
#: stale cached .so can never be driven with a mismatched layout
LAYOUT_MAGIC = 20260808

#: ``soa_advance`` return codes
RC_DONE = 1
RC_NEED_JOBS = 0

_DRIVER_SOURCE = r"""
/* ==== structure-of-arrays lane driver ================================== */

#include <string.h>

enum {
    P_F = 0, P_I, P_ARR, P_JW, P_JL, P_JMSG, P_JDEM, P_JAT,
    P_JPK, P_JLAT, P_JBLK, P_JNS,
    P_OWNER, P_FREEAT, P_MEMO,
    P_FCFS, P_SSDK, P_SSDS, P_SSDJ, P_REM,
    P_CT, P_CS, P_CJ,
    P_IDS, P_OFFS, P_PKK, P_PKS, P_PKJ,
    P_HTS, P_ERO, P_SAT,
    P_NK, P_NX, P_NY, P_NPAR, P_NCHILD, P_NSTATE, P_NEPOCH, P_NOWN,
    P_MHE, P_MHN, P_MHL, P_MHOFF, P_RK, P_RX, P_RY,
    P_COUNT
};

enum { F_NOW = 0, F_LASTCHANGE, F_BUSYINT, F_TURN, F_SERV, F_WAIT,
       F_LAT, F_BLK, F_PENDING };

enum { I_NEXT = 0, I_HASPEND, I_COMPLETED, I_MEASURED, I_PACKETS, I_FRAG,
       I_CONTIG, I_QPEAK, I_BUSY, I_SEQ, I_SSEQ, I_FHEAD, I_FLEN, I_SLEN,
       I_SSIZE, I_CLEN, I_FREE, I_VERSION, I_MEMOVER, I_MBSINIT, I_NCNT };

enum { CI_MAGIC = 0, CI_W, CI_L, CI_WRAP, CI_ALLOC, CI_SCHED, CI_WINDOW,
       CI_JOBS, CI_WARMUP, CI_NPROV, CI_EXH, CI_HASUNTIL, CI_NODECAP,
       CI_NROOTS, CI_MAXK };

enum { CF_HOP = 0, CF_OCC, CF_DRAIN, CF_GAP, CF_UNTIL };

#define LAYOUT_MAGIC 20260808

/* MBS block states (repro.alloc.mbs) */
#define B_FREE 0
#define B_ALLOC 1
#define B_SPLIT 2
#define B_ABSORBED 3

typedef struct {
    double *F;
    int64_t *I;
    const double *arr;
    const int64_t *jw, *jl, *jmsg;
    const double *jdem;
    double *jat;
    int64_t *jpk;
    double *jlat, *jblk;
    int64_t *jns;
    int64_t *owner;
    double *free_at;
    uint8_t *memo;
    int64_t *fcfs;
    double *ssdk;
    int64_t *ssds, *ssdj;
    uint8_t *rem;
    double *ct;
    int64_t *cs, *cj;
    int64_t *ids, *offs;
    double *pkk;
    int64_t *pks, *pkj;
    int64_t *hts, *ero, *sat;
    int64_t *nk, *nx, *ny, *npar, *nchild, *nepoch, *nown;
    uint8_t *nstate;
    int64_t *mhe, *mhn, *mhl, *mhoff;
    const int64_t *rk, *rx, *ry;
    int64_t W, L, alloc_kind, sched_kind, window, jobs_target, warmup;
    int64_t n_prov, exhausted, has_until, node_cap, n_roots, max_k;
    int32_t wrap;
    double hop, occ, drain, gap, until;
    int64_t ids_len, cur_nsub;
} SoaCtx;

/* ------------------------------------------------------------ metrics */

static void busy_change(SoaCtx *c, int64_t delta)
{
    /* Metrics.on_busy_change, in its exact float-op order */
    c->F[F_BUSYINT] += (double)c->I[I_BUSY] * (c->F[F_NOW] - c->F[F_LASTCHANGE]);
    c->I[I_BUSY] += delta;
    c->F[F_LASTCHANGE] = c->F[F_NOW];
}

/* --------------------------------------------------- completion heap */

static void comp_push(SoaCtx *c, double t, int64_t seq, int64_t j)
{
    int64_t i = c->I[I_CLEN]++;
    c->ct[i] = t; c->cs[i] = seq; c->cj[i] = j;
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (c->ct[p] < c->ct[i] ||
            (c->ct[p] == c->ct[i] && c->cs[p] < c->cs[i]))
            break;
        double tt = c->ct[p]; c->ct[p] = c->ct[i]; c->ct[i] = tt;
        int64_t ss = c->cs[p]; c->cs[p] = c->cs[i]; c->cs[i] = ss;
        int64_t jj = c->cj[p]; c->cj[p] = c->cj[i]; c->cj[i] = jj;
        i = p;
    }
}

static int64_t comp_pop(SoaCtx *c, double *t_out)
{
    int64_t job = c->cj[0];
    *t_out = c->ct[0];
    int64_t n = --c->I[I_CLEN];
    c->ct[0] = c->ct[n]; c->cs[0] = c->cs[n]; c->cj[0] = c->cj[n];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, m = i;
        if (l < n && (c->ct[l] < c->ct[m] ||
                      (c->ct[l] == c->ct[m] && c->cs[l] < c->cs[m])))
            m = l;
        if (r < n && (c->ct[r] < c->ct[m] ||
                      (c->ct[r] == c->ct[m] && c->cs[r] < c->cs[m])))
            m = r;
        if (m == i) break;
        double tt = c->ct[m]; c->ct[m] = c->ct[i]; c->ct[i] = tt;
        int64_t ss = c->cs[m]; c->cs[m] = c->cs[i]; c->cs[i] = ss;
        int64_t jj = c->cj[m]; c->cj[m] = c->cj[i]; c->cj[i] = jj;
        i = m;
    }
    return job;
}

/* --------------------------------------------------------- schedulers */

static int64_t qsize(SoaCtx *c)
{
    return c->sched_kind == 0 ? c->I[I_FLEN] : c->I[I_SSIZE];
}

static int ssd_less(SoaCtx *c, int64_t a, int64_t b)
{
    if (c->ssdk[a] != c->ssdk[b]) return c->ssdk[a] < c->ssdk[b];
    return c->ssds[a] < c->ssds[b];
}

static void ssd_swap(SoaCtx *c, int64_t a, int64_t b)
{
    double k = c->ssdk[a]; c->ssdk[a] = c->ssdk[b]; c->ssdk[b] = k;
    int64_t s = c->ssds[a]; c->ssds[a] = c->ssds[b]; c->ssds[b] = s;
    int64_t j = c->ssdj[a]; c->ssdj[a] = c->ssdj[b]; c->ssdj[b] = j;
}

static void ssd_push(SoaCtx *c, double key, int64_t seq, int64_t job)
{
    int64_t i = c->I[I_SLEN]++;
    c->ssdk[i] = key; c->ssds[i] = seq; c->ssdj[i] = job;
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (!ssd_less(c, i, p)) break;
        ssd_swap(c, i, p);
        i = p;
    }
}

static void ssd_pop(SoaCtx *c, double *key, int64_t *seq, int64_t *job)
{
    *key = c->ssdk[0]; *seq = c->ssds[0]; *job = c->ssdj[0];
    int64_t n = --c->I[I_SLEN];
    c->ssdk[0] = c->ssdk[n]; c->ssds[0] = c->ssds[n]; c->ssdj[0] = c->ssdj[n];
    int64_t i = 0;
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, m = i;
        if (l < n && ssd_less(c, l, m)) m = l;
        if (r < n && ssd_less(c, r, m)) m = r;
        if (m == i) break;
        ssd_swap(c, i, m);
        i = m;
    }
}

static void sched_add(SoaCtx *c, int64_t j)
{
    if (c->sched_kind == 0) {
        c->fcfs[c->I[I_FHEAD] + c->I[I_FLEN]] = j;
        c->I[I_FLEN]++;
    } else {
        c->I[I_SSEQ]++;
        ssd_push(c, c->jdem[j], c->I[I_SSEQ], j);
        c->I[I_SSIZE]++;
    }
}

/* Scheduler.peek(k): job indices into pkj, in policy order.  The SSD
 * variant pops live entries (dropping stale ones for good, like the
 * Python lazy heap) and pushes them back -- pop order over the live
 * set is determined by the (demand, seq) total order, so the heap
 * layout never shows through. */
static int64_t sched_peek(SoaCtx *c, int64_t k)
{
    if (c->sched_kind == 0) {
        int64_t n = c->I[I_FLEN] < k ? c->I[I_FLEN] : k;
        for (int64_t i = 0; i < n; i++)
            c->pkj[i] = c->fcfs[c->I[I_FHEAD] + i];
        return n;
    }
    int64_t got = 0;
    while (c->I[I_SLEN] > 0 && got < k) {
        double key; int64_t seq, job;
        ssd_pop(c, &key, &seq, &job);
        if (c->rem[job]) { c->rem[job] = 0; continue; }
        c->pkk[got] = key; c->pks[got] = seq; c->pkj[got] = job;
        got++;
    }
    for (int64_t i = 0; i < got; i++)
        ssd_push(c, c->pkk[i], c->pks[i], c->pkj[i]);
    return got;
}

static void sched_remove(SoaCtx *c, int64_t j)
{
    if (c->sched_kind == 0) {
        int64_t head = c->I[I_FHEAD], len = c->I[I_FLEN];
        if (c->fcfs[head] == j) {
            c->I[I_FHEAD] = head + 1;
        } else {
            int64_t i = head;
            while (i < head + len && c->fcfs[i] != j) i++;
            for (; i + 1 < head + len; i++) c->fcfs[i] = c->fcfs[i + 1];
        }
        c->I[I_FLEN] = len - 1;
    } else {
        c->rem[j] = 1;
        c->I[I_SSIZE]--;
    }
}

/* ------------------------------------------------ contiguous searches */

/* find_suitable_submesh: first free w x l base in row-major order */
static int find_suitable(SoaCtx *c, int64_t w, int64_t l,
                         int64_t *bx, int64_t *by)
{
    const int64_t W = c->W, L = c->L, W1 = W + 1;
    if (w > W || l > L) return 0;
    for (int64_t x = 0; x <= W; x++) c->sat[x] = 0;
    for (int64_t y = 1; y <= L; y++) {
        c->sat[y * W1] = 0;
        for (int64_t x = 1; x <= W; x++) {
            int64_t f = c->owner[(y - 1) * W + (x - 1)] < 0;
            c->sat[y * W1 + x] = c->sat[(y - 1) * W1 + x]
                + c->sat[y * W1 + x - 1] - c->sat[(y - 1) * W1 + x - 1] + f;
        }
    }
    const int64_t want = w * l;
    for (int64_t y = 0; y + l <= L; y++)
        for (int64_t x = 0; x + w <= W; x++) {
            int64_t cnt = c->sat[(y + l) * W1 + x + w]
                - c->sat[y * W1 + x + w] - c->sat[(y + l) * W1 + x]
                + c->sat[y * W1 + x];
            if (cnt == want) { *bx = x; *by = y; return 1; }
        }
    return 0;
}

/* largest_free_rect_bounded: the erosion-tensor argmax of
 * repro.mesh.rectfind, as a strictly-greater scan in (w, y, x) order
 * over the packed tie-break key.  Only anchors with erosion >= 1 are
 * scanned: any carved >= 1 key strictly beats every carved = 0 key, and
 * carved >= 1 iff erosion >= 1 (the caps are always >= 1 because
 * max_w <= max_area). */
static int lfrb(SoaCtx *c, int64_t max_w, int64_t max_l, int64_t max_area,
                int64_t *ox, int64_t *oy, int64_t *ow, int64_t *ol)
{
    const int64_t W = c->W, L = c->L;
    if (max_w > W) max_w = W;
    if (max_l > L) max_l = L;
    if (max_w <= 0 || max_l <= 0 || max_area <= 0) return 0;
    if (max_w > max_area) max_w = max_area;
    const int64_t R1 = W + 1, R2 = R1 * R1, R3 = (L + 2) * R2;
    for (int64_t x = 0; x < W; x++) {
        int64_t run = 0;
        for (int64_t y = 0; y < L; y++) {
            run = c->owner[y * W + x] < 0 ? run + 1 : 0;
            c->hts[y * W + x] = run;
            c->ero[y * W + x] = run;
        }
    }
    int64_t best_key = -1, bx = 0, by = 0, bw = 0, bl = 0, be = 0;
    for (int64_t w = 1; w <= max_w; w++) {
        if (w > 1)
            for (int64_t y = 0; y < L; y++)
                for (int64_t x = 0; x + w <= W; x++) {
                    int64_t h = c->hts[y * W + x + w - 1];
                    if (h < c->ero[y * W + x]) c->ero[y * W + x] = h;
                }
        int64_t caps = max_area / w;
        if (caps > max_l) caps = max_l;
        for (int64_t y = 0; y < L; y++)
            for (int64_t x = 0; x + w <= W; x++) {
                int64_t e = c->ero[y * W + x];
                if (e <= 0) continue;
                int64_t carved = e < caps ? e : caps;
                int64_t key = carved * w * R3 + (e + (L - 1 - y)) * R2
                    + (W - x) * R1 + w;
                if (key > best_key) {
                    best_key = key;
                    bx = x; by = y; bw = w; bl = carved; be = e;
                }
            }
    }
    if (best_key < 0) return 0;
    *ox = bx; *oy = by - be + 1; *ow = bw; *ol = bl;
    return 1;
}

/* mark a free rectangle as owned by job j; append its node ids
 * (row-major, matching SubMesh.nodes()) to the coords scratch */
static void take_rect(SoaCtx *c, int64_t j, int64_t x0, int64_t y0,
                      int64_t w, int64_t l)
{
    for (int64_t y = y0; y < y0 + l; y++)
        for (int64_t x = x0; x < x0 + w; x++) {
            c->owner[y * c->W + x] = j;
            c->ids[c->ids_len++] = y * c->W + x;
        }
    c->I[I_FREE] -= w * l;
}

/* ----------------------------------------------------- GABL allocator */

static int alloc_gabl(SoaCtx *c, int64_t j, int64_t w, int64_t l)
{
    int64_t bx, by;
    /* contiguous attempt, both orientations, before the free-count gate */
    if (find_suitable(c, w, l, &bx, &by)) {
        take_rect(c, j, bx, by, w, l);
        c->cur_nsub = 1;
        return 1;
    }
    if (w != l && find_suitable(c, l, w, &bx, &by)) {
        take_rect(c, j, bx, by, l, w);
        c->cur_nsub = 1;
        return 1;
    }
    if (w * l > c->I[I_FREE]) return 0;
    /* greedy largest-first decomposition */
    int64_t remaining = w * l, bw = w, bl = l, nsub = 0;
    while (remaining > 0) {
        int64_t x1, y1, w1, l1, x2, y2, w2, l2;
        int f1 = lfrb(c, bw, bl, remaining, &x1, &y1, &w1, &l1);
        if (bw != bl) {
            int f2 = lfrb(c, bl, bw, remaining, &x2, &y2, &w2, &l2);
            if (f2 && (!f1 || w2 * l2 > w1 * l1)) {
                f1 = 1; x1 = x2; y1 = y2; w1 = w2; l1 = l2;
            }
        }
        if (!f1) return -1;  /* invariant: free >= remaining */
        take_rect(c, j, x1, y1, w1, l1);
        nsub++;
        remaining -= w1 * l1;
        bw = w1; bl = l1;
    }
    c->cur_nsub = nsub;
    return 1;
}

/* ------------------------------------------------ Paging(0) allocator */

static int alloc_paging(SoaCtx *c, int64_t j, int64_t w, int64_t l)
{
    const int64_t need = w * l, W = c->W, L = c->L;
    if (need > c->I[I_FREE]) return 0;
    int64_t cnt = 0, runs = 0, prev_x = -2, prev_y = -1;
    for (int64_t y = 0; y < L && cnt < need; y++)
        for (int64_t x = 0; x < W && cnt < need; x++) {
            if (c->owner[y * W + x] >= 0) continue;
            c->owner[y * W + x] = j;
            c->ids[c->ids_len++] = y * W + x;
            cnt++;
            if (y != prev_y || x != prev_x + 1) runs++;
            prev_x = x; prev_y = y;
        }
    c->I[I_FREE] -= need;
    c->cur_nsub = runs;
    return 1;
}

/* ------------------------------------------------------ MBS allocator */

static int mbs_entry_less(SoaCtx *c, int64_t base, int64_t a, int64_t b)
{
    /* heap entries order by (node y, node x, entry epoch) */
    int64_t na = c->mhn[base + a], nb = c->mhn[base + b];
    if (c->ny[na] != c->ny[nb]) return c->ny[na] < c->ny[nb];
    if (c->nx[na] != c->nx[nb]) return c->nx[na] < c->nx[nb];
    return c->mhe[base + a] < c->mhe[base + b];
}

static void mbs_entry_swap(SoaCtx *c, int64_t base, int64_t a, int64_t b)
{
    int64_t e = c->mhe[base + a]; c->mhe[base + a] = c->mhe[base + b];
    c->mhe[base + b] = e;
    int64_t n = c->mhn[base + a]; c->mhn[base + a] = c->mhn[base + b];
    c->mhn[base + b] = n;
}

static void mbs_sift_down(SoaCtx *c, int64_t base, int64_t n, int64_t i)
{
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, m = i;
        if (l < n && mbs_entry_less(c, base, l, m)) m = l;
        if (r < n && mbs_entry_less(c, base, r, m)) m = r;
        if (m == i) break;
        mbs_entry_swap(c, base, i, m);
        i = m;
    }
}

static void mbs_heap_push(SoaCtx *c, int64_t k, int64_t node)
{
    int64_t base = c->mhoff[k];
    int64_t cap = c->mhoff[k + 1] - base;
    if (c->mhl[k] == cap) {
        /* compact: drop stale entries (pop order over the valid set is
         * key-determined, so compaction never changes the sequence) */
        int64_t n = 0;
        for (int64_t i = 0; i < c->mhl[k]; i++) {
            int64_t nd = c->mhn[base + i];
            if (c->nstate[nd] == B_FREE && c->nepoch[nd] == c->mhe[base + i]) {
                c->mhe[base + n] = c->mhe[base + i];
                c->mhn[base + n] = nd;
                n++;
            }
        }
        c->mhl[k] = n;
        for (int64_t i = n / 2 - 1; i >= 0; i--)
            mbs_sift_down(c, base, n, i);
    }
    int64_t i = c->mhl[k]++;
    c->mhe[base + i] = c->nepoch[node];
    c->mhn[base + i] = node;
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (!mbs_entry_less(c, base, i, p)) break;
        mbs_entry_swap(c, base, i, p);
        i = p;
    }
}

static void mbs_heap_pop_top(SoaCtx *c, int64_t k)
{
    int64_t base = c->mhoff[k];
    int64_t n = --c->mhl[k];
    c->mhe[base] = c->mhe[base + n];
    c->mhn[base] = c->mhn[base + n];
    mbs_sift_down(c, base, n, 0);
}

static void mbs_push_free(SoaCtx *c, int64_t node)
{
    c->nstate[node] = B_FREE;
    c->nepoch[node]++;
    mbs_heap_push(c, c->nk[node], node);
}

static int64_t mbs_pop_free(SoaCtx *c, int64_t k)
{
    int64_t base = c->mhoff[k];
    while (c->mhl[k] > 0) {
        int64_t node = c->mhn[base];
        int valid = c->nstate[node] == B_FREE
            && c->nepoch[node] == c->mhe[base];
        mbs_heap_pop_top(c, k);
        if (valid) return node;
    }
    return -1;
}

static int mbs_peek_free(SoaCtx *c, int64_t k)
{
    int64_t base = c->mhoff[k];
    while (c->mhl[k] > 0) {
        int64_t node = c->mhn[base];
        if (c->nstate[node] == B_FREE && c->nepoch[node] == c->mhe[base])
            return 1;
        mbs_heap_pop_top(c, k);
    }
    return 0;
}

static int64_t mbs_new_node(SoaCtx *c, int64_t k, int64_t x, int64_t y,
                            int64_t parent)
{
    int64_t n = c->I[I_NCNT]++;
    if (n >= c->node_cap) return -1;
    c->nk[n] = k; c->nx[n] = x; c->ny[n] = y;
    c->npar[n] = parent; c->nchild[n] = -1;
    c->nstate[n] = B_FREE; c->nepoch[n] = 0; c->nown[n] = -1;
    return n;
}

static int mbs_init(SoaCtx *c)
{
    for (int64_t k = 0; k <= c->max_k; k++) c->mhl[k] = 0;
    for (int64_t i = 0; i < c->n_roots; i++) {
        int64_t n = mbs_new_node(c, c->rk[i], c->rx[i], c->ry[i], -1);
        if (n < 0) return -1;
        mbs_push_free(c, n);
    }
    c->I[I_MBSINIT] = 1;
    return 0;
}

static int64_t mbs_split_down(SoaCtx *c, int64_t block, int64_t target_k)
{
    while (c->nk[block] > target_k) {
        c->nstate[block] = B_SPLIT;
        c->nepoch[block]++;
        if (c->nchild[block] < 0) {
            int64_t h = (int64_t)1 << (c->nk[block] - 1);
            int64_t x = c->nx[block], y = c->ny[block];
            int64_t c0 = mbs_new_node(c, c->nk[block] - 1, x, y, block);
            int64_t c1 = mbs_new_node(c, c->nk[block] - 1, x + h, y, block);
            int64_t c2 = mbs_new_node(c, c->nk[block] - 1, x, y + h, block);
            int64_t c3 = mbs_new_node(c, c->nk[block] - 1, x + h, y + h,
                                      block);
            if (c3 < 0) return -1;
            c->nchild[block] = c0;
            (void)c1; (void)c2;
        }
        int64_t first = c->nchild[block];
        mbs_push_free(c, first + 1);
        mbs_push_free(c, first + 2);
        mbs_push_free(c, first + 3);
        block = first;
    }
    return block;
}

static int64_t mbs_take_block(SoaCtx *c, int64_t k)
{
    int64_t block = mbs_pop_free(c, k);
    if (block < 0) {
        for (int64_t j = k + 1; j <= c->max_k; j++) {
            if (mbs_peek_free(c, j)) {
                block = mbs_pop_free(c, j);
                block = mbs_split_down(c, block, k);
                break;
            }
        }
        if (block < 0) return -1;
    }
    c->nstate[block] = B_ALLOC;
    c->nepoch[block]++;
    return block;
}

static void mbs_merge_up(SoaCtx *c, int64_t block)
{
    int64_t parent = c->npar[block];
    while (parent >= 0) {
        int64_t first = c->nchild[parent];
        for (int64_t i = 0; i < 4; i++)
            if (c->nstate[first + i] != B_FREE) return;
        for (int64_t i = 0; i < 4; i++) {
            c->nstate[first + i] = B_ABSORBED;
            c->nepoch[first + i]++;
        }
        mbs_push_free(c, parent);
        parent = c->npar[parent];
    }
}

static int alloc_mbs(SoaCtx *c, int64_t j, int64_t w, int64_t l)
{
    int64_t p = w * l;
    if (p > c->I[I_FREE]) return 0;
    if (!c->I[I_MBSINIT] && mbs_init(c) < 0) return -1;
    int64_t needs[48];
    for (int64_t i = 0; i <= c->max_k; i++) needs[i] = 0;
    int64_t rest = p, level = 0;
    while (rest) {
        int64_t d = rest % 4;
        rest /= 4;
        if (level > c->max_k)
            needs[c->max_k] += d << (2 * (level - c->max_k));
        else
            needs[level] += d;
        level++;
    }
    int64_t nsub = 0;
    for (int64_t i = c->max_k; i >= 0; i--) {
        while (needs[i]) {
            int64_t block = mbs_take_block(c, i);
            if (block < 0) {
                if (i == 0) return -1;  /* free lists inconsistent */
                needs[i - 1] += 4 * needs[i];
                needs[i] = 0;
                break;
            }
            /* grant: mark the grid and append the block's node ids
             * row-major, in block acquisition order */
            c->nown[block] = j;
            int64_t side = (int64_t)1 << c->nk[block];
            take_rect(c, j, c->nx[block], c->ny[block], side, side);
            nsub++;
            needs[i]--;
        }
    }
    c->cur_nsub = nsub;
    return 1;
}

static void release_mbs(SoaCtx *c, int64_t j)
{
    /* push all of the job's blocks free, then cascade merges for those
     * still free.  Scanning the arena in index order instead of the
     * Python token order is outcome-identical: per-node epochs do not
     * depend on cross-node push order, heap pop order is key-determined,
     * and the buddy-merge rewriting is confluent. */
    int64_t cnt = c->I[I_NCNT];
    for (int64_t n = 0; n < cnt; n++)
        if (c->nstate[n] == B_ALLOC && c->nown[n] == j) {
            c->nown[n] = -1;
            mbs_push_free(c, n);
        }
    for (int64_t n = 0; n < cnt; n++)
        if (c->npar[n] >= 0 && c->nstate[n] == B_FREE
            && c->nown[n] == -1 && c->nepoch[n] > 0) {
            /* only blocks freed by this release can trigger new merges,
             * and re-running merge_up on other free blocks is a no-op
             * (their buddies' states are unchanged since their own
             * release), so a full sweep is safe and simple */
            mbs_merge_up(c, n);
        }
}

/* ------------------------------------------------- allocation wrapper */

static int try_alloc(SoaCtx *c, int64_t j)
{
    const int64_t w = c->jw[j], l = c->jl[j];
    if (c->I[I_VERSION] != c->I[I_MEMOVER]) {
        memset(c->memo, 0, (size_t)(c->W * c->L));
        c->I[I_MEMOVER] = c->I[I_VERSION];
    }
    const int64_t mi = (w - 1) * c->L + (l - 1);
    if (c->memo[mi]) return 0;
    c->ids_len = 0;
    int r;
    switch (c->alloc_kind) {
    case 0: r = alloc_gabl(c, j, w, l); break;
    case 1: r = alloc_paging(c, j, w, l); break;
    case 2: r = alloc_mbs(c, j, w, l); break;
    default: return -1;
    }
    if (r < 0) return -1;
    if (!r) { c->memo[mi] = 1; return 0; }
    c->jns[j] = c->cur_nsub;
    c->I[I_VERSION]++;
    return 1;
}

static void release_job(SoaCtx *c, int64_t j)
{
    const int64_t cells = c->W * c->L;
    for (int64_t i = 0; i < cells; i++)
        if (c->owner[i] == j) {
            c->owner[i] = -1;
            c->I[I_FREE]++;
        }
    if (c->alloc_kind == 2) release_mbs(c, j);
    c->I[I_VERSION]++;
}

/* -------------------------------------------------------- job launch */

/* AllToAllTraffic.destination_offsets, ported verbatim */
static void dest_offsets(int64_t *offs, int64_t n, int64_t msgs)
{
    const int64_t span = n - 1;
    int64_t near_mag = 0;
    int64_t far_steps = (msgs + 1) / 2;
    int64_t far_stride = span / (far_steps > 0 ? far_steps : 1);
    if (far_stride < 1) far_stride = 1;
    int64_t far_idx = 0;
    for (int64_t k = 0; k < msgs; k++) {
        if ((k & 1) == 0) {
            near_mag = near_mag % span + 1;
            offs[k] = near_mag;
        } else {
            int64_t mag = 1 + (span / 2 + far_idx * far_stride) % span;
            far_idx++;
            offs[k] = n - mag;
        }
    }
}

static void launch(SoaCtx *c, int64_t j)
{
    const int64_t size = c->jw[j] * c->jl[j];
    const int64_t msgs = c->jmsg[j];
    const double now = c->F[F_NOW];
    if (size < 2) {
        c->I[I_SEQ]++;
        comp_push(c, now + (double)msgs * c->gap, c->I[I_SEQ], j);
        return;
    }
    dest_offsets(c->offs, size, msgs);
    double out[3];
    out[0] = 0.0; out[1] = 0.0; out[2] = now;
    solve_rounds(c->ids, size, c->offs, msgs, now, c->gap, c->free_at,
                 c->hop, c->occ, c->drain, c->W, c->L, c->wrap, out);
    c->jpk[j] = size * msgs;
    c->jlat[j] = out[0];
    c->jblk[j] = out[1];
    c->I[I_SEQ]++;
    comp_push(c, out[2], c->I[I_SEQ], j);
}

static void start_job(SoaCtx *c, int64_t j)
{
    c->jat[j] = c->F[F_NOW];
    busy_change(c, c->jw[j] * c->jl[j]);
    launch(c, j);
}

static int dispatch(SoaCtx *c)
{
    for (;;) {
        if (qsize(c) <= 0) return 0;
        int progress = 0;
        int64_t cnt = sched_peek(c, c->window);
        for (int64_t i = 0; i < cnt; i++) {
            int64_t j = c->pkj[i];
            int r = try_alloc(c, j);
            if (r < 0) return -1;
            if (r) {
                sched_remove(c, j);
                start_job(c, j);
                progress = 1;
                break;
            }
        }
        if (!progress) return 0;
    }
}

/* ---------------------------------------------------------- main loop */

/* Advance one lane until it finishes (1) or runs out of materialised
 * arrivals (0; the caller refills the job arrays and calls again).
 * Negative return values signal internal invariant violations. */
int64_t soa_advance(void **P, const int64_t *CI, const double *CF)
{
    if (CI[CI_MAGIC] != LAYOUT_MAGIC) return -99;
    SoaCtx ctx, *c = &ctx;
    c->F = (double *)P[P_F];
    c->I = (int64_t *)P[P_I];
    c->arr = (const double *)P[P_ARR];
    c->jw = (const int64_t *)P[P_JW];
    c->jl = (const int64_t *)P[P_JL];
    c->jmsg = (const int64_t *)P[P_JMSG];
    c->jdem = (const double *)P[P_JDEM];
    c->jat = (double *)P[P_JAT];
    c->jpk = (int64_t *)P[P_JPK];
    c->jlat = (double *)P[P_JLAT];
    c->jblk = (double *)P[P_JBLK];
    c->jns = (int64_t *)P[P_JNS];
    c->owner = (int64_t *)P[P_OWNER];
    c->free_at = (double *)P[P_FREEAT];
    c->memo = (uint8_t *)P[P_MEMO];
    c->fcfs = (int64_t *)P[P_FCFS];
    c->ssdk = (double *)P[P_SSDK];
    c->ssds = (int64_t *)P[P_SSDS];
    c->ssdj = (int64_t *)P[P_SSDJ];
    c->rem = (uint8_t *)P[P_REM];
    c->ct = (double *)P[P_CT];
    c->cs = (int64_t *)P[P_CS];
    c->cj = (int64_t *)P[P_CJ];
    c->ids = (int64_t *)P[P_IDS];
    c->offs = (int64_t *)P[P_OFFS];
    c->pkk = (double *)P[P_PKK];
    c->pks = (int64_t *)P[P_PKS];
    c->pkj = (int64_t *)P[P_PKJ];
    c->hts = (int64_t *)P[P_HTS];
    c->ero = (int64_t *)P[P_ERO];
    c->sat = (int64_t *)P[P_SAT];
    c->nk = (int64_t *)P[P_NK];
    c->nx = (int64_t *)P[P_NX];
    c->ny = (int64_t *)P[P_NY];
    c->npar = (int64_t *)P[P_NPAR];
    c->nchild = (int64_t *)P[P_NCHILD];
    c->nstate = (uint8_t *)P[P_NSTATE];
    c->nepoch = (int64_t *)P[P_NEPOCH];
    c->nown = (int64_t *)P[P_NOWN];
    c->mhe = (int64_t *)P[P_MHE];
    c->mhn = (int64_t *)P[P_MHN];
    c->mhl = (int64_t *)P[P_MHL];
    c->mhoff = (int64_t *)P[P_MHOFF];
    c->rk = (const int64_t *)P[P_RK];
    c->rx = (const int64_t *)P[P_RX];
    c->ry = (const int64_t *)P[P_RY];
    c->W = CI[CI_W]; c->L = CI[CI_L];
    c->wrap = (int32_t)CI[CI_WRAP];
    c->alloc_kind = CI[CI_ALLOC];
    c->sched_kind = CI[CI_SCHED];
    c->window = CI[CI_WINDOW];
    c->jobs_target = CI[CI_JOBS];
    c->warmup = CI[CI_WARMUP];
    c->n_prov = CI[CI_NPROV];
    c->exhausted = CI[CI_EXH];
    c->has_until = CI[CI_HASUNTIL];
    c->node_cap = CI[CI_NODECAP];
    c->n_roots = CI[CI_NROOTS];
    c->max_k = CI[CI_MAXK];
    c->hop = CF[CF_HOP];
    c->occ = CF[CF_OCC];
    c->drain = CF[CF_DRAIN];
    c->gap = CF[CF_GAP];
    c->until = CF[CF_UNTIL];
    c->ids_len = 0;
    c->cur_nsub = 0;
    if (c->max_k >= 48) return -98;

    double *F = c->F;
    int64_t *I = c->I;
    for (;;) {
        if (!I[I_HASPEND] && I[I_NEXT] < c->n_prov) {
            /* only reachable on the very first call: afterwards the
             * next arrival is scheduled while consuming the previous
             * one, exactly like _schedule_next_arrival */
            double at = c->arr[I[I_NEXT]];
            F[F_PENDING] = at > F[F_NOW] ? at : F[F_NOW];
            I[I_HASPEND] = 1;
        }
        if (!I[I_HASPEND] && !c->exhausted) return 0;  /* NEED_JOBS */
        int has_comp = I[I_CLEN] > 0;
        if (!I[I_HASPEND] && !has_comp) {
            /* event heap drained: Engine.run clamps the clock forward
             * to `until` when one was given */
            if (c->has_until && c->until > F[F_NOW]) F[F_NOW] = c->until;
            return 1;  /* DONE */
        }
        /* next event: DEPARTURE (priority 1) beats ARRIVAL (2) at ties */
        int take_comp;
        if (!has_comp) take_comp = 0;
        else if (!I[I_HASPEND]) take_comp = 1;
        else take_comp = c->ct[0] <= F[F_PENDING];
        double evt = take_comp ? c->ct[0] : F[F_PENDING];
        if (c->has_until && evt > c->until) {
            F[F_NOW] = c->until;
            return 1;  /* DONE: the event stays queued, like Engine.run */
        }
        if (take_comp) {
            double t;
            int64_t j = comp_pop(c, &t);
            F[F_NOW] = t;
            release_job(c, j);
            busy_change(c, -(c->jw[j] * c->jl[j]));
            I[I_COMPLETED]++;
            if (I[I_COMPLETED] > c->warmup) {
                I[I_MEASURED]++;
                const double dep = F[F_NOW];
                F[F_TURN] += dep - c->arr[j];
                F[F_SERV] += dep - c->jat[j];
                F[F_WAIT] += c->jat[j] - c->arr[j];
                F[F_LAT] += c->jlat[j];
                F[F_BLK] += c->jblk[j];
                I[I_PACKETS] += c->jpk[j];
                I[I_FRAG] += c->jns[j];
                if (c->jns[j] == 1) I[I_CONTIG]++;
            }
            if (I[I_COMPLETED] >= c->jobs_target) return 1;  /* DONE */
            if (dispatch(c) < 0) return -1;
        } else {
            /* consuming arrival j immediately schedules arrival j+1
             * (at the *current* clock), so j+1 must be materialised
             * first -- refill before touching the pending arrival */
            if (I[I_NEXT] + 1 >= c->n_prov && !c->exhausted)
                return 0;  /* NEED_JOBS */
            F[F_NOW] = F[F_PENDING];
            I[I_HASPEND] = 0;
            int64_t j = I[I_NEXT]++;
            sched_add(c, j);
            int64_t q = qsize(c);
            if (q > I[I_QPEAK]) I[I_QPEAK] = q;
            if (I[I_NEXT] < c->n_prov) {
                double at = c->arr[I[I_NEXT]];
                F[F_PENDING] = at > F[F_NOW] ? at : F[F_NOW];
                I[I_HASPEND] = 1;
            }
            if (dispatch(c) < 0) return -1;
        }
    }
}
"""

#: the full translation unit: the network reservation kernel first (the
#: driver calls its ``solve_rounds`` directly), then the lane driver
_SOURCE = _NETWORK_SOURCE + _DRIVER_SOURCE

_UNSET = object()
_kernel = _UNSET


def _build() -> ctypes.CDLL | None:
    """Compile and load the lane driver (same recipe as the network kernel)."""
    cc = _compiler()
    if cc is None:
        return None
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    lib_path = cache_dir / f"soa_{digest}.so"
    if lib_path.is_file() and os.stat(lib_path).st_uid != os.getuid():
        return None  # never load code we did not write
    if not lib_path.is_file():
        src = cache_dir / f"soa_{digest}.c"
        src.write_text(_SOURCE)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        cmd = [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
               str(src), "-o", tmp]
        try:
            subprocess.run(cmd, check=True, capture_output=True, timeout=60)
            os.replace(tmp, lib_path)
        except (OSError, subprocess.SubprocessError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    lib.soa_advance.restype = ctypes.c_int64
    lib.soa_advance.argtypes = [
        ctypes.POINTER(ctypes.c_void_p), ctypes.c_void_p, ctypes.c_void_p,
    ]
    return lib


def load_kernel() -> ctypes.CDLL | None:
    """The compiled lane driver, or ``None`` when unavailable (memoised).

    Thread-safe: concurrent first calls serialise on the shared
    :data:`~repro.network._native.KERNEL_LOCK` (double-checked), so the
    compile runs once and every caller gets the same handle.
    """
    global _kernel
    if _kernel is _UNSET:
        with KERNEL_LOCK:
            if _kernel is _UNSET:
                if os.environ.get("REPRO_NATIVE", "1") == "0":
                    _kernel = None
                else:
                    _kernel = _build()
    return _kernel


def reset_kernel_cache() -> None:
    """Forget the memoised kernel (tests toggling ``REPRO_NATIVE``)."""
    global _kernel
    _kernel = _UNSET
