"""Minimal deterministic discrete-event simulation kernel.

ProcSimity's engine re-implemented: a binary-heap event list, a simulation
clock, and a run loop with stop predicates.  No processes/coroutines --
callbacks keep the hot path (hundreds of thousands of network events per
run) cheap in pure Python, per the profiling guidance in the HPC coding
guides.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.core.events import Event, Priority


class Engine:
    """Event heap + clock."""

    __slots__ = ("_heap", "_now", "_seq", "_processed", "running")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._processed = 0
        self.running = False

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = Priority.STATS,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = Priority.STATS,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        self._seq += 1
        ev = Event(time, int(priority), self._seq, callback, args)
        heapq.heappush(self._heap, ev)
        return ev

    def run(
        self,
        until: float | None = None,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
    ) -> None:
        """Drain the event heap.

        Stop conditions, checked *between* events (no event is ever half
        processed):

        * ``stop()`` returns True -- before the next event executes;
        * the next event is later than ``until`` -- the clock advances
          (clamps) to ``until`` and the event stays queued;
        * ``max_events`` events have been executed *by this call* -- the
          budget is checked before popping, so ``run(max_events=0)``
          executes nothing and repeated calls each get a fresh budget;
        * the heap is empty -- the clock advances to ``until`` if given.

        An early stop via ``stop`` or ``max_events`` leaves the clock at
        the last executed event: events earlier than ``until`` are still
        pending, and clamping past them would make a resumed ``run()``
        move time backwards.
        """
        heap = self._heap
        executed = 0
        self.running = True
        try:
            while heap:
                if stop is not None and stop():
                    break
                if max_events is not None and executed >= max_events:
                    break
                ev = heap[0]
                if ev.cancelled:
                    heapq.heappop(heap)
                    continue
                if until is not None and ev.time > until:
                    self._now = until
                    break
                heapq.heappop(heap)
                self._now = ev.time
                self._processed += 1
                executed += 1
                ev.callback(*ev.args)
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self.running = False

    def step(self) -> bool:
        """Execute exactly one event; returns False when none remain."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._processed += 1
            ev.callback(*ev.args)
            return True
        return False

    def reset(self) -> None:
        """Clear the heap and rewind the clock."""
        self._heap.clear()
        self._now = 0.0
        self._seq = 0
        self._processed = 0
