"""Lockstep structure-of-arrays execution of replication batches.

One grid point's replication batch -- same strategy combination,
different seeds -- advances as a set of *lanes* that step in rounds.
When the compiled lane driver (:mod:`repro.core._soa_native`) is
available and the point uses strategies it implements, each round is one
C call per live lane (``soa_advance``) that executes the discrete-event
loop, schedulers, allocators and wormhole timing over flat arrays
(:class:`repro.alloc.soa_state.LaneState`), surfacing to Python only to
refill arrivals.  Otherwise the lanes are ordinary
:class:`~repro.core.simulator.Simulator` runs interleaved through the
``start``/``advance``/``finalize`` split API -- same lockstep shape,
reference implementation.

Both paths, and the per-run reference engine, are bit-identical on the
dyadic time grid; ``tests/test_engine_equivalence.py`` enforces it.

Thread parallelism: each ``soa_advance`` call releases the GIL (ctypes
foreign call) and touches only its own batch's flat arrays -- the
driver's GIL-release contract (:mod:`repro.core._soa_native`).  The
campaign's thread executor exploits this: batches of *different* points
run :func:`run_point_batch` concurrently from one process, sharing the
block cache and trace memos; a batch's own lanes still advance
sequentially within its round loop.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.alloc.soa_state import ALLOC_KINDS, SCHED_KINDS, LaneState
from repro.core import _soa_native as native
from repro.core.hooks import SimObserver
from repro.core.metrics import RunResult
from repro.core.simulator import Simulator

#: event budget per lane per round on the fallback path
ADVANCE_EVENTS = 4096

#: builds one lane's simulator: ``build(seed, observers) -> Simulator``
SimBuilder = Callable[[int, Sequence[SimObserver]], Simulator]

#: builds one lane's extra observers: ``factory(seed) -> observers``
ObserverFactory = Callable[[int], Sequence[SimObserver]]


def native_supported(sim: Simulator) -> bool:
    """True when the compiled driver can run this simulator's point.

    The driver implements the paper's strategy matrix -- GABL /
    Paging(0) / MBS under FCFS / SSD with the batch network backend --
    with default strategy options.  Anything else (other allocators,
    rotation disabled, non-row-major paging, extra observers, per-job
    records) falls back to the lockstep reference path.  An active lossy
    channel (``config.channel``) always falls back: ARQ retransmissions
    run only through the reference per-packet path.
    """
    if native.load_kernel() is None:
        return False
    if sim.network.mode != "batch":
        return False
    if sim.traffic.channel is not None:
        return False
    if len(sim.observers) != 1 or sim.metrics.keep_jobs:
        return False
    alloc = sim.allocator
    if alloc.name not in ALLOC_KINDS:
        return False
    if alloc.name == "GABL" and not getattr(alloc, "allow_rotation", False):
        return False
    if alloc.name == "Paging(0)" and alloc.indexing != "row-major":
        return False
    return sim.scheduler.name in SCHED_KINDS


def run_point_batch(
    build: SimBuilder,
    seeds: Iterable[int],
    observer_factory: ObserverFactory | None = None,
) -> list[RunResult]:
    """Run one replication batch in lockstep; one result per seed.

    ``build`` constructs a fresh simulator for a seed (the caller binds
    the point's strategies and workload); ``observer_factory`` attaches
    per-lane observers on the fallback path and forces it when given.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    probe = build(seeds[0], ())
    if observer_factory is None and native_supported(probe):
        return _run_native(probe, seeds)
    return _run_lockstep(build, seeds, observer_factory, probe)


# ---------------------------------------------------------------- native
def _run_native(probe: Simulator, seeds: list[int]) -> list[RunResult]:
    kernel = native.load_kernel()
    assert kernel is not None
    alloc_kind = ALLOC_KINDS[probe.allocator.name]
    sched_kind = SCHED_KINDS[probe.scheduler.name]
    lanes = [
        LaneState(probe.config, probe.workload, seed, alloc_kind, sched_kind)
        for seed in seeds
    ]
    for lane in lanes:
        lane.feed()
    live = list(range(len(lanes)))
    while live:
        nxt = []
        for i in live:
            lane = lanes[i]
            rc = kernel.soa_advance(lane.ptable, lane.ci_ptr, lane.cf_ptr)
            if rc == native.RC_DONE:
                continue
            if rc == native.RC_NEED_JOBS:
                lane.feed()
                nxt.append(i)
            else:
                raise RuntimeError(
                    f"soa kernel failed with code {rc} "
                    f"(seed {lane.seed}, {probe.allocator.name}/"
                    f"{probe.scheduler.name})"
                )
        live = nxt
    return [lane.result() for lane in lanes]


# -------------------------------------------------------------- fallback
def _run_lockstep(
    build: SimBuilder,
    seeds: list[int],
    observer_factory: ObserverFactory | None,
    probe: Simulator,
) -> list[RunResult]:
    sims: list[Simulator] = []
    for idx, seed in enumerate(seeds):
        extra = tuple(observer_factory(seed)) if observer_factory else ()
        if idx == 0 and not extra:
            sims.append(probe)  # reuse: built with no extra observers
        else:
            sims.append(build(seed, extra))
    for sim in sims:
        sim.start()
    live = list(range(len(sims)))
    while live:
        live = [i for i in live if not sims[i].advance(ADVANCE_EVENTS)]
    return [sim.finalize() for sim in sims]
