"""Event-driven wormhole network engine.

Timing model (DESIGN.md section 2.1).  A packet of ``P_len`` flits
crossing channel ``c`` at service start ``s``:

* the header pays the router decision ``t_s`` plus one link cycle, so it
  *arrives at the next channel* at ``s + t_s + 1``;
* the body streams behind at one flit per time unit; the router decision
  overlaps the body pipeline, so the channel itself is occupied for the
  ``P_len`` flit-cycles (``s .. s + P_len``);
* channels serve packets FIFO: a header arriving at time ``t`` starts
  service at ``max(t, channel_free_at)``; the difference is *blocking
  time* (contention), except on the injection channel where it is source
  queueing and excluded from the paper's packet statistics;
* delivery completes one ``P_len - 1`` flit-drain after the header
  finishes the ejection channel crossing.

Uncontended end-to-end latency for an ``h``-hop route is therefore
``(h + 2) * (t_s + 1) + P_len - 1`` (the ``+2`` are the injection and
ejection channels) -- asserted by the unit tests.

Three execution modes share this arithmetic:

* ``fast`` (default) -- the entire path is reserved when the packet is
  injected; one pure-Python loop per packet and a single completion event
  per job.  Within a burst of simultaneous injections, channel grants
  follow reservation order rather than physical header-arrival order;
  with time-staggered injections the two orders coincide exactly, and
  under synchronized bursts fast mode is conservative (over-reports
  contention) while preserving strategy rankings (validated by
  ``bench_abl_network_mode``).
* ``causal`` -- one event per hop; channels are reserved exactly when the
  header reaches them, giving exact FIFO-by-arrival arbitration.  Both
  of the above correspond to wormhole switching with buffers deep enough
  to absorb a stalled body.
* ``sfb`` -- single-flit-buffer wormhole: a worm *holds* every channel
  its body occupies (the trailing ``P_len`` channels behind the header)
  and releases a channel only when the body compresses past it; a
  blocked header therefore keeps all of them held -- the classic chained
  blocking of minimally-buffered wormhole switching.  Deadlock-free on
  the mesh because XY routing acquires channels in a global total order;
  refused on torus topologies (real tori need virtual channels).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.core.engine import Engine
from repro.core.events import Priority
from repro.mesh.geometry import Coord
from repro.network.routing import xy_route
from repro.network.topology import MeshTopology


@dataclass(frozen=True, slots=True)
class PathTiming:
    """Outcome of transmitting one packet."""

    t_inject: float  #: service start on the injection channel
    t_deliver: float  #: last flit arrives at the destination processor
    blocking: float  #: contention stall total (injection wait excluded)

    @property
    def latency(self) -> float:
        """Paper's packet latency: injection to delivery."""
        return self.t_deliver - self.t_inject


class WormholeNetwork:
    """Channel-state container + transmission primitives."""

    __slots__ = (
        "topology",
        "engine",
        "t_s",
        "p_len",
        "hop_cost",
        "occupancy",
        "drain",
        "free_at",
        "packets_sent",
        "mode",
        "_route_cache",
        "_holder",
        "_waiters",
    )

    MODES = ("fast", "causal", "sfb")

    def __init__(
        self,
        topology: MeshTopology,
        engine: Engine,
        t_s: float = 3.0,
        p_len: int = 8,
        mode: str = "fast",
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown network mode {mode!r}; choose from {self.MODES}")
        if mode == "sfb" and topology.wrap:
            raise ValueError(
                "sfb (hold-and-wait wormhole) deadlocks on torus topologies; "
                "use fast or causal mode"
            )
        self.topology = topology
        self.engine = engine
        self.t_s = float(t_s)
        self.p_len = int(p_len)
        self.hop_cost = self.t_s + 1.0  #: header advance per channel
        self.occupancy = float(p_len)  #: channel hold per packet
        self.drain = float(p_len - 1)  #: body drain after header ejection
        self.free_at: list[float] = [0.0] * topology.channel_count
        self.packets_sent = 0
        self.mode = mode
        #: XY routes are static; cache them keyed by (src, dst) node pair
        self._route_cache: dict[int, list[int]] = {}
        # sfb-mode state: current holder and FIFO waiters per channel
        self._holder: list["_SFBWorm | None"] = []
        self._waiters: list[deque | None] = []
        if mode == "sfb":
            self._holder = [None] * topology.channel_count
            self._waiters = [None] * topology.channel_count

    def _route(self, src: Coord, dst: Coord) -> list[int]:
        key = (src.y * self.topology.width + src.x) * self.topology.node_count + (
            dst.y * self.topology.width + dst.x
        )
        path = self._route_cache.get(key)
        if path is None:
            path = xy_route(self.topology, src, dst)
            self._route_cache[key] = path
        return path

    # ----------------------------------------------------------- fast mode
    def transmit(self, src: Coord, dst: Coord, now: float) -> PathTiming:
        """Reserve the whole XY path at once and return its timing.

        The packet is queued at the source at time ``now``; channel
        reservations follow the deterministic call order.
        """
        path = self._route(src, dst)
        free_at = self.free_at
        hop = self.hop_cost
        occ = self.occupancy
        # injection channel: waiting here is source queueing, not blocking
        f = free_at[path[0]]
        start = now if now >= f else f
        free_at[path[0]] = start + occ
        t_inject = start
        t = start + hop  # header arrival at the first link channel
        blocking = 0.0
        for c in path[1:]:
            f = free_at[c]
            if f > t:
                blocking += f - t
                t = f
            free_at[c] = t + occ
            t += hop
        self.packets_sent += 1
        return PathTiming(t_inject=t_inject, t_deliver=t + self.drain, blocking=blocking)

    # --------------------------------------------------------- causal mode
    def send(
        self,
        src: Coord,
        dst: Coord,
        now: float,
        on_delivered: Callable[[PathTiming], None],
    ) -> None:
        """Transmit event-driven (``causal`` or ``sfb`` semantics)."""
        self.packets_sent += 1
        if self.mode == "sfb":
            worm = _SFBWorm(path=self._route(src, dst), on_delivered=on_delivered)
            worm.t = now
            self._sfb_advance(worm)
            return
        packet = _Packet(path=self._route(src, dst), on_delivered=on_delivered)
        self._hop(packet, now)

    def _hop(self, packet: "_Packet", now: float) -> None:
        c = packet.path[packet.idx]
        f = self.free_at[c]
        start = now if now >= f else f
        if packet.idx == 0:
            packet.t_inject = start
        else:
            packet.blocking += start - now
        self.free_at[c] = start + self.occupancy
        packet.idx += 1
        next_t = start + self.hop_cost
        if packet.idx == len(packet.path):
            self.engine.schedule_at(
                next_t + self.drain,
                self._deliver,
                packet,
                priority=Priority.NETWORK,
            )
        else:
            self.engine.schedule_at(
                next_t, self._hop, packet, next_t, priority=Priority.NETWORK
            )

    def _deliver(self, packet: "_Packet") -> None:
        packet.on_delivered(
            PathTiming(
                t_inject=packet.t_inject,
                t_deliver=self.engine.now,
                blocking=packet.blocking,
            )
        )

    # ------------------------------------------------------------ sfb mode
    def _sfb_advance(self, worm: "_SFBWorm") -> None:
        """Advance the header, holding the trailing body channels.

        The worm's body spans at most ``P_len`` channels (one flit
        buffered per channel); acquiring channel ``j`` lets the tail leave
        channel ``j - P_len``, which is released at that moment.  A busy
        next channel suspends the worm in the channel's FIFO -- everything
        it holds stays held (chained blocking).
        """
        path = worm.path
        holder = self._holder
        free_at = self.free_at
        body_span = self.p_len
        while worm.idx < len(path):
            c = path[worm.idx]
            if holder[c] is not None:
                self._waiters_at(c).append(worm)
                worm.blocked_since = worm.t
                return
            f = free_at[c]
            start = worm.t if worm.t >= f else f
            if worm.idx == 0:
                worm.t_inject = start
            else:
                worm.blocking += start - worm.t
            holder[c] = worm
            worm.t = start + self.hop_cost
            worm.idx += 1
            if worm.idx > body_span:
                # tail compresses forward: the channel body_span behind
                # the header drains as the header starts this crossing
                self._sfb_release(path[worm.idx - 1 - body_span], start)
        self._sfb_deliver(worm)

    def _sfb_deliver(self, worm: "_SFBWorm") -> None:
        t_deliver = worm.t + self.drain
        path = worm.path
        last = len(path) - 1
        # remaining held channels drain at one flit per time unit
        for i in range(max(0, len(path) - self.p_len), len(path)):
            self._sfb_release(path[i], t_deliver - (last - i))
        # the advance loop may run ahead of the clock (future channel
        # reservations), so completion must be delivered as an event at
        # the actual arrival time
        self.engine.schedule_at(
            max(t_deliver, self.engine.now),
            worm.on_delivered,
            PathTiming(
                t_inject=worm.t_inject,
                t_deliver=t_deliver,
                blocking=worm.blocking,
            ),
            priority=Priority.NETWORK,
        )

    def _sfb_release(self, c: int, at: float) -> None:
        waiters = self._waiters[c]
        if waiters:
            at = max(at, self.engine.now)
            self.engine.schedule_at(
                at, self._sfb_grant, c, priority=Priority.NETWORK
            )
        else:
            self._holder[c] = None
            self.free_at[c] = at

    def _sfb_grant(self, c: int) -> None:
        waiters = self._waiters[c]
        assert waiters, "grant fired on a channel without waiters"
        worm: _SFBWorm = waiters.popleft()
        now = self.engine.now
        if worm.idx == 0:
            worm.t_inject = now
        else:
            worm.blocking += now - worm.blocked_since
        self._holder[c] = worm
        worm.t = now + self.hop_cost
        worm.idx += 1
        if worm.idx > self.p_len:
            self._sfb_release(worm.path[worm.idx - 1 - self.p_len], now)
        self._sfb_advance(worm)

    def _waiters_at(self, c: int) -> deque:
        w = self._waiters[c]
        if w is None:
            w = deque()
            self._waiters[c] = w
        return w

    # ------------------------------------------------------------- control
    def reset(self) -> None:
        """Clear all channel reservations (between replications)."""
        self.free_at = [0.0] * self.topology.channel_count
        self.packets_sent = 0
        if self.mode == "sfb":
            self._holder = [None] * self.topology.channel_count
            self._waiters = [None] * self.topology.channel_count

    def base_latency(self, hops: int) -> float:
        """Uncontended latency of an ``hops``-link route."""
        return (hops + 2) * self.hop_cost + self.drain


class _Packet:
    """Per-packet state for causal mode."""

    __slots__ = ("path", "idx", "t_inject", "blocking", "on_delivered")

    def __init__(
        self, path: list[int], on_delivered: Callable[[PathTiming], None]
    ) -> None:
        self.path = path
        self.idx = 0
        self.t_inject = 0.0
        self.blocking = 0.0
        self.on_delivered = on_delivered


class _SFBWorm:
    """Per-packet state for single-flit-buffer mode (holds channels)."""

    __slots__ = (
        "path", "idx", "t", "t_inject", "blocking", "blocked_since",
        "on_delivered",
    )

    def __init__(
        self, path: list[int], on_delivered: Callable[[PathTiming], None]
    ) -> None:
        self.path = path
        self.idx = 0
        self.t = 0.0
        self.t_inject = 0.0
        self.blocking = 0.0
        self.blocked_since = 0.0
        self.on_delivered = on_delivered
