"""Event-driven wormhole network engines.

Timing model (DESIGN.md section 2.1).  A packet of ``P_len`` flits
crossing channel ``c`` at service start ``s``:

* the header pays the router decision ``t_s`` plus one link cycle, so it
  *arrives at the next channel* at ``s + t_s + 1``;
* the body streams behind at one flit per time unit; the router decision
  overlaps the body pipeline, so the channel itself is occupied for the
  ``P_len`` flit-cycles (``s .. s + P_len``);
* channels serve packets FIFO: a header arriving at time ``t`` starts
  service at ``max(t, channel_free_at)``; the difference is *blocking
  time* (contention), except on the injection channel where it is source
  queueing and excluded from the paper's packet statistics;
* delivery completes one ``P_len - 1`` flit-drain after the header
  finishes the ejection channel crossing.

Uncontended end-to-end latency for an ``h``-hop route is therefore
``(h + 2) * (t_s + 1) + P_len - 1`` (the ``+2`` are the injection and
ejection channels) -- asserted by the unit tests.

Four backends share this arithmetic (see :mod:`repro.network.backend`):

* ``fast`` -- the entire path is reserved when the packet is injected;
  one pure-Python loop per packet and a single completion event per job.
  Within a burst of simultaneous injections, channel grants follow
  reservation order rather than physical header-arrival order; with
  time-staggered injections the two orders coincide exactly (property-
  tested in ``test_network_properties``), and under synchronized bursts
  fast mode is conservative (over-reports contention) while preserving
  strategy rankings (validated by ``bench_abl_network_mode``).
* ``batch`` (:mod:`repro.network.batch`, the default) -- the same
  reservation discipline resolved a traffic round at a time with
  vectorised routes and per-channel grouping; bit-identical to ``fast``.
* ``causal`` -- one event per hop; channels are reserved exactly when the
  header reaches them, giving exact FIFO-by-arrival arbitration.  Both
  of the above correspond to wormhole switching with buffers deep enough
  to absorb a stalled body.
* ``sfb`` -- single-flit-buffer wormhole: a worm *holds* every channel
  its body occupies (the trailing ``P_len`` channels behind the header)
  and releases a channel only when the body compresses past it; a
  blocked header therefore keeps all of them held -- the classic chained
  blocking of minimally-buffered wormhole switching.  Deadlock-free on
  the mesh because XY routing acquires channels in a global total order;
  refused on torus topologies (real tori need virtual channels).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Sequence

from repro.core.engine import Engine
from repro.core.events import Priority
from repro.mesh.geometry import Coord
from repro.network.backend import (
    BACKENDS,
    NetworkBackend,
    PathTiming,
    RoundStats,
    register_backend,
)
from repro.network.topology import MeshTopology

__all__ = ["PathTiming", "WormholeNetwork", "FastBackend", "CausalBackend",
           "SFBBackend", "MODES"]


@register_backend
class FastBackend(NetworkBackend):
    """Whole-path reservation at injection time (the reference engine)."""

    mode = "fast"
    synchronous = True

    # ------------------------------------------------------------ transmit
    def transmit(self, src: Coord, dst: Coord, now: float) -> PathTiming:
        """Reserve the whole XY path at once and return its timing.

        The packet is queued at the source at time ``now``; channel
        reservations follow the deterministic call order.
        """
        path = self._route(src, dst)
        free_at = self.free_at
        hop = self.hop_cost
        occ = self.occupancy
        # injection channel: waiting here is source queueing, not blocking
        f = free_at[path[0]]
        start = now if now >= f else f
        free_at[path[0]] = start + occ
        t_inject = start
        t = start + hop  # header arrival at the first link channel
        blocking = 0.0
        for c in path[1:]:
            f = free_at[c]
            if f > t:
                blocking += f - t
                t = f
            free_at[c] = t + occ
            t += hop
        self.packets_sent += 1
        return PathTiming(t_inject=t_inject, t_deliver=t + self.drain, blocking=blocking)

    # -------------------------------------------------------- round launch
    def inject_rounds(
        self,
        coords: Sequence[Coord],
        offsets: Sequence[int],
        now: float,
        round_gap: float,
    ) -> RoundStats:
        """Reserve every round's packets in deterministic order."""
        n = len(coords)
        transmit = self.transmit
        packets = 0
        latency_sum = 0.0
        blocking_sum = 0.0
        last_delivery = now
        for r, offset in enumerate(offsets):
            t_round = now + r * round_gap
            for i in range(n):
                timing = transmit(coords[i], coords[(i + offset) % n], t_round)
                packets += 1
                latency_sum += timing.latency
                blocking_sum += timing.blocking
                if timing.t_deliver > last_delivery:
                    last_delivery = timing.t_deliver
        return RoundStats(
            packets=packets,
            latency_sum=latency_sum,
            blocking_sum=blocking_sum,
            last_delivery=last_delivery,
        )


@register_backend
class CausalBackend(NetworkBackend):
    """One event per hop: exact FIFO-by-arrival channel arbitration."""

    mode = "causal"
    synchronous = False

    def send(
        self,
        src: Coord,
        dst: Coord,
        now: float,
        on_delivered: Callable[[PathTiming], None],
    ) -> None:
        self.packets_sent += 1
        packet = _Packet(path=self._route(src, dst), on_delivered=on_delivered)
        self._hop(packet, now)

    def _hop(self, packet: "_Packet", now: float) -> None:
        c = packet.path[packet.idx]
        f = self.free_at[c]
        start = now if now >= f else f
        if packet.idx == 0:
            packet.t_inject = start
        else:
            packet.blocking += start - now
        self.free_at[c] = start + self.occupancy
        packet.idx += 1
        next_t = start + self.hop_cost
        if packet.idx == len(packet.path):
            self.engine.schedule_at(
                next_t + self.drain,
                self._deliver,
                packet,
                priority=Priority.NETWORK,
            )
        else:
            self.engine.schedule_at(
                next_t, self._hop, packet, next_t, priority=Priority.NETWORK
            )

    def _deliver(self, packet: "_Packet") -> None:
        packet.on_delivered(
            PathTiming(
                t_inject=packet.t_inject,
                t_deliver=self.engine.now,
                blocking=packet.blocking,
            )
        )


@register_backend
class SFBBackend(NetworkBackend):
    """Single-flit-buffer wormhole: worms hold their body channels."""

    mode = "sfb"
    synchronous = False

    def __init__(
        self,
        topology: MeshTopology,
        engine: Engine,
        t_s: float = 3.0,
        p_len: int = 8,
    ) -> None:
        if topology.wrap:
            raise ValueError(
                "sfb (hold-and-wait wormhole) deadlocks on torus topologies; "
                "use fast, batch or causal mode"
            )
        super().__init__(topology, engine, t_s=t_s, p_len=p_len)
        # current holder and FIFO waiters per channel
        self._holder: list["_SFBWorm | None"] = [None] * topology.channel_count
        self._waiters: list[deque | None] = [None] * topology.channel_count

    def send(
        self,
        src: Coord,
        dst: Coord,
        now: float,
        on_delivered: Callable[[PathTiming], None],
    ) -> None:
        self.packets_sent += 1
        worm = _SFBWorm(path=self._route(src, dst), on_delivered=on_delivered)
        worm.t = now
        self._advance(worm)

    def _advance(self, worm: "_SFBWorm") -> None:
        """Advance the header, holding the trailing body channels.

        The worm's body spans at most ``P_len`` channels (one flit
        buffered per channel); acquiring channel ``j`` lets the tail leave
        channel ``j - P_len``, which is released at that moment.  A busy
        next channel suspends the worm in the channel's FIFO -- everything
        it holds stays held (chained blocking).
        """
        path = worm.path
        holder = self._holder
        free_at = self.free_at
        body_span = self.p_len
        while worm.idx < len(path):
            c = path[worm.idx]
            if holder[c] is not None:
                self._waiters_at(c).append(worm)
                worm.blocked_since = worm.t
                return
            f = free_at[c]
            start = worm.t if worm.t >= f else f
            if worm.idx == 0:
                worm.t_inject = start
            else:
                worm.blocking += start - worm.t
            holder[c] = worm
            worm.t = start + self.hop_cost
            worm.idx += 1
            if worm.idx > body_span:
                # tail compresses forward: the channel body_span behind
                # the header drains as the header starts this crossing
                self._release(path[worm.idx - 1 - body_span], start)
        self._deliver(worm)

    def _deliver(self, worm: "_SFBWorm") -> None:
        t_deliver = worm.t + self.drain
        path = worm.path
        last = len(path) - 1
        # remaining held channels drain at one flit per time unit
        for i in range(max(0, len(path) - self.p_len), len(path)):
            self._release(path[i], t_deliver - (last - i))
        # the advance loop may run ahead of the clock (future channel
        # reservations), so completion must be delivered as an event at
        # the actual arrival time
        self.engine.schedule_at(
            max(t_deliver, self.engine.now),
            worm.on_delivered,
            PathTiming(
                t_inject=worm.t_inject,
                t_deliver=t_deliver,
                blocking=worm.blocking,
            ),
            priority=Priority.NETWORK,
        )

    def _release(self, c: int, at: float) -> None:
        waiters = self._waiters[c]
        if waiters:
            at = max(at, self.engine.now)
            self.engine.schedule_at(
                at, self._grant, c, priority=Priority.NETWORK
            )
        else:
            self._holder[c] = None
            self.free_at[c] = at

    def _grant(self, c: int) -> None:
        waiters = self._waiters[c]
        assert waiters, "grant fired on a channel without waiters"
        worm: _SFBWorm = waiters.popleft()
        now = self.engine.now
        if worm.idx == 0:
            worm.t_inject = now
        else:
            worm.blocking += now - worm.blocked_since
        self._holder[c] = worm
        worm.t = now + self.hop_cost
        worm.idx += 1
        if worm.idx > self.p_len:
            self._release(worm.path[worm.idx - 1 - self.p_len], now)
        self._advance(worm)

    def _waiters_at(self, c: int) -> deque:
        w = self._waiters[c]
        if w is None:
            w = deque()
            self._waiters[c] = w
        return w

    def reset(self) -> None:
        super().reset()
        self._holder = [None] * self.topology.channel_count
        self._waiters = [None] * self.topology.channel_count


#: registered engine names (batch registers on package import)
MODES = ("fast", "batch", "causal", "sfb")


def WormholeNetwork(
    topology: MeshTopology,
    engine: Engine,
    t_s: float = 3.0,
    p_len: int = 8,
    mode: str = "fast",
) -> NetworkBackend:
    """Build the wormhole engine registered under ``mode``.

    Kept as a factory with the historical constructor signature; the
    returned object is a :class:`~repro.network.backend.NetworkBackend`.
    """
    from repro.network import batch  # noqa: F401  (registers "batch")

    cls = BACKENDS.get(mode)
    if cls is None:
        raise ValueError(
            f"unknown network mode {mode!r}; choose from {MODES}"
        )
    return cls(topology, engine, t_s=t_s, p_len=p_len)


class _Packet:
    """Per-packet state for causal mode."""

    __slots__ = ("path", "idx", "t_inject", "blocking", "on_delivered")

    def __init__(
        self, path: list[int], on_delivered: Callable[[PathTiming], None]
    ) -> None:
        self.path = path
        self.idx = 0
        self.t_inject = 0.0
        self.blocking = 0.0
        self.on_delivered = on_delivered


class _SFBWorm:
    """Per-packet state for single-flit-buffer mode (holds channels)."""

    __slots__ = (
        "path", "idx", "t", "t_inject", "blocking", "blocked_since",
        "on_delivered",
    )

    def __init__(
        self, path: list[int], on_delivered: Callable[[PathTiming], None]
    ) -> None:
        self.path = path
        self.idx = 0
        self.t = 0.0
        self.t_inject = 0.0
        self.blocking = 0.0
        self.blocked_since = 0.0
        self.on_delivered = on_delivered
