"""Wormhole-switched 2D-mesh interconnect simulator.

Implements the paper's network model: XY dimension-ordered routing,
``t_s``-cycle router decisions, one flit per time unit per link,
``P_len``-flit packets, per-channel FIFO arbitration, and all-to-all
job traffic (section 5).
"""

from repro.network.topology import MeshTopology, Direction
from repro.network.routing import xy_route, xy_route_nodes
from repro.network.wormhole import WormholeNetwork, PathTiming
from repro.network.traffic import AllToAllTraffic, destination_schedule

__all__ = [
    "MeshTopology",
    "Direction",
    "xy_route",
    "xy_route_nodes",
    "WormholeNetwork",
    "PathTiming",
    "AllToAllTraffic",
    "destination_schedule",
]
