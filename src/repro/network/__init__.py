"""Wormhole-switched 2D-mesh interconnect simulator.

Implements the paper's network model: XY dimension-ordered routing,
``t_s``-cycle router decisions, one flit per time unit per link,
``P_len``-flit packets, per-channel FIFO arbitration, and all-to-all
job traffic (section 5).

The timing engines live behind the pluggable transport-backend layer in
:mod:`repro.network.backend`: ``fast`` (reference whole-path
reservation), ``batch`` (vectorised, bit-identical to ``fast``, the
default), ``causal`` (exact per-hop arbitration) and ``sfb``
(single-flit-buffer wormhole).
"""

from repro.network.topology import MeshTopology, Direction
from repro.network.routing import xy_route, xy_route_arrays, xy_route_nodes
from repro.network.backend import (
    NetworkBackend,
    PathTiming,
    RoundStats,
    backend_modes,
    make_backend,
    register_backend,
)
from repro.network.wormhole import (
    MODES,
    CausalBackend,
    FastBackend,
    SFBBackend,
    WormholeNetwork,
)
from repro.network.batch import BatchBackend
from repro.network.arq import ARQ_PROTOCOLS, FlowArq
from repro.network.channel import (
    ChannelModel,
    ChannelPolicy,
    canonical_channel,
    parse_channel,
)
from repro.network.traffic import (
    AllToAllTraffic,
    destination_offsets,
    destination_schedule,
)

__all__ = [
    "MeshTopology",
    "Direction",
    "xy_route",
    "xy_route_arrays",
    "xy_route_nodes",
    "NetworkBackend",
    "PathTiming",
    "RoundStats",
    "backend_modes",
    "make_backend",
    "register_backend",
    "MODES",
    "FastBackend",
    "BatchBackend",
    "CausalBackend",
    "SFBBackend",
    "WormholeNetwork",
    "AllToAllTraffic",
    "destination_offsets",
    "destination_schedule",
    "ARQ_PROTOCOLS",
    "FlowArq",
    "ChannelModel",
    "ChannelPolicy",
    "canonical_channel",
    "parse_channel",
]
