"""Vectorised batch transport backend (bit-identical to ``fast``).

The ``fast`` engine resolves each packet with one Python loop over its
route; at high load a single job injects thousands of packets, making
that loop the simulation's hot path.  This backend keeps the *same*
reservation discipline -- whole-path reservation in deterministic packet
order, FIFO channel grants, identical ``PathTiming`` arithmetic -- but
resolves an entire launch (every round of a job's all-to-all exchange)
at once:

1. all XY routes of the launch are generated as flat index arrays by
   :func:`repro.network.routing.xy_route_arrays` (no per-packet Python);
2. the channel-reservation recurrence is solved over those arrays by the
   fastest available engine:

   * a tiny compiled kernel (:mod:`repro.network._native`) running the
     reference loop at C speed -- the default when a C compiler exists;
   * a NumPy fixed-point solver that alternates segmented prefix scans
     over per-packet hop chains and per-channel reservation chains
     (grouped with one ``argsort`` per launch) until the unique fixed
     point of the reservation recurrence is reached;
   * the plain Python reference loop for launches too small to amortise
     vectorisation overhead.

Every engine computes the exact same IEEE-754 values, so results are
bit-identical to ``fast`` mode -- enforced by the equivalence suite in
``tests/test_network_backend_equivalence.py``.  The compiled kernel and
the Python loop perform literally the same operations in the same
order, so their identity holds for *any* float configuration.  The
NumPy solver reassociates some additions into closed forms such as
``k * hop_cost`` and ``blocking = t_eject - t_inject - hops * hop``;
that is exact only when every event time is exactly representable,
which holds when the timing constants sit on the dyadic ``2**-10``
grid that workload arrival times are quantised to -- so the solver is
only dispatched to when :func:`_grid_exact` verifies its constants, and
the reference loop takes over otherwise.
"""

from __future__ import annotations

import ctypes
from typing import Sequence

import numpy as np

from repro.core.engine import Engine
from repro.mesh.geometry import Coord
from repro.network import _native
from repro.network.backend import RoundStats, register_backend
from repro.network.routing import xy_route_arrays
from repro.network.topology import MeshTopology
from repro.core.config import TIME_GRID
from repro.network.wormhole import FastBackend

_NEG = -1.0e300  # acts as -inf in the segmented scans


def _grid_exact(*values: float) -> bool:
    """Whether every value sits on the dyadic arrival-time grid (the
    precondition for the NumPy solver's reassociated arithmetic to be
    exact; see the module docstring)."""
    return all((v * TIME_GRID).is_integer() for v in values)


@register_backend
class BatchBackend(FastBackend):
    """Round-level vectorised whole-path reservation.

    Subclasses :class:`~repro.network.wormhole.FastBackend` so the
    single-packet ``transmit`` path *is* the reference loop (one shared
    implementation, no drift), while launches go through the vectorised
    ``inject_rounds`` below.
    """

    mode = "batch"
    synchronous = True

    #: launches below this packet count use the reference Python loop
    #: when no compiled kernel is available (vectorisation overhead
    #: dominates for tiny jobs)
    NUMPY_MIN_PACKETS = 192

    def __init__(
        self,
        topology: MeshTopology,
        engine: Engine,
        t_s: float = 3.0,
        p_len: int = 8,
    ) -> None:
        super().__init__(topology, engine, t_s=t_s, p_len=p_len)
        self.free_at: np.ndarray = np.zeros(topology.channel_count)
        self._kernel = _native.load_kernel()

    def reset(self) -> None:
        self.free_at = np.zeros(self.topology.channel_count)
        self.packets_sent = 0

    # -------------------------------------------------------- round launch
    def inject_rounds(
        self,
        coords: Sequence[Coord],
        offsets: Sequence[int],
        now: float,
        round_gap: float,
    ) -> RoundStats:
        n = len(coords)
        rounds = len(offsets)
        packets = n * rounds
        width = self.topology.width
        ids = np.fromiter(
            (y * width + x for x, y in coords), dtype=np.int64, count=n
        )
        self.packets_sent += packets

        if self._kernel is not None:
            # the kernel walks routes and aggregates stats itself
            return self._solve_native(ids, offsets, now, round_gap, packets)

        src = np.tile(ids, rounds)
        dst_index = (
            np.arange(n) + np.asarray(offsets, dtype=np.int64)[:, None]
        ) % n
        dst = ids[dst_index].ravel()
        t0 = np.repeat(now + np.arange(rounds) * round_gap, n)
        chan, off = xy_route_arrays(self.topology, src, dst)
        if (packets >= self.NUMPY_MIN_PACKETS
                and _grid_exact(self.hop_cost, round_gap)):
            t_inj, t_ej = self._solve_numpy(chan, off, t0)
            hops = np.diff(off) - 1  # links + ejection channel
            t_deliver = t_ej + self.hop_cost + self.drain
            return RoundStats(
                packets=packets,
                latency_sum=float(np.sum(t_deliver - t_inj)),
                blocking_sum=float(
                    np.sum(t_ej - t_inj - hops * self.hop_cost)
                ),
                last_delivery=max(float(t_deliver.max()), now),
            )
        return self._solve_python(chan, off, t0, now)

    # ------------------------------------------------------ solver engines
    def _solve_native(
        self,
        ids: np.ndarray,
        offsets: Sequence[int],
        now: float,
        round_gap: float,
        packets: int,
    ) -> RoundStats:
        """Reference recurrence at C speed (see :mod:`._native`)."""
        offs = np.asarray(offsets, dtype=np.int64)
        out = np.zeros(3)
        out[2] = now  # last-delivery accumulator starts at launch time
        topo = self.topology
        as_ptr = ctypes.c_void_p
        self._kernel.solve_rounds(
            as_ptr(ids.ctypes.data), ctypes.c_int64(len(ids)),
            as_ptr(offs.ctypes.data), ctypes.c_int64(len(offs)),
            ctypes.c_double(now), ctypes.c_double(round_gap),
            as_ptr(self.free_at.ctypes.data),
            ctypes.c_double(self.hop_cost), ctypes.c_double(self.occupancy),
            ctypes.c_double(self.drain),
            ctypes.c_int64(topo.width), ctypes.c_int64(topo.length),
            ctypes.c_int32(int(topo.wrap)), as_ptr(out.ctypes.data),
        )
        return RoundStats(
            packets=packets,
            latency_sum=float(out[0]),
            blocking_sum=float(out[1]),
            last_delivery=float(out[2]),
        )

    def _solve_python(
        self, chan: np.ndarray, off: np.ndarray, t0: np.ndarray, now: float
    ) -> RoundStats:
        """Reference recurrence over the flat route arrays.

        Accumulates latency and blocking stall-by-stall in packet order,
        exactly like the reference engine, so the result is bit-identical
        for any float configuration (not only grid-exact ones).
        """
        packets = len(t0)
        free_at = self.free_at
        hop = self.hop_cost
        occ = self.occupancy
        drain = self.drain
        chan_list = chan.tolist()
        off_list = off.tolist()
        t0_list = t0.tolist()
        latency_sum = 0.0
        blocking_sum = 0.0
        last_delivery = now
        for p in range(packets):
            lo = off_list[p]
            hi = off_list[p + 1]
            c = chan_list[lo]
            f = free_at[c]
            floor = t0_list[p]
            t = floor if floor >= f else f
            free_at[c] = t + occ
            t_inject = t
            t += hop
            blocking = 0.0
            for e in range(lo + 1, hi):
                c = chan_list[e]
                f = free_at[c]
                if f > t:
                    blocking += f - t
                    t = f
                free_at[c] = t + occ
                t += hop
            t_deliver = t + drain
            latency_sum += t_deliver - t_inject
            blocking_sum += blocking
            if t_deliver > last_delivery:
                last_delivery = t_deliver
        return RoundStats(
            packets=packets,
            latency_sum=latency_sum,
            blocking_sum=blocking_sum,
            last_delivery=float(last_delivery),
        )

    def _solve_numpy(
        self, chan: np.ndarray, off: np.ndarray, t0: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """NumPy fixed-point solver with per-channel grouping.

        The reservation start of hop ``e`` is the least solution of

        * ``start[e] >= arrival`` -- ``t0`` at the injection hop, else
          ``start[e - 1] + hop`` (the header advancing along the path);
        * ``start[e] >= start[prev use of the channel] + occupancy``
          (FIFO grants in deterministic packet order), or the channel's
          initial ``free_at`` for its first use in the launch.

        Packet order is a topological order of that dependency graph, so
        the least fixed point is exactly what the sequential reference
        loop computes.  Each sweep resolves the per-packet chains and
        the per-channel chains completely (two segmented prefix scans in
        doubling form); sweeps repeat until the estimate stops changing,
        which it must, monotonically from below.
        """
        total = len(chan)
        hop = self.hop_cost
        occ = self.occupancy
        free_at = self.free_at
        firsts = off[:-1]
        lasts = off[1:] - 1
        pkt = np.repeat(np.arange(len(t0)), np.diff(off))
        idx = np.arange(total)
        k = idx - firsts[pkt]
        khop = k * hop

        # channel grouping: stable sort keeps packet order within groups
        order = np.argsort(chan, kind="stable")
        sorted_chan = chan[order]
        newseg = np.empty(total, dtype=bool)
        newseg[0] = True
        np.not_equal(sorted_chan[1:], sorted_chan[:-1], out=newseg[1:])
        seg_start = np.maximum.accumulate(np.where(newseg, idx, 0))
        rank = idx - seg_start  # position within the channel's chain
        rank_occ = rank * occ
        # flat-order mapping to each hop's channel predecessor
        prev_sorted = np.empty(total, dtype=np.int64)
        prev_sorted[0] = 0
        prev_sorted[1:] = order[:-1]
        prev_flat = np.empty(total, dtype=np.int64)
        prev_flat[order] = prev_sorted
        head_flat = np.zeros(total, dtype=bool)
        head_flat[order[newseg]] = True
        head_pos = np.nonzero(head_flat)[0]
        head_free = free_at[chan[head_pos]]

        packet_shifts = _doubling_masks(k)
        channel_shifts = _doubling_masks(rank)

        start = t0[pkt] + khop  # contention-free lower bound
        start_new = np.empty(total)
        w = np.empty(total)
        for _ in range(total + 1):
            # packet half: channel floors, then prefix scan along paths
            np.take(start, prev_flat, out=w)
            w += occ
            w[head_pos] = head_free
            w[firsts] = np.maximum(w[firsts], t0)
            w -= khop
            for shift, valid in packet_shifts:
                cand = np.where(valid, w[:-shift], _NEG)
                np.maximum(w[shift:], cand, out=w[shift:])
            w += khop
            # channel half: FIFO chain scan in packet order per channel
            v = w[order]
            v -= rank_occ
            for shift, valid in channel_shifts:
                cand = np.where(valid, v[:-shift], _NEG)
                np.maximum(v[shift:], cand, out=v[shift:])
            v += rank_occ
            start_new[order] = v
            if np.array_equal(start_new, start):
                break
            start, start_new = start_new, start
        else:  # pragma: no cover - the recurrence always converges
            raise RuntimeError("batch reservation solve did not converge")

        tail_pos = order[np.append(newseg[1:], True)]
        free_at[chan[tail_pos]] = start[tail_pos] + occ
        return start[firsts], start[lasts]


def _doubling_masks(position: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Shift/validity pairs for a segmented cummax in doubling form.

    ``position`` is each element's rank within its segment; an element
    may take the max with its ``shift``-distant left neighbour exactly
    when that neighbour is in the same segment (``position >= shift``).
    """
    masks = []
    shift = 1
    top = int(position.max(initial=0))
    while shift <= top:
        masks.append((shift, position[shift:] >= shift))
        shift *= 2
    return masks
