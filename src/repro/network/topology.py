"""Physical structure of the wormhole-switched 2D mesh.

Every processor is connected to its neighbours by bidirectional links
(paper Fig. 1), modelled as two opposed unidirectional *channels*.  Each
node additionally owns an *injection* channel (processor into router) and
an *ejection* channel (router into processor); packets from one source
serialise at its injection channel exactly as in ProcSimity.

Channels are identified by dense integer indices (``node_id * 6 + dir``)
so the simulator can keep per-channel state in flat arrays.
"""

from __future__ import annotations

import enum

from repro.mesh.geometry import Coord


class Direction(enum.IntEnum):
    """Channel classes per node."""

    INJ = 0  #: processor -> router
    EJ = 1  #: router -> processor
    EAST = 2  #: to (x+1, y)
    WEST = 3  #: to (x-1, y)
    NORTH = 4  #: to (x, y+1)
    SOUTH = 5  #: to (x, y-1)


_CHANNELS_PER_NODE = len(Direction)


class MeshTopology:
    """Coordinate/node/channel arithmetic for a ``W x L`` mesh or torus.

    With ``wrap=True`` the boundary links wrap around (a 2D torus) --
    the paper's stated future-work direction ("it would be interesting
    to assess the performance of the allocation strategies on other
    common multicomputer networks, such as torus networks").  The
    channel index space is identical; wrapping only changes which links
    exist and how routes are computed.
    """

    __slots__ = ("width", "length", "wrap")

    def __init__(self, width: int, length: int, wrap: bool = False) -> None:
        if width <= 0 or length <= 0:
            raise ValueError(f"mesh dimensions must be positive, got {width}x{length}")
        self.width = width
        self.length = length
        self.wrap = wrap

    # ------------------------------------------------------------ nodes
    @property
    def node_count(self) -> int:
        return self.width * self.length

    @property
    def channel_count(self) -> int:
        return self.node_count * _CHANNELS_PER_NODE

    def node_id(self, c: Coord) -> int:
        """Row-major linear node id."""
        return c.y * self.width + c.x

    def coord_of(self, node_id: int) -> Coord:
        return Coord(node_id % self.width, node_id // self.width)

    # --------------------------------------------------------- channels
    def channel(self, node_id: int, direction: Direction) -> int:
        """Dense channel index for ``direction`` out of ``node_id``."""
        return node_id * _CHANNELS_PER_NODE + direction

    def channel_owner(self, channel: int) -> tuple[int, Direction]:
        """Inverse of :meth:`channel`."""
        return channel // _CHANNELS_PER_NODE, Direction(channel % _CHANNELS_PER_NODE)

    def link_exists(self, node_id: int, direction: Direction) -> bool:
        """Whether the directional link exists (boundaries wrap on a torus)."""
        if self.wrap:
            return True
        c = self.coord_of(node_id)
        if direction == Direction.EAST:
            return c.x + 1 < self.width
        if direction == Direction.WEST:
            return c.x - 1 >= 0
        if direction == Direction.NORTH:
            return c.y + 1 < self.length
        if direction == Direction.SOUTH:
            return c.y - 1 >= 0
        return True  # INJ/EJ always exist

    def neighbour(self, node_id: int, direction: Direction) -> int:
        """Node on the other end of a directional link."""
        if not self.link_exists(node_id, direction):
            raise ValueError(f"no {direction.name} link at node {node_id}")
        c = self.coord_of(node_id)
        if direction == Direction.EAST:
            return self.node_id(Coord((c.x + 1) % self.width, c.y))
        if direction == Direction.WEST:
            return self.node_id(Coord((c.x - 1) % self.width, c.y))
        if direction == Direction.NORTH:
            return self.node_id(Coord(c.x, (c.y + 1) % self.length))
        if direction == Direction.SOUTH:
            return self.node_id(Coord(c.x, (c.y - 1) % self.length))
        raise ValueError(f"{direction.name} is not a link direction")

    def distance(self, src: Coord, dst: Coord) -> int:
        """Minimal hop count between two nodes on this topology."""
        dx = abs(src.x - dst.x)
        dy = abs(src.y - dst.y)
        if self.wrap:
            dx = min(dx, self.width - dx)
            dy = min(dy, self.length - dy)
        return dx + dy
