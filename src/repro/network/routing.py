"""XY dimension-ordered routing.

Wormhole-switched meshes use deterministic XY routing: a packet first
travels along the x dimension to the destination column, then along y.
Channels are therefore acquired in a fixed total order (x-channels before
y-channels for any single packet), which makes the mesh deadlock-free --
the property that justifies the hold-and-wait wormhole protocol.

On a torus (``topology.wrap``) each dimension independently takes the
shorter way around (ties break towards the positive direction).  Note
that hold-and-wait wormhole switching on a torus needs virtual channels
to stay deadlock-free; the reservation-based engines used here do not
hold-and-wait, and the single-flit-buffer engine refuses torus
topologies (see :mod:`repro.network.wormhole`).
"""

from __future__ import annotations

from repro.mesh.geometry import Coord
from repro.network.topology import Direction, MeshTopology


def _dimension_steps(src: int, dst: int, size: int, wrap: bool) -> tuple[int, int]:
    """(number of hops, signed direction) along one dimension."""
    if dst == src:
        return 0, 1
    forward = (dst - src) % size
    backward = (src - dst) % size
    if not wrap:
        return (dst - src, 1) if dst > src else (src - dst, -1)
    if forward <= backward:
        return forward, 1
    return backward, -1


def xy_route(topology: MeshTopology, src: Coord, dst: Coord) -> list[int]:
    """Channel index path from ``src`` to ``dst``: injection, links, ejection."""
    if src == dst:
        raise ValueError("no route from a node to itself")
    W, L, wrap = topology.width, topology.length, topology.wrap
    src_id = src.y * W + src.x
    dst_id = dst.y * W + dst.x
    path: list[int] = [src_id * 6 + Direction.INJ]

    x, y = src.x, src.y
    hops, step = _dimension_steps(src.x, dst.x, W, wrap)
    channel_dir = Direction.EAST if step > 0 else Direction.WEST
    for _ in range(hops):
        path.append((y * W + x) * 6 + channel_dir)
        x = (x + step) % W
    hops, step = _dimension_steps(src.y, dst.y, L, wrap)
    channel_dir = Direction.NORTH if step > 0 else Direction.SOUTH
    for _ in range(hops):
        path.append((y * W + x) * 6 + channel_dir)
        y = (y + step) % L

    assert y * W + x == dst_id
    path.append(dst_id * 6 + Direction.EJ)
    return path


def xy_route_nodes(topology: MeshTopology, src: Coord, dst: Coord) -> list[Coord]:
    """Node sequence visited by the XY route (inclusive of endpoints)."""
    W, L, wrap = topology.width, topology.length, topology.wrap
    nodes: list[Coord] = [src]
    x, y = src.x, src.y
    hops, step = _dimension_steps(src.x, dst.x, W, wrap)
    for _ in range(hops):
        x = (x + step) % W
        nodes.append(Coord(x, y))
    hops, step = _dimension_steps(src.y, dst.y, L, wrap)
    for _ in range(hops):
        y = (y + step) % L
        nodes.append(Coord(x, y))
    return nodes


def route_hops(src: Coord, dst: Coord) -> int:
    """Link-hop count of the mesh XY route (the Manhattan distance)."""
    return abs(src.x - dst.x) + abs(src.y - dst.y)
