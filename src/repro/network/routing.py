"""XY dimension-ordered routing.

Wormhole-switched meshes use deterministic XY routing: a packet first
travels along the x dimension to the destination column, then along y.
Channels are therefore acquired in a fixed total order (x-channels before
y-channels for any single packet), which makes the mesh deadlock-free --
the property that justifies the hold-and-wait wormhole protocol.

On a torus (``topology.wrap``) each dimension independently takes the
shorter way around (ties break towards the positive direction).  Note
that hold-and-wait wormhole switching on a torus needs virtual channels
to stay deadlock-free; the reservation-based engines used here do not
hold-and-wait, and the single-flit-buffer engine refuses torus
topologies (see :mod:`repro.network.wormhole`).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.geometry import Coord
from repro.network.topology import Direction, MeshTopology


def _dimension_steps(src: int, dst: int, size: int, wrap: bool) -> tuple[int, int]:
    """(number of hops, signed direction) along one dimension."""
    if dst == src:
        return 0, 1
    forward = (dst - src) % size
    backward = (src - dst) % size
    if not wrap:
        return (dst - src, 1) if dst > src else (src - dst, -1)
    if forward <= backward:
        return forward, 1
    return backward, -1


def xy_route(topology: MeshTopology, src: Coord, dst: Coord) -> list[int]:
    """Channel index path from ``src`` to ``dst``: injection, links, ejection."""
    if src == dst:
        raise ValueError("no route from a node to itself")
    W, L, wrap = topology.width, topology.length, topology.wrap
    src_id = src.y * W + src.x
    dst_id = dst.y * W + dst.x
    path: list[int] = [src_id * 6 + Direction.INJ]

    x, y = src.x, src.y
    hops, step = _dimension_steps(src.x, dst.x, W, wrap)
    channel_dir = Direction.EAST if step > 0 else Direction.WEST
    for _ in range(hops):
        path.append((y * W + x) * 6 + channel_dir)
        x = (x + step) % W
    hops, step = _dimension_steps(src.y, dst.y, L, wrap)
    channel_dir = Direction.NORTH if step > 0 else Direction.SOUTH
    for _ in range(hops):
        path.append((y * W + x) * 6 + channel_dir)
        y = (y + step) % L

    assert y * W + x == dst_id
    path.append(dst_id * 6 + Direction.EJ)
    return path


def xy_route_nodes(topology: MeshTopology, src: Coord, dst: Coord) -> list[Coord]:
    """Node sequence visited by the XY route (inclusive of endpoints)."""
    W, L, wrap = topology.width, topology.length, topology.wrap
    nodes: list[Coord] = [src]
    x, y = src.x, src.y
    hops, step = _dimension_steps(src.x, dst.x, W, wrap)
    for _ in range(hops):
        x = (x + step) % W
        nodes.append(Coord(x, y))
    hops, step = _dimension_steps(src.y, dst.y, L, wrap)
    for _ in range(hops):
        y = (y + step) % L
        nodes.append(Coord(x, y))
    return nodes


def route_hops(src: Coord, dst: Coord) -> int:
    """Link-hop count of the mesh XY route (the Manhattan distance)."""
    return abs(src.x - dst.x) + abs(src.y - dst.y)


def _dimension_steps_array(
    src: np.ndarray, dst: np.ndarray, size: int, wrap: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`_dimension_steps`: (hop counts, signed directions)."""
    if not wrap:
        delta = dst - src
        return np.abs(delta), np.where(delta >= 0, 1, -1)
    forward = (dst - src) % size
    backward = (src - dst) % size
    go_forward = forward <= backward
    return (
        np.where(go_forward, forward, backward),
        np.where(go_forward, 1, -1),
    )


def xy_route_arrays(
    topology: MeshTopology, src_ids: np.ndarray, dst_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """XY channel paths of many packets as flat index arrays.

    For packets ``p`` with node ids ``src_ids[p] -> dst_ids[p]`` (no
    self-sends), returns ``(chan, off)`` where packet ``p``'s path --
    injection channel, link channels in XY order, ejection channel --
    occupies ``chan[off[p]:off[p + 1]]``.  Pure array arithmetic: no
    per-packet Python work, so whole traffic rounds are routed at once.
    The hop sequence is identical to :func:`xy_route` (asserted by the
    unit tests), including the torus shorter-way rule.
    """
    w_dim, l_dim, wrap = topology.width, topology.length, topology.wrap
    src_ids = np.asarray(src_ids, dtype=np.int64)
    dst_ids = np.asarray(dst_ids, dtype=np.int64)
    sx = src_ids % w_dim
    sy = src_ids // w_dim
    tx = dst_ids % w_dim
    ty = dst_ids // w_dim
    cnt_x, step_x = _dimension_steps_array(sx, tx, w_dim, wrap)
    cnt_y, step_y = _dimension_steps_array(sy, ty, l_dim, wrap)

    m = cnt_x + cnt_y + 2  # +2: injection and ejection channels
    off = np.zeros(len(src_ids) + 1, dtype=np.int64)
    np.cumsum(m, out=off[1:])
    total = int(off[-1])
    pkt = np.repeat(np.arange(len(src_ids)), m)
    firsts = off[:-1]
    k = np.arange(total) - firsts[pkt]  # hop index within the path

    # node under hop k: walk x first (hops 1..cnt_x), then y
    cx = cnt_x[pkt]
    xs = sx[pkt] + step_x[pkt] * np.clip(k - 1, 0, cx)
    ys = sy[pkt] + step_y[pkt] * np.clip(k - 1 - cx, 0, cnt_y[pkt])
    if wrap:
        xs %= w_dim
        ys %= l_dim
    direction = np.where(
        k <= cx,
        np.where(step_x > 0, Direction.EAST, Direction.WEST)[pkt],
        np.where(step_y > 0, Direction.NORTH, Direction.SOUTH)[pkt],
    )
    direction[firsts] = Direction.INJ
    direction[off[1:] - 1] = Direction.EJ
    chan = (ys * w_dim + xs) * 6 + direction
    return chan.astype(np.int32, copy=False), off
