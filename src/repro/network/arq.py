"""ARQ retransmission protocols for lossy channels.

The channel layer (:mod:`repro.network.channel`) drops or corrupts
packet attempts; the ARQ protocol decides what to *resend* and when.
Three classic link-layer protocols are provided:

* ``stop-and-wait`` -- one outstanding retransmission per flow; each
  resend waits a full acknowledgement timeout before the next, so
  recovery serialises and throughput collapses fastest as loss grows.
* ``go-back-n`` -- a failed sequence number triggers a resend of the
  whole in-flight window from that point; the receiver discards
  out-of-order arrivals (no reorder buffer), so the duplicates are the
  price of keeping the receiver trivial.
* ``selective-repeat`` -- only the failed sequence numbers are resent;
  the receiver buffers out-of-order arrivals and releases them in
  order.

The protocols govern **retransmissions only**: original packets follow
the application's round schedule untouched (the paper's all-to-all
exchange).  On a perfect, delay-free channel no protocol ever acts, so
all three produce identical delivery schedules there
(``tests/test_arq_properties.py``).  Channel *delays* alone can still
reorder deliveries, in which case go-back-n's discard rule kicks in
while stop-and-wait and selective-repeat remain schedule-identical.

State is tracked per *flow*: one flow per source processor within a job
launch, sequence numbers are the round indices.  :class:`FlowArq` is a
pure state machine -- it owns no clock and no transport -- so the same
logic drives both the synchronous mini-event-loop resolver
(:func:`repro.network.channel.resolve_launch`) and the event-driven
launch path, and is property-testable in isolation.
"""

from __future__ import annotations

#: registered ARQ protocols, the channel layer's strategy column
ARQ_PROTOCOLS = ("stop-and-wait", "go-back-n", "selective-repeat")

#: sliding-window span of go-back-n resends and the nominal
#: selective-repeat window (stop-and-wait is window 1 by definition)
DEFAULT_WINDOW = 8

#: hard cap on transmission attempts per logical packet -- statistically
#: unreachable for any loss rate < 1, so hitting it means a protocol bug
MAX_ATTEMPTS = 10_000

#: retransmission timeouts double per attempt up to ``timeout * 2**CAP``
#: (exponential backoff): a fixed timeout below the congested RTT would
#: declare in-flight packets lost forever and melt the fabric with
#: duplicates
BACKOFF_CAP = 10


class FlowArq:
    """Sender + receiver ARQ state for one flow (one source in a launch).

    The driver feeds it transport events and executes the actions it
    returns:

    * :meth:`should_send` -- gate every (re)transmission attempt;
    * :meth:`on_arrival` -- a physically intact packet reached the
      receiver; returns ``True`` if it was *accepted* (delivered to the
      application), ``False`` if discarded (go-back-n out-of-order) or a
      duplicate;
    * :meth:`on_failure` -- a loss/corruption/discard was detected at
      ``t_detect``; returns ``(send_time, seq)`` retransmissions to
      schedule.

    ``accepted`` maps sequence number to acceptance time once delivered.
    """

    __slots__ = (
        "protocol",
        "total",
        "timeout",
        "spacing",
        "window",
        "accepted",
        "expected",
        "sent",
        "pending",
        "busy_until",
        "attempts",
        "last_wave",
        "waves_since_progress",
        "progress_mark",
    )

    def __init__(
        self,
        protocol: str,
        total: int,
        timeout: float,
        spacing: float,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        if protocol not in ARQ_PROTOCOLS:
            raise ValueError(
                f"unknown ARQ protocol {protocol!r}; choose from {ARQ_PROTOCOLS}"
            )
        self.protocol = protocol
        self.total = total  #: sequence numbers 0..total-1
        self.timeout = timeout  #: loss detection / ack-wait delay
        self.spacing = spacing  #: injection spacing of streamed resends
        self.window = 1 if protocol == "stop-and-wait" else window
        self.accepted: dict[int, float] = {}
        self.expected = 0  #: go-back-n receiver cursor
        self.sent: set[int] = set()  #: seqs transmitted at least once
        self.pending: set[int] = set()  #: resends scheduled but not sent
        self.busy_until = 0.0  #: stop-and-wait ack-pacing horizon
        self.attempts: dict[int, int] = {}
        # go-back-n single flow timer: one resend wave per timeout epoch,
        # backing off while the cumulative ack makes no progress
        self.last_wave = float("-inf")
        self.waves_since_progress = 0
        self.progress_mark = 0

    # ------------------------------------------------------------ sender
    def should_send(self, seq: int) -> bool:
        """Gate a transmission attempt; count it and enforce the cap.

        Returns ``False`` when the packet was accepted in the meantime
        (the cumulative/selective ack already reached the sender), which
        suppresses the stale retransmission.
        """
        self.pending.discard(seq)
        if seq in self.accepted:
            return False
        n = self.attempts.get(seq, 0) + 1
        if n > MAX_ATTEMPTS:
            raise RuntimeError(
                f"ARQ {self.protocol}: packet seq {seq} exceeded "
                f"{MAX_ATTEMPTS} attempts (loss rate too close to 1?)"
            )
        self.attempts[seq] = n
        self.sent.add(seq)
        return True

    def detect_delay(self, seq: int) -> float:
        """Loss-detection delay of ``seq``'s latest attempt (with backoff)."""
        n = self.attempts.get(seq, 1)
        return self.timeout * (2.0 ** min(n - 1, BACKOFF_CAP))

    def on_failure(self, seq: int, t_detect: float) -> list[tuple[float, int]]:
        """A failed attempt of ``seq`` was detected; plan retransmissions."""
        if seq in self.accepted or seq in self.pending:
            return []  # recovered or already queued by an earlier window
        if self.protocol == "stop-and-wait":
            t = t_detect if t_detect >= self.busy_until else self.busy_until
            self.busy_until = t + self.timeout
            self.pending.add(seq)
            return [(t, seq)]
        if self.protocol == "go-back-n":
            # single-timer semantics: whichever attempt timed out, the
            # sender's cumulative ack points at the receiver's cursor, so
            # the window is resent from there -- at most one wave per
            # timer epoch (out-of-order discards all trip timeouts, but a
            # real sender has one timer per flow, not one per packet),
            # backing off while the cumulative ack makes no progress
            if self.expected > self.progress_mark:
                self.waves_since_progress = 0
            interval = self.timeout * (
                2.0 ** min(self.waves_since_progress, BACKOFF_CAP)
            )
            if t_detect < self.last_wave + interval:
                return []  # this loss epoch already triggered its wave
            base = self.expected
            out: list[tuple[float, int]] = []
            stop = base + self.window
            if stop > self.total:
                stop = self.total
            for s in range(base, stop):
                # resend only packets actually in flight (sent, unacked)
                if s in self.accepted or s in self.pending or s not in self.sent:
                    continue
                self.pending.add(s)
                out.append((t_detect + len(out) * self.spacing, s))
            if out:
                self.last_wave = t_detect
                self.progress_mark = self.expected
                self.waves_since_progress += 1
            return out
        # selective-repeat: resend exactly the failed packet
        self.pending.add(seq)
        return [(t_detect, seq)]

    # ---------------------------------------------------------- receiver
    def on_arrival(self, seq: int, t_arrive: float) -> bool:
        """A physically intact attempt of ``seq`` arrived; accept or not."""
        if seq in self.accepted:
            return False  # duplicate -- selective/cumulative ack absorbs it
        if self.protocol == "go-back-n":
            if seq != self.expected:
                return False  # out of order: no reorder buffer, discard
            self.expected += 1
        self.accepted[seq] = t_arrive
        return True

    @property
    def done(self) -> bool:
        """Every sequence number accepted by the receiver."""
        return len(self.accepted) == self.total
