"""Network transport-backend interface and registry.

The wormhole timing model (DESIGN.md 2.1) is implemented by several
interchangeable *backends* that share one arithmetic core -- the channel
table, the ``PathTiming`` accounting and the FIFO reservation rule --
but differ in how they execute it:

* ``fast``    -- whole-path reservation, one Python loop per packet
  (the reference engine; see :mod:`repro.network.wormhole`);
* ``batch``   -- round-level vectorised reservation, metric-identical to
  ``fast`` (see :mod:`repro.network.batch`);
* ``causal``  -- one event per hop, exact FIFO-by-arrival arbitration;
* ``sfb``     -- single-flit-buffer wormhole with chained channel holding.

Backends come in two families.  *Synchronous* backends
(``synchronous = True``) resolve a whole launch of traffic rounds at
injection time through :meth:`NetworkBackend.inject_rounds` and return
aggregate :class:`RoundStats`; *event-driven* backends deliver each
packet through the engine via :meth:`NetworkBackend.send` callbacks.
:class:`~repro.network.traffic.AllToAllTraffic` picks the path from the
``synchronous`` flag, so new backends plug in without touching the
traffic generator.

Register implementations with :func:`register_backend`; construct them
with :func:`make_backend` (the ``WormholeNetwork`` factory in
:mod:`repro.network.wormhole` is a thin alias kept for compatibility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Type

from repro.core.engine import Engine
from repro.mesh.geometry import Coord
from repro.network.routing import xy_route
from repro.network.topology import MeshTopology


@dataclass(frozen=True, slots=True)
class PathTiming:
    """Outcome of transmitting one packet."""

    t_inject: float  #: service start on the injection channel
    t_deliver: float  #: last flit arrives at the destination processor
    blocking: float  #: contention stall total (injection wait excluded)

    @property
    def latency(self) -> float:
        """Paper's packet latency: injection to delivery."""
        return self.t_deliver - self.t_inject


@dataclass(frozen=True, slots=True)
class RoundStats:
    """Aggregate outcome of one job's traffic rounds (bulk ingestion)."""

    packets: int  #: packets delivered
    latency_sum: float  #: sum of per-packet latencies
    blocking_sum: float  #: sum of per-packet blocking times
    last_delivery: float  #: completion time of the final packet


class NetworkBackend:
    """Shared state and arithmetic of every transport backend.

    Holds the channel reservation table (``free_at``), the static XY
    route cache and the timing constants derived from ``t_s``/``p_len``:
    ``hop_cost`` (header advance per channel), ``occupancy`` (channel
    hold per packet) and ``drain`` (body drain after header ejection).
    """

    #: registry name; set by subclasses
    mode: str = "abstract"
    #: True -> ``inject_rounds`` resolves a launch immediately;
    #: False -> packets travel event-driven through ``send``
    synchronous: bool = True

    def __init__(
        self,
        topology: MeshTopology,
        engine: Engine,
        t_s: float = 3.0,
        p_len: int = 8,
    ) -> None:
        self.topology = topology
        self.engine = engine
        self.t_s = float(t_s)
        self.p_len = int(p_len)
        self.hop_cost = self.t_s + 1.0  #: header advance per channel
        self.occupancy = float(p_len)  #: channel hold per packet
        self.drain = float(p_len - 1)  #: body drain after header ejection
        self.free_at: list[float] = [0.0] * topology.channel_count
        self.packets_sent = 0
        #: XY routes are static; cache them keyed by (src, dst) node pair
        self._route_cache: dict[int, list[int]] = {}

    # ------------------------------------------------------------- routing
    def _route(self, src: Coord, dst: Coord) -> list[int]:
        key = (src.y * self.topology.width + src.x) * self.topology.node_count + (
            dst.y * self.topology.width + dst.x
        )
        path = self._route_cache.get(key)
        if path is None:
            path = xy_route(self.topology, src, dst)
            self._route_cache[key] = path
        return path

    # ------------------------------------------------------------ traffic
    def transmit(self, src: Coord, dst: Coord, now: float) -> PathTiming:
        """Synchronously transmit one packet (synchronous backends only)."""
        raise NotImplementedError(
            f"{self.mode!r} backend does not support synchronous transmit"
        )

    def send(
        self,
        src: Coord,
        dst: Coord,
        now: float,
        on_delivered: Callable[[PathTiming], None],
    ) -> None:
        """Transmit one packet event-driven (event-driven backends only)."""
        raise NotImplementedError(
            f"{self.mode!r} backend does not support event-driven send"
        )

    def inject_rounds(
        self,
        coords: Sequence[Coord],
        offsets: Sequence[int],
        now: float,
        round_gap: float,
    ) -> RoundStats:
        """Inject one job's full traffic: round ``r`` (the cyclic
        permutation ``i -> (i + offsets[r]) mod n`` over ``coords``) is
        injected at ``now + r * round_gap``, every processor sending one
        packet per round.  Returns the aggregate packet statistics
        (synchronous backends only)."""
        raise NotImplementedError(
            f"{self.mode!r} backend does not support round injection"
        )

    # ------------------------------------------------------------- control
    def reset(self) -> None:
        """Clear all channel reservations (between replications)."""
        self.free_at = [0.0] * self.topology.channel_count
        self.packets_sent = 0

    def base_latency(self, hops: int) -> float:
        """Uncontended latency of an ``hops``-link route."""
        return (hops + 2) * self.hop_cost + self.drain


#: mode name -> backend class
BACKENDS: dict[str, Type[NetworkBackend]] = {}


def register_backend(cls: Type[NetworkBackend]) -> Type[NetworkBackend]:
    """Class decorator: add a backend implementation to the registry."""
    if cls.mode in BACKENDS:
        raise ValueError(f"duplicate network backend {cls.mode!r}")
    BACKENDS[cls.mode] = cls
    return cls


def backend_modes() -> tuple[str, ...]:
    """Registered backend names, reference modes first."""
    return tuple(BACKENDS)


def make_backend(
    mode: str,
    topology: MeshTopology,
    engine: Engine,
    t_s: float = 3.0,
    p_len: int = 8,
) -> NetworkBackend:
    """Instantiate the backend registered under ``mode``."""
    try:
        cls = BACKENDS[mode]
    except KeyError:
        raise ValueError(
            f"unknown network mode {mode!r}; choose from {tuple(BACKENDS)}"
        ) from None
    return cls(topology, engine, t_s=t_s, p_len=p_len)
