"""Optional compiled kernel for the batch backend's reservation loop.

The channel-reservation recurrence is a strict sequential dependency
chain (every packet's reservation depends on the channel state left by
the previous one), which caps how much a vectorised implementation can
win at typical job sizes.  When a C compiler is available, this module
builds a ~30-line kernel that runs the exact same float64 recurrence as
:meth:`repro.network.wormhole.FastBackend.transmit` over the flat route
arrays prepared by :func:`repro.network.routing.xy_route_arrays`.

The kernel is strictly optional: :mod:`repro.network.batch` falls back
to its NumPy/pure-Python solvers (same results) when compilation is
impossible.  Because the C code performs the identical IEEE-754
operations in the identical order -- compiled with ``-ffp-contract=off``
so no multiply-adds are fused -- its outputs are bit-identical to the
reference engine.

**GIL-release contract.**  The kernel is loaded with :class:`ctypes.CDLL`
(never ``PyDLL``), so every foreign call releases the GIL for its whole
duration, and the C code touches nothing but the flat arrays passed as
arguments -- no Python state, no globals, no allocation.  Calls made
from different threads on *disjoint* arrays therefore run genuinely in
parallel; the thread-based campaign executor
(:mod:`repro.experiments.campaign`) relies on this.  The one shared
mutable step -- the lazy first-use compile and the ``_kernel`` memo --
is serialised by :data:`KERNEL_LOCK`, so N threads racing through
:func:`load_kernel` build and load exactly once.

Set ``REPRO_NATIVE=0`` to disable compilation and dispatch entirely.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

#: serialises lazy kernel builds (shared with the SoA lane driver and
#: the workload draw helper, so concurrent first use from a thread pool
#: compiles one translation unit at a time, each exactly once)
KERNEL_LOCK = threading.Lock()

_SOURCE = r"""
#include <stdint.h>

/* XY wormhole whole-path reservation, one packet at a time in exactly
 * the order and arithmetic of the Python reference loop
 * (repro.network.wormhole.FastBackend.transmit).
 *
 * The XY walk mirrors repro.network.routing: x first then y, each
 * dimension taking the shorter way around on a torus with ties broken
 * towards the positive direction.  Channel indices are node * 6 + dir
 * with dir in {INJ=0, EJ=1, EAST=2, WEST=3, NORTH=4, SOUTH=5}.
 */

static int64_t dim_step(int64_t src, int64_t dst, int64_t size, int wrap,
                        int64_t *count)
{
    if (dst == src) { *count = 0; return 1; }
    if (!wrap) {
        if (dst > src) { *count = dst - src; return 1; }
        *count = src - dst;
        return -1;
    }
    int64_t forward = (dst - src) % size;
    if (forward < 0) forward += size;
    int64_t backward = size - forward;
    if (forward <= backward) { *count = forward; return 1; }
    *count = backward;
    return -1;
}

/* Reserve one channel: FIFO wait (added to *blk, the contention
 * accumulator) exactly as the reference loop accrues it, stall by
 * stall, so blocking sums stay bit-identical for any float config. */
static double reserve(double *free_at, int64_t c, double t, double occ,
                      double *blk)
{
    const double f = free_at[c];
    if (f > t) {
        *blk += f - t;
        t = f;
    }
    free_at[c] = t + occ;
    return t;
}

/* One packet: whole-path reservation src -> dst, injected at t0.
 * Returns the ejection-channel service start; *t_inj_out gets the
 * injection-channel service start, *blk_out the per-hop blocking sum. */
static double transmit(const double t0, const int64_t src, const int64_t dst,
                       double *free_at, const double hop, const double occ,
                       const int64_t width, const int64_t length,
                       const int32_t wrap, double *t_inj_out,
                       double *blk_out)
{
    const int64_t sx = src % width, sy = src / width;
    const int64_t dx = dst % width, dy = dst / width;
    int64_t cx, cy;
    const int64_t step_x = dim_step(sx, dx, width, wrap, &cx);
    const int64_t step_y = dim_step(sy, dy, length, wrap, &cy);
    /* injection: waiting here is source queueing, not blocking */
    double f = free_at[src * 6];
    double t = t0 >= f ? t0 : f;
    free_at[src * 6] = t + occ;
    *t_inj_out = t;
    t += hop;
    double blocking = 0.0;
    const int64_t chan_dx = step_x > 0 ? 2 : 3;  /* EAST : WEST */
    int64_t x = sx;
    for (int64_t i = 0; i < cx; i++) {
        t = reserve(free_at, (sy * width + x) * 6 + chan_dx, t, occ,
                    &blocking) + hop;
        x += step_x;
        if (wrap) x = (x + width) % width;
    }
    const int64_t chan_dy = step_y > 0 ? 4 : 5;  /* NORTH : SOUTH */
    int64_t y = sy;
    for (int64_t i = 0; i < cy; i++) {
        t = reserve(free_at, (y * width + dx) * 6 + chan_dy, t, occ,
                    &blocking) + hop;
        y += step_y;
        if (wrap) y = (y + length) % length;
    }
    const double t_ej = reserve(free_at, dst * 6 + 1, t, occ, &blocking);
    *blk_out = blocking;
    return t_ej;
}

/* A whole launch: round r is the cyclic permutation i -> (i +
 * offsets[r]) mod n over the node ids, injected at now + r * gap, in
 * deterministic packet order.  Aggregates the per-packet statistics
 * exactly as the reference engine does:
 *
 * out[0] += latency  (= t_eject + hop + drain - t_inject)
 * out[1] += blocking (per-hop stall sum, injection wait excluded)
 * out[2]  = completion time of the last packet (init by caller to now)
 */
void solve_rounds(const int64_t *ids, int64_t n, const int64_t *offsets,
                  int64_t rounds, double now, double gap, double *free_at,
                  double hop, double occ, double drain,
                  int64_t width, int64_t length, int32_t wrap, double *out)
{
    for (int64_t r = 0; r < rounds; r++) {
        const double t_round = now + (double)r * gap;
        const int64_t offset = offsets[r];
        for (int64_t i = 0; i < n; i++) {
            double t_inj, blocking;
            const double t_ej = transmit(t_round, ids[i],
                                         ids[(i + offset) % n], free_at,
                                         hop, occ, width, length, wrap,
                                         &t_inj, &blocking);
            const double t_deliver = t_ej + hop + drain;
            out[0] += t_deliver - t_inj;
            out[1] += blocking;
            if (t_deliver > out[2])
                out[2] = t_deliver;
        }
    }
}
"""

_UNSET = object()
_kernel = _UNSET


def _compiler() -> str | None:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> Path | None:
    """Private, owner-verified directory for the compiled kernel.

    Prefers the XDG cache; falls back to a per-uid tmp directory.  The
    directory is created mode 0700 and rejected unless it is owned by
    the current user and group/world-unwritable -- a world-writable tmp
    path that someone else pre-created must never be trusted as a
    source of loadable code.
    """
    xdg = os.environ.get("XDG_CACHE_HOME")
    candidates = []
    if xdg:
        candidates.append(Path(xdg) / "repro-mesh")
    home = Path.home()
    if home != Path("/"):
        candidates.append(home / ".cache" / "repro-mesh")
    candidates.append(
        Path(tempfile.gettempdir()) / f"repro-mesh-{os.getuid()}"
    )
    for cache_dir in candidates:
        try:
            cache_dir.mkdir(parents=True, exist_ok=True, mode=0o700)
            info = os.stat(cache_dir)
        except OSError:
            continue
        if info.st_uid == os.getuid() and not (info.st_mode & 0o022):
            return cache_dir
    return None


def _build() -> ctypes.CDLL | None:
    cc = _compiler()
    if cc is None:
        return None
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    lib_path = cache_dir / f"reserve_{digest}.so"
    if lib_path.is_file() and os.stat(lib_path).st_uid != os.getuid():
        return None  # never load code we did not write
    if not lib_path.is_file():
        src = cache_dir / f"reserve_{digest}.c"
        src.write_text(_SOURCE)
        # unique temp output + atomic rename: concurrent workers may race
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        cmd = [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
               str(src), "-o", tmp]
        try:
            subprocess.run(
                cmd, check=True, capture_output=True, timeout=60
            )
            os.replace(tmp, lib_path)
        except (OSError, subprocess.SubprocessError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    lib.solve_rounds.restype = None
    lib.solve_rounds.argtypes = [
        ctypes.c_void_p, ctypes.c_int64, ctypes.c_void_p, ctypes.c_int64,
        ctypes.c_double, ctypes.c_double, ctypes.c_void_p,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int32, ctypes.c_void_p,
    ]
    return lib


def load_kernel() -> ctypes.CDLL | None:
    """The compiled kernel, or ``None`` when unavailable (memoised).

    Thread-safe: concurrent first calls serialise on
    :data:`KERNEL_LOCK` (double-checked), so the gcc invocation runs
    once and every caller gets the same handle.
    """
    global _kernel
    if _kernel is _UNSET:
        with KERNEL_LOCK:
            if _kernel is _UNSET:
                if os.environ.get("REPRO_NATIVE", "1") == "0":
                    _kernel = None
                else:
                    _kernel = _build()
    return _kernel


def reset_kernel_cache() -> None:
    """Forget the memoised kernel (tests toggling ``REPRO_NATIVE``)."""
    global _kernel
    _kernel = _UNSET
