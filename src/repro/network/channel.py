"""Lossy interconnect channels under the transport backends.

The paper's wormhole model assumes lossless links.  A
:class:`ChannelPolicy` makes every packet *attempt* unreliable: it may
be dropped in flight, corrupted (fails its CRC at the ejection channel),
or delivered late.  Policies are written in a small spec grammar --
``+``-joined terms, whitespace-insensitive::

    loss:P                  drop each attempt with probability P
    corrupt:P               corrupt each attempt with probability P
    delay:fixed:T           add T time units to every delivery
    delay:exp:MEAN          add Exp(MEAN)-distributed extra latency
    delay:uniform:LO:HI     add U(LO, HI)-distributed extra latency

e.g. ``"loss:0.05 + delay:exp:0.1"``.  Lost and corrupted attempts
behave identically here: the worm still *occupies its full path* (the
reservation is made before the fate is known), consuming bandwidth, but
is never accepted by the receiver -- so loss and corruption compose into
one failure probability ``1 - (1-loss)(1-corrupt)``.  Recovery is the
ARQ protocol's job (:mod:`repro.network.arq`); a policy with a positive
failure rate therefore requires ``SimConfig.arq`` to be set.

**RNG seeding contract.**  Channel fates and delays are drawn from a
dedicated generator, ``default_rng((CHANNEL_STREAM, seed))``, a pure
function of the run's lane seed -- *not* from the workload's
``default_rng(seed)`` stream.  Enabling a channel therefore never
perturbs arrival times or job shapes, the per-run draw sequence is
deterministic, and the same seed reproduces the same fates under the
serial, thread and process executors alike.

**Trivial policies.**  ``"loss:0"`` (and any policy with zero failure
probability and no delay) is *trivial*: the simulator skips the channel
machinery entirely, so it is bit-identical to running with no channel at
all, across every backend and engine.  Non-trivial policies break the
bit-exact cross-backend invariant by design; equivalence is then gated
statistically (``tests/statgate.py``).

Per-packet *latency* spans from the first attempt's injection to the
accepted attempt's arrival; *blocking* sums the contention stalls of
every attempt, including failed ones.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.config import TIME_GRID
from repro.network.arq import ARQ_PROTOCOLS, FlowArq
from repro.network.backend import PathTiming, RoundStats

#: sub-stream tag ("CHNL") keeping channel draws off the workload stream
CHANNEL_STREAM = 0x43484E4C

_DELAY_KINDS = ("fixed", "exp", "uniform")


@dataclass(frozen=True, slots=True)
class ChannelPolicy:
    """Per-link unreliability: drop/corrupt probabilities + extra delay."""

    loss: float = 0.0  #: per-attempt drop probability
    corrupt: float = 0.0  #: per-attempt corruption (CRC-failure) probability
    #: extra-delay distribution: ``()`` for none, ``("fixed", t)``,
    #: ``("exp", mean)`` or ``("uniform", lo, hi)``
    delay: tuple = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss probability must be in [0, 1): {self.loss}")
        if not 0.0 <= self.corrupt < 1.0:
            raise ValueError(
                f"corrupt probability must be in [0, 1): {self.corrupt}"
            )
        if self.delay:
            kind = self.delay[0]
            if kind == "fixed":
                if len(self.delay) != 2 or self.delay[1] < 0:
                    raise ValueError(f"delay:fixed needs one value >= 0: {self.delay}")
            elif kind == "exp":
                if len(self.delay) != 2 or self.delay[1] <= 0:
                    raise ValueError(f"delay:exp needs a positive mean: {self.delay}")
            elif kind == "uniform":
                if len(self.delay) != 3 or not 0 <= self.delay[1] <= self.delay[2]:
                    raise ValueError(
                        f"delay:uniform needs 0 <= lo <= hi: {self.delay}"
                    )
            else:
                raise ValueError(
                    f"unknown delay kind {kind!r}; choose from {_DELAY_KINDS}"
                )

    @property
    def failure_rate(self) -> float:
        """Combined per-attempt failure probability."""
        return 1.0 - (1.0 - self.loss) * (1.0 - self.corrupt)

    @property
    def trivial(self) -> bool:
        """True when the policy cannot affect any packet."""
        if self.failure_rate > 0.0:
            return False
        return not self.delay or (self.delay[0] == "fixed" and self.delay[1] == 0)

    def spec(self) -> str:
        """Canonical spec string (parse -> spec round-trips).

        Every trivial policy -- any spelling the simulator would skip --
        canonicalises to ``"loss:0"``, so trivial configs cannot alias
        into distinct cache keys.
        """
        if self.trivial:
            return "loss:0"
        parts = []
        if self.loss:
            parts.append(f"loss:{self.loss:g}")
        if self.corrupt:
            parts.append(f"corrupt:{self.corrupt:g}")
        if self.delay:
            parts.append(
                "delay:" + ":".join(
                    [self.delay[0]] + [f"{v:g}" for v in self.delay[1:]]
                )
            )
        return "+".join(parts) if parts else "loss:0"


def parse_channel(spec: str) -> ChannelPolicy:
    """Parse a channel spec string (see module docstring for the grammar)."""
    loss = corrupt = None
    delay: tuple | None = None
    for term in str(spec).split("+"):
        parts = [p.strip() for p in term.split(":")]
        head = parts[0]
        if head == "loss" or head == "corrupt":
            if len(parts) != 2:
                raise ValueError(f"channel term {term.strip()!r}: expected {head}:P")
            try:
                p = float(parts[1])
            except ValueError:
                raise ValueError(
                    f"channel term {term.strip()!r}: {parts[1]!r} is not a number"
                ) from None
            if (loss if head == "loss" else corrupt) is not None:
                raise ValueError(f"duplicate channel term {head!r} in {spec!r}")
            if head == "loss":
                loss = p
            else:
                corrupt = p
        elif head == "delay":
            if delay is not None:
                raise ValueError(f"duplicate channel term 'delay' in {spec!r}")
            if len(parts) < 3 or parts[1] not in _DELAY_KINDS:
                raise ValueError(
                    f"channel term {term.strip()!r}: expected "
                    f"delay:{{{'|'.join(_DELAY_KINDS)}}}:PARAMS"
                )
            try:
                args = tuple(float(p) for p in parts[2:])
            except ValueError:
                raise ValueError(
                    f"channel term {term.strip()!r}: non-numeric delay parameter"
                ) from None
            delay = (parts[1], *args)
        else:
            raise ValueError(
                f"unknown channel term {term.strip()!r} in {spec!r}; "
                f"expected loss:P, corrupt:P or delay:KIND:PARAMS"
            )
    return ChannelPolicy(
        loss=loss or 0.0, corrupt=corrupt or 0.0, delay=delay or ()
    )


def canonical_channel(spec: str) -> str:
    """Normalised form of a channel spec (stable cache-key component)."""
    return parse_channel(spec).spec()


class ChannelSampler:
    """Per-run channel RNG: packet fates and extra delays.

    Draw order is one fate draw per attempt (when the failure rate is
    positive) plus one delay draw per *successful* attempt (when a delay
    distribution is configured) -- a deterministic sequence given the
    run's event order.
    """

    __slots__ = ("policy", "rng", "_failure")

    def __init__(self, policy: ChannelPolicy, seed: int) -> None:
        self.policy = policy
        self.rng = np.random.default_rng((CHANNEL_STREAM, int(seed) % 2**63))
        self._failure = policy.failure_rate

    def fate(self) -> bool:
        """True when the attempt survives the channel intact."""
        if self._failure == 0.0:
            return True
        return self.rng.random() >= self._failure

    def delay(self) -> float:
        """Extra delivery latency of a surviving attempt (grid-quantised)."""
        delay = self.policy.delay
        if not delay:
            return 0.0
        kind = delay[0]
        if kind == "fixed":
            d = delay[1]
        elif kind == "exp":
            d = self.rng.exponential(delay[1])
        else:  # uniform
            d = self.rng.uniform(delay[1], delay[2])
        return round(d * TIME_GRID) / TIME_GRID


class ChannelModel:
    """A policy + ARQ protocol bound to one run's seed.

    Built by the simulator when ``config.channel`` is non-trivial; holds
    the per-run :class:`ChannelSampler` and the timing constants shared
    by every launch of the run.  The loss-detection timeout is two round
    gaps (one round out, one ack back); resend streams are spaced one
    packet-injection time (``p_len``) apart.
    """

    __slots__ = ("policy", "arq", "sampler", "timeout", "spacing")

    def __init__(
        self, policy: ChannelPolicy, arq: str, seed: int, p_len: int,
        round_gap: float,
    ) -> None:
        if policy.failure_rate > 0.0 and arq not in ARQ_PROTOCOLS:
            raise ValueError(
                f"channel {policy.spec()!r} can fail packets and needs an "
                f"ARQ protocol; choose from {ARQ_PROTOCOLS}"
            )
        self.policy = policy
        self.arq = arq if arq in ARQ_PROTOCOLS else "selective-repeat"
        self.sampler = ChannelSampler(policy, seed)
        self.timeout = 2.0 * round_gap
        self.spacing = float(p_len)

    def flow(self, total: int) -> FlowArq:
        """New per-source flow state machine for a launch of ``total`` rounds."""
        return FlowArq(self.arq, total, self.timeout, self.spacing)


@dataclass(slots=True)
class LaunchResult:
    """Resolved outcome of one channelled launch (synchronous path)."""

    stats: RoundStats
    #: per-flow acceptance times: ``accepts[i][seq]``
    accepts: list[dict[int, float]] = field(default_factory=list)
    #: total physical transmission attempts (originals + resends)
    attempts: int = 0


_SEND, _ARRIVE, _FAIL = 0, 1, 2


def resolve_launch(
    transmit: Callable[[object, object, float], PathTiming],
    model: ChannelModel,
    coords: Sequence,
    offsets: Sequence[int],
    now: float,
    round_gap: float,
) -> LaunchResult:
    """Resolve a whole channelled launch over a synchronous backend.

    Runs a small time-ordered event loop around per-packet ``transmit``
    calls: original sends follow the application's round schedule
    (round-major, source-minor -- the same FIFO order as the lossless
    ``inject_rounds`` path), failed attempts surface as sender timeouts,
    and the ARQ protocol's retransmissions re-enter the send queue until
    every flow's packets are accepted.
    """
    n = len(coords)
    total = len(offsets)
    flows = [model.flow(total) for _ in range(n)]
    first_inject: list[dict[int, float]] = [{} for _ in range(n)]
    sampler = model.sampler
    timeout = model.timeout
    blocking_sum = 0.0
    attempts = 0

    heap: list[tuple[float, int, int, int, int, float]] = []
    ctr = 0
    for k in range(total):
        t = now + k * round_gap
        for i in range(n):
            heap.append((t, ctr, _SEND, i, k, 0.0))
            ctr += 1
    heapq.heapify(heap)

    while heap:
        t, _, kind, i, k, aux = heapq.heappop(heap)
        flow = flows[i]
        if kind == _SEND:
            if not flow.should_send(k):
                continue
            attempts += 1
            timing = transmit(coords[i], coords[(i + offsets[k]) % n], t)
            fi = first_inject[i]
            if k not in fi:
                fi[k] = timing.t_inject
            blocking_sum += timing.blocking
            if sampler.fate():
                arrive = timing.t_deliver + sampler.delay()
                ctr += 1
                heapq.heappush(
                    heap, (arrive, ctr, _ARRIVE, i, k, timing.t_inject)
                )
            else:
                ctr += 1
                heapq.heappush(
                    heap,
                    (timing.t_inject + flow.detect_delay(k), ctr, _FAIL, i, k, 0.0),
                )
        elif kind == _ARRIVE:
            if flow.on_arrival(k, t) or k in flow.accepted:
                continue  # accepted now, or a duplicate of an earlier accept
            # go-back-n out-of-order discard: the sender finds out via its
            # own (cumulative-ack) timeout for this attempt
            td = aux + flow.detect_delay(k)
            ctr += 1
            heapq.heappush(heap, (td if td > t else t, ctr, _FAIL, i, k, 0.0))
        else:  # _FAIL
            for t_send, s in flow.on_failure(k, t):
                ctr += 1
                heapq.heappush(heap, (t_send, ctr, _SEND, i, s, 0.0))
            if k not in flow.accepted and k not in flow.pending:
                # still unrecovered but outside the current resend window
                # (go-back-n): the retransmission timer re-arms until the
                # window slides over it
                ctr += 1
                heapq.heappush(
                    heap, (t + flow.detect_delay(k), ctr, _FAIL, i, k, 0.0)
                )

    latency_sum = 0.0
    last = now
    for i, flow in enumerate(flows):
        assert flow.done, "channelled launch drained with undelivered packets"
        fi = first_inject[i]
        for k, ta in flow.accepted.items():
            latency_sum += ta - fi[k]
            if ta > last:
                last = ta
    stats = RoundStats(
        packets=n * total,
        latency_sum=latency_sum,
        blocking_sum=blocking_sum,
        last_delivery=last,
    )
    return LaunchResult(
        stats=stats, accepts=[f.accepted for f in flows], attempts=attempts
    )


class ChannelledEventLaunch:
    """Per-launch ARQ driver over an event-driven backend (causal/sfb).

    Mirrors :func:`resolve_launch`, but the simulation engine is the
    event loop: fates are drawn in each packet's delivery callback,
    failures schedule sender-timeout events, and retransmissions go back
    through ``network.send`` at their planned times.
    """

    __slots__ = (
        "network", "engine", "model", "job", "coords", "offsets",
        "on_complete", "flows", "first_inject", "blocking", "remaining",
        "priority",
    )

    def __init__(
        self, network, engine, model: ChannelModel, job, coords,
        offsets: Sequence[int], now: float, round_gap: float, on_complete,
        priority,
    ) -> None:
        n = len(coords)
        self.network = network
        self.engine = engine
        self.model = model
        self.job = job
        self.coords = coords
        self.offsets = list(offsets)
        self.on_complete = on_complete
        self.flows = [model.flow(len(offsets)) for _ in range(n)]
        self.first_inject: list[dict[int, float]] = [{} for _ in range(n)]
        self.blocking: list[dict[int, float]] = [{} for _ in range(n)]
        self.remaining = n * len(offsets)
        job.pending_packets = self.remaining
        self.priority = priority
        for k in range(len(offsets)):
            if k == 0:
                self._send_round(0)
            else:
                engine.schedule_at(
                    now + k * round_gap, self._send_round, k, priority=priority
                )

    def _send_round(self, k: int) -> None:
        for i in range(len(self.coords)):
            self._send(i, k)

    def _send(self, i: int, k: int) -> None:
        flow = self.flows[i]
        if not flow.should_send(k):
            return
        dst = self.coords[(i + self.offsets[k]) % len(self.coords)]
        self.network.send(
            self.coords[i],
            dst,
            self.engine.now,
            lambda timing, i=i, k=k: self._delivered(i, k, timing),
        )

    def _delivered(self, i: int, k: int, timing: PathTiming) -> None:
        fi = self.first_inject[i]
        if k not in fi:
            fi[k] = timing.t_inject
        blk = self.blocking[i]
        blk[k] = blk.get(k, 0.0) + timing.blocking
        sampler = self.model.sampler
        if sampler.fate():
            extra = sampler.delay()
            if extra > 0.0:
                self.engine.schedule_at(
                    timing.t_deliver + extra,
                    self._arrive, i, k, timing.t_inject,
                    priority=self.priority,
                )
            else:
                self._arrive(i, k, timing.t_inject)
        else:
            td = timing.t_inject + self.flows[i].detect_delay(k)
            now = self.engine.now
            self.engine.schedule_at(
                td if td > now else now,
                self._fail, i, k,
                priority=self.priority,
            )

    def _arrive(self, i: int, k: int, t_inject: float) -> None:
        flow = self.flows[i]
        now = self.engine.now
        if flow.on_arrival(k, now):
            self.job.record_packet(
                now - self.first_inject[i][k], self.blocking[i][k]
            )
            self.job.pending_packets -= 1
            self.remaining -= 1
            if self.remaining == 0:
                self.on_complete(self.job)
            return
        if k in flow.accepted:
            return  # duplicate
        td = t_inject + flow.detect_delay(k)
        if td > now:
            self.engine.schedule_at(td, self._fail, i, k, priority=self.priority)
        else:
            self._fail(i, k)

    def _fail(self, i: int, k: int) -> None:
        flow = self.flows[i]
        now = self.engine.now
        for t_send, s in flow.on_failure(k, now):
            self.engine.schedule_at(
                t_send, self._send, i, s, priority=self.priority
            )
        if k not in flow.accepted and k not in flow.pending:
            # go-back-n: timer re-arms until the window covers this seq
            self.engine.schedule_at(
                now + flow.detect_delay(k), self._fail, i, k,
                priority=self.priority,
            )
