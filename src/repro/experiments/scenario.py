"""Declarative scenarios: JSON experiment descriptions, end to end.

A :class:`Scenario` bundles everything one experiment needs -- a
workload-pipeline spec (:mod:`repro.workload.transforms`), ``SimConfig``
overrides, an allocator/scheduler/load grid, a fidelity scale and an
optional trajectory-sampling interval -- into one JSON-serializable
object, in the spirit of AccaSim's declarative workload descriptions:
the *file* is the experiment.

Scenarios compile to the ordinary campaign machinery: each grid cell
becomes a :class:`~repro.experiments.campaign.PointSpec` whose
``workload`` field carries the canonical pipeline string, so the sharded
result store, cross-figure dedup and ``-j N`` parallel execution all
work unchanged, and an identity scenario (paper config, untransformed
workload) hits exactly the same cache keys as the figure campaigns.

When ``sample_interval`` is set, one extra replication per point runs
with a :class:`~repro.core.hooks.TrajectoryObserver` attached and the
queue-length/utilization/throughput series are returned alongside the
aggregate metrics (trajectories are passive and re-use the first
replication's seed, so they describe exactly the run that produced the
metrics).

CLI: ``python -m repro scenario <file.json> [-j N] [--out out.json]``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from concurrent import futures
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.trajectory import SaturationScan

from repro.alloc import make_allocator
from repro.core.config import NETWORK_MODES, PAPER_CONFIG, SimConfig
from repro.core.hooks import TrajectoryObserver
from repro.experiments.campaign import (
    METRICS,
    SCALES,
    _set_worker_trace,
    _trace_marker,
    Campaign,
    PointResult,
    PointSpec,
    Scale,
    build_simulator,
    trace_fingerprint,
)
from repro.experiments.store import ResultCache
from repro.sched import make_scheduler
from repro.workload.trace import TraceJob
from repro.workload.transforms import canonical_workload
from repro.experiments.report import summarize_point

#: keys accepted by a scenario dict/JSON document
_SCENARIO_KEYS = frozenset({
    "name", "workload", "loads", "allocs", "scheds", "scale", "config",
    "network_mode", "sample_interval", "channels", "arqs",
})


@dataclass
class Scenario:
    """One declarative experiment: pipeline x grid x config overrides."""

    name: str
    #: workload-pipeline spec (string grammar or dict AST); canonicalised
    workload: str | dict
    loads: tuple[float, ...]
    allocs: tuple[str, ...] = ("GABL",)
    scheds: tuple[str, ...] = ("FCFS",)
    scale: str = "smoke"
    #: ``SimConfig`` field overrides applied on top of ``PAPER_CONFIG``
    config: dict = field(default_factory=dict)
    network_mode: str | None = None
    #: trajectory sample interval in sim-time units; ``None`` disables
    sample_interval: float | None = None
    #: lossy-channel grid axis: channel policy specs applied per point
    #: (``None`` entries keep the config override's own ``channel``)
    channels: tuple[str | None, ...] = (None,)
    #: ARQ grid axis crossed with :attr:`channels` (``None`` entries keep
    #: the config override's own ``arq``)
    arqs: tuple[str | None, ...] = (None,)

    def __post_init__(self) -> None:
        # every field is validated eagerly -- and with ValueError -- so a
        # bad scenario file fails at load time with exit code 2, never
        # with a traceback from deep inside a (possibly remote) worker
        if not self.name:
            raise ValueError("scenario needs a non-empty name")
        self.workload = canonical_workload(self.workload)
        self.loads = tuple(float(x) for x in self.loads)
        if not self.loads:
            raise ValueError("scenario needs at least one load")
        self.allocs = tuple(self.allocs)
        self.scheds = tuple(self.scheds)
        if not self.allocs or not self.scheds:
            raise ValueError("scenario needs at least one allocator and scheduler")
        for alloc in self.allocs:
            try:
                make_allocator(alloc, 4, 4)
            except KeyError as exc:
                raise ValueError(f"bad scenario allocator: {exc.args[0]}") from None
        for sched in self.scheds:
            try:
                make_scheduler(sched)
            except KeyError as exc:
                raise ValueError(f"bad scenario scheduler: {exc.args[0]}") from None
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; choose from {sorted(SCALES)}"
            )
        if self.network_mode is not None and self.network_mode not in NETWORK_MODES:
            raise ValueError(
                f"unknown network_mode {self.network_mode!r}; "
                f"choose from {NETWORK_MODES}"
            )
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {self.sample_interval}"
            )
        self.channels = tuple(self.channels)
        self.arqs = tuple(self.arqs)
        if not self.channels or not self.arqs:
            raise ValueError(
                "scenario channels/arqs need at least one entry (use [null] "
                "for the perfect-interconnect default)"
            )
        self.grid_configs()  # reject unknown/invalid config overrides now

    # -------------------------------------------------------- serialization
    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        """Build (and fully validate) a scenario from a plain mapping."""
        unknown = set(data) - _SCENARIO_KEYS
        if unknown:
            raise ValueError(
                f"unknown scenario key(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(_SCENARIO_KEYS)}"
            )
        missing = {"name", "workload", "loads"} - set(data)
        if missing:
            raise ValueError(f"scenario is missing required key(s) {sorted(missing)}")
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a scenario from its JSON document text."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "Scenario":
        """Load a scenario from a JSON file."""
        return cls.from_json(Path(path).read_text())

    def to_dict(self) -> dict:
        """The scenario as a JSON-serializable dict (round-trips)."""
        out = {
            "name": self.name,
            "workload": self.workload,
            "loads": list(self.loads),
            "allocs": list(self.allocs),
            "scheds": list(self.scheds),
            "scale": self.scale,
            "config": dict(self.config),
            "network_mode": self.network_mode,
        }
        if self.sample_interval is not None:
            out["sample_interval"] = self.sample_interval
        # only non-default axes are serialized, keeping the fingerprints
        # of every pre-channel scenario document unchanged
        if self.channels != (None,):
            out["channels"] = list(self.channels)
        if self.arqs != (None,):
            out["arqs"] = list(self.arqs)
        return out

    def fingerprint(self) -> str:
        """Content hash of the scenario (stable across key order)."""
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    # ------------------------------------------------------------- building
    def sim_config(self) -> SimConfig:
        """The run config: ``PAPER_CONFIG`` plus this scenario's overrides."""
        try:
            return PAPER_CONFIG.with_(**self.config)
        except TypeError as exc:
            fields = sorted(f.name for f in dataclasses.fields(SimConfig))
            raise ValueError(
                f"bad scenario config override ({exc}); "
                f"valid SimConfig fields: {fields}"
            ) from None

    def grid_configs(self) -> tuple[SimConfig, ...]:
        """One run config per ``channels`` x ``arqs`` grid cell.

        ``None`` axis entries keep the corresponding ``config`` override
        (so the default ``[null]`` axes collapse to :meth:`sim_config`).
        """
        base = self.sim_config()
        return tuple(
            base if ch is None and aq is None else base.with_(
                channel=base.channel if ch is None else ch,
                arq=base.arq if aq is None else aq,
            )
            for ch in self.channels for aq in self.arqs
        )

    def points(
        self, trace: Sequence[TraceJob] | None = None
    ) -> tuple[PointSpec, ...]:
        """The scenario's grid as campaign point specs.

        The canonical pipeline string rides in each spec's ``workload``
        field, so it -- together with the override-carrying config -- is
        folded into the structured cache key: two scenarios share a
        cache cell exactly when the cell's simulation inputs coincide.
        """
        sc = Scale.by_name(self.scale)
        source = trace_fingerprint(trace) if trace is not None else "sdsc"
        return tuple(
            PointSpec(
                workload=self.workload, load=load, alloc=alloc, sched=sched,
                scale=sc, config=cfg, network_mode=self.network_mode,
                trace_source=source,
            )
            for cfg in self.grid_configs()
            for load in self.loads
            for alloc in self.allocs
            for sched in self.scheds
        )

    def campaign(self, trace: Sequence[TraceJob] | None = None) -> Campaign:
        """The scenario's grid as a ready-to-run (deduplicated) campaign."""
        return Campaign(self.points(trace), trace=trace)

    # -------------------------------------------------------------- running
    def run(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        trace: Sequence[TraceJob] | None = None,
        progress: Callable[[str], None] | None = None,
        auto_saturation: bool = False,
        executor: str | None = None,
    ) -> "ScenarioResult":
        """Execute the scenario's campaign (cached, optionally parallel)
        and, when ``sample_interval`` is set, collect one trajectory per
        point.

        ``executor`` picks the campaign backend
        (:data:`~repro.experiments.campaign.EXECUTOR_KINDS`; ``None``
        auto-selects, see :meth:`Campaign.run`).  The choice never
        affects metrics or trajectories.

        Trajectories are time series, not scalar means, so they are NOT
        persisted in the result store: each ``run`` call re-simulates
        one replication per point to record them.  With ``jobs > 1``
        those runs fan out over a worker pool (threads under the
        ``thread`` executor, processes otherwise) alongside the
        campaign's own parallelism.

        With ``auto_saturation=True`` a saturation scan
        (:func:`repro.experiments.trajectory.scan_saturation`) first
        climbs a load ladder anchored at the scenario's highest load,
        using its first allocator/scheduler combination; the detected
        knee load is appended to the run grid (so the saturation point
        is actually simulated) and the scan is embedded in the report's
        ``saturation`` block.
        """
        saturation = None
        run_scenario = self
        if auto_saturation:
            from repro.experiments.trajectory import scan_saturation

            saturation = scan_saturation(
                self.workload,
                alloc=self.allocs[0],
                sched=self.scheds[0],
                scale=self.scale,
                config=self.sim_config(),
                network_mode=self.network_mode,
                trace=trace,
                cache=cache,
                jobs=jobs,
                start=max(self.loads),
            )
            if progress is not None:
                progress(saturation.format())
            knee = saturation.knee
            if knee is not None and knee not in self.loads:
                # run (and report) the extended grid: the saturation
                # point itself gets simulated, not just detected
                run_scenario = dataclasses.replace(
                    self, loads=self.loads + (knee,)
                )
        campaign = run_scenario.campaign(trace)
        results = campaign.run(
            jobs=jobs, cache=cache, progress=progress, executor_kind=executor
        )
        trajectories: dict[str, dict] = {}
        if run_scenario.sample_interval is not None:
            points = campaign.points
            labels = [spec.label() for spec in points]
            workers = min(jobs, len(points))
            if workers > 1 and executor != "serial":
                task_trace: Sequence[TraceJob] | str | None
                if executor == "thread":
                    # in-process: trajectories share the parent's trace
                    # and caches directly -- no initializer, no pickling
                    pool: futures.Executor = futures.ThreadPoolExecutor(
                        max_workers=workers
                    )
                    task_trace = trace
                else:
                    # ship an external trace once per worker via the
                    # pool initializer, keyed by its fingerprint (as
                    # campaign.run does) instead of pickling it into
                    # every task
                    has_trace = trace is not None
                    pool = futures.ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_set_worker_trace if has_trace else None,
                        initargs=(
                            (trace_fingerprint(trace), trace)
                            if has_trace else ()
                        ),
                    )
                    task_trace = _trace_marker(trace) if has_trace else None
                run_one = partial(
                    run_trajectory,
                    sample_interval=run_scenario.sample_interval,
                    trace=task_trace,
                )
                with pool:
                    series = list(pool.map(run_one, points))
            else:
                series = [
                    run_trajectory(
                        spec, run_scenario.sample_interval, trace=trace
                    )
                    for spec in points
                ]
            trajectories = dict(zip(labels, series))
        return ScenarioResult(
            scenario=run_scenario,
            points=campaign.points,
            metrics={spec: results[spec] for spec in campaign.points},
            trajectories=trajectories,
            saturation=saturation,
        )


def run_trajectory(
    spec: PointSpec,
    sample_interval: float,
    trace: Sequence[TraceJob] | str | None = None,
) -> dict:
    """Re-run one point's first replication with a trajectory observer.

    Uses the point's base seed (replication 0), so the time series
    describes the same run whose metrics entered the campaign mean.
    Module-level and pure (like the campaign work unit), hence usable
    from a process pool; a string ``trace`` is a fingerprint marker
    resolved against the worker's trace registry, exactly as in
    :func:`~repro.experiments.campaign._run_task`.
    """
    if isinstance(trace, str):  # "@trace:<fingerprint>" marker
        from repro.experiments import campaign as _campaign

        trace = _campaign._resolve_task_trace(trace)
    cfg = spec.run_config
    observer = TrajectoryObserver(sample_interval, processors=cfg.processors)
    build_simulator(spec, cfg.seed, trace=trace, observers=(observer,)).run()
    return observer.series()


@dataclass(frozen=True)
class ScenarioResult:
    """Everything a scenario run produced."""

    scenario: Scenario
    points: tuple[PointSpec, ...]
    #: per-point metric means + replication summaries
    metrics: Mapping[PointSpec, PointResult]
    #: spec label -> TrajectoryObserver.series() (empty when disabled)
    trajectories: Mapping[str, Mapping[str, list]]
    #: the auto-saturation scan, when one ran
    saturation: "SaturationScan | None" = None

    def to_dict(self) -> dict:
        """JSON-serializable report (scenario + per-point results).

        Schema 3: every point embeds its structured cache ``key``, the
        per-metric replication summaries (mean, variance, n) that
        ``repro diff`` aligns and tests on, and its trajectory series
        (the stable :meth:`TrajectoryObserver.series` export) that
        ``repro diff --trajectories`` and ``repro plot`` consume; an
        auto-saturation scan, when one ran, lands in the top-level
        ``saturation`` block.
        """
        from repro.experiments.diff import REPORT_SCHEMA, point_payload

        points = []
        for spec in self.points:
            entry = point_payload(spec, self.metrics[spec])
            entry["trajectory"] = dict(self.trajectories.get(spec.label(), {}))
            points.append(entry)
        out = {
            "schema": REPORT_SCHEMA,
            "kind": "scenario",
            "name": self.scenario.name,
            "scenario": self.scenario.to_dict(),
            "fingerprint": self.scenario.fingerprint(),
            "points": points,
            "metric_names": list(METRICS),
        }
        if self.saturation is not None:
            out["saturation"] = self.saturation.to_dict()
        return out

    def format(self) -> str:
        """Human-readable per-point summary table."""
        lines = [
            f"SCENARIO {self.scenario.name} "
            f"[{self.scenario.fingerprint()}] "
            f"workload={self.scenario.workload!r} scale={self.scenario.scale}"
        ]
        if self.saturation is not None:
            knee = self.saturation.knee
            lines.append(
                "  auto-saturation: "
                + (f"knee at load {knee:.6g}" if knee is not None
                   else "no knee confirmed (ladder exhausted)")
            )
        for spec in self.points:
            lines.append(f"  {spec.label()}: {summarize_point(self.metrics[spec])}")
            traj = self.trajectories.get(spec.label())
            if traj:
                lines.append(
                    f"    trajectory: {len(traj['times'])} samples @ "
                    f"{self.scenario.sample_interval:g}, "
                    f"peak queue {max(traj['queue_length'])}, "
                    f"peak util {max(traj['utilization']):.2f}"
                )
        return "\n".join(lines)
