"""Thin HTTP client for the ``repro serve`` campaign service.

``repro submit``, ``repro status`` and ``repro plot --follow`` are all
built on this module: a stdlib-only (:mod:`urllib.request`) JSON client
with a poll-until-done helper.  Every transport or protocol failure is
raised as :class:`ServiceError` with the service URL named, so the CLI
maps it to a clean exit-2 message instead of a traceback.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Mapping

from repro.experiments.serve import DEFAULT_PORT

#: terminal job states -- polling stops when one is reached
FINISHED_STATES = frozenset({"done", "failed"})


class ServiceError(RuntimeError):
    """The service is unreachable or replied with an error."""


class ServiceClient:
    """A JSON-over-HTTP client bound to one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 30.0,
    ) -> None:
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def _request(self, method: str, path: str, body: Mapping | None = None):
        url = f"{self.base}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error")
            except (ValueError, UnicodeDecodeError):
                detail = None
            raise ServiceError(
                f"{url}: HTTP {exc.code}" + (f" -- {detail}" if detail else "")
            ) from None
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise ServiceError(
                f"no campaign service reachable at {self.base} ({exc}); "
                "start one with 'repro serve'"
            ) from None

    # ------------------------------------------------------------ endpoints
    def status(self) -> dict:
        """``GET /status``: service identity plus every job summary."""
        return self._request("GET", "/status")

    def submit(self, doc: Mapping) -> dict:
        """``POST /jobs``: submit a scenario/sweep document; returns the
        job summary (idempotent for an identical document)."""
        return self._request("POST", "/jobs", body=doc)

    def job(self, jid: str) -> dict:
        """``GET /jobs/<id>``: one job's progress summary."""
        return self._request("GET", f"/jobs/{jid}")

    def report(self, jid: str) -> dict:
        """``GET /jobs/<id>/report``: schema-3 report of completed points."""
        return self._request("GET", f"/jobs/{jid}/report")

    def shutdown(self) -> dict:
        """``POST /shutdown``: stop the service loop."""
        return self._request("POST", "/shutdown")

    # -------------------------------------------------------------- helpers
    def wait(
        self,
        jid: str,
        interval: float = 1.0,
        timeout: float | None = None,
        progress: Callable[[dict], None] | None = None,
    ) -> dict:
        """Poll a job until it reaches a terminal state.

        ``progress`` (when given) receives each polled summary.

        Returns:
            The final job summary (``state`` is ``done`` or ``failed``).

        Raises:
            ServiceError: on transport failure or when ``timeout``
                seconds elapse first.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            summary = self.job(jid)
            if progress is not None:
                progress(summary)
            if summary.get("state") in FINISHED_STATES:
                return summary
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {jid} still {summary.get('state')!r} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(interval)


def format_job(summary: Mapping) -> str:
    """One human-readable progress line for a job summary."""
    state = summary.get("state", "?")
    done = summary.get("done", 0)
    total = summary.get("total", 0)
    line = (
        f"job {summary.get('id', '?')} [{summary.get('kind', '?')}] "
        f"{summary.get('name', '?')}: {state} {done}/{total}"
    )
    eta = summary.get("eta_seconds")
    if eta is not None:
        line += f" (eta {eta:.0f}s)"
    if summary.get("error"):
        line += f" -- {summary['error']}"
    return line
