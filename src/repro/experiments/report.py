"""Text rendering and shape checks for regenerated figures.

The reproduction is judged on *shape*: who wins, by roughly what factor,
where the curves sit.  ``format_figure`` prints the same rows/series the
paper plots; the ``ordering``/``ratio`` helpers let benchmarks assert the
paper's headline claims (C1-C6 in DESIGN.md) without pinning absolute
numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.runner import FigureResult


def format_figure(result: FigureResult, precision: int | None = None) -> str:
    """Render a figure's series as an aligned text table.

    Precision adapts to the magnitude (utilization fractions get three
    decimals, turnaround times one) unless given explicitly.
    """
    labels = list(result.series)
    if precision is None:
        peak = max((v for s in result.series.values() for v in s), default=0.0)
        precision = 3 if peak < 10 else 1
    width = max(len(lbl) for lbl in labels + ["load"]) + 2
    col = max(precision + 9, 12)
    lines = [result.spec.fig_id.upper() + ": " + result.spec.title]
    header = "load".ljust(width) + "".join(
        f"{load:>{col}.4g}" for load in result.loads
    )
    lines.append(header)
    lines.append("-" * len(header))
    for lbl in labels:
        row = lbl.ljust(width) + "".join(
            f"{v:>{col}.{precision}f}" for v in result.series[lbl]
        )
        lines.append(row)
    return "\n".join(lines)


def mean_of(series: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty series)."""
    return sum(series) / len(series) if series else 0.0


def series_leq(
    a: Sequence[float], b: Sequence[float], slack: float = 1.05
) -> bool:
    """Whether series ``a`` sits at or below ``b`` on average.

    ``slack`` tolerates small-sample noise: ``mean(a) <= slack * mean(b)``.
    """
    return mean_of(a) <= slack * mean_of(b)


def endpoint_ratio(a: Sequence[float], b: Sequence[float]) -> float:
    """``a[-1] / b[-1]`` -- the paper quotes ratios at the highest load."""
    if b[-1] == 0:
        return float("inf")
    return a[-1] / b[-1]


def check_ranking(
    result: FigureResult,
    ordered_labels: Sequence[str],
    slack: float = 1.05,
) -> list[str]:
    """Verify ``ordered_labels`` are best-to-worst in this figure.

    Returns a list of violation messages (empty when the ranking holds).
    """
    problems: list[str] = []
    for better, worse in zip(ordered_labels, ordered_labels[1:]):
        a = result.series[better]
        b = result.series[worse]
        if not series_leq(a, b, slack):
            problems.append(
                f"{result.spec.fig_id}: expected {better} <= {worse}, got "
                f"means {mean_of(a):.2f} vs {mean_of(b):.2f}"
            )
    return problems


def ascii_plot(
    result: FigureResult, height: int = 12, width_per_point: int = 10
) -> str:
    """Rough terminal plot of a figure (series as letters A.., rows high)."""
    labels = list(result.series)
    all_values = [v for s in result.series.values() for v in s]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    rows = [
        [" "] * (len(result.loads) * width_per_point) for _ in range(height)
    ]
    for li, lbl in enumerate(labels):
        marker = chr(ord("A") + li)
        for pi, v in enumerate(result.series[lbl]):
            r = height - 1 - int((v - lo) / (hi - lo) * (height - 1))
            c = pi * width_per_point + width_per_point // 2
            rows[r][c] = marker
    out = [f"{result.spec.ylabel}  [{lo:.1f} .. {hi:.1f}]"]
    out.extend("".join(r) for r in rows)
    out.append(
        "".join(f"{load:<{width_per_point}.4g}" for load in result.loads)
    )
    out.extend(
        f"  {chr(ord('A') + i)} = {lbl}" for i, lbl in enumerate(labels)
    )
    return "\n".join(out)


def summarize_point(point: Mapping[str, float]) -> str:
    """One-line summary of a run_point result."""
    return (
        f"turnaround={point['mean_turnaround']:.1f} "
        f"service={point['mean_service']:.1f} "
        f"latency={point['mean_packet_latency']:.1f} "
        f"blocking={point['mean_packet_blocking']:.1f} "
        f"util={point['utilization']:.3f}"
    )
