"""Long-running campaign service behind ``repro serve``.

The service turns the one-shot campaign runner into a local job queue:
scenario/sweep JSON documents are submitted over HTTP, executed through
the existing cost-aware campaign engine, and their finished points are
streamed to the sharded :class:`~repro.experiments.store.ResultCache`
through an :class:`~repro.experiments.store.AsyncResultWriter` (bounded
queue, coalesced ``put_many`` drains, one fsync per drain).

Endpoints (all JSON, bound to localhost by default):

- ``POST /jobs`` -- submit a scenario or sweep document; returns the
  job id (idempotent: resubmitting the same document returns the same
  job).
- ``GET  /status`` -- service identity, store path, and every known
  job's summary.
- ``GET  /jobs/<id>`` -- one job's progress: state, done/total points,
  an ETA from the campaign cost model, error when failed.
- ``GET  /jobs/<id>/report`` -- a schema-3 report of the points
  completed *so far* (a strict subset while the job runs; ``repro
  diff``/``plot`` align on the intersection).
- ``POST /shutdown`` -- stop the server loop (used by tests and CI).

Durability contract: every submitted job writes an atomic manifest
under ``<shards>/jobs/``, and every finished point reaches the shard
directory within one writer drain.  On boot the service reconciles
manifests against shard contents and requeues only the missing points
-- the campaign engine's cache-hit scan skips everything already on
disk -- so a SIGKILL mid-campaign loses at most the in-flight batch
and never recomputes a flushed point.

Reports served while a job is mid-flight contain scalar metrics only;
trajectory series are recorded by foreground ``repro scenario`` runs
(they are not persisted in the result store).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Mapping

from repro import __version__
from repro.experiments.campaign import Campaign, PointResult, PointSpec, _CostModel
from repro.experiments.diff import campaign_report
from repro.experiments.scenario import Scenario
from repro.experiments.store import AsyncResultWriter, ResultCache

#: default service port (unassigned range; override with --port)
DEFAULT_PORT = 8037

#: keys accepted by a ``{"kind": "sweep"}`` submission document
_SWEEP_KEYS = frozenset({
    "kind", "name", "workloads", "loads", "allocs", "scheds", "scale",
    "network_mode",
})

_JOB_STATES = ("queued", "running", "done", "failed")


def job_id(doc: Mapping) -> str:
    """The job id for a submission document: a content hash, so
    resubmitting the same document is idempotent."""
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def build_campaign(doc: Mapping) -> tuple[str, str, Campaign]:
    """Validate a submission document and build its campaign.

    A document with ``"kind": "sweep"`` describes a full-factorial grid
    (``workloads``/``loads`` required, ``allocs``/``scheds``/``scale``/
    ``network_mode`` optional); anything else must be a scenario
    document (:meth:`Scenario.from_dict`, which rejects unknown keys).

    Returns:
        ``(name, kind, campaign)`` where ``kind`` is ``"scenario"`` or
        ``"sweep"``.

    Raises:
        ValueError: on any malformed document.
    """
    if not isinstance(doc, Mapping):
        raise ValueError("submission must be a JSON object")
    if doc.get("kind") == "sweep":
        unknown = set(doc) - _SWEEP_KEYS
        if unknown:
            raise ValueError(
                f"unknown sweep key(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(_SWEEP_KEYS)}"
            )
        missing = {"workloads", "loads"} - set(doc)
        if missing:
            raise ValueError(f"sweep is missing required key(s) {sorted(missing)}")
        try:
            loads = tuple(float(x) for x in doc["loads"])
        except (TypeError, ValueError):
            raise ValueError(f"bad sweep loads {doc['loads']!r}") from None
        campaign = Campaign.sweep(
            workloads=tuple(doc["workloads"]),
            loads=loads,
            allocs=tuple(doc.get("allocs", ("GABL",))),
            scheds=tuple(doc.get("scheds", ("FCFS",))),
            scale=doc.get("scale", "smoke"),
            network_mode=doc.get("network_mode"),
        )
        return str(doc.get("name", "sweep")), "sweep", campaign
    scenario = Scenario.from_dict(doc)
    return scenario.name, "scenario", scenario.campaign()


@dataclass
class Job:
    """One submitted campaign and its live progress."""

    id: str
    name: str
    kind: str  # "scenario" | "sweep"
    doc: dict
    campaign: Campaign
    state: str = "queued"  # one of _JOB_STATES
    error: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    done: int = 0
    #: per-spec results as they land (cache hits and fresh completions)
    results: dict[PointSpec, PointResult] = field(default_factory=dict)
    #: remaining-work estimate in cost-model base units
    cost_done: float = 0.0

    @property
    def total(self) -> int:
        """The job's point count (after campaign dedup)."""
        return len(self.campaign.points)

    def eta_seconds(self) -> float | None:
        """Remaining wall-clock estimate from the campaign cost model.

        ``None`` until at least one point has completed (no observed
        rate yet) and once the job has left the running state.
        """
        if self.state != "running" or self.started_at is None:
            return None
        if self.done == 0 or self.cost_done <= 0.0:
            return None
        elapsed = max(time.time() - self.started_at, 1e-9)
        model = _CostModel()
        cost_total = sum(model.base(s) for s in self.campaign.points)
        rate = self.cost_done / elapsed  # base units per second
        return max(cost_total - self.cost_done, 0.0) / max(rate, 1e-12)

    def summary(self) -> dict:
        """The JSON progress summary served at ``GET /jobs/<id>``."""
        out = {
            "id": self.id,
            "name": self.name,
            "kind": self.kind,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "eta_seconds": self.eta_seconds(),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


class CampaignService:
    """The job queue: one worker thread over the campaign engine.

    Jobs run one at a time (each campaign fans out internally over
    ``jobs`` workers); results stream to the store through a dedicated
    writer thread.  All public methods are thread-safe -- the HTTP
    handler pool calls them concurrently with the worker.
    """

    def __init__(
        self,
        store: Path | str | None = None,
        jobs: int = 1,
        executor: str | None = None,
    ) -> None:
        self.cache = ResultCache(Path(store) if store is not None else None)
        self.writer = AsyncResultWriter(self.cache)
        self.jobs = jobs
        self.executor = executor
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._queue: list[str] = []  # FIFO of queued job ids
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-serve-worker", daemon=True
        )
        self._recover()
        self._worker.start()

    # ------------------------------------------------------------ manifests
    @property
    def jobs_dir(self) -> Path:
        """Where job manifests live (inside the shard directory, so one
        ``--store`` flag moves both)."""
        return self.cache.path / "jobs"

    def _write_manifest(self, job: Job) -> None:
        if not self.cache.disk:
            return
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "id": job.id,
            "name": job.name,
            "kind": job.kind,
            "doc": job.doc,
            "submitted_at": job.submitted_at,
        }
        tmp = self.jobs_dir / f".{job.id}.tmp"
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(self.jobs_dir / f"{job.id}.json")

    def _recover(self) -> None:
        """Boot reconciliation: re-admit every manifest, mark jobs whose
        points are all in the store as done, requeue the rest.

        Requeued jobs re-enter the campaign engine, whose cache-hit
        scan skips every point already flushed -- only missing points
        recompute.
        """
        if not self.cache.disk:
            return
        try:
            manifests = sorted(self.jobs_dir.glob("*.json"))
        except OSError:
            return
        for path in manifests:
            try:
                payload = json.loads(path.read_text())
                doc = payload["doc"]
                name, kind, campaign = build_campaign(doc)
            except (OSError, KeyError, TypeError, ValueError, json.JSONDecodeError):
                continue  # an unreadable manifest never blocks boot
            job = Job(
                id=payload.get("id") or job_id(doc),
                name=name, kind=kind, doc=dict(doc), campaign=campaign,
                submitted_at=float(payload.get("submitted_at", 0.0)),
            )
            missing = [
                s for s in campaign.points if self.cache.get(s.key()) is None
            ]
            if not missing:
                job.state = "done"
                job.done = job.total
                job.finished_at = job.submitted_at
            self._jobs[job.id] = job
            if missing:
                self._queue.append(job.id)

    # ------------------------------------------------------------ public API
    def submit(self, doc: Mapping) -> Job:
        """Admit a submission document; returns its (possibly already
        existing) job.

        Raises:
            ValueError: when the document is malformed.
        """
        jid = job_id(doc)
        with self._lock:
            known = self._jobs.get(jid)
            if known is not None and known.state != "failed":
                return known
        name, kind, campaign = build_campaign(doc)  # may raise ValueError
        job = Job(
            id=jid, name=name, kind=kind, doc=dict(doc), campaign=campaign,
            submitted_at=time.time(),
        )
        self._write_manifest(job)
        with self._wakeup:
            self._jobs[jid] = job
            self._queue.append(jid)
            self._wakeup.notify()
        return job

    def job(self, jid: str) -> Job | None:
        """The job with this id, or ``None``."""
        with self._lock:
            return self._jobs.get(jid)

    def status(self) -> dict:
        """The ``GET /status`` payload."""
        with self._lock:
            jobs = [j.summary() for j in self._jobs.values()]
        return {
            "service": "repro-serve",
            "version": __version__,
            "store": str(self.cache.path),
            "uptime_seconds": time.time() - self.started_at,
            "jobs": jobs,
        }

    def job_report(self, jid: str) -> dict | None:
        """A schema-3 report of the job's completed points so far.

        While the job runs this is a strict subset of the final grid;
        ``repro diff``/``plot`` align on the intersection (warn, never
        exit 2).  Served points come from the in-memory result map
        first, then the store, so a reconciled ``done`` job reports
        from its shards without recomputing anything.
        """
        job = self.job(jid)
        if job is None:
            return None
        self.writer.flush()  # queued points become visible to get()
        completed: dict[PointSpec, PointResult] = {}
        with self._lock:
            known = dict(job.results)
        for spec in job.campaign.points:
            hit = known.get(spec)
            if hit is None:
                payload = self.cache.get(spec.key())
                if payload is not None:
                    hit = PointResult.from_payload(payload)
            if hit is not None:
                completed[spec] = hit
        report = campaign_report(
            tuple(completed), completed, name=job.name, kind=job.kind,
        )
        report["job"] = job.summary()
        return report

    def close(self) -> None:
        """Stop the worker (after its current job) and flush the writer."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
        self._worker.join(timeout=30.0)
        self.writer.close()

    # --------------------------------------------------------------- worker
    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._closed:
                    self._wakeup.wait()
                if self._closed:
                    return
                job = self._jobs[self._queue.pop(0)]
                job.state = "running"
                job.started_at = time.time()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        model = _CostModel()

        def on_point(
            spec: PointSpec, result: PointResult, done: int, total: int
        ) -> None:
            with self._lock:
                job.results[spec] = result
                job.done = done
                job.cost_done += model.base(spec)

        try:
            job.campaign.run(
                jobs=self.jobs,
                cache=self.writer,
                executor_kind=self.executor,
                on_point=on_point,
            )
            self.writer.flush()
            with self._lock:
                job.state = "done"
                job.finished_at = time.time()
        except Exception as exc:  # noqa: BLE001 - a job must not kill the worker
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service; JSON in, JSON out."""

    # set by serve(): the shared CampaignService and shutdown hook
    service: CampaignService
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args) -> None:  # noqa: D102 - stdlib hook
        pass  # route access logs to /dev/null; the CLI prints its own

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: D102 - stdlib dispatch name
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["status"]:
            self._reply(200, self.service.status())
            return
        if len(parts) >= 2 and parts[0] == "jobs":
            jid = parts[1]
            if len(parts) == 2:
                job = self.service.job(jid)
                if job is None:
                    self._reply(404, {"error": f"unknown job {jid!r}"})
                    return
                self._reply(200, job.summary())
                return
            if len(parts) == 3 and parts[2] == "report":
                report = self.service.job_report(jid)
                if report is None:
                    self._reply(404, {"error": f"unknown job {jid!r}"})
                    return
                self._reply(200, report)
                return
        self._reply(404, {"error": f"no such endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: D102 - stdlib dispatch name
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["shutdown"]:
            self._reply(200, {"ok": True})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        if parts != ["jobs"]:
            self._reply(404, {"error": f"no such endpoint {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            doc = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, {"error": f"bad request body: {exc}"})
            return
        try:
            job = self.service.submit(doc)
        except ValueError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(200, job.summary())


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = DEFAULT_PORT
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port``, routing to ``service``.

    The caller owns the loop: run ``serve_forever()`` (blocking) or on
    a thread, and ``server_close()`` + ``service.close()`` afterwards.
    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address``.
    """
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve(
    store: Path | str | None = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    jobs: int = 1,
    executor: str | None = None,
    progress=None,
    ready: "threading.Event | None" = None,
) -> None:
    """Run the campaign service until interrupted (the CLI entry point).

    ``ready`` (when given) is set once the socket is bound and the boot
    reconciliation has run -- tests use it to avoid polling for startup.
    """
    service = CampaignService(store=store, jobs=jobs, executor=executor)
    server = make_server(service, host=host, port=port)
    note = progress if progress is not None else (lambda _msg: None)
    bound_host, bound_port = server.server_address[:2]
    note(
        f"repro-serve {__version__} listening on "
        f"http://{bound_host}:{bound_port} (store: {service.cache.path})"
    )
    queued = [j for j in service.status()["jobs"] if j["state"] == "queued"]
    if queued:
        note(f"recovered {len(queued)} unfinished job(s); resuming")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        note("interrupted; flushing writer and shutting down")
    finally:
        server.server_close()
        service.close()
