"""Scenario/report plotting: ASCII charts always, PNG when possible.

``repro plot report.json`` renders what a ``--out`` report contains:

* **trajectory charts** -- the embedded
  :meth:`~repro.core.hooks.TrajectoryObserver.series` payloads
  (utilization, queue length, ... vs. time), every point's run overlaid
  on one axis;
* **sweep charts** -- per-load metric curves (one series per
  workload/allocator/scheduler combination) whenever the report spans
  more than one load.

Charts are extracted once into plain :class:`Chart` values, then
rendered twice: as ASCII (always available, CI-safe) and, when
matplotlib is importable and ``--png`` was given, as a PNG grid.  A
``--compare`` report overlays its series on the same axes with
``B:``-prefixed labels, which is how two scenarios end up on one chart.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.experiments.diff import LoadedReport, ReportPoint

#: trajectory series plotted when the user names no --metric
DEFAULT_TRAJECTORY_SERIES = ("utilization", "queue_length")
#: sweep metric plotted when the user names no --metric
DEFAULT_SWEEP_METRICS = ("utilization",)

#: maximum rendered series-label length (pipeline specs get long)
_LABEL_WIDTH = 40


@dataclass(frozen=True, slots=True)
class Chart:
    """One renderable chart: labelled (xs, ys) series on shared axes."""

    title: str
    xlabel: str
    ylabel: str
    #: label -> (xs, ys), both parallel sequences
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]] = field(
        default_factory=dict
    )


def _short(label: str) -> str:
    # truncate the *middle*: point labels start with the (long, shared)
    # workload spec and end with the distinguishing load/alloc/sched
    if len(label) > _LABEL_WIDTH:
        head = (_LABEL_WIDTH - 2) // 2
        tail = _LABEL_WIDTH - 2 - head
        label = label[:head] + ".." + label[-tail:]
    return label


def _shorten_labels(series: Mapping[str, tuple]) -> dict[str, tuple]:
    """Truncate series labels for display, keeping distinct keys distinct.

    Labels differing only in their truncated middle get ``#2``/``#3``
    suffixes instead of silently colliding (which would merge or drop
    series).
    """
    out: dict[str, tuple] = {}
    counts: dict[str, int] = {}
    for full, data in series.items():
        short = _short(full)
        counts[short] = counts.get(short, 0) + 1
        if counts[short] > 1:
            short = f"{short}#{counts[short]}"
        out[short] = data
    return out


def _trajectory_points(report: LoadedReport) -> list[ReportPoint]:
    return [p for p in report.points if p.trajectory.get("times")]


def trajectory_charts(
    report: LoadedReport,
    metrics: Sequence[str],
    compare: LoadedReport | None = None,
) -> list[Chart]:
    """One chart per trajectory series name, all points overlaid.

    Args:
        report: the primary report (``A:`` series when comparing).
        metrics: trajectory series names to plot (e.g. ``utilization``).
        compare: optional second report overlaid with ``B:`` labels.

    Returns:
        One :class:`Chart` per requested series name that at least one
        point actually recorded.
    """
    charts = []
    sources = [("", report)] if compare is None else [
        ("A:", report), ("B:", compare),
    ]
    for name in metrics:
        series: dict[str, tuple[Sequence[float], Sequence[float]]] = {}
        for prefix, rep in sources:
            for point in _trajectory_points(rep):
                values = point.trajectory.get(name)
                if not values:
                    continue
                series[prefix + point.label] = (
                    point.trajectory["times"], values,
                )
        if series:
            charts.append(Chart(
                title=f"{name} vs. time",
                xlabel="time",
                ylabel=name,
                series=_shorten_labels(series),
            ))
    return charts


def sweep_charts(
    report: LoadedReport,
    metrics: Sequence[str],
    compare: LoadedReport | None = None,
    require_multi_load: bool = True,
) -> list[Chart]:
    """One chart per metric: value vs. load, a series per combination.

    Points missing grid coordinates (no ``load`` field) are skipped.
    By default a chart is only emitted when some series spans at least
    two loads (a single-load curve is not a curve); pass
    ``require_multi_load=False`` -- as explicit ``--metric`` requests do
    -- to render single-load strategy comparisons too (e.g. a
    saturation bar-chart report).

    Args:
        report: the primary report.
        metrics: scalar metric names to plot (e.g. ``mean_turnaround``).
        compare: optional second report overlaid with ``B:`` labels.
        require_multi_load: suppress single-load charts (the default).

    Returns:
        One :class:`Chart` per requested metric with data to show.
    """
    charts = []
    sources = [("", report)] if compare is None else [
        ("A:", report), ("B:", compare),
    ]
    for metric in metrics:
        series: dict[str, tuple[list[float], list[float]]] = {}
        for prefix, rep in sources:
            groups: dict[str, list[tuple[float, float]]] = {}
            for p in rep.points:
                if p.load is None or metric not in p.metrics:
                    continue
                # group on the FULL label: truncation happens only at
                # display time, so near-identical workloads never merge
                label = f"{prefix}{p.alloc}({p.sched}) {p.workload}"
                groups.setdefault(label, []).append(
                    (p.load, p.metrics[metric])
                )
            for label, pairs in groups.items():
                pairs.sort()
                series[label] = (
                    [x for x, _ in pairs], [y for _, y in pairs],
                )
        multi = any(len(xs) > 1 for xs, _ in series.values())
        if series and (multi or not require_multi_load):
            charts.append(Chart(
                title=f"{metric} vs. load",
                xlabel="load",
                ylabel=metric,
                series=_shorten_labels(series),
            ))
    return charts


def report_charts(
    report: LoadedReport,
    metrics: Sequence[str] | None = None,
    compare: LoadedReport | None = None,
) -> list[Chart]:
    """Everything plottable in a report, as chart values.

    Without an explicit ``metrics`` list, the defaults are the
    :data:`DEFAULT_TRAJECTORY_SERIES` time charts (when the report
    embeds trajectories) plus the :data:`DEFAULT_SWEEP_METRICS` load
    curves (when it spans several loads).  With an explicit list, each
    name is routed by kind: trajectory series names become time charts,
    scalar metric names become load curves.

    Args:
        report: the primary parsed report.
        metrics: series/metric names, or ``None`` for the defaults.
        compare: optional overlay report.

    Returns:
        The charts, trajectory charts first.
    """
    if metrics is None:
        traj_names: Sequence[str] = DEFAULT_TRAJECTORY_SERIES
        sweep_names: Sequence[str] = DEFAULT_SWEEP_METRICS
    else:
        series_keys = {
            name
            for rep in (report, compare) if rep is not None
            for p in rep.points
            for name in p.trajectory
            if name != "times"
        }
        traj_names = [m for m in metrics if m in series_keys]
        sweep_names = [m for m in metrics if m not in series_keys]
    charts = trajectory_charts(report, traj_names, compare=compare)
    charts.extend(sweep_charts(
        report, sweep_names, compare=compare,
        require_multi_load=metrics is None,
    ))
    return charts


# ------------------------------------------------------------------- ASCII
def ascii_chart(chart: Chart, height: int = 14, width: int = 64) -> str:
    """Render one chart as a terminal scatter/line grid.

    Each series gets a letter marker (``A``, ``B``, ...); cells hit by
    several series show ``*``.  The header carries the y-range, the
    footer the x-range and the legend.

    Args:
        chart: the chart to render.
        height: canvas rows.
        width: canvas columns.

    Returns:
        The multi-line ASCII rendering.
    """
    labels = list(chart.series)
    xs_all = [x for xs, _ in chart.series.values() for x in xs]
    ys_all = [y for _, ys in chart.series.values() for y in ys]
    if not xs_all:
        return f"{chart.title}: nothing to plot"
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    rows = [[" "] * width for _ in range(height)]
    for li, label in enumerate(labels):
        marker = chr(ord("A") + li % 26)
        xs, ys = chart.series[label]
        for x, y in zip(xs, ys):
            c = int((x - x_lo) / x_span * (width - 1))
            r = height - 1 - int((y - y_lo) / y_span * (height - 1))
            rows[r][c] = "*" if rows[r][c] not in (" ", marker) else marker
    out = [f"{chart.title}  [{chart.ylabel}: {y_lo:.4g} .. {y_hi:.4g}]"]
    out.extend("|" + "".join(r) for r in rows)
    axis = f"{x_lo:.6g}"
    tail = f"{x_hi:.6g}"
    out.append(
        "+" + axis + "-" * max(width - len(axis) - len(tail), 1) + tail
    )
    out.append(f"  x: {chart.xlabel}")
    out.extend(
        f"  {chr(ord('A') + i % 26)} = {label}"
        for i, label in enumerate(labels)
    )
    return "\n".join(out)


def render_ascii(charts: Sequence[Chart]) -> str:
    """Render every chart, blank-line separated.

    Args:
        charts: charts from :func:`report_charts`.

    Returns:
        The concatenated ASCII renderings (or a note when empty).
    """
    if not charts:
        return (
            "nothing to plot: the report has no embedded trajectories and "
            "no multi-load sweep (try --metric, or rerun the scenario with "
            "'sample_interval' set)"
        )
    return "\n\n".join(ascii_chart(c) for c in charts)


# --------------------------------------------------------------------- PNG
def render_png(charts: Sequence[Chart], path: str) -> bool:
    """Render the charts as a PNG grid via matplotlib, if importable.

    Uses the ``Agg`` backend (no display needed).  Missing matplotlib is
    not an error -- the ASCII rendering already happened -- but it is
    reported so the caller can tell the user.

    Args:
        charts: charts from :func:`report_charts`.
        path: output PNG path.

    Returns:
        ``True`` when the PNG was written, ``False`` when matplotlib is
        unavailable.

    Raises:
        ValueError: for an empty chart list (a blank PNG is never
            written).
    """
    if not charts:
        raise ValueError("no charts to render")
    try:
        import matplotlib
    except ImportError:
        return False
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    n = len(charts)
    fig, axes = plt.subplots(n, 1, figsize=(8, 3.2 * n), squeeze=False)
    for ax, chart in zip((a for row in axes for a in row), charts):
        for label, (xs, ys) in chart.series.items():
            ax.plot(xs, ys, drawstyle="steps-post", label=label)
        ax.set_title(chart.title)
        ax.set_xlabel(chart.xlabel)
        ax.set_ylabel(chart.ylabel)
        ax.legend(fontsize=6)
    fig.tight_layout()
    fig.savefig(path)
    plt.close(fig)
    return True


def plot_report(
    report: LoadedReport,
    metrics: Sequence[str] | None = None,
    compare: LoadedReport | None = None,
    png: str | None = None,
) -> str:
    """The ``repro plot`` pipeline: extract, render ASCII, maybe PNG.

    Args:
        report: the primary parsed report.
        metrics: series/metric names, or ``None`` for defaults.
        compare: optional overlay report.
        png: optional PNG output path.

    Returns:
        The ASCII rendering (PNG status is appended as a final line).
    """
    charts = report_charts(report, metrics=metrics, compare=compare)
    text = render_ascii(charts)
    if png is not None:
        if not charts:
            print(
                "nothing to plot; PNG not written", file=sys.stderr,
            )
        elif render_png(charts, png):
            text += f"\nPNG written to {png}"
        else:
            print(
                "matplotlib not importable; skipped PNG "
                "(ASCII charts rendered above)",
                file=sys.stderr,
            )
    return text
