"""Campaign engine: deduplicated point enumeration and parallel execution.

The paper's result grid is embarrassingly parallel: 15 figures x ~5 loads
x 6 strategy combos x up to 20 replications each, every cell independent
of every other.  This module turns that grid into an explicit *campaign*:

* :class:`PointSpec` -- one frozen, picklable simulation cell (workload,
  load, allocator, scheduler, scale, config, network mode).  Its
  :meth:`~PointSpec.key` is a stable JSON document of the field values,
  which doubles as the result-store key;
* :class:`Campaign` -- enumerates the union of cells needed by a set of
  figures (or an arbitrary grid sweep), deduplicates cells shared
  between figures (the uniform sweep feeds Figs. 3, 6, 9, 12 and 15 but
  is simulated once), and executes replications through a pluggable
  executor;
* :class:`SerialExecutor` / :class:`ThreadPoolExecutor` /
  :class:`ProcessPoolExecutor` -- in-process serial, in-process
  thread-parallel and multi-process execution backends.  Replication
  seeds are a pure function of the spec
  (``config.seed + replication_index``), never of worker state or
  dispatch order, so serial, thread and process runs of the same
  campaign produce **identical** metrics.

The replication loop is *batched* (see
:class:`repro.stats.ReplicationController`): each uncached point first
submits its ``min_replications`` seeds, the CI stopping rule is checked
on the collected batch, and unconverged points submit further seeds
round by round.

Work is dispatched from a single queue in **longest-estimated-first**
order (:class:`_CostModel`): a point's cost is estimated up front from
``load x replication bounds x stream length`` and refined online from
observed batch runtimes, so the heaviest cells start earliest and a
straggler cannot serialise the tail of the campaign.

The **thread** executor is the fast path when points run on the
compiled SoA lane driver: ctypes calls release the GIL for the whole
lane-driver event loop (see :mod:`repro.core._soa_native`), so lanes of
different points genuinely run in parallel while sharing one in-process
:class:`~repro.workload.columnar.BlockCache`, parse-once trace columns
and the result store -- no worker startup, no pickling, no per-worker
re-parsing.  Batch futures hand back the engine's ``RunResult`` values
directly (for native lanes, built straight from ``LaneState.result()``
arrays), and finished points persist through the store's coalesced
:meth:`~repro.experiments.store.ResultCache.put_many` path -- one fsync
per drained batch, not one per point.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import threading
import time
from collections.abc import Mapping as _MappingABC
from concurrent import futures
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Protocol, Sequence

from repro.alloc import make_allocator
from repro.core import _soa_native
from repro.core.config import PAPER_CONFIG, SimConfig
from repro.core.simulator import Simulator
from repro.core.soa import run_point_batch
from repro.experiments.figures import FIGURES
from repro.experiments.store import ResultCache, global_cache
from repro.sched import make_scheduler
from repro.stats.compare import MetricSummary
from repro.stats.replication import ReplicationController, ReplicationResult
from repro.workload.sdsc import synthesize_sdsc_trace
from repro.workload.stochastic import StochasticWorkload
from repro.workload.trace import TraceJob, TraceWorkload
from repro.workload.transforms import (
    build_pipeline,
    canonical_workload,
    is_pipeline_spec,
    spec_is_deterministic,
)

#: metrics recorded for every point (RunResult attribute names)
METRICS = (
    "mean_turnaround",
    "mean_service",
    "mean_wait",
    "mean_packet_latency",
    "mean_packet_blocking",
    "utilization",
    "mean_fragments",
    "contiguity_rate",
)

#: version of the stored / reported point-result payload (schema 1 was a
#: bare ``{metric: mean}`` dict, still readable; schema 2 adds the
#: replication summaries the diff subsystem needs)
RESULT_SCHEMA = 2


class PointResult(_MappingABC):
    """One point's metric means plus their replication summaries.

    Behaves exactly like the plain ``{metric: mean}`` dict it replaces
    (it *is* a mapping over the means), so every mean-consuming caller
    is untouched -- but it also carries the per-metric
    :class:`~repro.stats.compare.MetricSummary` (mean, variance, n) that
    ``repro diff`` tests with, and round-trips through the result store.
    """

    __slots__ = ("means", "stats", "replications", "converged")

    def __init__(
        self,
        means: Mapping[str, float],
        stats: Mapping[str, MetricSummary] | None = None,
        replications: int = 0,
        converged: bool = True,
    ) -> None:
        self.means = dict(means)
        self.stats = dict(stats) if stats else {}
        self.replications = replications
        self.converged = converged

    # ---------------------------------------------------- mapping protocol
    def __getitem__(self, name: str) -> float:
        return self.means[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.means)

    def __len__(self) -> int:
        return len(self.means)

    def __eq__(self, other) -> bool:
        if isinstance(other, PointResult):
            return (
                self.means == other.means
                and self.stats == other.stats
                and self.replications == other.replications
            )
        if isinstance(other, _MappingABC):
            return self.means == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"PointResult({self.means!r}, replications={self.replications})"
        )

    # ------------------------------------------------------- constructors
    @classmethod
    def from_replication(cls, rep: ReplicationResult) -> "PointResult":
        """Adopt a finished replication batch's per-metric summaries."""
        stats = {
            name: MetricSummary.from_values(metric.values)
            for name, metric in rep.metrics.items()
        }
        # the summary mean IS the reported mean (same sum/n expression as
        # the CI module), so the means dict and the stats never disagree
        return cls(
            means={name: s.mean for name, s in stats.items()},
            stats=stats,
            replications=rep.replications,
            converged=rep.converged,
        )

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PointResult":
        """Adopt a store/report payload, current or legacy.

        Legacy (schema-1) payloads are bare mean dicts: they load with
        empty ``stats`` and ``replications=0`` ("unknown"), and the diff
        subsystem falls back to mean-only classification for them.
        """
        if "means" not in payload:
            return cls(means={k: float(v) for k, v in payload.items()})
        return cls(
            means={k: float(v) for k, v in payload["means"].items()},
            stats={
                k: MetricSummary.from_dict(v)
                for k, v in payload.get("stats", {}).items()
            },
            replications=int(payload.get("replications", 0)),
            converged=bool(payload.get("converged", True)),
        )

    def to_payload(self) -> dict:
        """JSON-serializable form (the store/report value)."""
        return {
            "schema": RESULT_SCHEMA,
            "means": dict(self.means),
            "stats": {k: s.to_dict() for k, s in self.stats.items()},
            "replications": self.replications,
            "converged": self.converged,
        }


@dataclass(frozen=True, slots=True)
class Scale:
    """Fidelity preset."""

    name: str
    jobs: int  #: completed jobs per run
    min_replications: int
    max_replications: int
    trace_max_jobs: int | None  #: trace prefix length (None = full trace)

    @classmethod
    def by_name(cls, name: str) -> "Scale":
        """Look a preset up in :data:`SCALES`; KeyError names the options."""
        try:
            return SCALES[name]
        except KeyError:
            raise KeyError(
                f"unknown scale {name!r}; choose from {sorted(SCALES)}"
            ) from None


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", jobs=120, min_replications=1, max_replications=1,
                   trace_max_jobs=600),
    "quick": Scale("quick", jobs=300, min_replications=2, max_replications=3,
                   trace_max_jobs=2000),
    "paper": Scale("paper", jobs=1000, min_replications=3, max_replications=20,
                   trace_max_jobs=None),
}


def default_scale() -> str:
    """Scale preset from ``REPRO_SCALE`` (default ``smoke``)."""
    name = os.environ.get("REPRO_SCALE", "smoke")
    Scale.by_name(name)  # validate early
    return name


# ------------------------------------------------------------------- traces
_TRACE_CACHE: dict[tuple[int | None, int], list[TraceJob]] = {}

#: serialises trace synthesis so concurrent first use from the thread
#: executor materialises each (length, seed) once
_TRACE_CACHE_LOCK = threading.Lock()


def sdsc_trace(max_jobs: int | None = None, seed: int = 1995) -> list[TraceJob]:
    """Synthetic SDSC trace, memoised per (length, seed)."""
    key = (max_jobs, seed)
    hit = _TRACE_CACHE.get(key)
    if hit is not None:
        return hit
    with _TRACE_CACHE_LOCK:
        if key not in _TRACE_CACHE:
            full = _TRACE_CACHE.get((None, seed))
            if full is None:
                full = synthesize_sdsc_trace(seed=seed)
                _TRACE_CACHE[(None, seed)] = full
            _TRACE_CACHE[key] = full[:max_jobs] if max_jobs else full
        return _TRACE_CACHE[key]


def make_workload(
    workload: str,
    config: SimConfig,
    load: float,
    scale: Scale,
    trace: Sequence[TraceJob] | None = None,
):
    """Build the workload object for one point.

    ``workload`` is either a base name (``"real"``, ``"uniform"``,
    ``"exponential"``) or a workload-pipeline spec such as
    ``"real*0.5 | thin:0.8 + uniform"`` (see
    :mod:`repro.workload.transforms`).  Pipeline sources are built
    through this same function, so every source in a merge shares the
    point's config, offered load, scale and external trace.
    """
    if workload == "uniform":
        return StochasticWorkload(config, load, sides="uniform")
    if workload == "exponential":
        return StochasticWorkload(config, load, sides="exponential")
    if workload == "real":
        jobs = list(trace) if trace is not None else sdsc_trace(scale.trace_max_jobs)
        return TraceWorkload(config, jobs, load, max_jobs=scale.trace_max_jobs)
    if is_pipeline_spec(workload):
        return build_pipeline(
            workload,
            lambda name: make_workload(name, config, load, scale, trace=trace),
        )
    raise KeyError(f"unknown workload {workload!r}")


# -------------------------------------------------------------------- specs
def trace_fingerprint(trace: Sequence[TraceJob]) -> str:
    """Content digest of an external trace, for cache keying.

    Two different ``--swf`` files must never alias in the persistent
    store, so the spec's ``trace_source`` embeds this digest rather
    than a bare "external" marker.
    """
    h = hashlib.sha256()
    for tj in trace:
        h.update(f"{tj.arrival!r}|{tj.size!r}|{tj.runtime!r}\n".encode())
    return f"ext:{h.hexdigest()[:16]}"


@dataclass(frozen=True, slots=True)
class PointSpec:
    """One simulation cell, frozen and picklable.

    External traces are not embedded (they can be large); the campaign
    carries them separately and ``trace_source`` holds their content
    fingerprint (:func:`trace_fingerprint`) so cells replayed from
    different traces cannot alias each other or the built-in SDSC one.

    The stored ``config`` is normalised to the *run* config (job count
    pinned by the scale preset), so spec equality, hashing and
    :meth:`key` all agree on what constitutes the same cell.
    """

    workload: str
    load: float
    alloc: str
    sched: str
    scale: Scale
    config: SimConfig = PAPER_CONFIG
    #: network backend; ``None`` (the default) adopts the config's mode,
    #: an explicit value overrides it
    network_mode: str | None = None
    trace_source: str = "sdsc"  #: "sdsc" or an external-trace fingerprint

    def __post_init__(self) -> None:
        # normalise so equality/hashing/key() agree: pipeline specs
        # canonicalise (equal pipelines -> equal keys, and a malformed
        # spec fails here rather than inside a worker), the scale pins
        # the job count, and the backend is resolved to ONE value
        # carried by both the spec field and the stored config (it is
        # part of the cache key; results from one backend must never
        # alias another's)
        if is_pipeline_spec(self.workload):
            object.__setattr__(
                self, "workload", canonical_workload(self.workload)
            )
        if self.network_mode is None:
            object.__setattr__(self, "network_mode", self.config.network_mode)
        if (self.config.jobs != self.scale.jobs
                or self.config.network_mode != self.network_mode):
            object.__setattr__(
                self, "config",
                self.config.with_(jobs=self.scale.jobs,
                                  network_mode=self.network_mode),
            )

    @property
    def run_config(self) -> SimConfig:
        """The per-run config (job count pinned by the scale preset)."""
        return self.config

    @property
    def replication_bounds(self) -> tuple[int, int]:
        """(min, max) replications.

        Trace replay is deterministic, so one replication suffices --
        and likewise for any workload pipeline whose stream does not
        consume the replication seed (pure-``real`` sources with only
        deterministic transforms such as ``scale``/``burst``/``clamp``).
        """
        if self.workload == "real" or (
            is_pipeline_spec(self.workload)
            and spec_is_deterministic(self.workload)
        ):
            return (1, 1)
        return (self.scale.min_replications, self.scale.max_replications)

    def key(self) -> str:
        """Stable structured store key: JSON of every outcome-affecting
        field.  Unlike a joined string, a field value containing a
        separator or drifting float repr cannot alias another point."""
        lo, hi = self.replication_bounds
        cfg = dataclasses.asdict(self.run_config)
        # the execution engine never affects results (bit-identical by
        # construction, see repro.core.soa), so both engines must read
        # and write the same cache cell
        cfg.pop("engine", None)
        # channel/arq join the key only when a channel is set, so every
        # pre-channel cache cell and golden fixture stays addressable
        channel = cfg.pop("channel", None)
        arq = cfg.pop("arq", None)
        payload = {
            "workload": self.workload,
            "load": self.load,
            "alloc": self.alloc,
            "sched": self.sched,
            "network_mode": self.network_mode,
            "trace_source": self.trace_source,
            "trace_max_jobs": self.scale.trace_max_jobs,
            "replications": [lo, hi],
            "config": cfg,
        }
        if channel is not None:
            payload["channel"] = channel
            payload["arq"] = arq
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def label(self) -> str:
        """Short human-readable form for progress output."""
        base = (
            f"{self.workload} load={self.load:g} "
            f"{self.alloc}({self.sched})"
        )
        channel = self.run_config.channel
        if channel is not None:
            arq = self.run_config.arq
            base += f" ch={channel}" + (f"/{arq}" if arq else "")
        return base

    def controller(self) -> ReplicationController:
        """A fresh replication controller honouring this spec's bounds."""
        lo, hi = self.replication_bounds
        return ReplicationController(
            METRICS,
            min_replications=lo,
            max_replications=hi,
            base_seed=self.run_config.seed,
        )


def build_simulator(
    spec: PointSpec,
    seed: int,
    trace: Sequence[TraceJob] | None = None,
    observers: Sequence = (),
) -> Simulator:
    """The ONE place a point spec becomes a runnable simulator.

    Both the campaign work unit (:func:`run_spec_replication`) and the
    scenario trajectory runner build through here, so every spec field
    that affects the run (config, window, network mode, workload
    pipeline) is plumbed exactly once.
    """
    cfg = spec.run_config
    return Simulator(
        cfg,
        make_allocator(spec.alloc, cfg.width, cfg.length),
        make_scheduler(spec.sched, window=cfg.scheduler_window),
        make_workload(spec.workload, cfg, spec.load, spec.scale, trace=trace),
        network_mode=spec.network_mode,
        seed=seed,
        observers=observers,
    )


def run_spec_replication(
    spec: PointSpec, seed: int, trace: Sequence[TraceJob] | None = None
) -> dict[str, float]:
    """Execute ONE replication of a point; the process-pool work unit.

    Module-level (hence picklable) and a pure function of its arguments:
    every simulation input, including the seed, comes from the task, so
    any worker computes the same answer.
    """
    result = build_simulator(spec, seed, trace=trace).run()
    return {m: result.metric(m) for m in METRICS}


def run_spec_batch_results(
    spec: PointSpec,
    seeds: Sequence[int],
    trace: Sequence[TraceJob] | None = None,
) -> list:
    """Execute a whole replication batch of a point in lockstep.

    The ``engine="soa"`` work unit: the batch advances through
    :func:`repro.core.soa.run_point_batch` (compiled lanes when the
    point's strategies are covered, interleaved reference runs
    otherwise).  Returns the engine's ``RunResult`` objects in seed
    order -- for native lanes those are built straight from
    ``LaneState.result()`` arrays, and in-process executors hand them
    back to the drain loop without any payload-dict round trip.
    """
    return run_point_batch(
        lambda seed, observers=(): build_simulator(
            spec, seed, trace=trace, observers=observers
        ),
        seeds,
    )


def run_spec_batch(
    spec: PointSpec,
    seeds: Sequence[int],
    trace: Sequence[TraceJob] | None = None,
) -> list[dict[str, float]]:
    """Dict form of :func:`run_spec_batch_results` (the picklable
    process-pool work unit).  Results are in seed order and
    bit-identical to ``[run_spec_replication(spec, s, trace) for s in
    seeds]``."""
    results = run_spec_batch_results(spec, seeds, trace)
    return [{m: r.metric(m) for m in METRICS} for r in results]


#: task-trace marker prefix: fetch the external trace from the worker
#: process's registry under the fingerprint after the ``:`` (shipped once
#: per worker -- by fork inheritance or the pool initializer -- not
#: pickled into every task)
_TRACE_FROM_INITIALIZER = "@trace"

#: per-process registry of external traces, keyed by
#: :func:`trace_fingerprint`.  Populated in the parent before a fork
#: start (children inherit it, so the initializer is skipped) or by
#: :func:`_set_worker_trace` under spawn.
_WORKER_TRACES: dict[str, list[TraceJob]] = {}


def _set_worker_trace(
    fingerprint: str, trace: Sequence[TraceJob] | None
) -> None:
    """Pool initializer: register an external trace under its fingerprint."""
    if trace is not None:
        _WORKER_TRACES[fingerprint] = list(trace)


def _trace_marker(trace: Sequence[TraceJob]) -> str:
    return f"{_TRACE_FROM_INITIALIZER}:{trace_fingerprint(trace)}"


def _resolve_task_trace(
    trace: Sequence[TraceJob] | str | None,
) -> Sequence[TraceJob] | None:
    """Turn a task's trace field into the actual trace (or ``None``)."""
    if not isinstance(trace, str):
        return trace
    fingerprint = trace.partition(":")[2]
    resolved = _WORKER_TRACES.get(fingerprint)
    if resolved is None:
        raise RuntimeError(
            f"worker has no registered trace for {fingerprint!r}; "
            "the pool initializer did not run"
        )
    return resolved


def _run_task(
    task: tuple[PointSpec, int, Sequence[TraceJob] | str | None],
) -> dict[str, float]:
    spec, seed, trace = task
    return run_spec_replication(spec, seed, _resolve_task_trace(trace))


#: inflight-map marker for a whole-batch (lockstep) task
_BATCH = "__batch__"


def _run_batch_task(
    task: tuple[PointSpec, tuple[int, ...], Sequence[TraceJob] | str | None],
) -> list[dict[str, float]]:
    spec, seeds, trace = task
    return run_spec_batch(spec, seeds, _resolve_task_trace(trace))


def _run_task_raw(task: tuple[PointSpec, int, Sequence[TraceJob] | None]):
    """Zero-copy work unit for in-process executors: the ``RunResult``
    itself, no metric-dict materialisation in the worker."""
    spec, seed, trace = task
    return build_simulator(spec, seed, trace=trace).run()


def _run_batch_task_raw(
    task: tuple[PointSpec, tuple[int, ...], Sequence[TraceJob] | None],
) -> list:
    """Zero-copy batch work unit (see :func:`run_spec_batch_results`)."""
    spec, seeds, trace = task
    return run_spec_batch_results(spec, seeds, trace)


# ---------------------------------------------------------------- executors
class Executor(Protocol):
    """Minimal future-based task interface the campaign engine needs."""

    jobs: int

    def submit(self, fn: Callable, task) -> futures.Future:
        """Schedule ``fn(task)``; the future resolves to its result."""
        ...

    def close(self) -> None:
        """Release any worker resources (idempotent)."""
        ...


class SerialExecutor:
    """Run tasks in-process, one at a time (the default).

    ``submit`` executes the task immediately and returns an
    already-resolved future, so the campaign's drain loop observes the
    same completion protocol as with a pool.
    """

    jobs = 1

    def submit(self, fn: Callable, task) -> futures.Future:
        """Run ``fn(task)`` now; return the already-resolved future."""
        fut: futures.Future = futures.Future()
        try:
            fut.set_result(fn(task))
        except Exception as exc:  # surfaced by fut.result();
            fut.set_exception(exc)  # KeyboardInterrupt propagates now
        return fut

    def close(self) -> None:
        """Nothing to release for in-process execution."""


class ThreadPoolExecutor:
    """Fan tasks out over ``jobs`` in-process worker threads.

    The GIL-free fast path: when a point runs on the compiled SoA lane
    driver, the whole per-batch event loop executes inside one ctypes
    call, and ctypes releases the GIL for the duration of every foreign
    call (:mod:`repro.core._soa_native`'s GIL-release contract).  Lanes
    of different points therefore run genuinely in parallel while
    sharing the process's :class:`~repro.workload.columnar.BlockCache`,
    parse-once trace columns and result store -- no worker startup, no
    pickling, no per-worker re-parsing.  Pure-Python (reference-engine)
    tasks still time-share the GIL under this executor; the campaign's
    executor auto-selection only defaults to threads when the native
    driver can actually carry the work.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"ThreadPoolExecutor needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self._pool: futures.ThreadPoolExecutor | None = None

    def submit(self, fn: Callable, task) -> futures.Future:
        """Submit ``fn(task)`` to the pool (started lazily on first use)."""
        if self._pool is None:
            self._pool = futures.ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="repro-campaign"
            )
        return self._pool.submit(fn, task)

    def close(self) -> None:
        """Shut the pool down (a later submit would restart it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessPoolExecutor:
    """Fan tasks out over ``jobs`` worker processes.

    A thin adapter around :class:`concurrent.futures.ProcessPoolExecutor`
    that starts its workers lazily.  ``initializer``/``initargs`` run
    once per worker process (the campaign uses them to ship an external
    trace once instead of pickling it into every task)."""

    def __init__(self, jobs: int, initializer: Callable | None = None,
                 initargs: tuple = ()) -> None:
        if jobs < 2:
            raise ValueError("ProcessPoolExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs
        self._initializer = initializer
        self._initargs = initargs
        self._pool: futures.ProcessPoolExecutor | None = None

    def submit(self, fn: Callable, task) -> futures.Future:
        """Submit ``fn(task)`` to the pool (started lazily on first use)."""
        if self._pool is None:
            self._pool = futures.ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        return self._pool.submit(fn, task)

    def close(self) -> None:
        """Shut the pool down (a later submit would restart it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


#: the valid ``--executor`` choices (``None`` means auto-select)
EXECUTOR_KINDS = ("serial", "thread", "process")


def _thread_executor_viable(specs: Iterable[PointSpec]) -> bool:
    """True when a thread pool would actually parallelise ``specs``:
    the native lane driver is importable AND every point runs on the
    SoA engine (reference-engine points are pure Python and would
    time-share the GIL)."""
    if _soa_native.load_kernel() is None:
        return False
    return all(spec.run_config.engine == "soa" for spec in specs)


def make_executor(
    jobs: int,
    kind: str | None = None,
    specs: Iterable[PointSpec] = (),
) -> Executor:
    """Build the executor for a campaign run.

    ``kind`` is one of :data:`EXECUTOR_KINDS` or ``None`` for
    auto-selection: serial when ``jobs <= 1``, otherwise **thread**
    when the native SoA driver is available and every spec in ``specs``
    runs on it (the GIL-released fast path), falling back to
    **process** for GIL-bound reference-engine work.  An explicit
    ``kind`` is honoured verbatim, except that a process pool cannot
    run with fewer than two workers and degrades to serial.
    """
    if kind is not None and kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown executor {kind!r}; choose from {EXECUTOR_KINDS}"
        )
    if kind is None:
        if jobs <= 1:
            kind = "serial"
        elif _thread_executor_viable(specs):
            kind = "thread"
        else:
            kind = "process"
    if kind == "process" and jobs < 2:
        kind = "serial"
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadPoolExecutor(max(1, jobs))
    return ProcessPoolExecutor(jobs)


# --------------------------------------------------------------- dispatch
class _CostModel:
    """Longest-estimated-first dispatch costs.

    A point's *base* cost follows the issue's a-priori model --
    ``load x mean(replication bounds) x stream length`` (trace prefix
    length for replay points, the completion target otherwise) -- and
    is refined online: each observed batch runtime updates an
    exponential moving average of seconds-per-base-unit for the point's
    ``(workload, alloc, sched)`` class, so later picks order by what
    similar cells actually cost on this machine.  Estimates only order
    the pending queue; they never touch simulation state, so dispatch
    order cannot perturb results.
    """

    #: EMA weight of the newest observation
    ALPHA = 0.5

    def __init__(self) -> None:
        self._rates: dict[tuple[str, str, str], float] = {}

    @staticmethod
    def _class_key(spec: PointSpec) -> tuple[str, str, str]:
        return (spec.workload, spec.alloc, spec.sched)

    @staticmethod
    def _stream_length(spec: PointSpec) -> int:
        if "real" in spec.workload and spec.scale.trace_max_jobs:
            return spec.scale.trace_max_jobs
        return spec.run_config.jobs

    def base(self, spec: PointSpec) -> float:
        """The a-priori per-point work estimate (arbitrary units)."""
        lo, hi = spec.replication_bounds
        reps = (lo + hi) / 2.0
        return max(spec.load, 1e-9) * reps * self._stream_length(spec)

    def estimate(self, spec: PointSpec) -> float:
        """Estimated wall-clock cost (base units scaled by the observed
        per-class rate; unobserved classes use the mean known rate)."""
        rate = self._rates.get(self._class_key(spec))
        if rate is None:
            rate = (
                sum(self._rates.values()) / len(self._rates)
                if self._rates else 1.0
            )
        return self.base(spec) * rate

    def observe(self, spec: PointSpec, seconds: float, seeds: int) -> None:
        """Fold one completed batch's wall time into the class rate."""
        if seconds <= 0.0 or seeds <= 0:
            return
        per_rep_base = self.base(spec) * 2.0 / (
            sum(spec.replication_bounds) or 1
        )
        if per_rep_base <= 0.0:
            return
        rate = (seconds / seeds) / per_rep_base
        key = self._class_key(spec)
        old = self._rates.get(key)
        self._rates[key] = (
            rate if old is None else old + self.ALPHA * (rate - old)
        )


# ----------------------------------------------------------------- campaign
class Campaign:
    """A deduplicated set of simulation points and the engine to run it."""

    def __init__(
        self,
        points: Iterable[PointSpec],
        trace: Sequence[TraceJob] | None = None,
    ) -> None:
        unique: dict[str, PointSpec] = {}
        for spec in points:
            unique.setdefault(spec.key(), spec)
        #: unique points in first-seen order
        self.points: tuple[PointSpec, ...] = tuple(unique.values())
        self.trace = list(trace) if trace is not None else None

    # ------------------------------------------------------------- builders
    @classmethod
    def from_figures(
        cls,
        fig_ids: Sequence[str],
        scale: str | Scale = "smoke",
        config: SimConfig = PAPER_CONFIG,
        network_mode: str | None = None,
        trace: Sequence[TraceJob] | None = None,
    ) -> "Campaign":
        """The union of cells needed to regenerate ``fig_ids``.

        Figures sharing a sweep (e.g. figs 3/6/9/12/15 all read the
        uniform workload) contribute the same specs, which collapse in
        the constructor's dedup pass.
        """
        sc = Scale.by_name(scale) if isinstance(scale, str) else scale
        source = trace_fingerprint(trace) if trace is not None else "sdsc"
        specs = []
        for fig_id in fig_ids:
            spec = FIGURES[fig_id]
            for alloc, sched in spec.combos:
                for load in spec.loads_for(sc.name):
                    specs.append(PointSpec(
                        workload=spec.workload, load=load,
                        alloc=alloc, sched=sched, scale=sc, config=config,
                        network_mode=network_mode, trace_source=source,
                    ))
        return cls(specs, trace=trace)

    @classmethod
    def sweep(
        cls,
        workloads: Sequence[str],
        loads: Sequence[float],
        allocs: Sequence[str],
        scheds: Sequence[str],
        scale: str | Scale = "smoke",
        config: SimConfig = PAPER_CONFIG,
        network_mode: str | None = None,
        trace: Sequence[TraceJob] | None = None,
        channels: Sequence[str | None] = (None,),
        arqs: Sequence[str | None] = (None,),
    ) -> "Campaign":
        """A user-defined full-factorial grid sweep.

        ``channels``/``arqs`` add lossy-interconnect axes: each entry is
        a channel policy spec / ARQ protocol applied through the point's
        config (``None`` keeps the config's own setting).
        """
        sc = Scale.by_name(scale) if isinstance(scale, str) else scale
        source = trace_fingerprint(trace) if trace is not None else "sdsc"
        configs = [
            config if ch is None and aq is None else config.with_(
                channel=config.channel if ch is None else ch,
                arq=config.arq if aq is None else aq,
            )
            for ch in channels for aq in arqs
        ]
        specs = [
            PointSpec(
                workload=w, load=ld, alloc=a, sched=s, scale=sc,
                config=cfg, network_mode=network_mode, trace_source=source,
            )
            for cfg in configs
            for w in workloads for ld in loads for a in allocs for s in scheds
        ]
        return cls(specs, trace=trace)

    # ------------------------------------------------------------ execution
    def _prime_fork_state(self, specs: Iterable[PointSpec]) -> None:
        """Parse traces and derive replay columns once in the parent
        before a fork-started pool spins up.

        The memo caches involved (:func:`sdsc_trace`'s trace memo,
        :class:`~repro.workload.trace.TraceWorkload`'s column memo and
        the columnar block cache) are module globals, so fork children
        inherit the parsed state instead of every worker re-parsing the
        trace from scratch on its first task.
        """
        seen: set[tuple] = set()
        for spec in specs:
            if "real" not in spec.workload:
                continue
            key = (spec.workload, spec.load, spec.scale, spec.run_config)
            if key in seen:
                continue
            seen.add(key)
            workload = make_workload(
                spec.workload, spec.run_config, spec.load, spec.scale,
                trace=self.trace,
            )
            # pulling the first block forces trace parse + column
            # derivation into the parent's (inherited) memo caches
            next(workload.blocks(spec.run_config.seed, 8), None)

    def _process_pool(
        self, jobs: int, specs: Iterable[PointSpec]
    ) -> tuple[Sequence[TraceJob] | str | None, "ProcessPoolExecutor"]:
        """A process pool plus the per-task trace field to use with it.

        Fork-started workers inherit the parent's parsed state, so the
        parent primes the trace/column memos up front
        (:meth:`_prime_fork_state`), registers any external trace in the
        worker registry, and skips the pool initializer entirely.
        Spawn-started workers inherit nothing: the external trace ships
        once per worker via the initializer instead.  Either way tasks
        carry only a small fingerprint marker, never the trace itself.
        """
        fork = multiprocessing.get_start_method() == "fork"
        if fork:
            self._prime_fork_state(specs)
        if self.trace is None:
            return None, ProcessPoolExecutor(jobs)
        marker = _trace_marker(self.trace)
        fingerprint = marker.partition(":")[2]
        if fork:
            _WORKER_TRACES[fingerprint] = list(self.trace)
            return marker, ProcessPoolExecutor(jobs)
        return marker, ProcessPoolExecutor(
            jobs, initializer=_set_worker_trace,
            initargs=(fingerprint, self.trace),
        )

    def run(
        self,
        jobs: int = 1,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        progress: Callable[[str], None] | None = None,
        executor_kind: str | None = None,
        on_point: Callable[[PointSpec, PointResult, int, int], None] | None = None,
    ) -> dict[PointSpec, PointResult]:
        """Execute every point (replications included); returns a
        :class:`PointResult` (metric means + replication summaries) per
        spec.  Results are read from / written to the shared result
        store, so repeated campaigns and overlapping figure sets only
        ever simulate a cell once.

        ``executor_kind`` picks the backend (:data:`EXECUTOR_KINDS`);
        ``None`` auto-selects: serial for ``jobs <= 1``, threads when
        the native SoA driver carries every pending point (the GIL-free
        fast path), a process pool otherwise.  The choice never affects
        results -- replication seeds are a pure function of the spec,
        and batches are fed to the replication controller in seed
        order regardless of completion order.

        ``on_point`` is a structured progress hook: it is called as
        ``on_point(spec, result, done, total)`` once per point --
        immediately for cache hits, then as each remaining point
        finishes -- which is what the campaign service streams live
        job progress from.  Like ``progress``, it observes and must not
        mutate campaign state.
        """
        note = progress if progress is not None else (lambda _msg: None)
        store = cache if cache is not None else global_cache()
        results: dict[PointSpec, PointResult] = {}
        controllers: dict[PointSpec, ReplicationController] = {}
        for spec in self.points:
            hit = store.get(spec.key())
            if hit is not None:
                results[spec] = PointResult.from_payload(hit)
            else:
                controllers[spec] = spec.controller()
        done = len(results)
        total = len(self.points)
        if done:
            note(f"{done}/{total} points already cached")
        if on_point is not None:
            for i, (spec, hit_result) in enumerate(results.items(), start=1):
                on_point(spec, hit_result, i, total)
        if not controllers:
            return results

        own_executor = executor is None
        in_process = False
        task_trace: Sequence[TraceJob] | str | None = self.trace
        if executor is not None:
            exe = executor
        else:
            kind = executor_kind
            if kind is not None and kind not in EXECUTOR_KINDS:
                raise ValueError(
                    f"unknown executor {kind!r}; choose from {EXECUTOR_KINDS}"
                )
            if kind is None:
                if jobs <= 1:
                    kind = "serial"
                elif _thread_executor_viable(controllers):
                    kind = "thread"
                else:
                    kind = "process"
            if kind == "process" and jobs < 2:
                kind = "serial"
            if kind == "process":
                task_trace, exe = self._process_pool(jobs, controllers)
            elif kind == "thread":
                exe = ThreadPoolExecutor(max(1, jobs))
                in_process = True
            else:
                exe = SerialExecutor()
                in_process = True
        # in-process executors skip the payload-dict round trip: tasks
        # hand back RunResult objects (for native lanes, built straight
        # from LaneState.result() arrays) and the drain loop reads the
        # metrics directly.  Process pools keep the picklable dict form.
        run_batch: Callable = _run_batch_task_raw if in_process else _run_batch_task
        run_one: Callable = _run_task_raw if in_process else _run_task

        # completion-driven drain: finished points flush to the store in
        # coalesced batches (one directory fsync per drained round), so
        # an interrupted campaign loses at most the rounds in flight,
        # and unconverged points resubmit seeds without waiting on
        # unrelated cells.  New work dispatches longest-estimated-first
        # from a single pending queue, topped up whenever the in-flight
        # window (2x the worker count) has room.
        model = _CostModel()
        pending: list[PointSpec] = list(controllers)
        window = max(1, exe.jobs) * 2 if exe.jobs > 1 else 1
        inflight: dict[futures.Future, tuple[PointSpec, int | str]] = {}
        batch_seeds: dict[PointSpec, tuple[int, ...]] = {}
        batch_got: dict[PointSpec, dict[int, dict[str, float]]] = {}
        batch_started: dict[PointSpec, float] = {}
        writes: list[tuple[str, dict]] = []

        def submit_batch(spec: PointSpec) -> None:
            seeds = controllers[spec].next_seeds()
            batch_seeds[spec] = seeds
            batch_got[spec] = {}
            batch_started[spec] = time.perf_counter()
            if spec.run_config.engine == "soa":
                # one lockstep task per batch: the whole seed set
                # advances together (repro.core.soa)
                inflight[exe.submit(run_batch, (spec, seeds, task_trace))] = (
                    spec,
                    _BATCH,
                )
                return
            for seed in seeds:
                inflight[exe.submit(run_one, (spec, seed, task_trace))] = (
                    spec, seed,
                )

        def as_metrics(result) -> dict[str, float]:
            if isinstance(result, dict):
                return result
            return {m: result.metric(m) for m in METRICS}

        def process(fut: futures.Future, resubmit: bool = True) -> None:
            nonlocal done
            spec, seed = inflight.pop(fut)
            if seed == _BATCH:
                for s, r in zip(batch_seeds[spec], fut.result()):
                    batch_got[spec][s] = as_metrics(r)
            else:
                batch_got[spec][seed] = as_metrics(fut.result())
            if len(batch_got[spec]) < len(batch_seeds[spec]):
                return
            ctrl = controllers[spec]
            model.observe(
                spec,
                time.perf_counter() - batch_started.pop(spec),
                len(batch_seeds[spec]),
            )
            # feed in seed order: controller state must not depend on
            # worker completion order (serial/parallel equivalence)
            ctrl.add_batch([batch_got[spec][s] for s in batch_seeds[spec]])
            del batch_seeds[spec], batch_got[spec]
            if not ctrl.finished:
                # a continuation batch bypasses the pending queue: its
                # point is already the campaign's critical path
                if resubmit:
                    submit_batch(spec)
                return
            rep = ctrl.result()
            out = PointResult.from_replication(rep)
            writes.append((spec.key(), out.to_payload()))
            results[spec] = out
            del controllers[spec]
            done += 1
            note(
                f"[{done}/{total}] {spec.label()} "
                f"({rep.replications} rep{'s' if rep.replications != 1 else ''})"
            )
            if on_point is not None:
                on_point(spec, out, done, total)

        def top_up() -> None:
            while pending and len(inflight) < window:
                nxt = max(pending, key=model.estimate)
                pending.remove(nxt)
                submit_batch(nxt)

        def flush() -> None:
            if writes:
                store.put_many(writes)
                writes.clear()

        try:
            while pending or inflight:
                top_up()
                ready, _ = futures.wait(
                    tuple(inflight), return_when=futures.FIRST_COMPLETED
                )
                for fut in ready:
                    process(fut)
                flush()
        finally:
            # Harvest work that finished while the loop was being torn
            # down (KeyboardInterrupt mid-wait, executor failure): those
            # futures hold completed replications that would otherwise
            # be dropped.  With resubmission off, this only folds results
            # into ``writes`` -- so the flush below loses at most the
            # batch genuinely still in flight, matching the store's
            # "one drain round" durability contract.
            for fut in [f for f in tuple(inflight) if f.done()]:
                try:
                    process(fut, resubmit=False)
                except BaseException:  # noqa: BLE001 - teardown best-effort
                    continue
            flush()
            if own_executor:
                exe.close()
        return results
