"""Trajectory analysis: series diffing, saturation scans, knee figures.

This is the report-level layer over :mod:`repro.stats.series`: it knows
how trajectories are embedded in ``--out`` reports (the stable
:meth:`~repro.core.hooks.TrajectoryObserver.series` export) and how the
campaign machinery runs points, and provides the three trajectory
features the CLI exposes:

* :func:`diff_trajectories` -- per-series
  :class:`~repro.stats.series.SeriesDiff` between two embedded
  trajectory payloads (``repro diff --trajectories``), with series
  verdicts folded into the scalar verdict space so golden-master gates
  treat a diverged *shape* exactly like a regressed *mean*;
* :func:`scan_saturation` -- an online saturation scan: climb a
  geometric load ladder, one (cached) simulation point per rung, until
  :func:`repro.stats.series.detect_saturation` confirms the utilization
  knee.  This replaces the hand-picked ``SATURATION_LOADS`` constants
  (``--auto-saturation``);
* :func:`run_saturation_figure` -- regenerate a saturation bar chart
  (figs 8-10) at the *detected* knee instead of the pinned constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.config import PAPER_CONFIG, SimConfig
from repro.experiments.campaign import (
    Campaign,
    PointResult,
    PointSpec,
    Scale,
    trace_fingerprint,
)
from repro.experiments.figures import (
    FIGURES,
    SATURATION_LOADS,
    combo_label,
    sweep_ceiling,
)
from repro.experiments.runner import FigureResult, run_point
from repro.experiments.store import ResultCache
from repro.stats import compare as _compare
from repro.stats import series as _series
from repro.stats.series import SeriesDiff, detect_saturation, geometric_ladder
from repro.workload.trace import TraceJob

#: series verdict -> scalar metric verdict, for gate aggregation: a
#: diverged trajectory trips ``--fail-on-regress`` exactly like a
#: regressed mean (shape drift has no "improved" direction)
SERIES_TO_METRIC_VERDICT: Mapping[str, str] = {
    _series.IDENTICAL: _compare.IDENTICAL,
    _series.WITHIN_BAND: _compare.INDISTINGUISHABLE,
    _series.DIVERGED: _compare.REGRESSED,
}


def trajectory_series_names(trajectory: Mapping[str, Sequence]) -> list[str]:
    """The comparable series names of a trajectory payload.

    Args:
        trajectory: a :meth:`TrajectoryObserver.series` export.

    Returns:
        Every key except the ``times`` axis, in payload order.
    """
    return [k for k in trajectory if k != "times"]


def diff_trajectories(
    a: Mapping[str, Sequence[float]],
    b: Mapping[str, Sequence[float]],
    atol: float = 0.0,
    rtol: float = 0.0,
) -> dict[str, SeriesDiff]:
    """Compare two embedded trajectory payloads series by series.

    Both payloads are resampled onto their union time grid
    (carry-forward, see :func:`repro.stats.series.resample`), then every
    series name the two share is classified with
    :func:`repro.stats.series.diff_series`.

    Args:
        a: baseline trajectory (``times`` plus parallel series).
        b: candidate trajectory.
        atol: absolute per-sample tolerance-band half-width.
        rtol: relative per-sample tolerance-band half-width.

    Returns:
        ``{series_name: SeriesDiff}`` for every shared series; empty
        when either side has no ``times`` axis (no trajectory recorded).
    """
    times_a = a.get("times")
    times_b = b.get("times")
    if not times_a or not times_b:
        return {}
    shared = [k for k in trajectory_series_names(a) if k in b]
    return {
        name: _series.diff_series(
            name, times_a, a[name], times_b, b[name], atol=atol, rtol=rtol
        )
        for name in shared
    }


def trajectory_verdict(diffs: Mapping[str, SeriesDiff]) -> str:
    """Fold per-series verdicts into one scalar-space verdict.

    Args:
        diffs: the output of :func:`diff_trajectories`.

    Returns:
        ``identical`` / ``indistinguishable`` / ``regressed`` -- the
        worst series verdict, mapped through
        :data:`SERIES_TO_METRIC_VERDICT`.
    """
    worst = _series.worst_series_verdict([d.verdict for d in diffs.values()])
    return SERIES_TO_METRIC_VERDICT[worst]


# ----------------------------------------------------------- saturation scan
@dataclass(frozen=True, slots=True)
class SaturationScan:
    """One saturation scan: the ladder climbed and the knee found."""

    workload: str
    alloc: str
    sched: str
    scale: str
    #: ladder loads actually simulated (the scan stops at the knee)
    loads: tuple[float, ...]
    utilization: tuple[float, ...]
    #: mean waiting time per rung -- the backlog signal corroborating
    #: that a utilization plateau is saturation, not a lull
    mean_wait: tuple[float, ...]
    rel_tol: float
    confirm: int
    #: index into ``loads`` of the confirmed knee (``None``: no plateau)
    knee_index: int | None

    @property
    def knee(self) -> float | None:
        """The detected saturation load, or ``None``."""
        return None if self.knee_index is None else self.loads[self.knee_index]

    @property
    def saturated(self) -> bool:
        """Whether the scan confirmed a knee before the ladder ran out."""
        return self.knee_index is not None

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--out`` report's saturation block)."""
        return {
            "workload": self.workload,
            "alloc": self.alloc,
            "sched": self.sched,
            "scale": self.scale,
            "loads": list(self.loads),
            "utilization": list(self.utilization),
            "mean_wait": list(self.mean_wait),
            "rel_tol": self.rel_tol,
            "confirm": self.confirm,
            "knee_index": self.knee_index,
            "knee": self.knee,
            "saturated": self.saturated,
        }

    def format(self) -> str:
        """One-line-per-rung human-readable scan summary."""
        lines = [
            f"saturation scan: {self.workload} {self.alloc}({self.sched}) "
            f"scale={self.scale} rel_tol={self.rel_tol:g} confirm={self.confirm}"
        ]
        for i, (load, util, wait) in enumerate(
            zip(self.loads, self.utilization, self.mean_wait)
        ):
            mark = "  <- knee" if i == self.knee_index else ""
            lines.append(
                f"  load={load:.6g} util={util:.4f} wait={wait:.1f}{mark}"
            )
        if self.saturated:
            lines.append(f"detected saturation load: {self.knee:.6g}")
        else:
            lines.append("no saturation knee confirmed (ladder exhausted)")
        return "\n".join(lines)


def scan_saturation(
    workload: str,
    alloc: str = "GABL",
    sched: str = "FCFS",
    scale: str | Scale = "smoke",
    config: SimConfig = PAPER_CONFIG,
    network_mode: str | None = None,
    trace: Sequence[TraceJob] | None = None,
    cache: ResultCache | None = None,
    jobs: int = 1,
    start: float | None = None,
    factor: float = 1.5,
    max_steps: int = 8,
    rel_tol: float = 0.03,
    confirm: int = 2,
) -> SaturationScan:
    """Find a workload's saturation knee by climbing a load ladder.

    The scan is *online*: rungs of the geometric ladder
    (:func:`repro.stats.series.geometric_ladder`) are simulated one at a
    time -- through the ordinary campaign machinery, so rungs hit the
    shared result cache -- and the scan stops at the first load where
    :func:`repro.stats.series.detect_saturation` confirms a utilization
    plateau with a still-growing backlog (mean waiting time).

    Args:
        workload: base name or pipeline spec, as accepted by
            :func:`repro.experiments.campaign.make_workload`.
        alloc: allocator climbing the ladder.
        sched: scheduler climbing the ladder.
        scale: fidelity preset (name or :class:`Scale`).
        config: base simulation config.
        network_mode: network backend override.
        trace: external trace for ``real`` sources.
        cache: result store (default: the global sharded cache).
        jobs: worker processes per rung's replications.
        start: ladder anchor load; defaults to the workload's figure
            sweep ceiling (:func:`repro.experiments.figures.sweep_ceiling`)
            and is required for pipeline workloads.
        factor: geometric ladder step (> 1).
        max_steps: rung budget before giving up.
        rel_tol: plateau flatness tolerance (relative utilization growth).
        confirm: consecutive flat rungs required to confirm the knee.

    Returns:
        A :class:`SaturationScan`; its ``knee`` is ``None`` when the
        ladder ran out before a plateau was confirmed.
    """
    sc = Scale.by_name(scale) if isinstance(scale, str) else scale
    if start is None:
        start = sweep_ceiling(workload)
    ladder = geometric_ladder(start, factor=factor, max_steps=max_steps)
    loads: list[float] = []
    utils: list[float] = []
    waits: list[float] = []
    knee_index: int | None = None
    for load in ladder:
        result = run_point(
            workload, load, alloc, sched, scale=sc, config=config,
            network_mode=network_mode, cache=cache, trace=trace, jobs=jobs,
        )
        loads.append(load)
        utils.append(result["utilization"])
        waits.append(result["mean_wait"])
        knee_index = detect_saturation(
            utils, waits, rel_tol=rel_tol, confirm=confirm
        )
        if knee_index is not None:
            break
    return SaturationScan(
        workload=workload,
        alloc=alloc,
        sched=sched,
        scale=sc.name,
        loads=tuple(loads),
        utilization=tuple(utils),
        mean_wait=tuple(waits),
        rel_tol=rel_tol,
        confirm=confirm,
        knee_index=knee_index,
    )


def run_saturation_figure(
    fig_id: str,
    scale: str | Scale = "smoke",
    config: SimConfig = PAPER_CONFIG,
    network_mode: str | None = None,
    trace: Sequence[TraceJob] | None = None,
    cache: ResultCache | None = None,
    jobs: int = 1,
    rel_tol: float = 0.03,
    confirm: int = 2,
) -> tuple[FigureResult, SaturationScan, dict[PointSpec, PointResult]]:
    """Regenerate a saturation bar chart at the *detected* knee.

    The scan runs once with the figure's primary combo; every combo is
    then simulated at the detected load (falling back to the pinned
    ``SATURATION_LOADS`` constant, with ``saturated=False`` recorded,
    if the ladder runs out).

    Args:
        fig_id: one of the saturation figures (``fig8``/``fig9``/``fig10``).
        scale: fidelity preset.
        config: base simulation config.
        network_mode: network backend override.
        trace: external trace for the real workload.
        cache: result store override.
        jobs: worker processes.
        rel_tol: plateau flatness tolerance.
        confirm: consecutive flat rungs required.

    Returns:
        ``(figure, scan, points)`` -- the regenerated figure series at
        the knee load, the scan evidence, and the raw per-spec results
        (for ``--out`` reports).
    """
    spec = FIGURES[fig_id]
    if not spec.saturation:
        raise ValueError(
            f"{fig_id} is a load-sweep figure; --auto-saturation applies to "
            "the saturation bar charts (fig8/fig9/fig10)"
        )
    sc = Scale.by_name(scale) if isinstance(scale, str) else scale
    alloc, sched = spec.combos[0]
    scan = scan_saturation(
        spec.workload, alloc=alloc, sched=sched, scale=sc, config=config,
        network_mode=network_mode, trace=trace, cache=cache, jobs=jobs,
        rel_tol=rel_tol, confirm=confirm,
    )
    load = scan.knee if scan.knee is not None else SATURATION_LOADS[spec.workload]
    source = trace_fingerprint(trace) if trace is not None else "sdsc"
    cells = [
        PointSpec(
            workload=spec.workload, load=load, alloc=a, sched=s,
            scale=sc, config=config, network_mode=network_mode,
            trace_source=source,
        )
        for a, s in spec.combos
    ]
    campaign = Campaign(cells, trace=trace)
    points = campaign.run(jobs=jobs, cache=cache)
    series = {
        combo_label(a, s): (points[cell][spec.metric],)
        for (a, s), cell in zip(spec.combos, cells)
    }
    figure = FigureResult(spec=spec, loads=(load,), series=series)
    return figure, scan, points
