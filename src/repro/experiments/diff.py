"""Statistical diffing of campaign/scenario reports (``repro diff``).

Two ``--out`` reports -- from a scenario run or a ``sweep`` campaign --
are aligned point-by-point via the structured :meth:`PointSpec.key`
cache keys each report embeds, then every shared metric is classified
with :func:`repro.stats.compare.compare_metric`:

* ``identical``          -- means float-equal, bit for bit;
* ``indistinguishable``  -- Welch's t-test cannot reject equality at
  ``alpha`` (or the delta is inside ``rel_tol`` for deterministic cells);
* ``improved``/``regressed`` -- significant, signed by the metric's
  orientation (utilization up is good, turnaround up is bad).

With ``--trajectories`` the comparison also covers the *shape* of each
run: the trajectory series scenario reports embed (queue length,
utilization, throughput vs. time) are resampled onto a common grid and
classified per sample (:mod:`repro.experiments.trajectory`), so a
golden master pins dynamics a scalar mean cannot see.  A diverged
series gates exactly like a regressed mean.

Alignment tolerates grid subsets/supersets: points present on only one
side are reported, not fatal, so a widened sweep can still be compared
against an older baseline.  A report written before schema 2 (no
replication summaries, no point keys) is rejected with a clear error --
regenerate it with a current ``--out``.

CLI::

    repro diff a.json b.json [--metric M ...] [--alpha A] [--rel-tol T]
               [--trajectories] [--traj-atol T] [--traj-rtol T]
               [--fail-on-regress] [--out diff.json]

Exit codes: ``0`` clean (or differences without ``--fail-on-regress``),
``1`` at least one ``regressed`` verdict (a regressed mean *or* a
diverged trajectory) under ``--fail-on-regress``, ``2`` malformed or
old-schema reports, disjoint grids, or ``--trajectories`` against
reports with no embedded series -- usable directly as a CI gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.experiments.campaign import METRICS, PointResult, PointSpec
from repro.stats.compare import (
    IDENTICAL,
    REGRESSED,
    MetricComparison,
    MetricSummary,
    compare_metric,
    worst_verdict,
)
from repro.stats.series import SeriesDiff

#: report schema this differ reads and writes.  Schema 1 = the pre-1.3
#: scenario reports without point keys or replication summaries
#: (rejected); schema 2 added point keys + replication summaries;
#: schema 3 (current) embeds trajectory series per point and an optional
#: top-level ``saturation`` block.  Schema-2 reports remain readable.
REPORT_SCHEMA = 3

#: oldest report schema :func:`parse_report` still accepts
MIN_REPORT_SCHEMA = 2


class DiffError(ValueError):
    """A report cannot be read, parsed, or aligned."""


# ------------------------------------------------------------------ reports
def campaign_report(
    points: Sequence[PointSpec],
    results: Mapping[PointSpec, PointResult],
    name: str = "campaign",
    kind: str = "campaign",
    trajectories: Mapping[str, Mapping] | None = None,
    saturation: Mapping | Sequence[Mapping] | None = None,
) -> dict:
    """The machine-readable report for a set of campaign points.

    This is the ``sweep --out`` format; scenario reports embed the same
    per-point payload (plus trajectories) so ``repro diff`` reads both.

    Args:
        points: the report's point specs, in order.
        results: per-spec results.
        name: report name (shown in diff headers).
        kind: report kind tag (``campaign``/``figures``/...).
        trajectories: optional ``{spec.label(): series}`` trajectory
            payloads to embed per point.
        saturation: optional saturation-scan block(s)
            (:meth:`~repro.experiments.trajectory.SaturationScan.to_dict`).

    Returns:
        A schema-``REPORT_SCHEMA`` report document.
    """
    entries = []
    for spec in points:
        entry = point_payload(spec, results[spec])
        if trajectories:
            entry["trajectory"] = dict(trajectories.get(spec.label(), {}))
        entries.append(entry)
    report = {
        "schema": REPORT_SCHEMA,
        "kind": kind,
        "name": name,
        "metric_names": list(METRICS),
        "points": entries,
    }
    if saturation is not None:
        report["saturation"] = saturation
    return report


def point_payload(spec: PointSpec, result: PointResult) -> dict:
    """One point's report entry: identity key + means + summaries.

    Tolerates a plain mean mapping in place of a :class:`PointResult`
    (then no summaries are embedded and the differ degrades to
    mean-only classification for the point).
    """
    return {
        "key": spec.key(),
        "label": spec.label(),
        "workload": spec.workload,
        "load": spec.load,
        "alloc": spec.alloc,
        "sched": spec.sched,
        "metrics": dict(result),
        "stats": {
            m: s.to_dict() for m, s in getattr(result, "stats", {}).items()
        },
        "replications": getattr(result, "replications", 0),
    }


@dataclass(frozen=True, slots=True)
class ReportPoint:
    """One parsed report point (identity + metric summaries + series)."""

    key: str
    label: str
    metrics: Mapping[str, float]
    stats: Mapping[str, MetricSummary]
    replications: int
    #: grid coordinates, when the report carries them (schema >= 2 does)
    workload: str | None = None
    load: float | None = None
    alloc: str | None = None
    sched: str | None = None
    #: embedded trajectory series (schema 3); empty when none recorded
    trajectory: Mapping[str, list] = field(default_factory=dict)

    def summary(self, metric: str) -> MetricSummary:
        """The metric's replication summary; a mean-only report entry
        degrades to a deterministic single observation (n=1), which the
        comparator classifies by relative delta alone."""
        hit = self.stats.get(metric)
        if hit is not None:
            return hit
        return MetricSummary(mean=self.metrics[metric], variance=0.0, n=1)


@dataclass(frozen=True, slots=True)
class LoadedReport:
    """A parsed, validated ``--out`` report."""

    name: str
    kind: str
    source: str
    points: tuple[ReportPoint, ...]
    #: the report's saturation-scan block(s), verbatim (schema 3)
    saturation: Mapping | Sequence | None = None

    def by_key(self) -> dict[str, ReportPoint]:
        """Index the points by their structured cache key."""
        return {p.key: p for p in self.points}

    def metric_names(self) -> tuple[str, ...]:
        """Every metric name any point carries, in first-seen order."""
        seen: dict[str, None] = {}
        for p in self.points:
            for m in p.metrics:
                seen.setdefault(m)
        return tuple(seen)

    def has_trajectories(self) -> bool:
        """Whether any point embeds a non-empty trajectory."""
        return any(p.trajectory.get("times") for p in self.points)


def parse_report(data, source: str = "<dict>") -> LoadedReport:
    """Validate a report document; raises :class:`DiffError` on any
    malformation, with the offending file named."""
    if not isinstance(data, Mapping):
        raise DiffError(f"{source}: report must be a JSON object")
    schema = data.get("schema")
    if schema is None:
        raise DiffError(
            f"{source}: no 'schema' field -- this report predates "
            "repro 1.3; regenerate it with a current --out"
        )
    if (not isinstance(schema, int) or schema < MIN_REPORT_SCHEMA
            or schema > REPORT_SCHEMA):
        raise DiffError(
            f"{source}: unsupported report schema {schema!r} (this build "
            f"reads schemas {MIN_REPORT_SCHEMA}..{REPORT_SCHEMA})"
        )
    raw_points = data.get("points")
    if not isinstance(raw_points, list):
        raise DiffError(f"{source}: report has no 'points' list")
    points = []
    for i, entry in enumerate(raw_points):
        where = f"{source}: points[{i}]"
        if not isinstance(entry, Mapping):
            raise DiffError(f"{where} must be an object")
        key = entry.get("key")
        metrics = entry.get("metrics")
        if not isinstance(key, str) or not key:
            raise DiffError(f"{where} is missing its point 'key'")
        if not isinstance(metrics, Mapping) or not metrics:
            raise DiffError(f"{where} is missing its 'metrics'")
        try:
            parsed_metrics = {m: float(v) for m, v in metrics.items()}
            stats = {
                m: MetricSummary.from_dict(s)
                for m, s in entry.get("stats", {}).items()
            }
        except (TypeError, ValueError, KeyError) as exc:
            raise DiffError(f"{where} has malformed values: {exc}") from None
        trajectory = entry.get("trajectory")
        if trajectory is not None and not isinstance(trajectory, Mapping):
            raise DiffError(f"{where} has a non-object 'trajectory'")
        if trajectory:
            # a malformed trajectory must be a parse error (exit 2), not
            # a traceback from inside the differ (which exit-1s under
            # --fail-on-regress and would read as a fake regression)
            times = trajectory.get("times")
            if not isinstance(times, list):
                raise DiffError(
                    f"{where} trajectory has no 'times' list"
                )
            for series_name, series_values in trajectory.items():
                if (not isinstance(series_values, list)
                        or len(series_values) != len(times)):
                    raise DiffError(
                        f"{where} trajectory series {series_name!r} is "
                        f"not a list parallel to 'times' "
                        f"({len(times)} samples)"
                    )
        load = entry.get("load")
        points.append(ReportPoint(
            key=key,
            label=str(entry.get("label", key)),
            metrics=parsed_metrics,
            stats=stats,
            replications=int(entry.get("replications", 0)),
            workload=entry.get("workload"),
            load=float(load) if load is not None else None,
            alloc=entry.get("alloc"),
            sched=entry.get("sched"),
            trajectory=dict(trajectory) if trajectory else {},
        ))
    name = data.get("name")
    if not isinstance(name, str) or not name:
        scenario = data.get("scenario")
        name = (
            scenario.get("name", source)
            if isinstance(scenario, Mapping) else source
        )
    return LoadedReport(
        name=str(name),
        kind=str(data.get("kind", "report")),
        source=source,
        points=tuple(points),
        saturation=data.get("saturation"),
    )


def load_report(path: str | Path) -> LoadedReport:
    """Read + parse a report file; :class:`DiffError` on any failure."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise DiffError(f"cannot read report {p}: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DiffError(f"{p}: not valid JSON ({exc})") from None
    return parse_report(data, source=str(p))


# --------------------------------------------------------------- the differ
@dataclass(frozen=True, slots=True)
class PointDiff:
    """All metric (and trajectory) comparisons of one matched point."""

    key: str
    label: str
    comparisons: Mapping[str, MetricComparison]
    #: per-series trajectory diffs (``None``: trajectories not compared)
    series: Mapping[str, SeriesDiff] | None = None

    @property
    def verdict(self) -> str:
        """Worst verdict across metrics *and* trajectory series
        (regressed > improved > ... > identical); a diverged series
        counts as ``regressed``."""
        verdicts = [c.verdict for c in self.comparisons.values()]
        if self.series:
            from repro.experiments.trajectory import trajectory_verdict

            verdicts.append(trajectory_verdict(self.series))
        return worst_verdict(verdicts)

    def to_dict(self) -> dict:
        """JSON-serializable diff entry for this point."""
        out = {
            "key": self.key,
            "label": self.label,
            "verdict": self.verdict,
            "metrics": {
                m: c.to_dict() for m, c in self.comparisons.items()
            },
        }
        if self.series is not None:
            out["trajectory"] = {
                name: d.to_dict() for name, d in self.series.items()
            }
        return out


@dataclass(frozen=True, slots=True)
class DiffReport:
    """The full A-vs-B comparison: verdict tables + unmatched points."""

    a: LoadedReport
    b: LoadedReport
    matched: tuple[PointDiff, ...]
    only_a: tuple[ReportPoint, ...]
    only_b: tuple[ReportPoint, ...]
    metrics: tuple[str, ...]
    alpha: float
    rel_tol: float
    #: whether trajectory series were compared (``--trajectories``)
    trajectories: bool = False
    traj_atol: float = 0.0
    traj_rtol: float = 0.0
    #: matched points skipped because a side lacked embedded series
    traj_skipped: tuple[str, ...] = ()

    @property
    def verdict(self) -> str:
        """The report-level verdict: the worst point verdict."""
        return worst_verdict(p.verdict for p in self.matched)

    @property
    def regressions(self) -> tuple[PointDiff, ...]:
        """Matched points whose verdict is ``regressed``."""
        return tuple(p for p in self.matched if p.verdict == REGRESSED)

    def verdict_counts(self) -> dict[str, int]:
        """Per-metric verdict histogram across all matched points."""
        counts: dict[str, int] = {}
        for point in self.matched:
            for comp in point.comparisons.values():
                counts[comp.verdict] = counts.get(comp.verdict, 0) + 1
        return counts

    def series_verdict_counts(self) -> dict[str, int]:
        """Per-series verdict histogram across all compared trajectories."""
        counts: dict[str, int] = {}
        for point in self.matched:
            for d in (point.series or {}).values():
                counts[d.verdict] = counts.get(d.verdict, 0) + 1
        return counts

    def warnings(self) -> list[str]:
        """Non-fatal alignment problems, human-readable."""
        out = []
        if self.traj_skipped:
            out.append(
                f"{len(self.traj_skipped)} matched point(s) lack embedded "
                "trajectories on at least one side: "
                + ", ".join(self.traj_skipped[:4])
                + (" ..." if len(self.traj_skipped) > 4 else "")
            )
        if self.only_a:
            out.append(
                f"{len(self.only_a)} point(s) only in A ({self.a.name}): "
                + ", ".join(p.label for p in self.only_a[:4])
                + (" ..." if len(self.only_a) > 4 else "")
            )
        if self.only_b:
            out.append(
                f"{len(self.only_b)} point(s) only in B ({self.b.name}): "
                + ", ".join(p.label for p in self.only_b[:4])
                + (" ..." if len(self.only_b) > 4 else "")
            )
        return out

    def to_dict(self) -> dict:
        """The machine-readable diff report (``diff --out``)."""
        out = {
            "schema": REPORT_SCHEMA,
            "kind": "diff",
            "a": {"name": self.a.name, "source": self.a.source},
            "b": {"name": self.b.name, "source": self.b.source},
            "alpha": self.alpha,
            "rel_tol": self.rel_tol,
            "metrics": list(self.metrics),
            "verdict": self.verdict,
            "verdict_counts": self.verdict_counts(),
            "points": [p.to_dict() for p in self.matched],
            "only_a": [p.label for p in self.only_a],
            "only_b": [p.label for p in self.only_b],
        }
        if self.trajectories:
            out["trajectories"] = {
                "atol": self.traj_atol,
                "rtol": self.traj_rtol,
                "verdict_counts": self.series_verdict_counts(),
                "skipped": list(self.traj_skipped),
            }
        return out

    def format(self) -> str:
        """Human-readable verdict table.

        One line per matched point; metrics that are not ``identical``
        get an evidence line (means, relative delta, p-value)."""
        lines = [
            f"DIFF {self.a.name} vs {self.b.name}: "
            f"{len(self.matched)} matched point(s), "
            f"alpha={self.alpha:g}, rel_tol={self.rel_tol:g}"
        ]
        for point in self.matched:
            lines.append(f"  {point.label}: {point.verdict}")
            for m in self.metrics:
                comp = point.comparisons.get(m)
                if comp is None or comp.verdict == IDENTICAL:
                    continue
                p_txt = (
                    f"p={comp.p_value:.4g}" if comp.p_value is not None
                    else "deterministic"
                )
                lines.append(
                    f"    {m}: {comp.a.mean:.6g} -> {comp.b.mean:.6g} "
                    f"({comp.relative_delta:+.3%}, {p_txt}) {comp.verdict}"
                )
            for name, d in (point.series or {}).items():
                if d.verdict == "identical":
                    continue
                lines.append(
                    f"    trajectory {name}: max|Δ|={d.max_abs:.6g} "
                    f"at t={d.max_at:g}, area={d.area:.6g}, "
                    f"{d.exceedances} sample(s) out of band -> {d.verdict}"
                )
        counts = self.verdict_counts()
        lines.append(
            "verdicts: " + (
                " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
                or "none (no metrics compared)"
            )
        )
        if self.trajectories:
            scounts = self.series_verdict_counts()
            lines.append(
                "trajectory verdicts: " + (
                    " ".join(f"{k}={v}" for k, v in sorted(scounts.items()))
                    or "none (no series compared)"
                )
            )
        return "\n".join(lines)


def diff_reports(
    a: LoadedReport,
    b: LoadedReport,
    metrics: Sequence[str] | None = None,
    alpha: float = 0.05,
    rel_tol: float = 0.0,
    trajectories: bool = False,
    traj_atol: float = 0.0,
    traj_rtol: float = 0.0,
) -> DiffReport:
    """Align two reports by point key and classify every shared metric.

    ``metrics`` restricts the comparison (default: every metric the two
    reports share); a name that is unknown -- or missing from either
    report, globally or on any matched point -- raises
    :class:`DiffError`, so an explicit watch-list can never pass
    vacuously.  Grid subset/superset is tolerated -- unmatched points
    are carried in the result's ``only_a``/``only_b``, never silently
    dropped.

    With ``trajectories=True`` every matched point that embeds series
    on both sides is additionally compared shape-wise
    (:func:`repro.experiments.trajectory.diff_trajectories`, band
    ``traj_atol + traj_rtol * |baseline|`` per sample); points lacking
    series on a side are warned about, and if *no* matched point can be
    compared the call raises -- a trajectory gate must never pass
    vacuously.
    """
    if not 0.0 < alpha < 1.0:
        raise DiffError(f"alpha must be in (0, 1), got {alpha}")
    if rel_tol < 0.0:
        raise DiffError(f"rel_tol must be >= 0, got {rel_tol}")
    if traj_atol < 0.0 or traj_rtol < 0.0:
        raise DiffError("trajectory tolerances must be >= 0")
    a_names = set(a.metric_names())
    b_names = set(b.metric_names())
    if metrics:
        # an explicitly requested metric must exist on BOTH sides: a
        # gate told to watch a metric must never pass because the
        # metric quietly vanished from one report
        missing = [
            m for m in metrics if m not in a_names or m not in b_names
        ]
        if missing:
            carriers = {
                m: [r.name for r, names in ((a, a_names), (b, b_names))
                    if m in names]
                for m in missing
            }
            raise DiffError(
                f"metric(s) {missing} not present in both reports "
                f"(carried by: {carriers}); "
                f"shared metrics: {sorted(a_names & b_names)}"
            )
        selected = tuple(metrics)
    else:
        selected = tuple(m for m in a.metric_names() if m in b_names)
    a_points = a.by_key()
    b_points = b.by_key()
    matched = []
    traj_skipped: list[str] = []
    traj_compared = 0
    for key, pa in a_points.items():
        pb = b_points.get(key)
        if pb is None:
            continue
        comparisons = {}
        for m in selected:
            if m in pa.metrics and m in pb.metrics:
                comparisons[m] = compare_metric(
                    m, pa.summary(m), pb.summary(m),
                    alpha=alpha, rel_tol=rel_tol,
                )
            elif metrics:
                raise DiffError(
                    f"requested metric {m!r} is missing from point "
                    f"{pa.label!r} in one of the reports"
                )
        series = None
        if trajectories:
            if pa.trajectory.get("times") and pb.trajectory.get("times"):
                from repro.experiments.trajectory import diff_trajectories

                try:
                    series = diff_trajectories(
                        pa.trajectory, pb.trajectory,
                        atol=traj_atol, rtol=traj_rtol,
                    )
                except ValueError as exc:
                    # e.g. a non-increasing 'times' axis: malformed
                    # data, not a regression
                    raise DiffError(
                        f"point {pa.label!r} has a malformed "
                        f"trajectory: {exc}"
                    ) from None
                traj_compared += 1
            else:
                traj_skipped.append(pa.label)
        matched.append(PointDiff(
            key=key, label=pa.label, comparisons=comparisons, series=series,
        ))
    if trajectories and matched and not traj_compared:
        raise DiffError(
            "--trajectories requested but no matched point embeds series "
            "on both sides; regenerate the reports from a scenario with "
            "'sample_interval' set"
        )
    only_a = tuple(p for k, p in a_points.items() if k not in b_points)
    only_b = tuple(p for k, p in b_points.items() if k not in a_points)
    return DiffReport(
        a=a,
        b=b,
        matched=tuple(matched),
        only_a=only_a,
        only_b=only_b,
        metrics=selected,
        alpha=alpha,
        rel_tol=rel_tol,
        trajectories=trajectories,
        traj_atol=traj_atol,
        traj_rtol=traj_rtol,
        traj_skipped=tuple(traj_skipped),
    )
