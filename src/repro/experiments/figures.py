"""Registry of the paper's evaluation figures (DESIGN.md section 3).

Every line chart in the paper (Figs. 2-7, 11-16) plots one metric against
system load for the six strategy combinations {GABL, Paging(0), MBS} x
{FCFS, SSD}; Figs. 8-10 are saturation-utilization bar charts.  One
:class:`FigureSpec` per figure pins the workload, the load sweep (taken
from the paper's axes) and the metric, so the runner and the benchmark
harness regenerate exactly what the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass


#: the paper's six strategy combinations, in its legend order
COMBOS: tuple[tuple[str, str], ...] = (
    ("GABL", "FCFS"),
    ("Paging(0)", "FCFS"),
    ("MBS", "FCFS"),
    ("GABL", "SSD"),
    ("Paging(0)", "SSD"),
    ("MBS", "SSD"),
)

#: workload identifiers accepted by the runner
WORKLOADS = ("real", "uniform", "exponential")

# Load sweeps (jobs per time unit).  The paper's x axes are kept in
# *shape*: each sweep spans light load up to (and for the network metrics
# past) this simulator's measured saturation knee, exactly as the paper's
# sweeps span its own system's knee.  Absolute load values differ from the
# paper's axes by a constant per-workload factor because the calibrated
# service times differ (EXPERIMENTS.md records the mapping).
_REAL_TURNAROUND = (0.01, 0.02, 0.03, 0.04, 0.05)
_REAL_NETWORK = (0.01, 0.02, 0.03, 0.045, 0.06)
_UNIFORM = (0.003, 0.005, 0.007, 0.009, 0.011, 0.013)
_EXPONENTIAL = (0.004, 0.007, 0.01, 0.013, 0.016, 0.02)

# reduced sweeps for smoke-scale runs (bench defaults)
_REAL_TURNAROUND_SMOKE = (0.02, 0.045)
_REAL_NETWORK_SMOKE = (0.02, 0.05)
_UNIFORM_SMOKE = (0.005, 0.011)
_EXPONENTIAL_SMOKE = (0.007, 0.018)

#: Saturation loads for the utilization bar charts (Figs. 8-10): one
#: fixed load per workload, far past the sweep knee, so "the waiting
#: queue is filled very early" (paper section 5) and utilization reads
#: its plateau value.  These are hand-picked constants pinned against
#: the paper's figure axes by ``tests/test_figures_constants.py``: each
#: must sit strictly beyond its workload's highest swept load above.
#: These constants are now the *fallback*: ``--auto-saturation`` derives
#: the knee from a utilization load ladder instead
#: (:func:`repro.experiments.trajectory.scan_saturation`), and
#: ``tests/test_saturation.py`` pins that the detected knee lands within
#: one ladder step of this table -- the guarded baseline either
#: mechanism must reproduce (or consciously update).
SATURATION_LOADS = {"real": 0.1, "uniform": 0.03, "exponential": 0.05}


@dataclass(frozen=True, slots=True)
class FigureSpec:
    """One paper figure: metric x workload x load sweep."""

    fig_id: str
    title: str
    metric: str  #: RunResult attribute name
    ylabel: str
    workload: str
    loads: tuple[float, ...]
    smoke_loads: tuple[float, ...]
    combos: tuple[tuple[str, str], ...] = COMBOS
    saturation: bool = False  #: utilization bar-chart style

    def loads_for(self, scale_name: str) -> tuple[float, ...]:
        """Sweep points for a scale preset."""
        return self.smoke_loads if scale_name == "smoke" else self.loads


def _spec(
    fig_id: str,
    metric: str,
    ylabel: str,
    workload: str,
    loads: tuple[float, ...],
    smoke: tuple[float, ...],
    saturation: bool = False,
) -> FigureSpec:
    wl_names = {
        "real": "a real workload",
        "uniform": "a stochastic workload (uniform side lengths)",
        "exponential": "a stochastic workload (exponential side lengths)",
    }
    return FigureSpec(
        fig_id=fig_id,
        title=f"{ylabel} vs. system load, all-to-all, {wl_names[workload]}, 16x22 mesh",
        metric=metric,
        ylabel=ylabel,
        workload=workload,
        loads=loads,
        smoke_loads=smoke,
        saturation=saturation,
    )


FIGURES: dict[str, FigureSpec] = {
    "fig2": _spec("fig2", "mean_turnaround", "Average Turnaround Time", "real",
                  _REAL_TURNAROUND, _REAL_TURNAROUND_SMOKE),
    "fig3": _spec("fig3", "mean_turnaround", "Average Turnaround Time", "uniform",
                  _UNIFORM, _UNIFORM_SMOKE),
    "fig4": _spec("fig4", "mean_turnaround", "Average Turnaround Time", "exponential",
                  _EXPONENTIAL, _EXPONENTIAL_SMOKE),
    "fig5": _spec("fig5", "mean_service", "Average Service Time", "real",
                  _REAL_NETWORK, _REAL_NETWORK_SMOKE),
    "fig6": _spec("fig6", "mean_service", "Average Service Time", "uniform",
                  _UNIFORM, _UNIFORM_SMOKE),
    "fig7": _spec("fig7", "mean_service", "Average Service Time", "exponential",
                  _EXPONENTIAL, _EXPONENTIAL_SMOKE),
    "fig8": _spec("fig8", "utilization", "Utilization", "real",
                  (SATURATION_LOADS["real"],), (SATURATION_LOADS["real"],),
                  saturation=True),
    "fig9": _spec("fig9", "utilization", "Utilization", "uniform",
                  (SATURATION_LOADS["uniform"],), (SATURATION_LOADS["uniform"],),
                  saturation=True),
    "fig10": _spec("fig10", "utilization", "Utilization", "exponential",
                   (SATURATION_LOADS["exponential"],), (SATURATION_LOADS["exponential"],),
                   saturation=True),
    "fig11": _spec("fig11", "mean_packet_blocking", "Average Packet Blocking Time", "real",
                   _REAL_NETWORK, _REAL_NETWORK_SMOKE),
    "fig12": _spec("fig12", "mean_packet_blocking", "Average Packet Blocking Time", "uniform",
                   _UNIFORM, _UNIFORM_SMOKE),
    "fig13": _spec("fig13", "mean_packet_blocking", "Average Packet Blocking Time", "exponential",
                   _EXPONENTIAL, _EXPONENTIAL_SMOKE),
    "fig14": _spec("fig14", "mean_packet_latency", "Average Packet Latency", "real",
                   _REAL_NETWORK, _REAL_NETWORK_SMOKE),
    "fig15": _spec("fig15", "mean_packet_latency", "Average Packet Latency", "uniform",
                   _UNIFORM, _UNIFORM_SMOKE),
    "fig16": _spec("fig16", "mean_packet_latency", "Average Packet Latency", "exponential",
                   _EXPONENTIAL, _EXPONENTIAL_SMOKE),
}


def combo_label(alloc: str, sched: str) -> str:
    """The paper's series notation, e.g. ``GABL(SSD)``."""
    return f"{alloc}({sched})"


def sweep_ceiling(workload: str) -> float:
    """The highest load any line-chart figure sweeps for ``workload``.

    This anchors the ``--auto-saturation`` load ladder: the paper's
    fixed saturation loads sit just past the top of each sweep, so the
    scan starts climbing from here.

    Args:
        workload: one of :data:`WORKLOADS`.

    Returns:
        The maximum swept load across that workload's non-saturation
        figures.

    Raises:
        KeyError: for pipeline workloads (no figure sweeps exist; pass
            an explicit ladder start instead).
    """
    tops = [
        max(spec.loads)
        for spec in FIGURES.values()
        if spec.workload == workload and not spec.saturation
    ]
    if not tops:
        raise KeyError(
            f"no figure sweep for workload {workload!r}; "
            "pass an explicit ladder start"
        )
    return max(tops)
