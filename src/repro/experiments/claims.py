"""The paper's findings as executable claims (the reproduction contract).

DESIGN.md section 3 lists six headline claims, C1-C6.  This module
evaluates all of them against regenerated figure data at any scale and
produces a pass/fail report -- the programmatic answer to "does the
reproduction hold?".

Usage::

    from repro.experiments.claims import verify_all
    report = verify_all(scale="quick")
    print(report.format())

or from the shell: ``python -m repro claims --scale quick``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.experiments.campaign import Campaign
from repro.experiments.figures import FIGURES
from repro.experiments.report import endpoint_ratio, mean_of
from repro.experiments.runner import FigureResult, run_figure


@dataclass(frozen=True, slots=True)
class ClaimResult:
    """Outcome of checking one claim."""

    claim_id: str
    description: str
    passed: bool
    detail: str


@dataclass(frozen=True, slots=True)
class ClaimReport:
    """All claims plus the figure data they were judged on."""

    results: tuple[ClaimResult, ...]
    scale: str

    @property
    def passed(self) -> bool:
        """Whether every claim held."""
        return all(r.passed for r in self.results)

    def format(self) -> str:
        """Human-readable PASS/FAIL table with per-claim evidence."""
        lines = [f"paper-claim verification (scale={self.scale})"]
        for r in self.results:
            mark = "PASS" if r.passed else "FAIL"
            lines.append(f"[{mark}] {r.claim_id}: {r.description}")
            lines.append(f"       {r.detail}")
        verdict = "ALL CLAIMS HOLD" if self.passed else "SOME CLAIMS FAILED"
        lines.append(verdict)
        return "\n".join(lines)


# figures grouped by the sweeps they share
_TURNAROUND_FIGS = ("fig2", "fig3", "fig4")
_RANKED_FIGS = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                "fig11", "fig12", "fig13", "fig14", "fig15", "fig16")
_UTIL_FIGS = ("fig8", "fig9", "fig10")
_ALLOCS = ("GABL", "Paging(0)", "MBS")
#: tolerance for "at or below" comparisons (single-run smoke noise)
_SLACK = 1.30


def _series_mean(fig: FigureResult, alloc: str, sched: str) -> float:
    return mean_of(fig.series[f"{alloc}({sched})"])


def check_c1_consistent_rankings(figs: Mapping[str, FigureResult]) -> ClaimResult:
    """Real and stochastic workloads rank the strategies the same way,
    with the paper's documented exception (C3) carved out.

    Judged with a winner *band* (strategies within 15% of the best):
    single-run sweeps at smoke scale carry ~10-20% noise per point, so a
    strict argmin would flip on ties the paper itself would call equal.
    The claim holds when GABL sits in the winner band of every figure for
    every metric -- no workload demotes it.
    """
    details = []
    ok = True
    band = 1.15
    for metric_figs in (("fig2", "fig3", "fig4"), ("fig5", "fig6", "fig7"),
                        ("fig11", "fig12", "fig13"), ("fig14", "fig15", "fig16")):
        demoted = []
        for fig_id in metric_figs:
            fig = figs[fig_id]
            best = min(_series_mean(fig, a, "FCFS") for a in _ALLOCS)
            gabl = _series_mean(fig, "GABL", "FCFS")
            if gabl > band * best:
                demoted.append(fig_id)
        metric = figs[metric_figs[0]].spec.metric
        if demoted:
            ok = False
            details.append(f"{metric}: GABL out of the winner band in {demoted}")
        else:
            details.append(f"{metric}: GABL in the winner band for all workloads")
    return ClaimResult(
        "C1", "workload types agree on the strategy ranking",
        ok, "; ".join(details),
    )


def check_c2_gabl_best(figs: Mapping[str, FigureResult]) -> ClaimResult:
    """GABL at or below every other strategy in every ranked figure."""
    violations = []
    for fig_id in _RANKED_FIGS:
        fig = figs[fig_id]
        for sched in ("FCFS", "SSD"):
            gabl = _series_mean(fig, "GABL", sched)
            for other in ("Paging(0)", "MBS"):
                val = _series_mean(fig, other, sched)
                if gabl > _SLACK * val:
                    violations.append(
                        f"{fig_id} {sched}: GABL {gabl:.1f} > {other} {val:.1f}"
                    )
    return ClaimResult(
        "C2", "GABL best on every metric, workload and scheduler",
        not violations,
        "; ".join(violations) if violations else
        f"GABL at or below both rivals in all {len(_RANKED_FIGS)} ranked figures",
    )


def check_c3_mbs_real_exception(figs: Mapping[str, FigureResult]) -> ClaimResult:
    """MBS behind Paging(0) on the real workload; not behind on stochastic."""
    real = figs["fig5"]  # service time separates them most cleanly
    mbs_real = _series_mean(real, "MBS", "FCFS")
    paging_real = _series_mean(real, "Paging(0)", "FCFS")
    stoch = figs["fig3"]
    mbs_stoch = _series_mean(stoch, "MBS", "FCFS")
    paging_stoch = _series_mean(stoch, "Paging(0)", "FCFS")
    real_ok = mbs_real >= paging_real * 0.98
    stoch_ok = mbs_stoch <= paging_stoch * _SLACK
    return ClaimResult(
        "C3", "MBS inferior to Paging(0) on the real workload only",
        real_ok and stoch_ok,
        f"real service: MBS {mbs_real:.1f} vs Paging {paging_real:.1f}; "
        f"stochastic turnaround: MBS {mbs_stoch:.1f} vs Paging {paging_stoch:.1f}",
    )


def check_c4_ssd_beats_fcfs(figs: Mapping[str, FigureResult]) -> ClaimResult:
    """SSD turnaround at or below FCFS for every allocator and workload."""
    violations = []
    for fig_id in _TURNAROUND_FIGS:
        fig = figs[fig_id]
        for alloc in _ALLOCS:
            ssd = _series_mean(fig, alloc, "SSD")
            fcfs = _series_mean(fig, alloc, "FCFS")
            if ssd > _SLACK * fcfs:
                violations.append(
                    f"{fig_id} {alloc}: SSD {ssd:.1f} > FCFS {fcfs:.1f}"
                )
    return ClaimResult(
        "C4", "SSD better than FCFS on turnaround everywhere",
        not violations,
        "; ".join(violations) if violations else
        "SSD at or below FCFS for all 9 allocator/workload cells",
    )


def check_c5_utilization(figs: Mapping[str, FigureResult]) -> ClaimResult:
    """Saturation utilization in a high band, roughly equal strategies."""
    details = []
    ok = True
    for fig_id in _UTIL_FIGS:
        fig = figs[fig_id]
        values = [series[-1] for series in fig.series.values()]
        lo, hi = min(values), max(values)
        details.append(f"{fig_id}: {lo:.2f}..{hi:.2f}")
        if not (0.55 <= lo and hi <= 0.95 and hi - lo <= 0.2):
            ok = False
    return ClaimResult(
        "C5", "utilization 72-89% band, approximately equal strategies",
        ok, "; ".join(details),
    )


def check_c6_ratios(figs: Mapping[str, FigureResult]) -> ClaimResult:
    """Quantitative spot checks: GABL's advantage ratios at the top load."""
    fig2 = figs["fig2"]
    r_paging = endpoint_ratio(fig2.series["GABL(FCFS)"],
                              fig2.series["Paging(0)(FCFS)"])
    r_mbs = endpoint_ratio(fig2.series["GABL(FCFS)"], fig2.series["MBS(FCFS)"])
    fig14 = figs["fig14"]
    r_lat = endpoint_ratio(fig14.series["GABL(FCFS)"],
                           fig14.series["Paging(0)(FCFS)"])
    # paper: 0.67x / 0.32x (fig2) and 0.84x (fig14); we accept the same
    # direction with generous bands
    ok = r_paging < 0.9 and r_mbs < 0.9 and r_lat < 1.0
    return ClaimResult(
        "C6", "GABL advantage ratios in the paper's direction",
        ok,
        f"fig2 GABL/Paging {r_paging:.2f} (paper 0.67), GABL/MBS {r_mbs:.2f} "
        f"(paper 0.32); fig14 latency GABL/Paging {r_lat:.2f} (paper 0.84)",
    )


CHECKS: Sequence[Callable[[Mapping[str, FigureResult]], ClaimResult]] = (
    check_c1_consistent_rankings,
    check_c2_gabl_best,
    check_c3_mbs_real_exception,
    check_c4_ssd_beats_fcfs,
    check_c5_utilization,
    check_c6_ratios,
)


def verify_all(
    scale: str = "smoke", network_mode: str | None = None, jobs: int = 1
) -> ClaimReport:
    """Regenerate every figure and evaluate all paper claims.

    ``jobs > 1`` pre-runs the union of all figures' cells as one
    deduplicated campaign over a process pool; the per-figure
    regeneration below is then pure cache reads.
    """
    Campaign.from_figures(tuple(FIGURES), scale=scale,
                          network_mode=network_mode).run(jobs=jobs)
    figs = {
        fig_id: run_figure(fig_id, scale=scale, network_mode=network_mode)
        for fig_id in FIGURES
    }
    results = tuple(check(figs) for check in CHECKS)
    return ClaimReport(results=results, scale=scale)
