"""Experiment registry, campaign engine, runner and reporting."""

from repro.experiments.figures import COMBOS, FIGURES, FigureSpec, combo_label
from repro.experiments.campaign import (
    Campaign,
    PointResult,
    PointSpec,
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    run_spec_replication,
    trace_fingerprint,
)
from repro.experiments.diff import (
    DiffError,
    DiffReport,
    LoadedReport,
    PointDiff,
    campaign_report,
    diff_reports,
    load_report,
    parse_report,
)
from repro.experiments.store import ResultCache, global_cache, reset_global_cache
from repro.experiments.runner import (
    METRICS,
    SCALES,
    FigureResult,
    Scale,
    default_scale,
    run_figure,
    run_point,
    sdsc_trace,
)
from repro.experiments.scenario import Scenario, ScenarioResult, run_trajectory
from repro.experiments.trajectory import (
    SaturationScan,
    diff_trajectories,
    run_saturation_figure,
    scan_saturation,
    trajectory_verdict,
)
from repro.experiments.plot import Chart, plot_report, report_charts
from repro.experiments.claims import ClaimReport, ClaimResult, verify_all
from repro.experiments.report import (
    ascii_plot,
    check_ranking,
    endpoint_ratio,
    format_figure,
    series_leq,
)

__all__ = [
    "ClaimReport",
    "ClaimResult",
    "verify_all",
    "COMBOS",
    "FIGURES",
    "FigureSpec",
    "combo_label",
    "Campaign",
    "PointResult",
    "PointSpec",
    "DiffError",
    "DiffReport",
    "LoadedReport",
    "PointDiff",
    "campaign_report",
    "diff_reports",
    "load_report",
    "parse_report",
    "Scenario",
    "ScenarioResult",
    "run_trajectory",
    "SaturationScan",
    "diff_trajectories",
    "run_saturation_figure",
    "scan_saturation",
    "trajectory_verdict",
    "Chart",
    "plot_report",
    "report_charts",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "make_executor",
    "run_spec_replication",
    "trace_fingerprint",
    "METRICS",
    "SCALES",
    "FigureResult",
    "ResultCache",
    "Scale",
    "default_scale",
    "global_cache",
    "reset_global_cache",
    "run_figure",
    "run_point",
    "sdsc_trace",
    "ascii_plot",
    "check_ranking",
    "endpoint_ratio",
    "format_figure",
    "series_leq",
]
