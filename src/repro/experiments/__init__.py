"""Experiment registry, runner and reporting for the paper's figures."""

from repro.experiments.figures import COMBOS, FIGURES, FigureSpec, combo_label
from repro.experiments.runner import (
    METRICS,
    SCALES,
    FigureResult,
    ResultCache,
    Scale,
    default_scale,
    run_figure,
    run_point,
    sdsc_trace,
)
from repro.experiments.claims import ClaimReport, ClaimResult, verify_all
from repro.experiments.report import (
    ascii_plot,
    check_ranking,
    endpoint_ratio,
    format_figure,
    series_leq,
)

__all__ = [
    "ClaimReport",
    "ClaimResult",
    "verify_all",
    "COMBOS",
    "FIGURES",
    "FigureSpec",
    "combo_label",
    "METRICS",
    "SCALES",
    "FigureResult",
    "ResultCache",
    "Scale",
    "default_scale",
    "run_figure",
    "run_point",
    "sdsc_trace",
    "ascii_plot",
    "check_ranking",
    "endpoint_ratio",
    "format_figure",
    "series_leq",
]
