"""Experiment runner: thin figure/point wrappers over the campaign engine.

A *point* is one (workload, load, allocator, scheduler) cell; running it
yields all five paper metrics at once, so the uniform-workload sweep is
simulated once and shared by Figs. 3, 6, 9, 12 and 15 (likewise for the
other workloads).  Enumeration, deduplication and (optionally parallel)
execution live in :mod:`repro.experiments.campaign`; results are
memoised in-process and in a sharded on-disk store
(:mod:`repro.experiments.store`, ``.repro-cache/``), keyed by the
structured :meth:`PointSpec.key`; set ``REPRO_CACHE=0`` to disable the
disk cache.

Scale presets trade fidelity for wall-clock:

* ``smoke``  -- quick shape checks (bench default);
* ``quick``  -- a few hundred jobs, a couple of replications;
* ``paper``  -- 1000 completed jobs per run, replications until the 95%
  CI is within 5% (the paper's stopping rule), full load sweeps.

Select via the ``REPRO_SCALE`` environment variable or the ``scale=``
argument.  Pass ``jobs=N`` (CLI: ``-j N``) to fan simulation work out
over N worker processes; serial and parallel runs produce identical
metrics because replication seeds are derived from the spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.config import PAPER_CONFIG, SimConfig
from repro.experiments.campaign import (
    METRICS,
    SCALES,
    Campaign,
    PointResult,
    PointSpec,
    Scale,
    default_scale,
    make_workload,
    sdsc_trace,
    trace_fingerprint,
)
from repro.experiments.figures import FIGURES, FigureSpec, combo_label
from repro.experiments.store import ResultCache, global_cache
from repro.workload.trace import TraceJob

__all__ = [
    "METRICS",
    "SCALES",
    "Campaign",
    "FigureResult",
    "PointResult",
    "PointSpec",
    "ResultCache",
    "Scale",
    "default_scale",
    "global_cache",
    "make_workload",
    "run_figure",
    "run_point",
    "sdsc_trace",
]


def run_point(
    workload: str,
    load: float,
    alloc: str,
    sched: str,
    scale: str | Scale = "smoke",
    config: SimConfig = PAPER_CONFIG,
    network_mode: str | None = None,
    cache: ResultCache | None = None,
    trace: Sequence[TraceJob] | None = None,
    jobs: int = 1,
    executor: str | None = None,
) -> PointResult:
    """Run (with replications) one point; returns metric means (a
    mapping) plus their replication summaries."""
    sc = Scale.by_name(scale) if isinstance(scale, str) else scale
    spec = PointSpec(
        workload=workload, load=load, alloc=alloc, sched=sched,
        scale=sc, config=config, network_mode=network_mode,
        trace_source=trace_fingerprint(trace) if trace is not None else "sdsc",
    )
    campaign = Campaign((spec,), trace=trace)
    return campaign.run(jobs=jobs, cache=cache, executor_kind=executor)[spec]


# ------------------------------------------------------------------ figures
@dataclass(frozen=True, slots=True)
class FigureResult:
    """All series of one regenerated figure."""

    spec: FigureSpec
    loads: tuple[float, ...]
    #: series[combo_label][i] corresponds to loads[i]
    series: Mapping[str, tuple[float, ...]]

    def series_for(self, alloc: str, sched: str) -> tuple[float, ...]:
        """The series of one strategy combination, by its parts."""
        return self.series[combo_label(alloc, sched)]


def run_figure(
    fig_id: str,
    scale: str = "smoke",
    config: SimConfig = PAPER_CONFIG,
    network_mode: str | None = None,
    cache: ResultCache | None = None,
    trace: Sequence[TraceJob] | None = None,
    jobs: int = 1,
    executor: str | None = None,
) -> FigureResult:
    """Regenerate one paper figure's data series."""
    spec = FIGURES[fig_id]
    sc = Scale.by_name(scale)
    loads = spec.loads_for(sc.name)
    campaign = Campaign.from_figures(
        (fig_id,), scale=sc, config=config,
        network_mode=network_mode, trace=trace,
    )
    points = campaign.run(jobs=jobs, cache=cache, executor_kind=executor)
    source = trace_fingerprint(trace) if trace is not None else "sdsc"
    series: dict[str, tuple[float, ...]] = {}
    for alloc, sched in spec.combos:
        values = []
        for load in loads:
            cell = PointSpec(
                workload=spec.workload, load=load, alloc=alloc, sched=sched,
                scale=sc, config=config, network_mode=network_mode,
                trace_source=source,
            )
            values.append(points[cell][spec.metric])
        series[combo_label(alloc, sched)] = tuple(values)
    return FigureResult(spec=spec, loads=loads, series=series)
