"""Experiment runner: simulation points, figure sweeps, result caching.

A *point* is one (workload, load, allocator, scheduler) cell; running it
yields all five paper metrics at once, so the uniform-workload sweep is
simulated once and shared by Figs. 3, 6, 9, 12 and 15 (likewise for the
other workloads).  Results are memoised in-process and optionally on disk
(JSON, ``.repro-cache/``), keyed by every parameter that affects the
outcome; set ``REPRO_CACHE=0`` to disable the disk cache.

Scale presets trade fidelity for wall-clock:

* ``smoke``  -- quick shape checks (bench default);
* ``quick``  -- a few hundred jobs, a couple of replications;
* ``paper``  -- 1000 completed jobs per run, replications until the 95%
  CI is within 5% (the paper's stopping rule), full load sweeps.

Select via the ``REPRO_SCALE`` environment variable or the ``scale=``
argument.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.alloc import make_allocator
from repro.core.config import PAPER_CONFIG, SimConfig
from repro.core.simulator import Simulator
from repro.experiments.figures import FIGURES, FigureSpec, combo_label
from repro.sched import make_scheduler
from repro.stats.replication import run_replications
from repro.workload.sdsc import synthesize_sdsc_trace
from repro.workload.stochastic import StochasticWorkload
from repro.workload.trace import TraceJob, TraceWorkload

#: metrics recorded for every point (RunResult attribute names)
METRICS = (
    "mean_turnaround",
    "mean_service",
    "mean_wait",
    "mean_packet_latency",
    "mean_packet_blocking",
    "utilization",
    "mean_fragments",
    "contiguity_rate",
)


@dataclass(frozen=True, slots=True)
class Scale:
    """Fidelity preset."""

    name: str
    jobs: int  #: completed jobs per run
    min_replications: int
    max_replications: int
    trace_max_jobs: int | None  #: trace prefix length (None = full trace)

    @classmethod
    def by_name(cls, name: str) -> "Scale":
        try:
            return SCALES[name]
        except KeyError:
            raise KeyError(
                f"unknown scale {name!r}; choose from {sorted(SCALES)}"
            ) from None


SCALES: dict[str, Scale] = {
    "smoke": Scale("smoke", jobs=120, min_replications=1, max_replications=1,
                   trace_max_jobs=600),
    "quick": Scale("quick", jobs=300, min_replications=2, max_replications=3,
                   trace_max_jobs=2000),
    "paper": Scale("paper", jobs=1000, min_replications=3, max_replications=20,
                   trace_max_jobs=None),
}


def default_scale() -> str:
    """Scale preset from ``REPRO_SCALE`` (default ``smoke``)."""
    name = os.environ.get("REPRO_SCALE", "smoke")
    Scale.by_name(name)  # validate early
    return name


# --------------------------------------------------------------------- cache
class ResultCache:
    """Two-level memo: in-process dict + JSON file."""

    def __init__(self, path: Path | None = None) -> None:
        self._mem: dict[str, dict[str, float]] = {}
        disk_enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        self.path = path if path is not None else _default_cache_path()
        self.disk = disk_enabled and self.path is not None
        if self.disk and self.path.exists():
            try:
                self._mem.update(json.loads(self.path.read_text()))
            except (json.JSONDecodeError, OSError):
                pass  # corrupt cache: start fresh

    def get(self, key: str) -> dict[str, float] | None:
        return self._mem.get(key)

    def put(self, key: str, value: Mapping[str, float]) -> None:
        self._mem[key] = dict(value)
        if self.disk:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self.path.write_text(json.dumps(self._mem, indent=0, sort_keys=True))
            except OSError:
                self.disk = False  # read-only filesystem: stay in memory


def _default_cache_path() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.cwd() / ".repro-cache"
    return base / "results.json"


_GLOBAL_CACHE: ResultCache | None = None


def global_cache() -> ResultCache:
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ResultCache()
    return _GLOBAL_CACHE


# ------------------------------------------------------------------- points
_TRACE_CACHE: dict[tuple[int | None, int], list[TraceJob]] = {}


def sdsc_trace(max_jobs: int | None = None, seed: int = 1995) -> list[TraceJob]:
    """Synthetic SDSC trace, memoised per (length, seed)."""
    key = (max_jobs, seed)
    if key not in _TRACE_CACHE:
        full = _TRACE_CACHE.get((None, seed))
        if full is None:
            full = synthesize_sdsc_trace(seed=seed)
            _TRACE_CACHE[(None, seed)] = full
        _TRACE_CACHE[key] = full[:max_jobs] if max_jobs else full
    return _TRACE_CACHE[key]


def make_workload(
    workload: str,
    config: SimConfig,
    load: float,
    scale: Scale,
    trace: Sequence[TraceJob] | None = None,
):
    """Build the workload object for one point."""
    if workload == "uniform":
        return StochasticWorkload(config, load, sides="uniform")
    if workload == "exponential":
        return StochasticWorkload(config, load, sides="exponential")
    if workload == "real":
        jobs = list(trace) if trace is not None else sdsc_trace(scale.trace_max_jobs)
        return TraceWorkload(config, jobs, load, max_jobs=scale.trace_max_jobs)
    raise KeyError(f"unknown workload {workload!r}")


def run_point(
    workload: str,
    load: float,
    alloc: str,
    sched: str,
    scale: str | Scale = "smoke",
    config: SimConfig = PAPER_CONFIG,
    network_mode: str = "fast",
    cache: ResultCache | None = None,
    trace: Sequence[TraceJob] | None = None,
) -> dict[str, float]:
    """Run (with replications) one point; returns metric means."""
    sc = Scale.by_name(scale) if isinstance(scale, str) else scale
    run_cfg = config.with_(jobs=sc.jobs)
    key = "|".join(
        str(v)
        for v in (
            workload, load, alloc, sched, sc.jobs, sc.min_replications,
            sc.max_replications, sc.trace_max_jobs, network_mode,
            run_cfg.width, run_cfg.length, run_cfg.topology, run_cfg.t_s,
            run_cfg.p_len, run_cfg.num_mes, run_cfg.trace_demand_multiplier,
            run_cfg.round_gap_factor, run_cfg.max_messages, run_cfg.seed,
            run_cfg.scheduler_window,
            "ext" if trace is not None else "sdsc",
        )
    )
    store = cache if cache is not None else global_cache()
    hit = store.get(key)
    if hit is not None:
        return dict(hit)

    def run_once(seed: int) -> dict[str, float]:
        allocator = make_allocator(alloc, run_cfg.width, run_cfg.length)
        scheduler = make_scheduler(sched, window=run_cfg.scheduler_window)
        wl = make_workload(workload, run_cfg, load, sc, trace=trace)
        sim = Simulator(
            run_cfg, allocator, scheduler, wl,
            network_mode=network_mode, seed=seed,
        )
        result = sim.run()
        return {m: result.metric(m) for m in METRICS}

    # trace replay is deterministic -> a single run regardless of scale
    deterministic = workload == "real"
    reps = run_replications(
        run_once,
        METRICS,
        min_replications=1 if deterministic else sc.min_replications,
        max_replications=1 if deterministic else sc.max_replications,
        base_seed=run_cfg.seed,
    )
    out = {m: reps.mean(m) for m in METRICS}
    store.put(key, out)
    return out


# ------------------------------------------------------------------ figures
@dataclass(frozen=True, slots=True)
class FigureResult:
    """All series of one regenerated figure."""

    spec: FigureSpec
    loads: tuple[float, ...]
    #: series[combo_label][i] corresponds to loads[i]
    series: Mapping[str, tuple[float, ...]]

    def series_for(self, alloc: str, sched: str) -> tuple[float, ...]:
        return self.series[combo_label(alloc, sched)]


def run_figure(
    fig_id: str,
    scale: str = "smoke",
    config: SimConfig = PAPER_CONFIG,
    network_mode: str = "fast",
    cache: ResultCache | None = None,
    trace: Sequence[TraceJob] | None = None,
) -> FigureResult:
    """Regenerate one paper figure's data series."""
    spec = FIGURES[fig_id]
    sc = Scale.by_name(scale)
    loads = spec.loads_for(sc.name)
    series: dict[str, tuple[float, ...]] = {}
    for alloc, sched in spec.combos:
        values = []
        for load in loads:
            point = run_point(
                spec.workload, load, alloc, sched,
                scale=sc, config=config, network_mode=network_mode,
                cache=cache, trace=trace,
            )
            values.append(point[spec.metric])
        series[combo_label(alloc, sched)] = tuple(values)
    return FigureResult(spec=spec, loads=loads, series=series)
