"""Sharded, concurrency-safe result store for campaign runs.

The store memoises point results at two levels: an in-process dict and a
shard directory on disk with **one JSON file per point key**.  Shard
files are written atomically (tempfile in the same directory followed by
``os.replace``), so any number of worker processes -- or concurrent
campaign runs -- can populate the same cache directory without ever
producing a torn or corrupt file: distinct keys land in distinct files,
and concurrent writes of the same key resolve to one complete winner.

Earlier versions kept a single monolithic ``results.json`` that was
rewritten in full on every insertion (O(n^2) disk churn over a campaign)
and could be truncated by an interrupt mid-``write_text``.  A legacy
file found at the configured path is imported into the shard directory
once and renamed to ``results.json.migrated``.

Set ``REPRO_CACHE=0`` to keep results in memory only;
``REPRO_CACHE_DIR`` relocates the on-disk cache (default
``.repro-cache/`` under the working directory).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Mapping


def _default_cache_path() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.cwd() / ".repro-cache"
    return base / "results.json"


def _shard_name(key: str) -> str:
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:40] + ".json"


def _translate_legacy_key(key: str) -> str | None:
    """Rewrite a pre-shard ``"|"``-joined cache key as the structured
    :meth:`PointSpec.key` JSON, so an imported paper-scale cache stays
    *reachable* under the new lookup scheme.

    The legacy format was 21 ``str()``-ed fields in a fixed order.
    Returns ``None`` when ``key`` is not in that format or describes an
    external trace (whose content fingerprint is unrecoverable).
    """
    parts = key.split("|")
    if len(parts) != 21:
        return None
    (workload, load, alloc, sched, jobs, min_rep, max_rep, trace_max,
     network_mode, width, length, topology, t_s, p_len, num_mes,
     demand_mult, round_gap, max_messages, seed, window, trace_tag) = parts
    if trace_tag != "sdsc":
        return None
    try:
        # trace replay was (and is) a single deterministic run
        lo, hi = (1, 1) if workload == "real" else (int(min_rep), int(max_rep))
        payload = {
            "workload": workload,
            "load": float(load),
            "alloc": alloc,
            "sched": sched,
            "network_mode": network_mode,
            "trace_source": "sdsc",
            "trace_max_jobs": None if trace_max == "None" else int(trace_max),
            "replications": [lo, hi],
            # fields absent from the legacy key were defaults there
            "config": {
                "width": int(width), "length": int(length),
                "topology": topology, "network_mode": network_mode,
                "t_s": float(t_s), "p_len": int(p_len),
                "num_mes": float(num_mes), "max_messages": int(max_messages),
                "trace_demand_multiplier": float(demand_mult),
                "round_gap_factor": float(round_gap),
                "jobs": int(jobs), "warmup_jobs": 0, "seed": int(seed),
                "max_time": None, "scheduler_window": int(window),
            },
        }
    except ValueError:
        return None
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Two-level memo: in-process dict + sharded JSON directory.

    ``path`` accepts either a shard directory or, for backward
    compatibility, a legacy ``*.json`` file path; the latter shards into
    a sibling ``<name>.shards/`` directory and imports the legacy file's
    contents on first load.
    """

    def __init__(self, path: Path | None = None) -> None:
        self._mem: dict[str, dict] = {}
        disk_enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        p = Path(path) if path is not None else _default_cache_path()
        if p.suffix == ".json":
            legacy = p
            self.path = p.with_suffix(".shards")
        else:
            legacy = p / "results.json"
            self.path = p
        self.disk = disk_enabled
        if self.disk:
            self._import_legacy(legacy)

    # ------------------------------------------------------------------ API
    def get(self, key: str) -> dict | None:
        """The stored payload for ``key`` (memory first, then disk)."""
        hit = self._mem.get(key)
        if hit is not None:
            return hit
        if not self.disk:
            return None
        value = self._read_shard(key)
        if value is not None:
            self._mem[key] = value
        return value

    def put(self, key: str, value: Mapping) -> None:
        """Store ``value`` under ``key`` (atomic shard write when on disk)."""
        self._mem[key] = dict(value)
        if self.disk:
            try:
                self._write_shard(key, self._mem[key])
            except OSError:
                self.disk = False  # read-only filesystem: stay in memory

    def put_many(self, items: Iterable[tuple[str, Mapping]]) -> None:
        """Store a batch of ``(key, value)`` pairs with coalesced disk I/O.

        Each shard is still written atomically (tempfile + ``rename``),
        but instead of leaving every entry's durability to the next
        metadata flush, the *directory* is fsynced **once per batch**
        after all renames land -- so a whole drained campaign round
        costs one fsync, not one per point, and a crash loses at most
        the final batch.  This is the campaign drain loop's write path;
        :meth:`put` remains the single-entry form.
        """
        wrote = False
        for key, value in items:
            self._mem[key] = dict(value)
            if self.disk:
                try:
                    self._write_shard(key, self._mem[key])
                    wrote = True
                except OSError:
                    self.disk = False  # read-only filesystem: stay in memory
        if wrote:
            self._sync_dir()

    def _sync_dir(self) -> None:
        """One fsync of the shard directory (batch durability point)."""
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass  # fsync on a directory is best-effort (e.g. NFS)
        finally:
            os.close(fd)

    # ---------------------------------------------------------------- disk
    def _read_shard(self, key: str) -> dict | None:
        shard = self.path / _shard_name(key)
        try:
            payload = json.loads(shard.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        # a hash collision (or foreign file) must not alias another point
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        value = payload.get("value")
        return dict(value) if isinstance(value, dict) else None

    def _write_shard(self, key: str, value: Mapping) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump({"key": key, "value": dict(value)}, f)
            os.replace(tmp, self.path / _shard_name(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _import_legacy(self, legacy: Path) -> None:
        """One-shot migration of a monolithic ``results.json``."""
        if not legacy.is_file():
            return
        try:
            entries = json.loads(legacy.read_text())
        except (OSError, json.JSONDecodeError):
            return  # corrupt legacy cache: ignore it
        if not isinstance(entries, dict):
            return
        try:
            for key, value in entries.items():
                if isinstance(value, dict):
                    # pre-shard keys are rewritten to the structured
                    # format; unrecognised keys import verbatim
                    target = _translate_legacy_key(key) or key
                    self._mem.setdefault(target, dict(value))
                    if not (self.path / _shard_name(target)).exists():
                        self._write_shard(target, value)
            legacy.rename(legacy.with_suffix(".json.migrated"))
        except OSError:
            pass  # read-only cache dir: served from memory this run


_GLOBAL_CACHE: ResultCache | None = None


def global_cache() -> ResultCache:
    """The process-wide result store (created on first use)."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ResultCache()
    return _GLOBAL_CACHE


def reset_global_cache() -> None:
    """Drop the process-wide cache (tests / cache-dir changes)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = None
