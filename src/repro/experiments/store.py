"""Sharded, concurrency-safe result store for campaign runs.

The store memoises point results at two levels: an in-process dict and a
shard directory on disk with **one JSON file per point key**.  Shard
files are written atomically (tempfile in the same directory followed by
``os.replace``), so any number of worker processes -- or concurrent
campaign runs -- can populate the same cache directory without ever
producing a torn or corrupt file: distinct keys land in distinct files,
and concurrent writes of the same key resolve to one complete winner.

Earlier versions kept a single monolithic ``results.json`` that was
rewritten in full on every insertion (O(n^2) disk churn over a campaign)
and could be truncated by an interrupt mid-``write_text``.  A legacy
file found at the configured path is imported into the shard directory
once and renamed to ``results.json.migrated``.

Set ``REPRO_CACHE=0`` to keep results in memory only;
``REPRO_CACHE_DIR`` relocates the on-disk cache (default
``.repro-cache/`` under the working directory).
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterable, Iterator, Mapping


def _default_cache_path() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.cwd() / ".repro-cache"
    return base / "results.json"


#: minimum age (seconds) before an orphaned ``*.tmp`` file is reaped on
#: cache open.  A writer's mkstemp -> os.replace window is microseconds,
#: so any temp this old belongs to a writer that was killed mid-write;
#: the margin keeps a concurrent live campaign's in-flight temp safe.
TEMP_REAP_AGE = 60.0


def _shard_name(key: str) -> str:
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:40] + ".json"


def _translate_legacy_key(key: str) -> str | None:
    """Rewrite a pre-shard ``"|"``-joined cache key as the structured
    :meth:`PointSpec.key` JSON, so an imported paper-scale cache stays
    *reachable* under the new lookup scheme.

    The legacy format was 21 ``str()``-ed fields in a fixed order.
    Returns ``None`` when ``key`` is not in that format or describes an
    external trace (whose content fingerprint is unrecoverable).
    """
    parts = key.split("|")
    if len(parts) != 21:
        return None
    (workload, load, alloc, sched, jobs, min_rep, max_rep, trace_max,
     network_mode, width, length, topology, t_s, p_len, num_mes,
     demand_mult, round_gap, max_messages, seed, window, trace_tag) = parts
    if trace_tag != "sdsc":
        return None
    try:
        # trace replay was (and is) a single deterministic run
        lo, hi = (1, 1) if workload == "real" else (int(min_rep), int(max_rep))
        payload = {
            "workload": workload,
            "load": float(load),
            "alloc": alloc,
            "sched": sched,
            "network_mode": network_mode,
            "trace_source": "sdsc",
            "trace_max_jobs": None if trace_max == "None" else int(trace_max),
            "replications": [lo, hi],
            # fields absent from the legacy key were defaults there
            "config": {
                "width": int(width), "length": int(length),
                "topology": topology, "network_mode": network_mode,
                "t_s": float(t_s), "p_len": int(p_len),
                "num_mes": float(num_mes), "max_messages": int(max_messages),
                "trace_demand_multiplier": float(demand_mult),
                "round_gap_factor": float(round_gap),
                "jobs": int(jobs), "warmup_jobs": 0, "seed": int(seed),
                "max_time": None, "scheduler_window": int(window),
            },
        }
    except ValueError:
        return None
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Two-level memo: in-process dict + sharded JSON directory.

    ``path`` accepts either a shard directory or, for backward
    compatibility, a legacy ``*.json`` file path; the latter shards into
    a sibling ``<name>.shards/`` directory and imports the legacy file's
    contents on first load.
    """

    def __init__(self, path: Path | None = None) -> None:
        self._mem: dict[str, dict] = {}
        disk_enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        p = Path(path) if path is not None else _default_cache_path()
        if p.suffix == ".json":
            legacy = p
            self.path = p.with_suffix(".shards")
        else:
            legacy = p / "results.json"
            self.path = p
        self.disk = disk_enabled
        if self.disk:
            self._reap_temps()
            self._import_legacy(legacy)

    # ------------------------------------------------------------------ API
    def get(self, key: str) -> dict | None:
        """The stored payload for ``key`` (memory first, then disk)."""
        hit = self._mem.get(key)
        if hit is not None:
            return hit
        if not self.disk:
            return None
        value = self._read_shard(key)
        if value is not None:
            self._mem[key] = value
        return value

    def put(self, key: str, value: Mapping) -> None:
        """Store ``value`` under ``key`` (atomic shard write when on disk)."""
        self._mem[key] = dict(value)
        if self.disk:
            try:
                self._write_shard(key, self._mem[key])
            except OSError:
                self.disk = False  # read-only filesystem: stay in memory

    def put_many(self, items: Iterable[tuple[str, Mapping]]) -> None:
        """Store a batch of ``(key, value)`` pairs with coalesced disk I/O.

        Each shard is still written atomically (tempfile + ``rename``),
        but instead of leaving every entry's durability to the next
        metadata flush, the *directory* is fsynced **once per batch**
        after all renames land -- so a whole drained campaign round
        costs one fsync, not one per point, and a crash loses at most
        the final batch.  This is the campaign drain loop's write path;
        :meth:`put` remains the single-entry form.
        """
        wrote = False
        for key, value in items:
            self._mem[key] = dict(value)
            if self.disk:
                try:
                    self._write_shard(key, self._mem[key])
                    wrote = True
                except OSError:
                    self.disk = False  # read-only filesystem: stay in memory
        if wrote:
            self._sync_dir()

    def keys(self) -> Iterator[str]:
        """Every point key the store holds (memory plus disk shards).

        The disk scan reads only well-formed shard files -- a file whose
        embedded ``key`` does not hash back to its own name (a foreign
        file, a hash collision, or a corrupt write) is skipped, and
        orphaned ``*.tmp`` files are never considered.  Keys are yielded
        memory-first, deduplicated, in no particular order.
        """
        seen = set(self._mem)
        yield from self._mem
        if not self.disk:
            return
        try:
            shards = list(self.path.glob("*.json"))
        except OSError:
            return
        for shard in shards:
            try:
                payload = json.loads(shard.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(payload, dict):
                continue
            key = payload.get("key")
            if (isinstance(key, str) and key not in seen
                    and _shard_name(key) == shard.name):
                seen.add(key)
                yield key

    def _reap_temps(self) -> int:
        """Remove orphaned ``*.tmp`` files from the shard directory.

        A writer killed between ``mkstemp`` and ``os.replace`` leaves
        its temp file behind forever -- it is invisible to lookups (only
        ``<hash>.json`` names are ever read) but accumulates on every
        crash.  Called on cache open; only temps older than
        :data:`TEMP_REAP_AGE` are touched so a concurrently *live*
        writer's in-flight temp survives.  Returns the number reaped.
        """
        try:
            temps = list(self.path.glob("*.tmp"))
        except OSError:
            return 0
        reaped = 0
        horizon = time.time() - TEMP_REAP_AGE
        for tmp in temps:
            try:
                if tmp.stat().st_mtime <= horizon:
                    tmp.unlink()
                    reaped += 1
            except OSError:
                continue  # raced with another reaper, or permissions
        return reaped

    def _sync_dir(self) -> None:
        """One fsync of the shard directory (batch durability point)."""
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass  # fsync on a directory is best-effort (e.g. NFS)
        finally:
            os.close(fd)

    # ---------------------------------------------------------------- disk
    def _read_shard(self, key: str) -> dict | None:
        shard = self.path / _shard_name(key)
        try:
            payload = json.loads(shard.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        # a hash collision (or foreign file) must not alias another point
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        value = payload.get("value")
        return dict(value) if isinstance(value, dict) else None

    def _write_shard(self, key: str, value: Mapping) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump({"key": key, "value": dict(value)}, f)
            os.replace(tmp, self.path / _shard_name(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _import_legacy(self, legacy: Path) -> None:
        """One-shot migration of a monolithic ``results.json``."""
        if not legacy.is_file():
            return
        try:
            entries = json.loads(legacy.read_text())
        except (OSError, json.JSONDecodeError):
            return  # corrupt legacy cache: ignore it
        if not isinstance(entries, dict):
            return
        try:
            for key, value in entries.items():
                if isinstance(value, dict):
                    # pre-shard keys are rewritten to the structured
                    # format; unrecognised keys import verbatim
                    target = _translate_legacy_key(key) or key
                    self._mem.setdefault(target, dict(value))
                    if not (self.path / _shard_name(target)).exists():
                        self._write_shard(target, value)
            legacy.rename(legacy.with_suffix(".json.migrated"))
        except OSError:
            pass  # read-only cache dir: served from memory this run


#: writer-queue sentinel: drain whatever is left, then exit the thread
_STOP = object()


class AsyncResultWriter:
    """Stream results to a :class:`ResultCache` through one writer thread.

    Producers (campaign drain loops, HTTP handlers) enqueue results on a
    bounded queue and return immediately; a single dedicated thread
    drains whatever has accumulated and commits each drained batch
    through the cache's coalesced :meth:`ResultCache.put_many` -- so a
    burst of finished points costs **one** directory fsync per drain,
    not one per point, and producers never wait on disk unless the queue
    is full (backpressure at ``maxsize`` entries).

    The writer quacks like the cache (``get``/``put``/``put_many``), so
    it drops into :meth:`Campaign.run`'s ``cache=`` parameter unchanged.
    Reads delegate straight to the wrapped cache; a point enqueued but
    not yet drained is invisible for the few milliseconds until its
    batch commits -- callers needing read-your-writes call
    :meth:`flush` first.  Crash durability is the cache's own contract:
    shard writes stay atomic, and a kill mid-drain loses at most the
    batch in flight.
    """

    def __init__(self, cache: ResultCache, maxsize: int = 1024) -> None:
        self.cache = cache
        self._queue: queue.Queue = queue.Queue(maxsize)
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain_loop, name="repro-store-writer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ API
    def get(self, key: str) -> dict | None:
        """Read-through to the wrapped cache (memory first, then disk)."""
        return self.cache.get(key)

    def put(self, key: str, value: Mapping) -> None:
        """Enqueue one result for the writer thread (returns at once)."""
        self.put_many(((key, value),))

    def put_many(self, items: Iterable[tuple[str, Mapping]]) -> None:
        """Enqueue a batch of results for the writer thread.

        Blocks only when the bounded queue is full (producers cannot
        outrun the disk without bound).  Raises ``RuntimeError`` after
        :meth:`close`.
        """
        if self._closed:
            raise RuntimeError("AsyncResultWriter is closed")
        for key, value in items:
            self._queue.put((key, dict(value)))

    def flush(self) -> None:
        """Block until everything enqueued so far has hit the cache."""
        self._queue.join()

    def close(self) -> None:
        """Flush remaining work and stop the writer thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join()

    # --------------------------------------------------------------- thread
    def _drain_loop(self) -> None:
        while True:
            item = self._queue.get()
            stop = item is _STOP
            batch = [] if stop else [item]
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            if batch:
                try:
                    self.cache.put_many(batch)  # one fsync for the batch
                finally:
                    for _ in batch:
                        self._queue.task_done()
            if stop:
                self._queue.task_done()
                return


_GLOBAL_CACHE: ResultCache | None = None


def global_cache() -> ResultCache:
    """The process-wide result store (created on first use)."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = ResultCache()
    return _GLOBAL_CACHE


def reset_global_cache() -> None:
    """Drop the process-wide cache (tests / cache-dir changes)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = None
