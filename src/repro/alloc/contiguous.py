"""Contiguous baseline allocators: First-Fit and Best-Fit sub-mesh.

The paper's figures evaluate only non-contiguous strategies, but its
motivation (external fragmentation, section 1) and the wider literature
[2, 19] are defined against contiguous allocation.  These baselines back
the ``bench_abl_contiguity`` ablation, which quantifies the fragmentation
the non-contiguous strategies eliminate.

* **First-Fit** scans base nodes in row-major order and takes the first
  suitable sub-mesh, trying the rotated orientation on failure (Zhu [19]).
* **Best-Fit** considers every suitable base (both orientations) and takes
  the candidate with the highest *boundary contact* -- the number of
  perimeter-adjacent cells that are allocated or outside the mesh.  Packing
  against existing allocations and walls preserves large free rectangles.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.base import Allocation, Allocator
from repro.mesh.geometry import SubMesh
from repro.mesh.rectfind import all_suitable_bases, find_suitable_submesh


class FirstFitAllocator(Allocator):
    """Contiguous First-Fit with optional rotation."""

    name = "FF"
    complete = False  # contiguous: fails under external fragmentation

    def __init__(self, width: int, length: int, allow_rotation: bool = True) -> None:
        super().__init__(width, length)
        self.allow_rotation = allow_rotation

    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        s = find_suitable_submesh(self.grid, w, l)
        if s is None and self.allow_rotation and w != l:
            s = find_suitable_submesh(self.grid, l, w)
        if s is None:
            return None
        self.grid.allocate_submesh(s, job_id)
        return Allocation(job_id=job_id, submeshes=(s,), coords=self._coords_of((s,)))


class BestFitAllocator(Allocator):
    """Contiguous Best-Fit by maximal boundary contact."""

    name = "BF"
    complete = False

    def __init__(self, width: int, length: int, allow_rotation: bool = True) -> None:
        super().__init__(width, length)
        self.allow_rotation = allow_rotation

    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        shapes = [(w, l)]
        if self.allow_rotation and w != l:
            shapes.append((l, w))
        best: SubMesh | None = None
        best_contact = -1
        free = self.grid.free_mask()  # identical for every candidate
        for sw, sl in shapes:
            for base in all_suitable_bases(self.grid, sw, sl):
                cand = SubMesh.from_base(base.x, base.y, sw, sl)
                contact = self._boundary_contact(cand, free)
                if contact > best_contact:
                    best_contact = contact
                    best = cand
        if best is None:
            return None
        self.grid.allocate_submesh(best, job_id)
        return Allocation(
            job_id=job_id, submeshes=(best,), coords=self._coords_of((best,))
        )

    def _boundary_contact(self, s: SubMesh, free: np.ndarray | None = None) -> int:
        """Perimeter cells of ``s`` that touch busy processors or walls.

        Each side contributes its full extent when flush against a mesh
        wall, otherwise the count of busy cells in the adjacent row or
        column strip of the free mask (no per-cell Python).  Pass the
        current ``free`` mask when scoring many candidates of one grid
        state.
        """
        grid = self.grid
        if free is None:
            free = grid.free_mask()
        extents = (s.length, s.length, s.width, s.width)
        strips = (
            None if s.x1 == 0 else free[s.y1:s.y2 + 1, s.x1 - 1],
            None if s.x2 == grid.width - 1 else free[s.y1:s.y2 + 1, s.x2 + 1],
            None if s.y1 == 0 else free[s.y1 - 1, s.x1:s.x2 + 1],
            None if s.y2 == grid.length - 1 else free[s.y2 + 1, s.x1:s.x2 + 1],
        )
        contact = 0
        for extent, strip in zip(extents, strips):
            if strip is None:
                contact += extent  # wall: every perimeter cell touches
            else:
                contact += extent - int(np.count_nonzero(strip))
        return contact
