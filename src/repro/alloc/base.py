"""Allocator interface shared by every allocation strategy.

An allocator owns the :class:`~repro.mesh.grid.MeshGrid` occupancy state and
a :class:`~repro.mesh.busylist.BusyList`.  A request is the sub-mesh shape
``w x l`` asked for by a job (non-contiguous strategies may scatter the
``w*l`` processors); on success the allocator returns an
:class:`Allocation` that the simulator later hands back to
:meth:`Allocator.release`.

Invariants enforced (and property-tested):

* a processor is never double-allocated;
* an allocation covers exactly ``w*l`` processors;
* release restores the free count;
* for the paper's three non-contiguous strategies, allocation succeeds
  if and only if ``free >= w*l`` (they "have the same ability to eliminate
  both internal and external processor fragmentation").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

from repro.mesh.busylist import BusyList
from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import MeshGrid


@dataclass(frozen=True, slots=True)
class Allocation:
    """The processors granted to one job.

    ``coords`` is ordered (sub-mesh by sub-mesh, row-major inside each);
    the all-to-all traffic generator uses this order for its round-robin
    destination schedule.  ``token`` is an opaque allocator payload (e.g.
    the MBS buddy blocks) threaded back into ``release``.
    """

    job_id: int
    submeshes: tuple[SubMesh, ...]
    coords: tuple[Coord, ...]
    token: Any = None

    @property
    def size(self) -> int:
        """Number of processors allocated."""
        return len(self.coords)

    @property
    def contiguous(self) -> bool:
        """Whether the job received one single sub-mesh."""
        return len(self.submeshes) == 1

    @property
    def fragment_count(self) -> int:
        """Number of disjoint sub-meshes the job was scattered over."""
        return len(self.submeshes)


@dataclass(slots=True)
class AllocatorStats:
    """Bookkeeping every allocator maintains for the experiment reports."""

    attempts: int = 0
    successes: int = 0
    failures: int = 0
    contiguous_successes: int = 0
    fragments_sum: int = 0
    released: int = 0

    @property
    def mean_fragments(self) -> float:
        """Mean number of sub-meshes per successful allocation."""
        return self.fragments_sum / self.successes if self.successes else 0.0

    @property
    def contiguity_rate(self) -> float:
        """Fraction of successful allocations that were one sub-mesh."""
        return self.contiguous_successes / self.successes if self.successes else 0.0


class Allocator(abc.ABC):
    """Base class of every allocation strategy.

    The occupancy grid is owned by the allocator: once constructed, mutate
    it only through :meth:`allocate`/:meth:`release`.  Strategies with
    internal bookkeeping (MBS buddy trees, Paging page tables) rely on the
    grid and their own structures staying in lock-step; direct grid writes
    would desynchronise them (the grid itself will detect and reject the
    resulting double allocations).
    """

    #: human-readable strategy name, e.g. ``"GABL"`` or ``"Paging(0)"``
    name: str = "abstract"
    #: True when allocation is guaranteed to succeed whenever
    #: ``free >= w*l`` (holds for Paging(0), MBS, GABL and Random).
    complete: bool = False
    #: True when ``_allocate`` is a pure function of the grid and the
    #: allocator's own state (everything except the randomised baseline).
    #: Enables memoising failed requests per grid version: the head-of-
    #: line job is re-attempted on every dispatch, so under load the same
    #: doomed request is otherwise recomputed against an unchanged mesh.
    deterministic: bool = True

    def __init__(self, width: int, length: int) -> None:
        self.grid = MeshGrid(width, length)
        self.busy_list = BusyList()
        self.stats = AllocatorStats()
        self._failed_requests: set[tuple[int, int]] = set()
        self._failed_version = -1

    # ------------------------------------------------------------------ API
    @property
    def width(self) -> int:
        return self.grid.width

    @property
    def length(self) -> int:
        return self.grid.length

    @property
    def free_count(self) -> int:
        """Number of free processors right now."""
        return self.grid.free_count

    def allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        """Try to allocate a ``w x l`` request for ``job_id``.

        Returns ``None`` on failure (the caller keeps the job queued).
        """
        self._validate_request(w, l)
        self.stats.attempts += 1
        if self.deterministic:
            version = self.grid.version
            if version != self._failed_version:
                self._failed_version = version
                self._failed_requests.clear()
            if (w, l) in self._failed_requests:
                # same request against an unchanged mesh: same outcome
                self.stats.failures += 1
                return None
        allocation = self._allocate(job_id, w, l)
        if allocation is None:
            self.stats.failures += 1
            if self.deterministic:
                self._failed_requests.add((w, l))
            return None
        self.stats.successes += 1
        self.stats.fragments_sum += allocation.fragment_count
        if allocation.contiguous:
            self.stats.contiguous_successes += 1
        for s in allocation.submeshes:
            self.busy_list.add(job_id, s)
        self.busy_list.sample_length()
        return allocation

    def release(self, allocation: Allocation) -> None:
        """Return every processor of ``allocation`` to the free pool."""
        self.busy_list.remove_job(allocation.job_id)
        self._release(allocation)
        self.stats.released += 1

    def reset(self) -> None:
        """Drop all state (between simulation replications)."""
        self.grid.reset()
        self.busy_list = BusyList()
        self.stats = AllocatorStats()
        self._failed_requests.clear()
        self._failed_version = -1

    # ------------------------------------------------------------ internals
    @abc.abstractmethod
    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        """Strategy-specific allocation; must mutate ``self.grid``."""

    def _release(self, allocation: Allocation) -> None:
        """Default release: free each sub-mesh on the grid."""
        for s in allocation.submeshes:
            self.grid.release_submesh(s, allocation.job_id)

    def _validate_request(self, w: int, l: int) -> None:
        if w <= 0 or l <= 0:
            raise ValueError(f"request sides must be positive, got {w}x{l}")
        # a side may exceed the corresponding mesh side (rotation or
        # non-contiguous scatter can still satisfy it); only requests
        # larger than the whole machine are nonsensical
        if w * l > self.width * self.length:
            raise ValueError(
                f"request {w}x{l} exceeds machine capacity "
                f"{self.width}x{self.length}"
            )

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _coords_of(submeshes: Sequence[SubMesh]) -> tuple[Coord, ...]:
        """Concatenate member nodes of the sub-meshes, in order."""
        out: list[Coord] = []
        for s in submeshes:
            out.extend(s.nodes())
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name} {self.width}x{self.length} "
            f"free={self.free_count}>"
        )
