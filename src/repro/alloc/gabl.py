"""GABL -- Greedy Available Busy List allocation (Bani-Mohammad et al. [12]).

GABL combines contiguous and non-contiguous allocation:

1. When a job requesting ``S(a, b)`` is selected, a *suitable* free
   sub-mesh for the whole job is searched for (both orientations, as in
   the authors' SIMPAT 2007 paper).  If found, the job is allocated
   contiguously and allocation is done.
2. Otherwise -- provided at least ``a*b`` processors are free -- the
   largest free sub-mesh that fits inside ``S(a, b)`` is allocated, and
   then repeatedly the largest free sub-mesh whose side lengths do not
   exceed those of the previously allocated sub-mesh, under the constraint
   that the total never exceeds ``a*b`` processors, until exactly ``a*b``
   processors are allocated.

The greedy largest-first decomposition is what maintains GABL's "high
degree of contiguity": big chunks keep communicating processors close,
shrinking message distances and contention.  Allocation always succeeds
when ``free >= a*b`` (a 1x1 chunk always exists), so GABL is *complete*
like Paging(0) and MBS.
"""

from __future__ import annotations

from repro.alloc.base import Allocation, Allocator
from repro.mesh.geometry import SubMesh
from repro.mesh.rectfind import find_suitable_submesh, largest_free_rect_bounded


class GABLAllocator(Allocator):
    """Greedy Available Busy List allocator."""

    name = "GABL"
    complete = True

    def __init__(self, width: int, length: int, allow_rotation: bool = True) -> None:
        super().__init__(width, length)
        self.allow_rotation = allow_rotation

    # ---------------------------------------------------------- allocation
    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        contiguous = self._find_contiguous(w, l)
        if contiguous is not None:
            self.grid.allocate_submesh(contiguous, job_id)
            return Allocation(
                job_id=job_id,
                submeshes=(contiguous,),
                coords=self._coords_of((contiguous,)),
            )
        if w * l > self.grid.free_count:
            return None
        chunks = self._greedy_decompose(job_id, w, l)
        return Allocation(
            job_id=job_id,
            submeshes=tuple(chunks),
            coords=self._coords_of(chunks),
        )

    def _find_contiguous(self, w: int, l: int) -> SubMesh | None:
        """Suitable whole-job sub-mesh, trying the rotated shape as well."""
        s = find_suitable_submesh(self.grid, w, l)
        if s is None and self.allow_rotation and w != l:
            s = find_suitable_submesh(self.grid, l, w)
        return s

    def _greedy_decompose(self, job_id: int, w: int, l: int) -> list[SubMesh]:
        """Largest-first non-contiguous decomposition (paper section 3)."""
        chunks: list[SubMesh] = []
        remaining = w * l
        bound_w, bound_l = w, l
        while remaining > 0:
            chunk = self._largest_within(bound_w, bound_l, remaining)
            # a free processor always exists while remaining > 0 because the
            # caller verified free >= w*l and chunks consume free processors
            # one-for-one with `remaining`
            assert chunk is not None, "GABL invariant violated: no free chunk"
            self.grid.allocate_submesh(chunk, job_id)
            chunks.append(chunk)
            remaining -= chunk.area
            bound_w, bound_l = chunk.width, chunk.length
        return chunks

    def _largest_within(
        self, bound_w: int, bound_l: int, max_area: int
    ) -> SubMesh | None:
        """Largest free sub-mesh fitting a ``bound_w x bound_l`` frame.

        A candidate may be rotated into the frame (a ``rw x rl`` rectangle
        fits ``a x b`` iff it fits directly or rotated), so both bound
        orientations are searched and the larger result kept.
        """
        best = largest_free_rect_bounded(self.grid, bound_w, bound_l, max_area)
        if self.allow_rotation and bound_w != bound_l:
            alt = largest_free_rect_bounded(self.grid, bound_l, bound_w, max_area)
            if alt is not None and (best is None or alt.area > best.area):
                best = alt
        return best
