"""Random non-contiguous allocation -- ProcSimity's naive baseline.

Takes ``w*l`` free processors uniformly at random with no regard for
locality.  Complete (succeeds iff enough processors are free) but with the
worst possible dispersion, so it upper-bounds the communication overhead a
non-contiguous strategy can inflict; the ``bench_abl_contiguity`` ablation
uses it as the anti-GABL pole.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.base import Allocation, Allocator
from repro.mesh.geometry import Coord, SubMesh


def merge_unit_runs(coords: list[Coord]) -> list[SubMesh]:
    """Merge unit cells into maximal horizontal runs (busy-list hygiene)."""
    by_row: dict[int, list[int]] = {}
    for c in coords:
        by_row.setdefault(c.y, []).append(c.x)
    out: list[SubMesh] = []
    for y in sorted(by_row):
        xs = sorted(by_row[y])
        start = prev = xs[0]
        for x in xs[1:]:
            if x == prev + 1:
                prev = x
                continue
            out.append(SubMesh(start, y, prev, y))
            start = prev = x
        out.append(SubMesh(start, y, prev, y))
    return out


class RandomAllocator(Allocator):
    """Uniform-random scatter allocation."""

    name = "Random"
    complete = True
    #: allocation depends on RNG state, not only on the grid; keep the
    #: base-class failure memo away from anything stochastic
    deterministic = False

    def __init__(self, width: int, length: int, seed: int = 0) -> None:
        super().__init__(width, length)
        self._rng = np.random.default_rng(seed)
        self._seed = seed

    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        p = w * l
        if p > self.grid.free_count:
            return None
        free = self.grid.free_mask()
        ys, xs = np.nonzero(free)
        picks = self._rng.choice(len(ys), size=p, replace=False)
        coords = [Coord(int(xs[i]), int(ys[i])) for i in picks]
        submeshes = merge_unit_runs(coords)
        for s in submeshes:
            self.grid.allocate_submesh(s, job_id)
        return Allocation(
            job_id=job_id,
            submeshes=tuple(submeshes),
            coords=self._coords_of(submeshes),
        )

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self._seed)
