"""ANCA -- Adaptive Non-Contiguous Allocation (Chang & Mohapatra [4]).

The strategy the paper cites as the other classic non-contiguous scheme:
a request ``S(a, b)`` is first tried contiguously; on failure it is split
into two *equal halves along the longer side*, and each half is allocated
(recursively) the same way.  Splitting bottoms out at single processors,
so ANCA -- like Paging(0), MBS and GABL -- succeeds whenever enough
processors are free.

Compared with GABL, the halving is *request-driven* rather than
*availability-driven*: ANCA may split a request although a large free
sub-mesh barely misses one dimension, where GABL's
largest-free-rectangle search would carve a better chunk.  The
``bench_abl_contiguity`` ablation quantifies this gap.
"""

from __future__ import annotations

from repro.alloc.base import Allocation, Allocator
from repro.mesh.geometry import SubMesh
from repro.mesh.rectfind import find_suitable_submesh


class ANCAAllocator(Allocator):
    """Adaptive Non-Contiguous Allocation via recursive request halving."""

    name = "ANCA"
    complete = True

    def __init__(self, width: int, length: int, allow_rotation: bool = True) -> None:
        super().__init__(width, length)
        self.allow_rotation = allow_rotation

    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        if w * l > self.grid.free_count:
            return None
        chunks: list[SubMesh] = []
        self._place(job_id, w, l, chunks)
        return Allocation(
            job_id=job_id,
            submeshes=tuple(chunks),
            coords=self._coords_of(chunks),
        )

    def _place(self, job_id: int, w: int, l: int, out: list[SubMesh]) -> None:
        """Allocate a (sub)request contiguously or split it in half.

        The caller guarantees enough free processors exist for the whole
        original request, and every split conserves the processor count,
        so the recursion always terminates with exact coverage (1x1
        pieces exist while any processor is free).
        """
        s = find_suitable_submesh(self.grid, w, l)
        if s is None and self.allow_rotation and w != l:
            s = find_suitable_submesh(self.grid, l, w)
        if s is not None:
            self.grid.allocate_submesh(s, job_id)
            out.append(s)
            return
        # split the longer side into two halves (sizes differ by <= 1)
        if w >= l:
            if w == 1 and l == 1:
                raise AssertionError(
                    "ANCA invariant violated: no free processor for a 1x1 piece"
                )
            half = w // 2
            self._place(job_id, half, l, out)
            self._place(job_id, w - half, l, out)
        else:
            half = l // 2
            self._place(job_id, w, half, out)
            self._place(job_id, w, l - half, out)
