"""Flat per-lane state buffers for the structure-of-arrays engine.

A :class:`LaneState` owns every array one replication lane needs --
job attributes, grid occupancy, channel free-at times, scheduler queues,
the completion heap, allocator scratch and the MBS buddy arena -- as
NumPy buffers whose raw pointers are handed to the compiled lane driver
(:mod:`repro.core._soa_native`).  Python's only jobs are slicing arrival
columns from the workload's block stream
(:mod:`repro.workload.columnar`) into the arrays -- no ``Job`` objects
are materialised on this path -- and folding the final accumulator
values into a :class:`~repro.core.metrics.RunResult` with the exact
float operations of :meth:`repro.core.metrics.Metrics.result`.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro.alloc.mbs import cover_with_squares
from repro.core import _soa_native as native
from repro.core.config import SimConfig
from repro.core.metrics import RunResult
from repro.workload.base import Workload
from repro.workload.columnar import MAX_CHUNK, JobBlock, open_stream, refill_size

#: allocator/scheduler strategies the compiled driver implements,
#: keyed by their registry names
ALLOC_KINDS = {"GABL": 0, "Paging(0)": 1, "MBS": 2}
SCHED_KINDS = {"FCFS": 0, "SSD": 1}

__all__ = ["ALLOC_KINDS", "SCHED_KINDS", "MAX_CHUNK", "LaneState"]


class LaneState:
    """All flat state of one replication lane (one seed of one point)."""

    def __init__(
        self,
        config: SimConfig,
        workload: Workload,
        seed: int,
        alloc_kind: int,
        sched_kind: int,
    ) -> None:
        self.config = config
        self.seed = seed
        W, L = config.width, config.length
        self.processors = config.processors
        cells = W * L
        self.cap = max(config.jobs + 64, 256)
        self._cursor = open_stream(workload, seed)
        self._block: JobBlock | None = None
        self._boff = 0
        self.n_provided = 0
        self.exhausted = False

        self.F = np.zeros(native.F_COUNT, dtype=np.float64)
        self.I = np.zeros(native.I_COUNT, dtype=np.int64)
        self.I[native.I_MEMOVER] = -1
        self.I[native.I_FREE] = cells

        cap = self.cap
        self.arr = np.zeros(cap, dtype=np.float64)
        self.jw = np.zeros(cap, dtype=np.int64)
        self.jl = np.zeros(cap, dtype=np.int64)
        self.jmsg = np.zeros(cap, dtype=np.int64)
        self.jdem = np.zeros(cap, dtype=np.float64)
        self.jat = np.zeros(cap, dtype=np.float64)
        self.jpk = np.zeros(cap, dtype=np.int64)
        self.jlat = np.zeros(cap, dtype=np.float64)
        self.jblk = np.zeros(cap, dtype=np.float64)
        self.jns = np.zeros(cap, dtype=np.int64)
        self.fcfs = np.zeros(cap, dtype=np.int64)
        self.ssdk = np.zeros(cap, dtype=np.float64)
        self.ssds = np.zeros(cap, dtype=np.int64)
        self.ssdj = np.zeros(cap, dtype=np.int64)
        self.rem = np.zeros(cap, dtype=np.uint8)

        self.owner = np.full(cells, -1, dtype=np.int64)
        self.free_at = np.zeros(cells * 6, dtype=np.float64)
        self.memo = np.zeros(cells, dtype=np.uint8)
        heap_cap = self.processors + 8
        self.ct = np.zeros(heap_cap, dtype=np.float64)
        self.cs = np.zeros(heap_cap, dtype=np.int64)
        self.cj = np.zeros(heap_cap, dtype=np.int64)
        self.ids = np.zeros(cells, dtype=np.int64)
        self.offs = np.zeros(max(config.max_messages, 1), dtype=np.int64)
        window = max(config.scheduler_window, 1)
        self.window = window
        self.pkk = np.zeros(window, dtype=np.float64)
        self.pks = np.zeros(window, dtype=np.int64)
        self.pkj = np.zeros(window, dtype=np.int64)
        self.hts = np.zeros(cells, dtype=np.int64)
        self.ero = np.zeros(cells, dtype=np.int64)
        self.sat = np.zeros((W + 1) * (L + 1), dtype=np.int64)

        if alloc_kind == ALLOC_KINDS["MBS"]:
            roots = cover_with_squares(W, L)
            self.max_k = max(k for k, _, _ in roots)
            self.rk = np.array([k for k, _, _ in roots], dtype=np.int64)
            self.rx = np.array([x for _, x, _ in roots], dtype=np.int64)
            self.ry = np.array([y for _, _, y in roots], dtype=np.int64)
            self.node_cap = 2 * cells + 64
            node_cap = self.node_cap
            self.nk = np.zeros(node_cap, dtype=np.int64)
            self.nx = np.zeros(node_cap, dtype=np.int64)
            self.ny = np.zeros(node_cap, dtype=np.int64)
            self.npar = np.zeros(node_cap, dtype=np.int64)
            self.nchild = np.zeros(node_cap, dtype=np.int64)
            self.nstate = np.zeros(node_cap, dtype=np.uint8)
            self.nepoch = np.zeros(node_cap, dtype=np.int64)
            self.nown = np.zeros(node_cap, dtype=np.int64)
            # per-level heap arenas: blocks at level k are disjoint
            # 2**k-sided squares, so at most cells // 4**k are ever valid
            level_caps = [
                (cells >> (2 * k)) + 8 for k in range(self.max_k + 1)
            ]
            self.mhoff = np.zeros(self.max_k + 2, dtype=np.int64)
            np.cumsum(level_caps, out=self.mhoff[1:])
            arena = int(self.mhoff[-1])
            self.mhe = np.zeros(arena, dtype=np.int64)
            self.mhn = np.zeros(arena, dtype=np.int64)
            self.mhl = np.zeros(self.max_k + 1, dtype=np.int64)
        else:
            self.max_k = 0
            self.node_cap = 0
            one = np.zeros(1, dtype=np.int64)
            self.rk = self.rx = self.ry = one
            self.nk = self.nx = self.ny = one
            self.npar = self.nchild = self.nepoch = self.nown = one
            self.nstate = np.zeros(1, dtype=np.uint8)
            self.mhe = self.mhn = self.mhl = one
            self.mhoff = np.zeros(2, dtype=np.int64)

        self.CI = np.zeros(native.CI_COUNT, dtype=np.int64)
        ci = self.CI
        ci[native.CI_MAGIC] = native.LAYOUT_MAGIC
        ci[native.CI_W] = W
        ci[native.CI_L] = L
        ci[native.CI_WRAP] = int(config.topology == "torus")
        ci[native.CI_ALLOC] = alloc_kind
        ci[native.CI_SCHED] = sched_kind
        ci[native.CI_WINDOW] = window
        ci[native.CI_JOBS] = config.jobs
        ci[native.CI_WARMUP] = config.warmup_jobs
        ci[native.CI_HASUNTIL] = int(config.max_time is not None)
        ci[native.CI_NODECAP] = self.node_cap
        ci[native.CI_NROOTS] = len(self.rk)
        ci[native.CI_MAXK] = self.max_k
        # timing constants, exactly as FastBackend/AllToAllTraffic derive
        # them: hop = t_s + 1, occupancy = p_len, drain = p_len - 1,
        # round gap = round_gap_factor * p_len
        self.CF = np.array(
            [
                config.t_s + 1.0,
                float(config.p_len),
                float(config.p_len - 1),
                config.round_gap_factor * config.p_len,
                config.max_time if config.max_time is not None else 0.0,
            ],
            dtype=np.float64,
        )
        self._rebuild_pointers()

    # ------------------------------------------------------------ pointers
    def _rebuild_pointers(self) -> None:
        arrays = [
            self.F, self.I, self.arr, self.jw, self.jl, self.jmsg,
            self.jdem, self.jat, self.jpk, self.jlat, self.jblk, self.jns,
            self.owner, self.free_at, self.memo,
            self.fcfs, self.ssdk, self.ssds, self.ssdj, self.rem,
            self.ct, self.cs, self.cj,
            self.ids, self.offs, self.pkk, self.pks, self.pkj,
            self.hts, self.ero, self.sat,
            self.nk, self.nx, self.ny, self.npar, self.nchild,
            self.nstate, self.nepoch, self.nown,
            self.mhe, self.mhn, self.mhl, self.mhoff,
            self.rk, self.rx, self.ry,
        ]
        assert len(arrays) == native.P_COUNT
        table = (ctypes.c_void_p * native.P_COUNT)()
        for i, a in enumerate(arrays):
            table[i] = a.ctypes.data
        #: keep the backing arrays alive alongside the raw pointers
        self._arrays = arrays
        self.ptable = table

    @property
    def ci_ptr(self) -> int:
        return self.CI.ctypes.data

    @property
    def cf_ptr(self) -> int:
        return self.CF.ctypes.data

    # ------------------------------------------------------------- feeding
    def feed(self) -> None:
        """Copy the next chunk of arrival columns into the job arrays.

        Refill sizing follows the one documented policy in
        :func:`repro.workload.columnar.refill_size` (first fill =
        completion target + slack, later fills grow with consumption,
        both capped at ``MAX_CHUNK``).  Arrivals come as
        :class:`~repro.workload.columnar.JobBlock` column slices and
        land in the lane arrays as bulk slice assignments -- zero
        ``Job`` objects on this path.  A block boundary rarely lines up
        with a refill boundary, so a partially consumed block is kept
        across calls (``_block`` / ``_boff``); exhaustion can land
        mid-chunk and simply marks the lane finished with whatever was
        copied.
        """
        if self.exhausted:
            return
        want = refill_size(self.n_provided, self.config.jobs)
        n = self.n_provided
        while want > 0:
            if self._block is None:
                self._block = self._cursor.next_block()
                self._boff = 0
                if self._block is None:
                    self.exhausted = True
                    break
            blk = self._block
            take = min(want, len(blk) - self._boff)
            a, b = self._boff, self._boff + take
            end = n + take
            while end > self.cap:
                self._grow()
            self.arr[n:end] = blk.arrival[a:b]
            self.jw[n:end] = blk.width[a:b]
            self.jl[n:end] = blk.length[a:b]
            self.jmsg[n:end] = blk.messages[a:b]
            self.jdem[n:end] = blk.demand[a:b]
            n = end
            want -= take
            if b == len(blk):
                self._block = None
            else:
                self._boff = b
        self.n_provided = n
        self.CI[native.CI_NPROV] = n
        self.CI[native.CI_EXH] = int(self.exhausted)

    def _grow(self) -> None:
        new_cap = self.cap * 2

        def g(a: np.ndarray) -> np.ndarray:
            out = np.zeros(new_cap, dtype=a.dtype)
            out[: self.cap] = a
            return out

        self.arr = g(self.arr)
        self.jw = g(self.jw)
        self.jl = g(self.jl)
        self.jmsg = g(self.jmsg)
        self.jdem = g(self.jdem)
        self.jat = g(self.jat)
        self.jpk = g(self.jpk)
        self.jlat = g(self.jlat)
        self.jblk = g(self.jblk)
        self.jns = g(self.jns)
        self.fcfs = g(self.fcfs)
        self.ssdk = g(self.ssdk)
        self.ssds = g(self.ssds)
        self.ssdj = g(self.ssdj)
        self.rem = g(self.rem)
        self.cap = new_cap
        self._rebuild_pointers()

    # -------------------------------------------------------------- result
    def result(self) -> RunResult:
        """Freeze the lane accumulators, mirroring ``Metrics.result``."""
        F, I = self.F, self.I
        now = float(F[native.F_NOW])
        measured = int(I[native.I_MEASURED])
        n = max(measured, 1)
        packets = int(I[native.I_PACKETS])
        pk = max(packets, 1)
        span = now - 0.0
        if span <= 0:
            utilization = 0.0
        else:
            integral = float(F[native.F_BUSYINT]) + int(
                I[native.I_BUSY]
            ) * (now - float(F[native.F_LASTCHANGE]))
            utilization = integral / (self.processors * span)
        return RunResult(
            completed_jobs=int(I[native.I_COMPLETED]),
            measured_jobs=measured,
            mean_turnaround=float(F[native.F_TURN]) / n,
            mean_service=float(F[native.F_SERV]) / n,
            mean_wait=float(F[native.F_WAIT]) / n,
            mean_packet_latency=float(F[native.F_LAT]) / pk,
            mean_packet_blocking=float(F[native.F_BLK]) / pk,
            utilization=utilization,
            sim_time=now,
            packets_delivered=packets,
            mean_fragments=int(I[native.I_FRAG]) / n,
            contiguity_rate=int(I[native.I_CONTIG]) / n,
            queue_peak=int(I[native.I_QPEAK]),
        )
