"""Page indexing schemes for the Paging strategy (Lo et al. [17]).

The Paging strategy divides the mesh into equal square pages and allocates
pages in a fixed *index order*.  Lo et al. define four orders -- row-major,
shuffled row-major, snake-like, and shuffled snake-like -- and report that
the choice has "only a slight impact" on performance, which is why the
paper under reproduction uses row-major only.  We implement all four (the
ablation bench ``bench_abl_indexing`` checks the slight-impact claim).

The *shuffled* orders interleave pages recursively by quadrant; for page
grids whose sides are powers of two this is exactly the Morton (Z-order)
shuffle of the row-major / snake positions.  For non-power-of-two page
grids we rank pages by their Morton key, which degrades gracefully to the
same recursive interleaving.
"""

from __future__ import annotations

from typing import Callable

from repro.mesh.geometry import Coord

IndexScheme = Callable[[int, int], list[Coord]]


def row_major(pw: int, pl: int) -> list[Coord]:
    """Pages ordered by ``(y, x)`` -- the paper's default."""
    return [Coord(x, y) for y in range(pl) for x in range(pw)]


def snake(pw: int, pl: int) -> list[Coord]:
    """Boustrophedon order: even rows left-to-right, odd rows reversed."""
    out: list[Coord] = []
    for y in range(pl):
        xs = range(pw) if y % 2 == 0 else range(pw - 1, -1, -1)
        out.extend(Coord(x, y) for x in xs)
    return out


def _morton_key(x: int, y: int) -> int:
    """Interleave the bits of ``x`` and ``y`` (Z-order curve rank)."""
    key = 0
    for bit in range(max(x.bit_length(), y.bit_length(), 1)):
        key |= ((x >> bit) & 1) << (2 * bit)
        key |= ((y >> bit) & 1) << (2 * bit + 1)
    return key


def shuffled_row_major(pw: int, pl: int) -> list[Coord]:
    """Recursive quadrant interleaving of the row-major order."""
    pages = [Coord(x, y) for y in range(pl) for x in range(pw)]
    pages.sort(key=lambda c: (_morton_key(c.x, c.y), c.y, c.x))
    return pages


def shuffled_snake(pw: int, pl: int) -> list[Coord]:
    """Quadrant interleaving applied to snake positions.

    Each page is ranked by the Morton key of its snake-curve position
    (row, possibly-reflected column), giving the "shuffled snake-like"
    order of Lo et al.
    """
    def snake_pos(c: Coord) -> tuple[int, int]:
        x = c.x if c.y % 2 == 0 else pw - 1 - c.x
        return x, c.y

    pages = [Coord(x, y) for y in range(pl) for x in range(pw)]
    pages.sort(key=lambda c: (_morton_key(*snake_pos(c)), c.y, c.x))
    return pages


#: registry used by :class:`repro.alloc.paging.PagingAllocator`
SCHEMES: dict[str, IndexScheme] = {
    "row-major": row_major,
    "snake": snake,
    "shuffled-row-major": shuffled_row_major,
    "shuffled-snake": shuffled_snake,
}


def scheme(name: str) -> IndexScheme:
    """Look up an indexing scheme by name (raises ``KeyError`` if unknown)."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown indexing scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
