"""MBS -- the Multiple Buddy Strategy (Lo et al. [17]).

On initialisation the ``W x L`` mesh is covered by non-overlapping square
blocks with power-of-two sides (a 16x22 mesh becomes one 16x16 block, four
4x4 blocks and eight 2x2 blocks).  The number of processors ``p`` requested
by a job is factorised into base 4, ``p = sum(d_i * 4**i)`` with
``0 <= d_i <= 3``, and the request asks for ``d_i`` blocks of side ``2**i``
per level, largest level first.

If a required block size is unavailable, MBS splits the smallest larger
free block into four buddies (recursively); if no larger block exists the
required block is broken into four requests one level down.  Deallocation
returns blocks to their free lists and merges four free buddies back into
their parent, cascading upwards.

Because every free processor always belongs to some free leaf block, the
strategy is *complete*: a request succeeds iff ``free >= p``.  Its known
weakness -- reproduced by the real-workload experiments -- is that
contiguous allocation is only ever sought for request sizes of the form
``2**(2n)``, so the non-power-of-two sizes that dominate real traces get
scattered into many small blocks.
"""

from __future__ import annotations

import heapq

from repro.alloc.base import Allocation, Allocator
from repro.mesh.geometry import SubMesh

# block states
_FREE = 0
_ALLOC = 1
_SPLIT = 2
_ABSORBED = 3  # merged back into the parent; not a leaf


class _Block:
    """A square buddy block of side ``2**k`` based at ``(x, y)``."""

    __slots__ = ("k", "x", "y", "parent", "children", "state", "epoch")

    def __init__(self, k: int, x: int, y: int, parent: "_Block | None") -> None:
        self.k = k
        self.x = x
        self.y = y
        self.parent = parent
        self.children: tuple[_Block, ...] | None = None
        self.state = _FREE
        self.epoch = 0  # bumped on every state change (lazy heap invalidation)

    @property
    def side(self) -> int:
        return 1 << self.k

    @property
    def area(self) -> int:
        return 1 << (2 * self.k)

    def submesh(self) -> SubMesh:
        return SubMesh.from_base(self.x, self.y, self.side, self.side)

    def make_children(self) -> tuple["_Block", ...]:
        """Create (or reuse) the four buddies one level down."""
        if self.children is None:
            h = self.side // 2
            self.children = (
                _Block(self.k - 1, self.x, self.y, self),
                _Block(self.k - 1, self.x + h, self.y, self),
                _Block(self.k - 1, self.x, self.y + h, self),
                _Block(self.k - 1, self.x + h, self.y + h, self),
            )
        return self.children

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Block k={self.k} at ({self.x},{self.y}) state={self.state}>"


def base4_digits(p: int) -> list[int]:
    """Base-4 digits of ``p``, least significant first (``d_i`` of the paper)."""
    if p <= 0:
        raise ValueError(f"processor count must be positive, got {p}")
    digits: list[int] = []
    while p:
        digits.append(p % 4)
        p //= 4
    return digits


def cover_with_squares(width: int, length: int) -> list[tuple[int, int, int]]:
    """Cover a ``width x length`` rectangle with power-of-two squares.

    Returns ``(k, x, y)`` triples (side ``2**k`` based at ``(x, y)``),
    placing the largest fitting squares first and recursing into the two
    remaining strips.  The cover is exact and non-overlapping.
    """
    out: list[tuple[int, int, int]] = []

    def cover(x0: int, y0: int, w: int, l: int) -> None:
        if w <= 0 or l <= 0:
            return
        k = min(w, l).bit_length() - 1  # largest 2**k <= min(w, l)
        side = 1 << k
        across, up = w // side, l // side
        for j in range(up):
            for i in range(across):
                out.append((k, x0 + i * side, y0 + j * side))
        cover(x0 + across * side, y0, w - across * side, l)  # right strip
        cover(x0, y0 + up * side, across * side, l - up * side)  # bottom remainder

    cover(0, 0, width, length)
    return out


class MBSAllocator(Allocator):
    """Multiple Buddy Strategy allocator."""

    name = "MBS"
    complete = True

    def __init__(self, width: int, length: int) -> None:
        super().__init__(width, length)
        roots = cover_with_squares(width, length)
        self.max_k = max(k for k, _, _ in roots)
        #: per-level lazy min-heaps of (y, x, epoch, block)
        self._free: list[list[tuple[int, int, int, _Block]]] = [
            [] for _ in range(self.max_k + 1)
        ]
        self._roots = [_Block(k, x, y, None) for k, x, y in roots]
        for b in self._roots:
            self._push_free(b)

    # ----------------------------------------------------------- free lists
    def _push_free(self, block: _Block) -> None:
        block.state = _FREE
        block.epoch += 1
        heapq.heappush(self._free[block.k], (block.y, block.x, block.epoch, block))

    def _pop_free(self, k: int) -> _Block | None:
        """Pop the row-major-first valid free block at level ``k``."""
        heap = self._free[k]
        while heap:
            y, x, epoch, block = heap[0]
            if block.state == _FREE and block.epoch == epoch:
                heapq.heappop(heap)
                return block
            heapq.heappop(heap)  # stale entry
        return None

    def _peek_free(self, k: int) -> bool:
        heap = self._free[k]
        while heap:
            _, _, epoch, block = heap[0]
            if block.state == _FREE and block.epoch == epoch:
                return True
            heapq.heappop(heap)
        return False

    # ------------------------------------------------------------ splitting
    def _split_down(self, block: _Block, target_k: int) -> _Block:
        """Split ``block`` until a block of level ``target_k`` emerges.

        The base-corner child is followed; the other three buddies join the
        free lists at each level.
        """
        while block.k > target_k:
            block.state = _SPLIT
            block.epoch += 1
            children = block.make_children()
            for child in children[1:]:
                self._push_free(child)
            block = children[0]
        return block

    def _take_block(self, k: int) -> _Block | None:
        """Obtain an allocated block of level ``k`` (splitting if needed)."""
        block = self._pop_free(k)
        if block is None:
            for j in range(k + 1, self.max_k + 1):
                if self._peek_free(j):
                    block = self._pop_free(j)
                    assert block is not None
                    block = self._split_down(block, k)
                    break
            else:
                return None
        block.state = _ALLOC
        block.epoch += 1
        return block

    # ------------------------------------------------------------- merging
    def _merge_up(self, block: _Block) -> None:
        """Cascade buddy merges from a freshly freed block upwards."""
        parent = block.parent
        while parent is not None:
            children = parent.children
            assert children is not None
            if any(c.state != _FREE for c in children):
                return
            for c in children:
                c.state = _ABSORBED
                c.epoch += 1
            self._push_free(parent)
            parent = parent.parent

    # ---------------------------------------------------------- allocation
    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        p = w * l
        if p > self.grid.free_count:
            return None
        # needs[i] = blocks of level i still required, seeded by the base-4
        # factorisation of p
        digits = base4_digits(p)
        needs = [0] * (self.max_k + 1)
        for i, d in enumerate(digits):
            if i > self.max_k:
                # request bigger than the largest block level: express the
                # excess as extra blocks at the top level
                needs[self.max_k] += d * 4 ** (i - self.max_k)
            else:
                needs[i] += d
        blocks: list[_Block] = []
        for i in range(self.max_k, -1, -1):
            while needs[i]:
                block = self._take_block(i)
                if block is None:
                    if i == 0:
                        # cannot happen while free >= p (every free processor
                        # sits in a splittable free leaf); guard anyway
                        raise AssertionError("MBS free lists inconsistent")
                    needs[i - 1] += 4 * needs[i]
                    needs[i] = 0
                    break
                blocks.append(block)
                needs[i] -= 1
        submeshes = tuple(b.submesh() for b in blocks)
        for s, b in zip(submeshes, blocks):
            self.grid.allocate_submesh(s, job_id)
        return Allocation(
            job_id=job_id,
            submeshes=submeshes,
            coords=self._coords_of(submeshes),
            token=tuple(blocks),
        )

    def _release(self, allocation: Allocation) -> None:
        super()._release(allocation)
        blocks: tuple[_Block, ...] = allocation.token
        for block in blocks:
            if block.state != _ALLOC:
                raise ValueError(f"releasing non-allocated block {block}")
            self._push_free(block)
        for block in blocks:
            if block.state == _FREE:  # may have been absorbed by a merge
                self._merge_up(block)

    def reset(self) -> None:
        super().reset()
        self._free = [[] for _ in range(self.max_k + 1)]
        for b in self._roots:
            b.children = None
            self._push_free(b)

    # ------------------------------------------------------------- queries
    def free_blocks_at(self, k: int) -> int:
        """Number of valid free blocks at level ``k`` (for tests/benches)."""
        return sum(
            1
            for y, x, epoch, b in self._free[k]
            if b.state == _FREE and b.epoch == epoch
        )
