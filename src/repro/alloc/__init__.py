"""Processor allocation strategies.

The paper evaluates the non-contiguous strategies Paging(0), MBS and GABL;
contiguous First-Fit/Best-Fit and a Random scatter baseline are included
for the ablation studies.  :func:`make_allocator` builds a strategy from
its paper-style spec string (e.g. ``"Paging(0)"``).
"""

from __future__ import annotations

import re

from repro.alloc.anca import ANCAAllocator
from repro.alloc.base import Allocation, Allocator, AllocatorStats
from repro.alloc.contiguous import BestFitAllocator, FirstFitAllocator
from repro.alloc.gabl import GABLAllocator
from repro.alloc.mbs import MBSAllocator
from repro.alloc.paging import PagingAllocator
from repro.alloc.random_alloc import RandomAllocator

__all__ = [
    "Allocation",
    "Allocator",
    "AllocatorStats",
    "PagingAllocator",
    "MBSAllocator",
    "GABLAllocator",
    "ANCAAllocator",
    "FirstFitAllocator",
    "BestFitAllocator",
    "RandomAllocator",
    "make_allocator",
    "ALLOCATORS",
]

#: plain-name registry (Paging takes a parameter, handled by the factory)
ALLOCATORS: dict[str, type[Allocator]] = {
    "MBS": MBSAllocator,
    "GABL": GABLAllocator,
    "ANCA": ANCAAllocator,
    "FF": FirstFitAllocator,
    "BF": BestFitAllocator,
    "Random": RandomAllocator,
}

_PAGING_RE = re.compile(r"^Paging\((\d+)\)$")


def make_allocator(spec: str, width: int, length: int, **kwargs) -> Allocator:
    """Build an allocator from a spec string.

    ``spec`` is the paper-style name: ``"GABL"``, ``"MBS"``,
    ``"Paging(0)"`` (any non-negative page index), ``"FF"``, ``"BF"`` or
    ``"Random"``.  Extra keyword arguments are forwarded to the strategy
    constructor (e.g. ``indexing=`` for Paging, ``seed=`` for Random).
    """
    m = _PAGING_RE.match(spec)
    if m:
        return PagingAllocator(width, length, size_index=int(m.group(1)), **kwargs)
    try:
        cls = ALLOCATORS[spec]
    except KeyError:
        raise KeyError(
            f"unknown allocator spec {spec!r}; expected one of "
            f"{sorted(ALLOCATORS)} or 'Paging(i)'"
        ) from None
    return cls(width, length, **kwargs)
