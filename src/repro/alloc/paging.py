"""Paging(size_index) non-contiguous allocation (Lo et al. [17]).

The mesh is divided into square pages of side ``2**size_index``; a page is
the allocation unit.  Pages are kept in a fixed index order (row-major by
default, see :mod:`repro.alloc.indexing`) and a request for a ``w x l``
sub-mesh is satisfied by the first ``ceil(w/ps) * ceil(l/ps)`` free pages
in that order.

With ``size_index = 0`` (the paper's Paging(0)) a page is a single
processor, so a request takes exactly ``w*l`` free processors and the
strategy is *complete*: it succeeds iff enough processors are free.  For
``size_index >= 1`` whole pages are granted to partially-filled requests,
i.e. internal fragmentation appears and grows with the index -- the
ablation bench ``bench_abl_pagesize`` measures this.

Adjacent allocated pages (in grid terms) are merged into maximal runs per
row when building the allocation's sub-mesh list, which keeps the busy
list and the traffic generator's notion of locality honest.
"""

from __future__ import annotations

import numpy as np

from repro.alloc.base import Allocation, Allocator
from repro.alloc.indexing import scheme
from repro.mesh.geometry import Coord, SubMesh


class PagingAllocator(Allocator):
    """Paging(``size_index``) with a configurable page indexing scheme."""

    complete = True  # only literally true for size_index == 0 (see class doc)

    def __init__(
        self,
        width: int,
        length: int,
        size_index: int = 0,
        indexing: str = "row-major",
    ) -> None:
        super().__init__(width, length)
        if size_index < 0:
            raise ValueError(f"size_index must be >= 0, got {size_index}")
        self.size_index = size_index
        self.page_side = 2**size_index
        if width % self.page_side or length % self.page_side:
            raise ValueError(
                f"mesh {width}x{length} not divisible into "
                f"{self.page_side}x{self.page_side} pages"
            )
        self.indexing = indexing
        self.name = f"Paging({size_index})"
        self.complete = size_index == 0
        self.pages_w = width // self.page_side
        self.pages_l = length // self.page_side
        #: page bases in allocation order
        self._order: list[Coord] = scheme(indexing)(self.pages_w, self.pages_l)
        #: page free flags, indexed [page_y][page_x]
        self._page_free = np.ones((self.pages_l, self.pages_w), dtype=bool)
        self._free_pages = self.pages_w * self.pages_l

    # ------------------------------------------------------------ allocation
    def pages_needed(self, w: int, l: int) -> int:
        """Pages required for a ``w x l`` request (ceil per side)."""
        ps = self.page_side
        return (-(-w // ps)) * (-(-l // ps))

    def _allocate(self, job_id: int, w: int, l: int) -> Allocation | None:
        need = self.pages_needed(w, l)
        if need > self._free_pages:
            return None
        taken: list[Coord] = []
        for page in self._order:
            if self._page_free[page.y, page.x]:
                taken.append(page)
                if len(taken) == need:
                    break
        assert len(taken) == need, "free-page counter out of sync"
        for page in taken:
            self._page_free[page.y, page.x] = False
        self._free_pages -= need
        submeshes = self._merge_pages(taken)
        for s in submeshes:
            self.grid.allocate_submesh(s, job_id)
        return Allocation(
            job_id=job_id,
            submeshes=tuple(submeshes),
            coords=self._coords_of(submeshes),
            token=tuple(taken),
        )

    def _release(self, allocation: Allocation) -> None:
        super()._release(allocation)
        pages: tuple[Coord, ...] = allocation.token
        for page in pages:
            if self._page_free[page.y, page.x]:
                raise ValueError(f"page {page} already free")
            self._page_free[page.y, page.x] = True
        self._free_pages += len(pages)

    def reset(self) -> None:
        super().reset()
        self._page_free[:] = True
        self._free_pages = self.pages_w * self.pages_l

    # -------------------------------------------------------------- helpers
    def _page_submesh(self, page: Coord) -> SubMesh:
        """Processor rectangle covered by a page."""
        ps = self.page_side
        return SubMesh.from_base(page.x * ps, page.y * ps, ps, ps)

    def _merge_pages(self, pages: list[Coord]) -> list[SubMesh]:
        """Merge taken pages into maximal horizontal runs per page row.

        A full 2D merge is unnecessary: runs already capture the locality
        the indexing scheme provides, and the busy list stays small.
        """
        ps = self.page_side
        by_row: dict[int, list[int]] = {}
        for p in pages:
            by_row.setdefault(p.y, []).append(p.x)
        out: list[SubMesh] = []
        for py in sorted(by_row):
            xs = sorted(by_row[py])
            run_start = prev = xs[0]
            for x in xs[1:]:
                if x == prev + 1:
                    prev = x
                    continue
                out.append(
                    SubMesh(run_start * ps, py * ps, (prev + 1) * ps - 1, (py + 1) * ps - 1)
                )
                run_start = prev = x
            out.append(
                SubMesh(run_start * ps, py * ps, (prev + 1) * ps - 1, (py + 1) * ps - 1)
            )
        return out

    @property
    def free_pages(self) -> int:
        """Number of currently free pages."""
        return self._free_pages
