"""Busy list: the set of allocated sub-meshes, grouped by owning job.

GABL (Greedy Available Busy List) is named after this structure: allocated
sub-meshes are kept in a busy list, and "when a job departs the sub-meshes
it is allocated are removed from the busy list and the number of free
processors is updated" (paper section 3).  The paper's conclusion also
remarks that GABL's busy list "is often small even when the size of the
mesh scales up" -- the ablation bench ``bench_abl_busylist`` measures
exactly that, so the structure tracks length statistics.
"""

from __future__ import annotations

from typing import Iterator

from repro.mesh.geometry import SubMesh


class BusyList:
    """Allocated sub-meshes grouped by job, with length statistics."""

    __slots__ = ("_by_job", "_count", "_peak", "_length_sum", "_samples")

    def __init__(self) -> None:
        self._by_job: dict[int, list[SubMesh]] = {}
        self._count = 0
        self._peak = 0
        self._length_sum = 0
        self._samples = 0

    def add(self, job_id: int, submesh: SubMesh) -> None:
        """Record ``submesh`` as allocated to ``job_id``."""
        self._by_job.setdefault(job_id, []).append(submesh)
        self._count += 1
        if self._count > self._peak:
            self._peak = self._count

    def remove_job(self, job_id: int) -> list[SubMesh]:
        """Remove and return every sub-mesh allocated to ``job_id``."""
        entries = self._by_job.pop(job_id, None)
        if entries is None:
            raise KeyError(f"job {job_id} has no busy-list entries")
        self._count -= len(entries)
        return entries

    def job_submeshes(self, job_id: int) -> list[SubMesh]:
        """Current sub-meshes of ``job_id`` (empty list if none)."""
        return list(self._by_job.get(job_id, ()))

    def sample_length(self) -> None:
        """Record the current length for mean-length statistics."""
        self._length_sum += self._count
        self._samples += 1

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[SubMesh]:
        for entries in self._by_job.values():
            yield from entries

    @property
    def job_count(self) -> int:
        """Number of jobs currently holding allocations."""
        return len(self._by_job)

    @property
    def peak_length(self) -> int:
        """Largest number of sub-meshes simultaneously in the list."""
        return self._peak

    @property
    def mean_length(self) -> float:
        """Mean sampled length (see :meth:`sample_length`)."""
        return self._length_sum / self._samples if self._samples else 0.0

    def total_allocated(self) -> int:
        """Total number of processors covered by the list."""
        return sum(s.area for s in self)
