"""Mutable occupancy state of the ``W x L`` mesh.

The grid is the single source of truth about which processors are free.
Allocators mutate it through :meth:`MeshGrid.allocate_submesh` /
:meth:`MeshGrid.allocate_nodes` and the matching ``release`` calls; every
mutation keeps the free-processor count and an owner map consistent, which
the test-suite leans on heavily.

Internally the state is a NumPy ``int32`` owner array of shape ``(L, W)``
(row ``y``, column ``x``) where ``-1`` means *free*; a boolean free mask is
derived lazily for the vectorised rectangle searches in
:mod:`repro.mesh.rectfind`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.mesh.geometry import Coord, SubMesh

FREE = -1


class MeshGrid:
    """Occupancy grid of a ``width x length`` 2D mesh."""

    __slots__ = (
        "width", "length", "_owner", "_free_count", "_version", "rect_scratch",
    )

    def __init__(self, width: int, length: int) -> None:
        if width <= 0 or length <= 0:
            raise ValueError(f"mesh dimensions must be positive, got {width}x{length}")
        self.width = int(width)
        self.length = int(length)
        self._owner = np.full((self.length, self.width), FREE, dtype=np.int32)
        self._free_count = self.width * self.length
        self._version = 0  # bumped on every mutation; used for cache invalidation
        #: version-tagged scratch space owned by repro.mesh.rectfind (the
        #: free-rectangle geometry derived from the current occupancy);
        #: invalidated implicitly by the version counter
        self.rect_scratch: dict | None = None

    # ------------------------------------------------------------------ state
    @property
    def size(self) -> int:
        """Total number of processors ``W * L``."""
        return self.width * self.length

    @property
    def free_count(self) -> int:
        """Number of currently free processors."""
        return self._free_count

    @property
    def busy_count(self) -> int:
        """Number of currently allocated processors."""
        return self.size - self._free_count

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (for caches)."""
        return self._version

    def free_mask(self) -> np.ndarray:
        """Boolean ``(L, W)`` array, ``True`` where the processor is free.

        The caller must not mutate the returned array.
        """
        return self._owner == FREE

    def owner_at(self, c: Coord) -> int:
        """Owner job id at coordinate ``c`` (``FREE`` if unallocated)."""
        self._check_coord(c)
        return int(self._owner[c.y, c.x])

    def is_free(self, c: Coord) -> bool:
        """Whether the processor at ``c`` is free."""
        self._check_coord(c)
        return self._owner[c.y, c.x] == FREE

    def submesh_free(self, s: SubMesh) -> bool:
        """Definition 3: whether all processors of ``s`` are free."""
        self._check_submesh(s)
        return bool((self._owner[s.y1 : s.y2 + 1, s.x1 : s.x2 + 1] == FREE).all())

    def in_bounds(self, s: SubMesh) -> bool:
        """Whether ``s`` lies entirely inside the mesh."""
        return s.x2 < self.width and s.y2 < self.length

    # ------------------------------------------------------------- node ids
    def node_id(self, c: Coord) -> int:
        """Row-major linear id of ``c`` (used by the network simulator)."""
        self._check_coord(c)
        return c.y * self.width + c.x

    def coord_of(self, node_id: int) -> Coord:
        """Inverse of :meth:`node_id`."""
        if not 0 <= node_id < self.size:
            raise ValueError(f"node id {node_id} out of range")
        return Coord(node_id % self.width, node_id // self.width)

    # ---------------------------------------------------------- mutation API
    def allocate_submesh(self, s: SubMesh, job_id: int) -> None:
        """Mark every processor of ``s`` as owned by ``job_id``.

        Raises ``ValueError`` if any processor is already allocated -- the
        allocators are required to never double-allocate.
        """
        self._check_submesh(s)
        view = self._owner[s.y1 : s.y2 + 1, s.x1 : s.x2 + 1]
        if (view != FREE).any():
            raise ValueError(f"double allocation of {s} for job {job_id}")
        view[:] = job_id
        self._free_count -= s.area
        self._version += 1

    def release_submesh(self, s: SubMesh, job_id: int) -> None:
        """Free every processor of ``s`` (must be owned by ``job_id``)."""
        self._check_submesh(s)
        view = self._owner[s.y1 : s.y2 + 1, s.x1 : s.x2 + 1]
        if (view != job_id).any():
            raise ValueError(f"release of {s} not owned by job {job_id}")
        view[:] = FREE
        self._free_count += s.area
        self._version += 1

    def allocate_nodes(self, nodes: Iterable[Coord], job_id: int) -> None:
        """Mark an arbitrary set of processors as owned by ``job_id``."""
        nodes = list(nodes)
        for c in nodes:
            self._check_coord(c)
            if self._owner[c.y, c.x] != FREE:
                raise ValueError(f"double allocation of {c} for job {job_id}")
        for c in nodes:
            self._owner[c.y, c.x] = job_id
        self._free_count -= len(nodes)
        self._version += 1

    def release_nodes(self, nodes: Iterable[Coord], job_id: int) -> None:
        """Free an arbitrary set of processors owned by ``job_id``."""
        nodes = list(nodes)
        for c in nodes:
            self._check_coord(c)
            if self._owner[c.y, c.x] != job_id:
                raise ValueError(f"release of {c} not owned by job {job_id}")
        for c in nodes:
            self._owner[c.y, c.x] = FREE
        self._free_count += len(nodes)
        self._version += 1

    def reset(self) -> None:
        """Free the entire mesh (used between simulation replications)."""
        self._owner[:] = FREE
        self._free_count = self.size
        self._version += 1

    # ----------------------------------------------------------- validation
    def validate(self) -> None:
        """Internal consistency check (tests call this after every step)."""
        actual_free = int((self._owner == FREE).sum())
        if actual_free != self._free_count:
            raise AssertionError(
                f"free-count drift: counter={self._free_count} actual={actual_free}"
            )

    def owned_by(self, job_id: int) -> list[Coord]:
        """All coordinates currently owned by ``job_id`` (row-major order)."""
        ys, xs = np.nonzero(self._owner == job_id)
        return [Coord(int(x), int(y)) for y, x in zip(ys, xs)]

    # ------------------------------------------------------------- plumbing
    def _check_coord(self, c: Coord) -> None:
        if not (0 <= c.x < self.width and 0 <= c.y < self.length):
            raise ValueError(f"coordinate {c} outside {self.width}x{self.length} mesh")

    def _check_submesh(self, s: SubMesh) -> None:
        if not self.in_bounds(s):
            raise ValueError(f"sub-mesh {s} outside {self.width}x{self.length} mesh")

    def ascii_art(self, free_char: str = ".", busy_char: str = "#") -> str:
        """Render the grid for debugging/examples, row ``L-1`` on top."""
        rows = []
        for y in range(self.length - 1, -1, -1):
            rows.append(
                "".join(
                    free_char if self._owner[y, x] == FREE else busy_char
                    for x in range(self.width)
                )
            )
        return "\n".join(rows)


def submeshes_disjoint(submeshes: Sequence[SubMesh]) -> bool:
    """Whether no two sub-meshes in the sequence overlap (test helper)."""
    for i, a in enumerate(submeshes):
        for b in submeshes[i + 1 :]:
            if a.overlaps(b):
                return False
    return True
