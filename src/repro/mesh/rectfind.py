"""Free-rectangle search engines over a :class:`~repro.mesh.grid.MeshGrid`.

Three queries drive every allocator in this repository:

* *suitability* -- does a free ``w x l`` sub-mesh exist, and where is the
  first one in row-major base order?  (GABL's contiguous attempt and the
  contiguous First-Fit baseline.)
* *largest free rectangle* -- the biggest all-free sub-mesh, optionally with
  side-length bounds and an area cap.  (GABL's greedy non-contiguous
  decomposition: "the largest free sub-mesh that can fit inside S(a, b)".)
* *all suitable bases* -- every admissible base node (Best-Fit baseline).

The suitability query is vectorised with a summed-area table (O(W*L) NumPy
work); the largest-rectangle query uses the classic monotone-stack
histogram sweep, which enumerates every *maximal* free rectangle, so a
side/area-bounded optimum can be carved out of one of them (any free
rectangle is contained in a maximal free rectangle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import MeshGrid


def _window_counts(free: np.ndarray, w: int, l: int) -> np.ndarray:
    """Number of free processors in every ``w x l`` window.

    Returns an array of shape ``(L - l + 1, W - w + 1)`` whose ``[y, x]``
    entry counts free cells in the window based at ``(x, y)``.
    """
    sat = np.zeros((free.shape[0] + 1, free.shape[1] + 1), dtype=np.int32)
    np.cumsum(np.cumsum(free, axis=0), axis=1, out=sat[1:, 1:])
    return sat[l:, w:] - sat[:-l, w:] - sat[l:, :-w] + sat[:-l, :-w]


def find_suitable_submesh(grid: MeshGrid, w: int, l: int) -> SubMesh | None:
    """First (row-major base order) free ``w x l`` sub-mesh, or ``None``.

    Row-major means scanning bases ``(0,0), (1,0), ..., (W-w,0), (0,1), ...``
    exactly like the free-list scans in the literature [2, 19].
    """
    if w <= 0 or l <= 0:
        raise ValueError(f"request sides must be positive, got {w}x{l}")
    if w > grid.width or l > grid.length:
        return None
    counts = _window_counts(grid.free_mask(), w, l)
    hits = np.nonzero(counts == w * l)
    if hits[0].size == 0:
        return None
    y, x = int(hits[0][0]), int(hits[1][0])
    return SubMesh.from_base(x, y, w, l)


def all_suitable_bases(grid: MeshGrid, w: int, l: int) -> list[Coord]:
    """Every base node of a free ``w x l`` sub-mesh, row-major order."""
    if w <= 0 or l <= 0:
        raise ValueError(f"request sides must be positive, got {w}x{l}")
    if w > grid.width or l > grid.length:
        return []
    counts = _window_counts(grid.free_mask(), w, l)
    ys, xs = np.nonzero(counts == w * l)
    return [Coord(int(x), int(y)) for y, x in zip(ys, xs)]


@dataclass(frozen=True, slots=True)
class _Candidate:
    """A bounded sub-rectangle candidate with a deterministic sort key."""

    area: int
    y: int
    x: int
    w: int
    l: int

    def better_than(self, other: "_Candidate | None") -> bool:
        if other is None:
            return True
        # Larger area wins; ties broken towards the lowest base (row-major),
        # then the wider shape, purely so results are reproducible.
        return (self.area, -self.y, -self.x, self.w) > (
            other.area,
            -other.y,
            -other.x,
            other.w,
        )


def _best_bounded_subrect(
    span_w: int, span_l: int, max_w: int, max_l: int, max_area: int
) -> tuple[int, int] | None:
    """Largest ``w x l`` with ``w <= min(span_w, max_w)``,
    ``l <= min(span_l, max_l)`` and ``w*l <= max_area``; ``None`` if no
    positive-area shape fits."""
    cap_w = min(span_w, max_w)
    cap_l = min(span_l, max_l)
    if cap_w <= 0 or cap_l <= 0 or max_area <= 0:
        return None
    best: tuple[int, int] | None = None
    best_area = 0
    ceiling = min(cap_w * cap_l, max_area)
    for w in range(cap_w, 0, -1):
        l = min(cap_l, max_area // w)
        if l <= 0:
            continue
        if w * l > best_area:
            best_area = w * l
            best = (w, l)
            if best_area == ceiling:
                break  # cannot do better
    return best


def largest_free_rect_bounded(
    grid: MeshGrid,
    max_w: int | None = None,
    max_l: int | None = None,
    max_area: int | None = None,
) -> SubMesh | None:
    """Largest-area free sub-mesh with bounded sides and area.

    Enumerates every maximal free rectangle with a monotone-stack histogram
    sweep and carves the best admissible sub-rectangle out of each; the
    chosen sub-rectangle is anchored at the bottom-left corner of its
    maximal host so results are deterministic.

    Returns ``None`` when no admissible rectangle exists (mesh full or a
    bound is non-positive).
    """
    W, L = grid.width, grid.length
    max_w = W if max_w is None else min(max_w, W)
    max_l = L if max_l is None else min(max_l, L)
    max_area = W * L if max_area is None else max_area
    if max_w <= 0 or max_l <= 0 or max_area <= 0:
        return None

    free = grid.free_mask()
    heights = np.zeros(W, dtype=np.int64)
    best: _Candidate | None = None

    for y in range(L):
        # running histogram: consecutive free cells in each column ending
        # at row y (vectorised update)
        heights = (heights + 1) * free[y]
        hist = heights.tolist()
        hist.append(0)  # sentinel flushes the stack
        stack: list[tuple[int, int]] = []  # (leftmost column, height)
        for x, h in enumerate(hist):
            start = x
            while stack and stack[-1][1] > h:
                pos, height = stack.pop()
                # maximal-width rectangle of this height ends at column x-1
                shape = _best_bounded_subrect(x - pos, height, max_w, max_l, max_area)
                if shape is not None:
                    w, l = shape
                    cand = _Candidate(w * l, y - height + 1, pos, w, l)
                    if cand.better_than(best):
                        best = cand
                start = pos
            if h > 0 and (not stack or stack[-1][1] < h):
                stack.append((start, h))

    if best is None:
        return None
    return SubMesh.from_base(best.x, best.y, best.w, best.l)


def largest_free_rect(grid: MeshGrid) -> SubMesh | None:
    """Largest-area free sub-mesh with no bounds (``None`` if mesh full)."""
    return largest_free_rect_bounded(grid)


def free_submesh_exists(grid: MeshGrid, w: int, l: int) -> bool:
    """Whether any free ``w x l`` sub-mesh exists (no base reported)."""
    return find_suitable_submesh(grid, w, l) is not None
