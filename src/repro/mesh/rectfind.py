"""Free-rectangle search engines over a :class:`~repro.mesh.grid.MeshGrid`.

Three queries drive every allocator in this repository:

* *suitability* -- does a free ``w x l`` sub-mesh exist, and where is the
  first one in row-major base order?  (GABL's contiguous attempt and the
  contiguous First-Fit baseline.)
* *largest free rectangle* -- the biggest all-free sub-mesh, optionally with
  side-length bounds and an area cap.  (GABL's greedy non-contiguous
  decomposition: "the largest free sub-mesh that can fit inside S(a, b)".)
* *all suitable bases* -- every admissible base node (Best-Fit baseline).

The suitability query is vectorised with a summed-area table (O(W*L) NumPy
work); the bounded largest-rectangle query is vectorised over a column-
height tensor.  Both queries run against *version-tagged scratch space*
cached on the grid (``MeshGrid.rect_scratch``): the summed-area table,
the column-height matrix and its width-erosion stack depend only on the
occupancy state, so consecutive queries against an unchanged mesh -- the
two orientations of a request, or the successive chunk searches of a
GABL decomposition against each intermediate state -- reuse them instead
of recomputing from the free mask.

The bounded query considers every anchor ``(x, y, w)``: the tallest free
column block of width ``w`` whose bottom row is ``y`` (the erosion
tensor entry), carved down to the side/area bounds.  This evaluates the
same candidate set as the classic monotone-stack sweep over maximal
rectangles -- every maximal rectangle's carve is dominated by the anchor
at its left edge, and every anchor's carve is dominated by the maximal
rectangle of its exact height -- and the deterministic tie-break
(largest area, then lowest base row, then lowest base column, then
widest shape) is encoded into one integer key per anchor, so the argmax
reproduces the stack sweep's choice exactly (oracle-tested against a
reference implementation).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import MeshGrid


def _scratch(grid: MeshGrid) -> dict:
    """Version-tagged geometry scratch: rebuilt on occupancy change."""
    cache = grid.rect_scratch
    if cache is None or cache["version"] != grid.version:
        cache = {"version": grid.version, "free": grid.free_mask(),
                 "sat": None, "heights": None, "erosion": None}
        grid.rect_scratch = cache
    return cache


def _sat(grid: MeshGrid) -> np.ndarray:
    """Summed-area table of the free mask (cached per grid version)."""
    cache = _scratch(grid)
    sat = cache["sat"]
    if sat is None:
        free = cache["free"]
        sat = np.zeros((free.shape[0] + 1, free.shape[1] + 1), dtype=np.int32)
        np.cumsum(np.cumsum(free, axis=0), axis=1, out=sat[1:, 1:])
        cache["sat"] = sat
    return sat


def _window_counts(grid: MeshGrid, w: int, l: int) -> np.ndarray:
    """Number of free processors in every ``w x l`` window.

    Returns an array of shape ``(L - l + 1, W - w + 1)`` whose ``[y, x]``
    entry counts free cells in the window based at ``(x, y)``.
    """
    sat = _sat(grid)
    return sat[l:, w:] - sat[:-l, w:] - sat[l:, :-w] + sat[:-l, :-w]


def find_suitable_submesh(grid: MeshGrid, w: int, l: int) -> SubMesh | None:
    """First (row-major base order) free ``w x l`` sub-mesh, or ``None``.

    Row-major means scanning bases ``(0,0), (1,0), ..., (W-w,0), (0,1), ...``
    exactly like the free-list scans in the literature [2, 19].
    """
    if w <= 0 or l <= 0:
        raise ValueError(f"request sides must be positive, got {w}x{l}")
    if w > grid.width or l > grid.length:
        return None
    counts = _window_counts(grid, w, l)
    hits = counts == w * l
    flat = int(np.argmax(hits))  # first True in row-major base order
    if not hits.flat[flat]:
        return None
    y, x = divmod(flat, hits.shape[1])
    return SubMesh.from_base(x, y, w, l)


def all_suitable_bases(grid: MeshGrid, w: int, l: int) -> list[Coord]:
    """Every base node of a free ``w x l`` sub-mesh, row-major order."""
    if w <= 0 or l <= 0:
        raise ValueError(f"request sides must be positive, got {w}x{l}")
    if w > grid.width or l > grid.length:
        return []
    counts = _window_counts(grid, w, l)
    ys, xs = np.nonzero(counts == w * l)
    return [Coord(int(x), int(y)) for y, x in zip(ys, xs)]


#: per-(width, length) constants of the packed tie-break key (see
#: largest_free_rect_bounded): radices, the carve multiplier ``D`` and
#: the position constant ``C``, all occupancy-independent
_KEY_CONSTANTS: dict[tuple[int, int], dict] = {}


def _key_constants(width: int, length: int) -> dict:
    consts = _KEY_CONSTANTS.get((width, length))
    if consts is None:
        y_radix = length + 2
        x_radix = width + 1
        w_radix = width + 1
        w_col = np.arange(1, width + 1, dtype=np.int64)[:, None, None]
        x_term = np.arange(width, 0, -1, dtype=np.int64)[None, None, :]
        consts = {
            "y_radix": y_radix,
            "xw_radix": x_radix * w_radix,
            # key = area * D + y_term * (x_radix * w_radix) + C
            "carve_mult": w_col * (y_radix * x_radix * w_radix),
            "position": x_term * w_radix + w_col,
        }
        _KEY_CONSTANTS[(width, length)] = consts
    return consts


def _height_erosions(grid: MeshGrid, max_w: int) -> tuple[np.ndarray, np.ndarray]:
    """Column-height tensor eroded to every width up to ``max_w``.

    Entry ``[w - 1, y, x]`` is the tallest run of free rows ending at row
    ``y`` across all of columns ``x .. x + w - 1`` -- i.e. the height of
    the tallest free rectangle of width exactly spanning those columns
    whose bottom row is ``y``.  Entries at ``x > W - w`` (bases whose
    window leaves the mesh) are zero.  Cached per grid version and
    extended lazily to wider widths on demand, together with the
    matching slab of the packed tie-break key's base-position term.
    """
    cache = _scratch(grid)
    heights = cache["heights"]
    if heights is None:
        free = cache["free"]
        length, width = free.shape
        rows = np.arange(length)[:, None]
        # last busy row at or above each cell (-1 when none)
        last_busy = np.maximum.accumulate(np.where(free, -1, rows), axis=0)
        heights = (rows - last_busy) * free
        cache["heights"] = heights
        cache["erosion"] = np.zeros(
            (width, length, width), dtype=np.int64
        )
        cache["erosion"][0] = heights
        cache["key_base"] = np.zeros_like(cache["erosion"])
        #: y_term = length - base_y = erosion + (length - 1 - row)
        cache["y_offset"] = np.arange(
            length - 1, -1, -1, dtype=np.int64
        )[None, :, None]
        consts = _key_constants(width, length)
        np.multiply(
            heights + cache["y_offset"][0], consts["xw_radix"],
            out=cache["key_base"][0],
        )
        cache["key_base"][0] += consts["position"][0]
        cache["erosion_built"] = 1
        #: widths above this have no free block at all (None = unknown);
        #: lets the query skip provably empty tensor slices
        cache["max_block_width"] = 0 if not heights.any() else None
    erosion = cache["erosion"]
    key_base = cache["key_base"]
    width = erosion.shape[0]
    built = cache["erosion_built"]
    block_cap = cache["max_block_width"]
    consts = _key_constants(width, erosion.shape[1])
    while built < max_w:
        if block_cap is not None and built >= block_cap:
            built = width  # remaining slices are all zero already
            break
        valid = width - built  # valid bases for width built + 1
        np.minimum(
            erosion[built - 1, :, :valid],
            cache["heights"][:, built:],
            out=erosion[built, :, :valid],
        )
        if not erosion[built].any():
            block_cap = built
            cache["max_block_width"] = block_cap
            built = width
            break
        np.multiply(
            erosion[built] + cache["y_offset"][0], consts["xw_radix"],
            out=key_base[built],
        )
        key_base[built] += consts["position"][built]
        built += 1
    cache["erosion_built"] = built
    return erosion, key_base


def largest_free_rect_bounded(
    grid: MeshGrid,
    max_w: int | None = None,
    max_l: int | None = None,
    max_area: int | None = None,
) -> SubMesh | None:
    """Largest-area free sub-mesh with bounded sides and area.

    Evaluates, fully vectorised, every anchor ``(x, y, w)`` -- the
    tallest free block of width ``w`` based at column ``x`` with bottom
    row ``y`` -- carved down to the bounds, and takes the argmax of the
    deterministic candidate key (area, then lowest base row, then lowest
    base column, then widest shape).  The result is identical to carving
    the best admissible sub-rectangle out of every maximal free
    rectangle of a monotone-stack histogram sweep, the reference
    implementation the oracle tests compare against.

    Returns ``None`` when no admissible rectangle exists (mesh full or a
    bound is non-positive).
    """
    width, length = grid.width, grid.length
    max_w = width if max_w is None else min(max_w, width)
    max_l = length if max_l is None else min(max_l, length)
    max_area = width * length if max_area is None else max_area
    if max_w <= 0 or max_l <= 0 or max_area <= 0:
        return None
    max_w = min(max_w, max_area)  # a wider shape could not have area >= w

    full_erosion, full_key_base = _height_erosions(grid, max_w)
    cache = grid.rect_scratch
    block_cap = cache["max_block_width"]
    if block_cap is not None:
        if block_cap == 0:
            return None  # mesh full
        max_w = min(max_w, block_cap)
    erosion = full_erosion[:max_w]
    consts = _key_constants(width, length)
    w_col = consts["carve_mult"][:max_w]  # w * (product of the radices)
    # carve: the tallest block, clipped to the side and area bounds
    caps = np.minimum(
        max_l,
        max_area // np.arange(1, max_w + 1, dtype=np.int64)[:, None, None],
    )
    carved = np.minimum(erosion, caps)
    # tie-break key, packed so the flat argmax resolves (area, -base_y,
    # -base_x, w) lexicographically; dimension-sized radices keep every
    # component in range for any mesh.  The base-position term (row,
    # column, width) is version-cached alongside the erosion tensor.
    key = carved * w_col
    key += full_key_base[:max_w]
    flat = int(np.argmax(key))
    w_idx, y, x = np.unravel_index(flat, key.shape)
    best_l = int(carved[w_idx, y, x])
    if best_l <= 0:
        return None
    w = int(w_idx) + 1
    return SubMesh.from_base(
        int(x), int(y - erosion[w_idx, y, x] + 1), w, best_l
    )


def largest_free_rect(grid: MeshGrid) -> SubMesh | None:
    """Largest-area free sub-mesh with no bounds (``None`` if mesh full)."""
    return largest_free_rect_bounded(grid)


def free_submesh_exists(grid: MeshGrid, w: int, l: int) -> bool:
    """Whether any free ``w x l`` sub-mesh exists (no base reported)."""
    return find_suitable_submesh(grid, w, l) is not None
