"""2D mesh substrate: geometry, occupancy grid, busy list, rectangle search.

The target system of the paper (section 2) is a ``W x L`` 2D mesh where every
processor is addressed by a coordinate pair ``(x, y)`` with ``0 <= x < W`` and
``0 <= y < L``.  This package provides:

* :mod:`repro.mesh.geometry` -- coordinates and sub-mesh rectangles
  (Definitions 1-4 of the paper).
* :mod:`repro.mesh.grid` -- the mutable occupancy state of the mesh.
* :mod:`repro.mesh.busylist` -- the list of allocated sub-meshes per job
  (the data structure GABL is named after).
* :mod:`repro.mesh.rectfind` -- free-rectangle search engines used by the
  contiguous attempt of GABL and by the contiguous baselines.
"""

from repro.mesh.geometry import Coord, SubMesh
from repro.mesh.grid import MeshGrid
from repro.mesh.busylist import BusyList
from repro.mesh.rectfind import (
    find_suitable_submesh,
    all_suitable_bases,
    largest_free_rect,
    largest_free_rect_bounded,
)

__all__ = [
    "Coord",
    "SubMesh",
    "MeshGrid",
    "BusyList",
    "find_suitable_submesh",
    "all_suitable_bases",
    "largest_free_rect",
    "largest_free_rect_bounded",
]
