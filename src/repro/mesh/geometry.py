"""Coordinates and sub-mesh rectangles for the 2D mesh (paper section 2).

A sub-mesh ``S(w, l)`` of width ``w`` and length ``l`` is specified by the
coordinates ``(x, y, x', y')`` where ``(x, y)`` is the *base* (lower-left)
node and ``(x', y')`` the *end* (upper-right) node -- Definition 1 of the
paper.  Width extends along the x axis and length along the y axis, so the
3x2 sub-mesh of Fig. 1 is ``SubMesh(0, 0, 2, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple


class Coord(NamedTuple):
    """A processor coordinate ``(x, y)`` in a ``W x L`` mesh."""

    x: int
    y: int

    def manhattan(self, other: "Coord") -> int:
        """Hop distance to ``other`` under minimal (e.g. XY) routing."""
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True, slots=True)
class SubMesh:
    """An axis-aligned rectangle of processors ``(x1, y1) .. (x2, y2)``.

    Immutable; both corners are inclusive.  ``width`` is the x extent and
    ``length`` the y extent, matching the paper's ``S(w, l)`` notation.
    """

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(
                f"degenerate sub-mesh ({self.x1},{self.y1},{self.x2},{self.y2})"
            )
        if min(self.x1, self.y1) < 0:
            raise ValueError("sub-mesh coordinates must be non-negative")

    @classmethod
    def from_base(cls, x: int, y: int, w: int, l: int) -> "SubMesh":
        """Build from base node ``(x, y)`` and side lengths ``w x l``."""
        if w <= 0 or l <= 0:
            raise ValueError(f"side lengths must be positive, got {w}x{l}")
        return cls(x, y, x + w - 1, y + l - 1)

    @property
    def base(self) -> Coord:
        """The base (lower-left) node."""
        return Coord(self.x1, self.y1)

    @property
    def end(self) -> Coord:
        """The end (upper-right) node."""
        return Coord(self.x2, self.y2)

    @property
    def width(self) -> int:
        """Extent along x (the paper's ``w``)."""
        return self.x2 - self.x1 + 1

    @property
    def length(self) -> int:
        """Extent along y (the paper's ``l``)."""
        return self.y2 - self.y1 + 1

    @property
    def area(self) -> int:
        """Number of processors in the sub-mesh (``w * l``)."""
        return self.width * self.length

    def contains(self, c: Coord) -> bool:
        """Whether node ``c`` lies inside this sub-mesh."""
        return self.x1 <= c.x <= self.x2 and self.y1 <= c.y <= self.y2

    def contains_submesh(self, other: "SubMesh") -> bool:
        """Whether ``other`` lies entirely inside this sub-mesh."""
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def overlaps(self, other: "SubMesh") -> bool:
        """Whether the two rectangles share at least one processor."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def nodes(self) -> Iterator[Coord]:
        """Iterate the member nodes in row-major (y-outer) order."""
        for y in range(self.y1, self.y2 + 1):
            for x in range(self.x1, self.x2 + 1):
                yield Coord(x, y)

    def fits_in(self, w: int, l: int) -> bool:
        """Whether this sub-mesh fits inside a ``w x l`` frame as-is."""
        return self.width <= w and self.length <= l

    def suits(self, w: int, l: int) -> bool:
        """Definition 4: a *suitable* sub-mesh for a ``S(w, l)`` request.

        True when this sub-mesh is at least as wide and as long as the
        request (rotation is handled by callers that permit it).
        """
        return self.width >= w and self.length >= l

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"S({self.x1},{self.y1},{self.x2},{self.y2})[{self.width}x{self.length}]"


def clip_side(value: float, limit: int) -> int:
    """Round a sampled side length into the valid range ``[1, limit]``.

    Stochastic workloads draw side lengths from continuous distributions;
    the paper clips them to the mesh dimensions.
    """
    # round() already returns an int; no cast needed
    return max(1, min(limit, round(value)))


def shape_for_size(size: int, width_cap: int, length_cap: int) -> tuple[int, int]:
    """Shape a processor *count* into a near-square ``(w, l)`` request.

    Real-workload traces record only the number of processors a job used;
    following the Mache--Lo--Windisch methodology, the count is converted
    into the most square sub-mesh request that fits the machine.  The
    returned shape satisfies ``w <= width_cap``, ``l <= length_cap`` and
    ``w * l >= size`` (smallest such area, squarest such shape).
    """
    if size <= 0:
        raise ValueError(f"job size must be positive, got {size}")
    if size > width_cap * length_cap:
        raise ValueError(
            f"job size {size} exceeds machine capacity {width_cap * length_cap}"
        )
    best: tuple[int, int] | None = None
    best_key: tuple[int, int] | None = None
    for w in range(1, width_cap + 1):
        l = -(-size // w)  # ceil division
        if l > length_cap:
            continue
        # minimise wasted processors first, then prefer square aspect
        key = (w * l - size, abs(w - l))
        if best_key is None or key < best_key:
            best_key = key
            best = (w, l)
    assert best is not None  # guaranteed by the capacity check above
    return best
