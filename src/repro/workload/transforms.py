"""Composable workload transforms (the scenario subsystem's bottom layer).

The paper's central finding is that *workload shape* decides which
allocation/scheduling strategy wins.  This module makes workload shape a
first-class, composable object: any :class:`~repro.workload.base.Workload`
can be wrapped in a pipeline of transforms --

* :class:`LoadScale` -- multiply arrival times by a factor ``f``
  (generalising the trace-replay compression factor buried in
  :class:`~repro.workload.trace.TraceWorkload`; ``f < 1`` compresses
  inter-arrivals and raises the offered load);
* :class:`Thin` -- keep each job independently with probability ``p``;
* :class:`Merge` -- interleave two or more streams by arrival time;
* :class:`Jitter` -- perturb arrival times with truncated Gaussian noise;
* :class:`Burstify` -- batch arrivals onto periodic burst boundaries;
* :class:`ShapeClamp` -- cap requested sub-mesh side lengths.

Every transform preserves the two stream invariants the simulator and the
network backends rely on: arrival times are **non-decreasing** and live on
the dyadic :data:`~repro.core.config.TIME_GRID` (so all transport
backends stay bit-identical, see :mod:`repro.workload.base`).  An
*identity* pipeline (a bare source, or ``scale:1``) yields a stream
bit-identical to the raw workload.

Pipelines are described by a tiny spec grammar shared by the CLI, the
scenario files and the campaign cache keys::

    pipeline  := term (" + " term)*          # "+" merges streams
    term      := source ("*" factor)? (" | " transform)*
    source    := "real" | "uniform" | "exponential"
    transform := op (":" arg)*               # e.g. thin:0.8, clamp:4:4

``"real*0.5 | thin:0.8 + uniform"`` therefore means: the SDSC trace with
arrival times halved, thinned to 80%, merged with an untransformed
uniform stochastic stream.  :func:`parse_workload_spec` also accepts an
equivalent JSON-friendly dict AST, and :func:`canonical_workload`
normalises either form to one canonical string so equal pipelines always
produce equal campaign cache keys.
"""

from __future__ import annotations

import heapq
import math
import zlib
from dataclasses import replace
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.core.config import TIME_GRID
from repro.core.job import Job
from repro.workload.base import Workload, quantize_time
from repro.workload.columnar import DEFAULT_BLOCK, JobBlock, open_stream

#: base workload names a pipeline source may name (resolution to concrete
#: Workload objects is the caller's job, see ``build_pipeline``)
SOURCES = ("real", "uniform", "exponential")


def _op_code(op: str) -> int:
    """Stable (process-independent) integer tag for an op name."""
    return zlib.crc32(op.encode("utf-8"))


def _quantize_array(t: np.ndarray) -> np.ndarray:
    """:func:`~repro.workload.base.quantize_time`, elementwise.

    ``floor(t * G) / G`` performs the identical two float operations,
    so the result is bit-equal to the scalar helper for every element.
    """
    return np.floor(t * TIME_GRID) / TIME_GRID


def _monotone_block(prev: float, arrival: np.ndarray) -> float:
    """Vector form of ``Workload._check_monotone`` over one column.

    Returns the new running maximum (the column's last value); raises
    the same ``AssertionError`` naming the first offending pair.
    """
    if len(arrival) == 0:
        return prev
    if arrival[0] < prev or np.any(np.diff(arrival) < 0):
        full = np.concatenate(([prev], arrival))
        i = int(np.nonzero(np.diff(full) < 0)[0][0])
        raise AssertionError(
            f"workload produced decreasing arrival times "
            f"({full[i + 1]} < {full[i]})"
        )
    return float(arrival[-1])


class WorkloadTransform(Workload):
    """A workload that rewrites another workload's job stream.

    Subclasses set :attr:`op`, implement :meth:`jobs`, and put their
    argument *range* checks in a :meth:`check_args` staticmethod so the
    spec parser can reject out-of-range values at parse time -- the same
    checks the constructor runs.  ``salt`` decorrelates the RNG streams
    of identical transforms appearing at different positions of one
    pipeline (see :meth:`_rng`).
    """

    op: str = "abstract"

    @staticmethod
    def check_args(*args) -> None:
        """Raise ValueError when transform args are out of range."""

    def __init__(self, inner: Workload, salt: int = 0) -> None:
        super().__init__(inner.config)
        self.inner = inner
        self.salt = salt
        self.name = f"{inner.name} | {self.describe()}"

    def describe(self) -> str:
        """The transform's canonical spec token (e.g. ``thin:0.8``)."""
        return self.op

    def _rng(self, seed: int) -> np.random.Generator:
        """Transform-local RNG, decorrelated from the source stream's
        generator and from other transforms in the same pipeline."""
        return np.random.default_rng(
            np.random.SeedSequence([abs(int(seed)), self.salt, _op_code(self.op)])
        )

    def _chain_fingerprint(self, *args) -> tuple | None:
        """Fingerprint helper for transforms *with* a vector form:
        ``(op, args..., salt, inner fingerprint)``, or ``None`` when the
        inner stream has no stable identity (which poisons the whole
        chain -- an uncacheable source makes the pipeline uncacheable).
        Transforms without a vector ``blocks`` override keep the base
        ``None`` fingerprint, so the fallback path is never cached."""
        inner = self.inner.block_fingerprint()
        if inner is None:
            return None
        return (self.op, *args, self.salt, inner)


class LoadScale(WorkloadTransform):
    """Multiply every arrival time by ``factor``.

    This is the paper's trace-compression factor ``f`` lifted out of
    :class:`~repro.workload.trace.TraceWorkload` and made applicable to
    *any* stream: ``factor < 1`` compresses inter-arrival times (raising
    the offered load by ``1/factor``), ``factor > 1`` stretches them.
    ``factor == 1`` is an exact identity: an on-grid arrival multiplied
    by 1.0 re-quantizes to itself.
    """

    op = "scale"

    @staticmethod
    def check_args(factor: float) -> None:
        """Reject non-positive factors at spec-parse time."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")

    def __init__(self, inner: Workload, factor: float, salt: int = 0) -> None:
        self.check_args(factor)
        self.factor = float(factor)
        super().__init__(inner, salt)

    def describe(self) -> str:
        """The canonical spec fragment, e.g. ``scale:0.5``."""
        return f"scale:{_fmt_arg(self.factor)}"

    def jobs(self, seed: int) -> Iterator[Job]:
        """The scaled stream (arrivals re-quantized onto the grid)."""
        prev = 0.0
        for job in self.inner.jobs(seed):
            t = quantize_time(job.arrival_time * self.factor)
            prev = self._check_monotone(prev, t)
            yield replace(job, arrival_time=t)

    def block_fingerprint(self) -> tuple | None:
        """``("scale", factor, salt, inner)`` when the inner is stable."""
        return self._chain_fingerprint(self.factor)

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Vector form: scale + re-quantize whole arrival columns."""
        prev = 0.0
        for block in self.inner.blocks(seed, count):
            t = _quantize_array(block.arrival * self.factor)
            prev = _monotone_block(prev, t)
            yield replace(block, arrival=t)


class Thin(WorkloadTransform):
    """Keep each job independently with probability ``p``.

    Thinning a Poisson stream of rate ``lambda`` yields a Poisson stream
    of rate ``p * lambda``; on a trace it subsamples jobs while keeping
    the arrival-burst structure.  Surviving jobs keep their original ids
    and arrival times, so the invariants hold trivially.  The keep/drop
    draws come from a transform-local RNG: the same ``(seed, salt)``
    always keeps the same subset.
    """

    op = "thin"

    @staticmethod
    def check_args(p: float) -> None:
        """Reject probabilities outside ``(0, 1]`` at spec-parse time."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"thin probability must be in (0, 1], got {p}")

    def __init__(self, inner: Workload, p: float, salt: int = 0) -> None:
        self.check_args(p)
        self.p = float(p)
        super().__init__(inner, salt)

    def describe(self) -> str:
        """The canonical spec fragment, e.g. ``thin:0.8``."""
        return f"thin:{_fmt_arg(self.p)}"

    def jobs(self, seed: int) -> Iterator[Job]:
        """The thinned stream (transform-local RNG, reproducible)."""
        rng = self._rng(seed)
        for job in self.inner.jobs(seed):
            if rng.random() < self.p:
                yield job

    def block_fingerprint(self) -> tuple | None:
        """``("thin", p, salt, inner)`` when the inner is stable."""
        return self._chain_fingerprint(self.p)

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Vector form: one ``random(n)`` batch per block.

        A vectorised ``random(n)`` consumes the bit stream exactly like
        ``n`` scalar ``random()`` calls, so the kept subset is identical
        regardless of how the inner stream is partitioned into blocks.
        Blocks may come out shorter (or empty) than ``count``.
        """
        rng = self._rng(seed)
        for block in self.inner.blocks(seed, count):
            yield block.take(rng.random(len(block)) < self.p)


class Jitter(WorkloadTransform):
    """Perturb each arrival with ``N(0, sigma)`` noise, clamped so the
    stream stays non-decreasing (and non-negative), then re-quantized
    onto the dyadic grid.  Models measurement noise / submission-time
    slack on top of a recorded trace."""

    op = "jitter"

    @staticmethod
    def check_args(sigma: float) -> None:
        """Reject negative noise widths at spec-parse time."""
        if sigma < 0:
            raise ValueError(f"jitter sigma must be non-negative, got {sigma}")

    def __init__(self, inner: Workload, sigma: float, salt: int = 0) -> None:
        self.check_args(sigma)
        self.sigma = float(sigma)
        super().__init__(inner, salt)

    def describe(self) -> str:
        """The canonical spec fragment, e.g. ``jitter:5``."""
        return f"jitter:{_fmt_arg(self.sigma)}"

    def jobs(self, seed: int) -> Iterator[Job]:
        """The jittered stream (clamped monotone, re-quantized)."""
        rng = self._rng(seed)
        prev = 0.0
        for job in self.inner.jobs(seed):
            t = job.arrival_time + rng.normal(0.0, self.sigma)
            # prev is on-grid, so flooring a value >= prev stays >= prev
            t = quantize_time(max(t, prev, 0.0))
            prev = t
            yield replace(job, arrival_time=t)

    def block_fingerprint(self) -> tuple | None:
        """``("jitter", sigma, salt, inner)`` when the inner is stable."""
        return self._chain_fingerprint(self.sigma)

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Vector form: batched noise + a running-maximum clamp.

        ``quantize(max(t, prev, 0))`` with an on-grid, non-negative
        ``prev`` equals ``max(quantize(max(t, 0)), prev)``: when the
        noisy time falls below ``prev``, flooring ``prev`` returns
        ``prev`` itself, and otherwise ``prev`` does not bind.  That
        re-association turns the scalar recurrence into a quantize of
        the clamped column followed by ``np.maximum.accumulate``.
        """
        rng = self._rng(seed)
        prev = 0.0
        for block in self.inner.blocks(seed, count):
            noise = rng.normal(0.0, self.sigma, len(block))
            q = _quantize_array(np.maximum(block.arrival + noise, 0.0))
            t = np.maximum.accumulate(np.concatenate(([prev], q)))[1:]
            if len(t):
                prev = float(t[-1])
            yield replace(block, arrival=t)


class Burstify(WorkloadTransform):
    """Round every arrival *up* to the next multiple of ``interval``:
    jobs arrive in periodic bursts, the adversarial pattern for
    head-blocking schedulers.  Rounding up is monotone, so ordering is
    preserved."""

    op = "burst"

    @staticmethod
    def check_args(interval: float) -> None:
        """Reject non-positive burst intervals at spec-parse time."""
        if interval <= 0:
            raise ValueError(f"burst interval must be positive, got {interval}")

    def __init__(self, inner: Workload, interval: float, salt: int = 0) -> None:
        self.check_args(interval)
        self.interval = float(interval)
        super().__init__(inner, salt)

    def describe(self) -> str:
        """The canonical spec fragment, e.g. ``burst:128``."""
        return f"burst:{_fmt_arg(self.interval)}"

    def jobs(self, seed: int) -> Iterator[Job]:
        """The burst-aligned stream (arrivals rounded up)."""
        prev = 0.0
        for job in self.inner.jobs(seed):
            t = quantize_time(math.ceil(job.arrival_time / self.interval)
                              * self.interval)
            prev = self._check_monotone(prev, t)
            yield replace(job, arrival_time=t)

    def block_fingerprint(self) -> tuple | None:
        """``("burst", interval, salt, inner)`` when the inner is stable."""
        return self._chain_fingerprint(self.interval)

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Vector form: ceil to the burst grid, column at a time.

        ``np.ceil`` yields the same exact integer value ``math.ceil``
        does (as a float64), and multiplying by ``interval`` performs
        the identical promotion-to-float product.
        """
        prev = 0.0
        for block in self.inner.blocks(seed, count):
            t = _quantize_array(
                np.ceil(block.arrival / self.interval) * self.interval
            )
            prev = _monotone_block(prev, t)
            yield replace(block, arrival=t)


class ShapeClamp(WorkloadTransform):
    """Cap requested sub-mesh sides at ``max_width x max_length`` (and at
    the machine's own sides).  Turns any stream into a small-job stream
    without touching arrivals or demands."""

    op = "clamp"

    @staticmethod
    def check_args(max_width: int, max_length: int) -> None:
        """Reject sub-unit clamp sides at spec-parse time."""
        if max_width < 1 or max_length < 1:
            raise ValueError(
                f"clamp sides must be >= 1, got {max_width}x{max_length}"
            )

    def __init__(
        self, inner: Workload, max_width: int, max_length: int, salt: int = 0
    ) -> None:
        self.check_args(max_width, max_length)
        self.max_width = int(max_width)
        self.max_length = int(max_length)
        super().__init__(inner, salt)

    def describe(self) -> str:
        """The canonical spec fragment, e.g. ``clamp:4:4``."""
        return f"clamp:{self.max_width}:{self.max_length}"

    def jobs(self, seed: int) -> Iterator[Job]:
        """The clamped stream (arrivals and demands untouched)."""
        w_cap = min(self.max_width, self.config.width)
        l_cap = min(self.max_length, self.config.length)
        for job in self.inner.jobs(seed):
            w, l = min(job.width, w_cap), min(job.length, l_cap)
            if (w, l) == (job.width, job.length):
                yield job
            else:
                yield replace(job, width=w, length=l)

    def block_fingerprint(self) -> tuple | None:
        """``("clamp", w, l, salt, inner)`` when the inner is stable."""
        return self._chain_fingerprint(self.max_width, self.max_length)

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Vector form: elementwise minimum on the side columns."""
        w_cap = min(self.max_width, self.config.width)
        l_cap = min(self.max_length, self.config.length)
        for block in self.inner.blocks(seed, count):
            yield replace(
                block,
                width=np.minimum(block.width, w_cap),
                length=np.minimum(block.length, l_cap),
            )


class Merge(Workload):
    """Interleave two or more streams by arrival time.

    Stream 0 runs on the replication seed itself; every later stream gets
    a seed derived from ``(seed, stream_index)``, so merged stochastic
    streams are decorrelated yet the whole merge is a pure function of
    the replication seed.  Ties break toward the earlier stream
    (:func:`heapq.merge` is stable), and jobs are renumbered in emission
    order so ids stay unique across the merged stream.
    """

    def __init__(self, *inners: Workload) -> None:
        if len(inners) < 2:
            raise ValueError("Merge needs at least two workloads")
        first = inners[0]
        for wl in inners[1:]:
            if wl.config is not first.config and wl.config != first.config:
                raise ValueError("merged workloads must share one SimConfig")
        super().__init__(first.config)
        self.inners = tuple(inners)
        self.name = " + ".join(wl.name for wl in inners)

    @staticmethod
    def stream_seed(seed: int, index: int) -> int:
        """Seed for merged stream ``index`` (index 0 keeps ``seed``)."""
        if index == 0:
            return seed
        seq = np.random.SeedSequence([abs(int(seed)), index, _op_code("merge")])
        return int(seq.generate_state(1, dtype=np.uint64)[0])

    def jobs(self, seed: int) -> Iterator[Job]:
        """The merged stream (stable arrival order, renumbered ids)."""
        streams = [
            wl.jobs(self.stream_seed(seed, i))
            for i, wl in enumerate(self.inners)
        ]
        prev = 0.0
        merged = heapq.merge(*streams, key=lambda j: j.arrival_time)
        for new_id, job in enumerate(merged, start=1):
            prev = self._check_monotone(prev, job.arrival_time)
            yield replace(job, job_id=new_id)

    def block_fingerprint(self) -> tuple | None:
        """``("merge", inner fingerprints...)`` when every inner is stable."""
        fps = [wl.block_fingerprint() for wl in self.inners]
        if any(fp is None for fp in fps):
            return None
        return ("merge", *fps)

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Streaming block merge, identical to the scalar ``heapq.merge``.

        Each round picks a horizon ``T`` -- the smallest last-buffered
        arrival over the streams that may still produce jobs -- extends
        those streams strictly past ``T``, then emits every buffered job
        with ``arrival <= T``.  Emission concatenates the per-stream
        prefixes in stream-index order and applies one *stable* argsort
        on arrival: ties keep concatenation order, which is exactly
        ``heapq.merge``'s earlier-stream-wins tie break.  Ids are
        renumbered in emission order, as in the scalar path.  Inner
        streams are read through
        :func:`~repro.workload.columnar.open_stream`, so cacheable
        sources are generated once per process even under a merge.
        """
        cursors = [
            open_stream(wl, self.stream_seed(seed, i), count)
            for i, wl in enumerate(self.inners)
        ]
        pending: list[list[JobBlock]] = [[] for _ in cursors]
        done = [False] * len(cursors)
        prev = 0.0
        next_id = 1

        def pull(s: int) -> None:
            blk = cursors[s].next_block()
            if blk is None:
                done[s] = True
            else:
                pending[s].append(blk)

        while True:
            for s in range(len(cursors)):
                if not pending[s] and not done[s]:
                    pull(s)
            if not any(pending):
                break
            undone = [s for s in range(len(cursors)) if not done[s]]
            if undone:
                horizon = min(
                    float(pending[s][-1].arrival[-1]) for s in undone
                )
                for s in undone:
                    while (not done[s]
                           and float(pending[s][-1].arrival[-1]) <= horizon):
                        pull(s)
            else:
                horizon = math.inf
            parts: list[JobBlock] = []
            for s in range(len(cursors)):
                while pending[s]:
                    blk = pending[s][0]
                    if horizon == math.inf:
                        cut = len(blk)
                    else:
                        cut = int(np.searchsorted(
                            blk.arrival, horizon, side="right"
                        ))
                    if cut == len(blk):
                        parts.append(blk)
                        pending[s].pop(0)
                    else:
                        if cut:
                            parts.append(blk.view(0, cut))
                            pending[s][0] = blk.view(cut, len(blk))
                        break
            merged = JobBlock.concat(parts)
            order = np.argsort(merged.arrival, kind="stable")
            merged = merged.take(order)
            prev = _monotone_block(prev, merged.arrival)
            for start in range(0, len(merged), count):
                yield merged.view(start, start + count).renumber(
                    next_id + start
                )
            next_id += len(merged)


#: transform registry: op name -> (class, positional arg parsers)
TRANSFORMS: dict[str, tuple[type[WorkloadTransform], tuple[Callable, ...]]] = {
    "scale": (LoadScale, (float,)),
    "thin": (Thin, (float,)),
    "jitter": (Jitter, (float,)),
    "burst": (Burstify, (float,)),
    "clamp": (ShapeClamp, (int, int)),
}

#: ops whose output depends on the replication seed beyond the source's
#: own draw (used to decide whether a pipeline is deterministic)
_SEEDED_OPS = frozenset({"thin", "jitter"})


# ---------------------------------------------------------------- spec AST
#
# AST shape (plain dicts/lists, JSON-serializable):
#   term   = {"source": "real"}
#          | {"op": "thin", "args": [0.8], "inner": term}
#   root   = term | {"merge": [term, term, ...]}
#
# Merge appears only at the root (mirroring the string grammar, where
# "+" has the lowest precedence), so every AST round-trips through the
# canonical string form and cache keys stay uniform.


class SpecError(ValueError):
    """A workload-pipeline spec failed to parse or validate."""


def _parse_args(op: str, raw: Sequence) -> list:
    cls, parsers = TRANSFORMS[op]
    if len(raw) != len(parsers):
        raise SpecError(
            f"transform {op!r} takes {len(parsers)} argument(s), got {len(raw)}"
        )
    try:
        args = [parse(v) for parse, v in zip(parsers, raw)]
        cls.check_args(*args)  # range checks, shared with the constructor
        return args
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad argument for transform {op!r}: {exc}") from None


def _parse_term_str(text: str) -> dict:
    tokens = [t.strip() for t in text.split("|")]
    if not tokens or not tokens[0]:
        raise SpecError(f"empty pipeline term in {text!r}")
    head = tokens[0]
    factor = None
    if "*" in head:
        head, _, factor_text = head.partition("*")
        head = head.strip()
        try:
            factor = float(factor_text)
            LoadScale.check_args(factor)
        except ValueError as exc:
            raise SpecError(f"bad load-scale factor {factor_text!r}: {exc}") from None
    if head not in SOURCES:
        raise SpecError(
            f"unknown workload source {head!r}; choose from {SOURCES}"
        )
    node: dict = {"source": head}
    if factor is not None:
        node = {"op": "scale", "args": [factor], "inner": node}
    for token in tokens[1:]:
        if not token:
            raise SpecError(f"empty transform token in {text!r}")
        op, *raw_args = token.split(":")
        op = op.strip()
        if op not in TRANSFORMS:
            raise SpecError(
                f"unknown transform {op!r}; choose from {sorted(TRANSFORMS)}"
            )
        node = {"op": op, "args": _parse_args(op, raw_args), "inner": node}
    return node


def _validate_term(node) -> dict:
    if not isinstance(node, dict):
        raise SpecError(f"pipeline node must be a dict, got {type(node).__name__}")
    if "source" in node:
        if node["source"] not in SOURCES:
            raise SpecError(
                f"unknown workload source {node['source']!r}; "
                f"choose from {SOURCES}"
            )
        return {"source": node["source"]}
    if "op" in node:
        op = node["op"]
        if op not in TRANSFORMS:
            raise SpecError(
                f"unknown transform {op!r}; choose from {sorted(TRANSFORMS)}"
            )
        if "inner" not in node:
            raise SpecError(f"transform node {op!r} is missing 'inner'")
        args = _parse_args(op, node.get("args", []))
        return {"op": op, "args": args, "inner": _validate_term(node["inner"])}
    if "merge" in node:
        raise SpecError(
            "merge may only appear at the top level of a pipeline spec"
        )
    raise SpecError(f"pipeline node needs 'source', 'op' or 'merge': {node!r}")


def parse_workload_spec(spec: str | dict) -> dict:
    """Parse a pipeline spec (grammar string or dict AST) into a
    validated, JSON-serializable AST."""
    if isinstance(spec, str):
        terms = [t for t in (part.strip() for part in spec.split("+")) if t]
        if not terms:
            raise SpecError(f"empty workload spec {spec!r}")
        parsed = [_parse_term_str(t) for t in terms]
    elif isinstance(spec, dict):
        if "merge" in spec:
            branches = spec["merge"]
            if not isinstance(branches, (list, tuple)) or len(branches) < 2:
                raise SpecError("'merge' needs a list of at least two terms")
            parsed = [_validate_term(t) for t in branches]
        else:
            parsed = [_validate_term(spec)]
    else:
        raise SpecError(
            f"workload spec must be a string or dict, got {type(spec).__name__}"
        )
    return parsed[0] if len(parsed) == 1 else {"merge": parsed}


def _fmt_arg(value) -> str:
    """Shortest round-trip rendering: repr() preserves every float bit
    (``%g`` would round to 6 significant digits and alias distinct
    pipelines onto one canonical string / cache key)."""
    return str(value) if isinstance(value, int) else repr(float(value))


def _term_to_str(node: dict) -> str:
    chain: list[str] = []
    while "op" in node:
        cls, _ = TRANSFORMS[node["op"]]
        args = ":".join(_fmt_arg(a) for a in node["args"])
        chain.append(f"{node['op']}:{args}" if args else node["op"])
        node = node["inner"]
    chain.append(node["source"])
    return " | ".join(reversed(chain))


def spec_to_str(ast: dict) -> str:
    """Render an AST in the canonical string grammar."""
    terms = ast["merge"] if "merge" in ast else [ast]
    return " + ".join(_term_to_str(t) for t in terms)


def canonical_workload(spec: str | dict) -> str:
    """Normalise any pipeline spec to its canonical string.

    A bare source canonicalises to its plain name (``"uniform"``), so
    untransformed workloads keep exactly the campaign cache keys they
    have always had.
    """
    if isinstance(spec, str) and spec in SOURCES:
        return spec
    return spec_to_str(parse_workload_spec(spec))


def is_pipeline_spec(workload: str) -> bool:
    """True when ``workload`` is a pipeline spec rather than a base name.

    A string without any pipeline syntax (``|``, ``+``, ``*``, ``:``)
    that is not a known source is *not* a pipeline -- callers keep their
    historical unknown-name error paths for plain strings.
    """
    return workload not in SOURCES and any(c in workload for c in "|+*:")


def spec_is_deterministic(spec: str | dict) -> bool:
    """True when the pipeline's stream does not depend on the replication
    seed: every source is the deterministic trace replay and no
    seed-consuming transform (thin/jitter) appears."""
    ast = parse_workload_spec(spec)
    terms = ast["merge"] if "merge" in ast else [ast]
    for node in terms:
        while "op" in node:
            if node["op"] in _SEEDED_OPS:
                return False
            node = node["inner"]
        if node["source"] != "real":
            return False
    return True


def build_pipeline(
    spec: str | dict, make_source: Callable[[str], Workload]
) -> Workload:
    """Materialise a pipeline spec into a :class:`Workload`.

    ``make_source`` maps a base source name (``"real"``, ``"uniform"``,
    ``"exponential"``) to a concrete workload; the campaign layer closes
    it over the run config, offered load and trace.  Note that a merge of
    ``n`` sources each built at load ``L`` offers a total load of
    ``n * L``.  A bare-source spec returns ``make_source``'s workload
    untouched -- the identity pipeline is *the same object*, hence
    trivially bit-identical to today's behaviour.
    """
    ast = parse_workload_spec(spec)
    terms = ast["merge"] if "merge" in ast else [ast]
    salt = 0

    def build_term(node: dict) -> Workload:
        nonlocal salt
        if "source" in node:
            return make_source(node["source"])
        cls, _ = TRANSFORMS[node["op"]]
        inner = build_term(node["inner"])
        salt += 1
        return cls(inner, *node["args"], salt=salt)

    built = [build_term(t) for t in terms]
    return built[0] if len(built) == 1 else Merge(*built)
