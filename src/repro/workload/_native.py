"""Compiled draw loop for the uniform-sides stochastic workload.

The uniform branch of :meth:`repro.workload.stochastic.StochasticWorkload.blocks`
interleaves, per job, two exponential draws (ziggurat) with two Lemire
bounded-integer draws from one ``default_rng`` bit stream.  The
rejection steps inside both algorithms make the stream consumption
data-dependent, so -- unlike the all-exponential branch -- the loop
cannot be replayed column-wise with NumPy batch calls.  PR 7 left it as
the last per-job Python loop on the columnar hot path.

This module moves that loop into C **without reimplementing either
algorithm**: NumPy wheels ship ``numpy/random/lib/libnpyrandom.a``, the
exact static library behind ``Generator.exponential`` and
``Generator.integers`` (``random_standard_exponential``,
``random_bounded_uint64_fill``), for downstream projects to link
against.  The helper receives the live ``bitgen_t`` pointer of the
caller's :class:`numpy.random.Generator` (via the documented
``bit_generator.ctypes`` interface) and performs the *same* calls in
the *same* per-job order, so every output value -- and the bit-stream
position afterwards -- is identical to the scalar loop by construction
(``tests/test_thread_executor.py`` and the columnar property suite
enforce it).

Like the other kernels the helper is strictly optional (missing
compiler, missing static library, ``REPRO_NATIVE=0`` all fall back to
the Python loop, same results) and its lazy build serialises on the
shared :data:`repro.network._native.KERNEL_LOCK`.  Calls go through
:class:`ctypes.CDLL`, so the GIL is released while a block's draws run;
the caller owns the Generator, and block generation for one stream is
already serialised by the block-cache lock, so no two threads ever
advance the same bit generator concurrently.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.network._native import KERNEL_LOCK, _cache_dir, _compiler

_SOURCE = r"""
#include <stdint.h>
#include <stdbool.h>
#include <stddef.h>

/* numpy/random/bitgen.h -- the stable public bit-generator ABI */
typedef struct bitgen {
  void *state;
  uint64_t (*next_uint64)(void *st);
  uint32_t (*next_uint32)(void *st);
  double (*next_double)(void *st);
  uint64_t (*next_raw)(void *st);
} bitgen_t;

/* resolved from libnpyrandom.a -- the exact routines behind
 * Generator.exponential and Generator.integers */
extern double random_standard_exponential(bitgen_t *);
extern void random_bounded_uint64_fill(bitgen_t *, uint64_t off,
                                       uint64_t rng, intptr_t cnt,
                                       bool use_masked, uint64_t *out);

/* Replays, bit for bit, the scalar draw loop of the uniform-sides
 * stochastic workload:
 *
 *   for i in range(n):
 *       gaps[i]  = rng.exponential(mean_ia)   # mean_ia * std_exp
 *       w[i]     = rng.integers(1, w_hi)      # Lemire over [1, w_hi-1]
 *       l[i]     = rng.integers(1, l_hi)
 *       k_raw[i] = rng.exponential(num_mes)
 *
 * Generator.exponential(scale) is scale * random_standard_exponential
 * and Generator.integers(lo, hi) is random_bounded_uint64_fill with
 * off=lo, rng=hi-1-lo, use_masked=false (the Lemire path), so calling
 * the same libnpyrandom routines in the same order consumes the bit
 * stream identically and leaves the generator in the identical state.
 */
void uniform_draw_loop(bitgen_t *bg, intptr_t n, double mean_ia,
                       int64_t w_hi, int64_t l_hi, double num_mes,
                       double *gaps, int64_t *w, int64_t *l, double *k_raw)
{
    uint64_t buf;
    const uint64_t w_rng = (uint64_t)(w_hi - 2);
    const uint64_t l_rng = (uint64_t)(l_hi - 2);
    for (intptr_t i = 0; i < n; i++) {
        gaps[i] = mean_ia * random_standard_exponential(bg);
        random_bounded_uint64_fill(bg, 1, w_rng, 1, false, &buf);
        w[i] = (int64_t)buf;
        random_bounded_uint64_fill(bg, 1, l_rng, 1, false, &buf);
        l[i] = (int64_t)buf;
        k_raw[i] = num_mes * random_standard_exponential(bg);
    }
}
"""

_UNSET = object()
_kernel = _UNSET


def _npyrandom_lib() -> Path | None:
    """The ``libnpyrandom.a`` shipped inside the installed numpy wheel."""
    lib = Path(np.random.__file__).parent / "lib" / "libnpyrandom.a"
    return lib if lib.is_file() else None


def _build() -> ctypes.CDLL | None:
    """Compile and load the draw helper (same recipe as the other kernels,
    plus the numpy static library on the link line)."""
    cc = _compiler()
    if cc is None:
        return None
    npy_lib = _npyrandom_lib()
    if npy_lib is None:
        return None
    cache_dir = _cache_dir()
    if cache_dir is None:
        return None
    # the numpy build the helper linked against is part of its identity
    digest = hashlib.sha256(
        (_SOURCE + np.__version__).encode()
    ).hexdigest()[:16]
    lib_path = cache_dir / f"draws_{digest}.so"
    if lib_path.is_file() and os.stat(lib_path).st_uid != os.getuid():
        return None  # never load code we did not write
    if not lib_path.is_file():
        src = cache_dir / f"draws_{digest}.c"
        src.write_text(_SOURCE)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        cmd = [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
               str(src), str(npy_lib), "-o", tmp]
        try:
            subprocess.run(cmd, check=True, capture_output=True, timeout=60)
            os.replace(tmp, lib_path)
        except (OSError, subprocess.SubprocessError):
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    lib.uniform_draw_loop.restype = None
    lib.uniform_draw_loop.argtypes = [
        ctypes.c_void_p, ctypes.c_ssize_t, ctypes.c_double,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_double,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
    ]
    return lib


def load_kernel() -> ctypes.CDLL | None:
    """The compiled draw helper, or ``None`` when unavailable (memoised).

    Thread-safe: concurrent first calls serialise on the shared
    :data:`~repro.network._native.KERNEL_LOCK` (double-checked).
    """
    global _kernel
    if _kernel is _UNSET:
        with KERNEL_LOCK:
            if _kernel is _UNSET:
                if os.environ.get("REPRO_NATIVE", "1") == "0":
                    _kernel = None
                else:
                    _kernel = _build()
    return _kernel


def reset_kernel_cache() -> None:
    """Forget the memoised kernel (tests toggling ``REPRO_NATIVE``)."""
    global _kernel
    _kernel = _UNSET


def fill_uniform_draws(
    rng: np.random.Generator,
    n: int,
    mean_interarrival: float,
    w_hi: int,
    l_hi: int,
    num_mes: float,
    gaps: np.ndarray,
    w: np.ndarray,
    l: np.ndarray,
    k_raw: np.ndarray,
) -> bool:
    """Fill the four per-job draw columns natively; ``False`` = no kernel.

    Advances ``rng``'s bit generator exactly as the scalar loop would;
    the caller falls back to that loop (same results) on ``False``.
    The output arrays must be C-contiguous with ``gaps``/``k_raw``
    float64 and ``w``/``l`` int64, all of length >= ``n``.
    """
    kernel = load_kernel()
    if kernel is None:
        return False
    bg = ctypes.cast(rng.bit_generator.ctypes.bit_generator, ctypes.c_void_p)
    kernel.uniform_draw_loop(
        bg, n, mean_interarrival, w_hi, l_hi, num_mes,
        gaps.ctypes.data, w.ctypes.data, l.ctypes.data, k_raw.ctypes.data,
    )
    return True
