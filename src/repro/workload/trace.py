"""Real-workload trace replay (paper section 5, workload 2).

A trace records, per job, its arrival time, processor count and execution
time.  Replay follows the paper's methodology:

* arrival times are multiplied by a constant factor ``f`` -- "when f < 1,
  the inter-arrival times decrease, resulting in an increased system
  load".  The factor is derived from the requested *load* (jobs per time
  unit): ``f = 1 / (mean_interarrival * load)``.
* the processor count is shaped into the most square ``w x l`` sub-mesh
  request that fits the machine (Mache--Lo--Windisch methodology, the
  paper's ref [7]);
* the communication demand per processor, ``K_j``, is exponentially
  distributed with mean ``num_mes * trace_demand_multiplier`` exactly as
  for the stochastic workload (the paper's "unless specified otherwise"
  parameter table applies to both), but *quantile-matched to the recorded
  runtimes*: job ``j``'s demand is the exponential quantile of its
  runtime's rank within the trace.  Longer-recorded jobs therefore
  communicate more -- the correlation that makes the trace execution
  times meaningful and that SSD exploits -- while the marginal demand
  distribution stays the paper's ``Exp(num_mes)``.  The construction is
  fully deterministic (DESIGN.md section 2.3);
* the recorded runtime is SSD's service-demand key ("shortest execution
  times"); by the quantile matching it orders jobs identically to the
  communication demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.config import SimConfig
from repro.core.job import Job
from repro.mesh.geometry import shape_for_size
from repro.workload.base import Workload, quantize_time


@dataclass(frozen=True, slots=True)
class TraceJob:
    """One record of a real workload trace (times in trace seconds)."""

    arrival: float
    size: int
    runtime: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"trace job size must be positive, got {self.size}")
        if self.runtime <= 0:
            raise ValueError(f"trace job runtime must be positive, got {self.runtime}")
        if self.arrival < 0:
            raise ValueError(f"trace job arrival must be >= 0, got {self.arrival}")


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics of a trace (the paper quotes these for SDSC)."""

    jobs: int
    mean_interarrival: float
    mean_size: float
    mean_runtime: float
    power_of_two_fraction: float
    max_size: int


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def trace_stats(jobs: Sequence[TraceJob]) -> TraceStats:
    """Compute the headline statistics of a trace."""
    if len(jobs) < 2:
        raise ValueError("need at least two jobs to compute inter-arrival stats")
    arrivals = [j.arrival for j in jobs]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    return TraceStats(
        jobs=len(jobs),
        mean_interarrival=sum(gaps) / len(gaps),
        mean_size=sum(j.size for j in jobs) / len(jobs),
        mean_runtime=sum(j.runtime for j in jobs) / len(jobs),
        power_of_two_fraction=sum(_is_power_of_two(j.size) for j in jobs)
        / len(jobs),
        max_size=max(j.size for j in jobs),
    )


class TraceWorkload(Workload):
    """Replay a trace at a chosen system load."""

    def __init__(
        self,
        config: SimConfig,
        trace: Sequence[TraceJob],
        load: float,
        max_jobs: int | None = None,
    ) -> None:
        super().__init__(config)
        if load <= 0:
            raise ValueError(f"load must be positive, got {load}")
        if not trace:
            raise ValueError("empty trace")
        self.trace = list(trace[:max_jobs]) if max_jobs else list(trace)
        if len(self.trace) < 2:
            raise ValueError("trace replay needs at least two jobs")
        self.load = load
        self.stats = trace_stats(self.trace)
        #: the paper's arrival-time multiplier f.  A burst trace (all
        #: arrivals simultaneous) has no inter-arrival scale to stretch,
        #: so it replays unscaled.
        if self.stats.mean_interarrival > 0:
            self.factor = 1.0 / (self.stats.mean_interarrival * load)
        else:
            self.factor = 1.0
        #: mean per-processor message count (DESIGN.md section 2.3)
        self.mean_messages = config.num_mes * config.trace_demand_multiplier
        self.name = "real-trace"
        self._messages = self._quantile_matched_demands()

    def _quantile_matched_demands(self) -> list[int]:
        """Per-job message counts: exponential marginal with the paper's
        mean, rank-correlated with the recorded runtimes."""
        cfg = self.config
        runtimes = np.array([tj.runtime for tj in self.trace])
        # average ranks for ties, scaled into (0, 1)
        order = np.argsort(runtimes, kind="stable")
        ranks = np.empty(len(runtimes), dtype=np.float64)
        ranks[order] = np.arange(1, len(runtimes) + 1)
        quantiles = ranks / (len(runtimes) + 1)
        demands = -self.mean_messages * np.log1p(-quantiles)
        return [
            min(max(1, int(round(k))), cfg.max_messages) for k in demands
        ]

    def jobs(self, seed: int) -> Iterator[Job]:
        """The deterministic replay stream (``seed`` is ignored)."""
        # replay is fully deterministic; the seed is accepted for
        # interface uniformity but unused
        cfg = self.config
        t0 = self.trace[0].arrival
        prev = 0.0
        for i, (tj, k) in enumerate(zip(self.trace, self._messages), start=1):
            arrival = quantize_time((tj.arrival - t0) * self.factor)
            prev = self._check_monotone(prev, arrival)
            size = min(tj.size, cfg.processors)
            w, l = shape_for_size(size, cfg.width, cfg.length)
            yield Job(
                job_id=i,
                arrival_time=arrival,
                width=w,
                length=l,
                messages=k,
                service_demand=tj.runtime,
                trace_runtime=tj.runtime,
            )
