"""Real-workload trace replay (paper section 5, workload 2).

A trace records, per job, its arrival time, processor count and execution
time.  Replay follows the paper's methodology:

* arrival times are multiplied by a constant factor ``f`` -- "when f < 1,
  the inter-arrival times decrease, resulting in an increased system
  load".  The factor is derived from the requested *load* (jobs per time
  unit): ``f = 1 / (mean_interarrival * load)``.
* the processor count is shaped into the most square ``w x l`` sub-mesh
  request that fits the machine (Mache--Lo--Windisch methodology, the
  paper's ref [7]);
* the communication demand per processor, ``K_j``, is exponentially
  distributed with mean ``num_mes * trace_demand_multiplier`` exactly as
  for the stochastic workload (the paper's "unless specified otherwise"
  parameter table applies to both), but *quantile-matched to the recorded
  runtimes*: job ``j``'s demand is the exponential quantile of its
  runtime's rank within the trace.  Longer-recorded jobs therefore
  communicate more -- the correlation that makes the trace execution
  times meaningful and that SSD exploits -- while the marginal demand
  distribution stays the paper's ``Exp(num_mes)``.  The construction is
  fully deterministic (DESIGN.md section 2.3);
* the recorded runtime is SSD's service-demand key ("shortest execution
  times"); by the quantile matching it orders jobs identically to the
  communication demand.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.config import TIME_GRID, SimConfig
from repro.core.job import Job
from repro.mesh.geometry import shape_for_size
from repro.workload.base import Workload, quantize_time
from repro.workload.columnar import DEFAULT_BLOCK, JobBlock

#: parse-once-per-process memo of derived trace columns, keyed by the
#: workload's block fingerprint (trace digest + every shaping parameter)
_COLUMN_MEMO: dict[tuple, JobBlock] = {}

#: serialises column derivation so concurrent first use from a thread
#: pool derives each fingerprint once (columns are immutable afterwards)
_COLUMN_LOCK = threading.Lock()


@dataclass(frozen=True, slots=True)
class TraceJob:
    """One record of a real workload trace (times in trace seconds)."""

    arrival: float
    size: int
    runtime: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"trace job size must be positive, got {self.size}")
        if self.runtime <= 0:
            raise ValueError(f"trace job runtime must be positive, got {self.runtime}")
        if self.arrival < 0:
            raise ValueError(f"trace job arrival must be >= 0, got {self.arrival}")


@dataclass(frozen=True, slots=True)
class TraceStats:
    """Summary statistics of a trace (the paper quotes these for SDSC)."""

    jobs: int
    mean_interarrival: float
    mean_size: float
    mean_runtime: float
    power_of_two_fraction: float
    max_size: int


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def trace_stats(jobs: Sequence[TraceJob]) -> TraceStats:
    """Compute the headline statistics of a trace."""
    if len(jobs) < 2:
        raise ValueError("need at least two jobs to compute inter-arrival stats")
    arrivals = [j.arrival for j in jobs]
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    return TraceStats(
        jobs=len(jobs),
        mean_interarrival=sum(gaps) / len(gaps),
        mean_size=sum(j.size for j in jobs) / len(jobs),
        mean_runtime=sum(j.runtime for j in jobs) / len(jobs),
        power_of_two_fraction=sum(_is_power_of_two(j.size) for j in jobs)
        / len(jobs),
        max_size=max(j.size for j in jobs),
    )


class TraceWorkload(Workload):
    """Replay a trace at a chosen system load."""

    def __init__(
        self,
        config: SimConfig,
        trace: Sequence[TraceJob],
        load: float,
        max_jobs: int | None = None,
    ) -> None:
        super().__init__(config)
        if load <= 0:
            raise ValueError(f"load must be positive, got {load}")
        if not trace:
            raise ValueError("empty trace")
        self.trace = list(trace[:max_jobs]) if max_jobs else list(trace)
        if len(self.trace) < 2:
            raise ValueError("trace replay needs at least two jobs")
        self.load = load
        self.stats = trace_stats(self.trace)
        #: the paper's arrival-time multiplier f.  A burst trace (all
        #: arrivals simultaneous) has no inter-arrival scale to stretch,
        #: so it replays unscaled.
        if self.stats.mean_interarrival > 0:
            self.factor = 1.0 / (self.stats.mean_interarrival * load)
        else:
            self.factor = 1.0
        #: mean per-processor message count (DESIGN.md section 2.3)
        self.mean_messages = config.num_mes * config.trace_demand_multiplier
        self.name = "real-trace"
        self._arrivals = np.array([tj.arrival for tj in self.trace])
        self._sizes = np.array([tj.size for tj in self.trace], dtype=np.int64)
        self._runtimes = np.array([tj.runtime for tj in self.trace])
        self._messages = self._quantile_matched_demands()
        self._digest: str | None = None

    def _quantile_matched_demands(self) -> list[int]:
        """Per-job message counts: exponential marginal with the paper's
        mean, rank-correlated with the recorded runtimes."""
        cfg = self.config
        runtimes = self._runtimes
        # average ranks for ties, scaled into (0, 1)
        order = np.argsort(runtimes, kind="stable")
        ranks = np.empty(len(runtimes), dtype=np.float64)
        ranks[order] = np.arange(1, len(runtimes) + 1)
        quantiles = ranks / (len(runtimes) + 1)
        demands = -self.mean_messages * np.log1p(-quantiles)
        # round() already returns an int; no cast needed
        return [
            min(max(1, round(k)), cfg.max_messages) for k in demands
        ]

    def jobs(self, seed: int) -> Iterator[Job]:
        """The deterministic replay stream (``seed`` is ignored)."""
        # replay is fully deterministic; the seed is accepted for
        # interface uniformity but unused
        cfg = self.config
        t0 = self.trace[0].arrival
        prev = 0.0
        for i, (tj, k) in enumerate(zip(self.trace, self._messages), start=1):
            arrival = quantize_time((tj.arrival - t0) * self.factor)
            prev = self._check_monotone(prev, arrival)
            size = min(tj.size, cfg.processors)
            w, l = shape_for_size(size, cfg.width, cfg.length)
            yield Job(
                job_id=i,
                arrival_time=arrival,
                width=w,
                length=l,
                messages=k,
                service_demand=tj.runtime,
                trace_runtime=tj.runtime,
            )

    def block_fingerprint(self) -> tuple:
        """Stream identity: trace content digest + every shaping knob."""
        if self._digest is None:
            h = hashlib.sha256()
            h.update(self._arrivals.tobytes())
            h.update(self._sizes.tobytes())
            h.update(self._runtimes.tobytes())
            self._digest = h.hexdigest()[:24]
        cfg = self.config
        return (
            "trace", self._digest, len(self.trace), self.factor,
            cfg.width, cfg.length, cfg.processors,
            self.mean_messages, cfg.max_messages,
        )

    def _columns(self) -> JobBlock:
        """The whole replay as one memoised column block.

        Derivation (quantised scaled arrivals, Mache--Lo--Windisch
        shaping via per-unique-size lookup, quantile-matched demands)
        runs once per process for a given fingerprint; later workload
        instances over the same trace and parameters reuse the arrays.
        Thread-safe: derivation serialises on a module lock, so a
        thread pool racing through first use computes each fingerprint
        once (the memoised columns are frozen read-only).
        """
        key = self.block_fingerprint()
        block = _COLUMN_MEMO.get(key)
        if block is not None:
            return block
        with _COLUMN_LOCK:
            block = _COLUMN_MEMO.get(key)
            if block is not None:
                return block
            return self._derive_columns(key)

    def _derive_columns(self, key: tuple) -> JobBlock:
        cfg = self.config
        scaled = (self._arrivals - self._arrivals[0]) * self.factor
        arrival = np.floor(scaled * TIME_GRID) / TIME_GRID
        bad = np.nonzero(np.diff(arrival) < 0)[0]
        if bad.size:
            i = int(bad[0])
            raise AssertionError(
                f"workload produced decreasing arrival times "
                f"({arrival[i + 1]} < {arrival[i]})"
            )
        sizes = np.minimum(self._sizes, cfg.processors)
        uniq = np.unique(sizes)
        shapes = [shape_for_size(int(s), cfg.width, cfg.length) for s in uniq]
        idx = np.searchsorted(uniq, sizes)
        width = np.array([s[0] for s in shapes], dtype=np.int64)[idx]
        length = np.array([s[1] for s in shapes], dtype=np.int64)[idx]
        block = JobBlock(
            job_id=np.arange(1, len(self.trace) + 1, dtype=np.int64),
            arrival=arrival,
            width=width,
            length=length,
            messages=np.array(self._messages, dtype=np.int64),
            demand=self._runtimes.copy(),
            runtime=self._runtimes.copy(),
        )
        for col in (block.job_id, block.arrival, block.width, block.length,
                    block.messages, block.demand, block.runtime):
            col.flags.writeable = False
        _COLUMN_MEMO[key] = block
        return block

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Zero-copy views over the memoised columns (seed ignored)."""
        block = self._columns()
        for start in range(0, len(block), count):
            yield block.view(start, start + count)
