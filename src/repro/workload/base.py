"""Workload interface: a reproducible stream of arriving jobs.

Arrival times are snapped to the dyadic :data:`TIME_GRID` before a job
is emitted.  With a dyadic clock origin every derived event time in the
simulator -- round starts, channel reservations, deliveries -- is an
exact binary floating-point value (the timing constants ``t_s + 1`` and
``P_len`` are dyadic too), so all network transport backends produce
bit-identical results no matter how their internal sums are associated
(see :mod:`repro.network.batch`).  The perturbation is below ``2**-10``
time units per arrival, far inside the statistical noise of any metric.
"""

from __future__ import annotations

import abc
import math
from typing import Iterator

from repro.core.config import TIME_GRID, SimConfig
from repro.core.job import Job


def quantize_time(t: float) -> float:
    """Snap ``t`` down onto the dyadic grid (monotone, exact result)."""
    return math.floor(t * TIME_GRID) / TIME_GRID


class Workload(abc.ABC):
    """A source of :class:`~repro.core.job.Job` objects.

    ``jobs()`` yields jobs in non-decreasing arrival order; the stream may
    be infinite (stochastic) or finite (trace replay).  The same
    ``(workload, seed)`` pair always produces the same stream.
    """

    #: human-readable name for reports
    name: str = "abstract"

    def __init__(self, config: SimConfig) -> None:
        self.config = config

    @abc.abstractmethod
    def jobs(self, seed: int) -> Iterator[Job]:
        """Yield the job stream for one replication."""

    @staticmethod
    def _check_monotone(prev: float, arrival: float) -> float:
        if arrival < prev:
            raise AssertionError(
                f"workload produced decreasing arrival times ({arrival} < {prev})"
            )
        return arrival
