"""Workload interface: a reproducible stream of arriving jobs.

Arrival times are snapped to the dyadic :data:`TIME_GRID` before a job
is emitted.  With a dyadic clock origin every derived event time in the
simulator -- round starts, channel reservations, deliveries -- is an
exact binary floating-point value (the timing constants ``t_s + 1`` and
``P_len`` are dyadic too), so all network transport backends produce
bit-identical results no matter how their internal sums are associated
(see :mod:`repro.network.batch`).  The perturbation is below ``2**-10``
time units per arrival, far inside the statistical noise of any metric.
"""

from __future__ import annotations

import abc
import math
from typing import Iterator

from repro.core.config import TIME_GRID, SimConfig
from repro.core.job import Job
from repro.workload.columnar import DEFAULT_BLOCK, JobBlock, blocks_from_jobs


def quantize_time(t: float) -> float:
    """Snap ``t`` down onto the dyadic grid (monotone, exact result)."""
    return math.floor(t * TIME_GRID) / TIME_GRID


class Workload(abc.ABC):
    """A source of :class:`~repro.core.job.Job` objects.

    ``jobs()`` yields jobs in non-decreasing arrival order; the stream may
    be infinite (stochastic) or finite (trace replay).  The same
    ``(workload, seed)`` pair always produces the same stream.
    """

    #: human-readable name for reports
    name: str = "abstract"

    def __init__(self, config: SimConfig) -> None:
        self.config = config

    @abc.abstractmethod
    def jobs(self, seed: int) -> Iterator[Job]:
        """Yield the job stream for one replication."""

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Yield the same stream as struct-of-arrays blocks.

        The default wraps :meth:`jobs` through
        :func:`~repro.workload.columnar.blocks_from_jobs`, so every
        workload satisfies the columnar protocol; native overrides
        (stochastic, trace, the vectorised transforms) generate columns
        directly and are bit-identical to the scalar iterator.
        ``count`` is a block-size hint, not a contract -- producers may
        emit shorter blocks.
        """
        return blocks_from_jobs(self.jobs(seed), count)

    def block_fingerprint(self) -> tuple | None:
        """A stable identity for this workload's block stream, or ``None``.

        Workloads with a native columnar form return a hashable tuple
        that, together with a seed, uniquely determines the stream;
        the process-wide :class:`~repro.workload.columnar.BlockCache`
        keys on it.  ``None`` (the default) means "no stable identity":
        the stream still works through the fallback ``blocks`` wrapper
        but is never cached and the reference engine keeps the plain
        scalar iterator.
        """
        return None

    @staticmethod
    def _check_monotone(prev: float, arrival: float) -> float:
        if arrival < prev:
            raise AssertionError(
                f"workload produced decreasing arrival times ({arrival} < {prev})"
            )
        return arrival
