"""Workload interface: a reproducible stream of arriving jobs."""

from __future__ import annotations

import abc
from typing import Iterator

from repro.core.config import SimConfig
from repro.core.job import Job


class Workload(abc.ABC):
    """A source of :class:`~repro.core.job.Job` objects.

    ``jobs()`` yields jobs in non-decreasing arrival order; the stream may
    be infinite (stochastic) or finite (trace replay).  The same
    ``(workload, seed)`` pair always produces the same stream.
    """

    #: human-readable name for reports
    name: str = "abstract"

    def __init__(self, config: SimConfig) -> None:
        self.config = config

    @abc.abstractmethod
    def jobs(self, seed: int) -> Iterator[Job]:
        """Yield the job stream for one replication."""

    @staticmethod
    def _check_monotone(prev: float, arrival: float) -> float:
        if arrival < prev:
            raise AssertionError(
                f"workload produced decreasing arrival times ({arrival} < {prev})"
            )
        return arrival
