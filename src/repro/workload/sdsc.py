"""Synthetic SDSC Intel Paragon trace (substitution, DESIGN.md section 2.3).

The paper replays "a stream of 10658 real production jobs from the Intel
Paragon at the San Diego Supercomputer Centre ... taken only from the 352
nodes", quoting: mean inter-arrival time 1186.7 seconds, average job size
34.5 nodes, "with the distribution favouring sizes that are non-powers of
two".  The archive trace is public (Feitelson's Parallel Workloads
Archive, SDSC-Par-95) but unavailable offline, so this module synthesises
a trace calibrated to every published statistic:

* **arrivals**: hyper-exponential inter-arrival times (70% short / 30%
  long phases, mean exactly 1186.7 s) capturing the burstiness of
  production submission streams (CV > 1);
* **sizes**: a mixture of small interactive jobs, log-normally spread
  production sizes and occasional near-full-machine runs, nudged off
  powers of two so non-powers-of-two dominate (the property that defeats
  MBS on the real workload);
* **runtimes**: log-normal with sigma = 1.9 (heavy tail, CV ~ 6), the
  shape reported for SDSC Paragon runtimes by Windisch et al.
  (Frontiers'96) -- this is what gives SSD its advantage.

The generator is deterministic for a given seed; ``verify`` checks the
synthetic statistics against the paper's published ones.
"""

from __future__ import annotations

import math

import numpy as np

from repro.workload.trace import TraceJob, TraceStats, trace_stats

#: the statistics the paper quotes for its trace
SDSC_PUBLISHED = {
    "jobs": 10658,
    "mean_interarrival": 1186.7,
    "mean_size": 34.5,
    "partition_nodes": 352,
}

# size mixture: (weight, kind, params)
_SIZE_MIX = (
    (0.40, "small", (1, 8)),  # uniform 1..8 interactive jobs
    (0.40, "medium", (math.log(18.0), 0.7)),  # log-normal production sizes
    (0.17, "large", (math.log(80.0), 0.6)),  # big production runs
    (0.03, "full", (200, 352)),  # near-full-machine runs
)

_POWERS_OF_TWO = {4, 8, 16, 32, 64, 128, 256}


def _draw_size(rng: np.random.Generator, max_size: int) -> int:
    u = rng.random()
    acc = 0.0
    for weight, kind, params in _SIZE_MIX:
        acc += weight
        if u <= acc:
            break
    if kind == "small":
        lo, hi = params
        size = int(rng.integers(lo, hi + 1))
    elif kind == "full":
        lo, hi = params
        size = int(rng.integers(lo, hi + 1))
    else:
        mu, sigma = params
        # round() already returns an int; no cast needed
        size = round(rng.lognormal(mu, sigma))
    size = max(1, min(max_size, size))
    # favour non-powers-of-two: production codes on the Paragon mostly
    # requested arbitrary node counts
    if size in _POWERS_OF_TWO and rng.random() < 0.6:
        size += int(rng.integers(1, 4)) * (1 if rng.random() < 0.5 else -1)
        size = max(1, min(max_size, size))
    return size


def synthesize_sdsc_trace(
    jobs: int = SDSC_PUBLISHED["jobs"],
    seed: int = 1995,
    mean_interarrival: float = SDSC_PUBLISHED["mean_interarrival"],
    max_size: int = SDSC_PUBLISHED["partition_nodes"],
    runtime_median: float = 500.0,
    runtime_sigma: float = 1.9,
) -> list[TraceJob]:
    """Generate the calibrated synthetic SDSC Paragon trace."""
    if jobs < 2:
        raise ValueError("a trace needs at least two jobs")
    rng = np.random.default_rng(seed)
    # hyper-exponential inter-arrivals: mean = 0.7*0.4m + 0.3*2.4m = m
    short_mean = 0.4 * mean_interarrival
    long_mean = 2.4 * mean_interarrival
    out: list[TraceJob] = []
    t = 0.0
    mu_rt = math.log(runtime_median)
    for _ in range(jobs):
        gap = rng.exponential(short_mean if rng.random() < 0.7 else long_mean)
        t += gap
        size = _draw_size(rng, max_size)
        runtime = max(1.0, rng.lognormal(mu_rt, runtime_sigma))
        out.append(TraceJob(arrival=t, size=size, runtime=runtime))
    return out


def verify(trace: list[TraceJob], tolerance: float = 0.15) -> TraceStats:
    """Check the synthetic trace against the paper's published statistics.

    Raises ``AssertionError`` when a headline statistic drifts more than
    ``tolerance`` (relative); returns the stats on success.
    """
    stats = trace_stats(trace)
    published_ia = SDSC_PUBLISHED["mean_interarrival"]
    published_size = SDSC_PUBLISHED["mean_size"]
    if abs(stats.mean_interarrival - published_ia) / published_ia > tolerance:
        raise AssertionError(
            f"mean inter-arrival {stats.mean_interarrival:.1f}s deviates from "
            f"published {published_ia}s by more than {tolerance:.0%}"
        )
    if abs(stats.mean_size - published_size) / published_size > tolerance:
        raise AssertionError(
            f"mean size {stats.mean_size:.1f} deviates from published "
            f"{published_size} by more than {tolerance:.0%}"
        )
    if stats.power_of_two_fraction > 0.35:
        raise AssertionError(
            "synthetic trace does not favour non-power-of-two sizes "
            f"(pow2 fraction {stats.power_of_two_fraction:.2f})"
        )
    return stats
