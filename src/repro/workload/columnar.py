"""Columnar job streams: struct-of-arrays blocks off the hot path.

Every :class:`~repro.workload.base.Workload` yields jobs two ways:

* ``jobs(seed)`` -- the sequential iterator of
  :class:`~repro.core.job.Job` objects.  This is the *definitional*
  stream: golden masters, cache keys and the paper's methodology are all
  expressed against it, and it never changes.
* ``blocks(seed, count)`` -- the same stream as a sequence of
  :class:`JobBlock` structs-of-arrays (NumPy columns).  Native
  implementations (stochastic, trace replay, the vectorised transforms)
  generate whole columns at once and are **bit-identical** to the
  scalar iterator by construction -- the vectorised RNG draws consume
  the underlying bit stream in exactly the per-job order the scalar
  loop does (``tests/test_workload_columnar.py`` proves the equality
  property-style).  Anything without a native form falls back to
  :func:`blocks_from_jobs`, which batches the scalar iterator, so the
  columnar protocol is total.

Consumers sit at both ends of the engine split:

* the SoA engine's :meth:`repro.alloc.soa_state.LaneState.feed` copies
  block columns straight into lane arrays -- zero ``Job`` objects on
  the hot path;
* the reference :class:`~repro.core.simulator.Simulator` pulls jobs
  through :func:`job_stream`, a block-buffered adapter that
  materialises ``Job`` objects from cached columns when the workload
  has a native columnar form (and degrades to the plain iterator when
  it does not).

Blocks for a ``(workload, seed)`` pair whose workload advertises a
:meth:`~repro.workload.base.Workload.block_fingerprint` are memoised in
a process-wide :class:`BlockCache`, so the six strategy combinations of
a campaign figure replay one generated stream instead of re-drawing it
six times.  ``REPRO_BLOCK_CACHE_MB`` bounds the cache (``0`` disables
it).

The refill sizing policy shared by all block consumers lives here too:
:func:`refill_size` with :data:`MAX_CHUNK`, :data:`FIRST_FILL_SLACK`,
:data:`MIN_REFILL` and :data:`REFILL_GROWTH`.
"""

from __future__ import annotations

import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.core.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports us)
    from repro.workload.base import Workload

#: default jobs per generated block (a hint; producers may emit less)
DEFAULT_BLOCK = 2048

# --------------------------------------------------------- refill policy
#
# One documented policy for every consumer that materialises arrivals in
# chunks (previously duplicated ad hoc inside ``LaneState.feed``):
#
# * the FIRST fill covers the whole completion target plus
#   ``FIRST_FILL_SLACK`` jobs of slack, so a lane that never saturates
#   needs exactly one refill;
# * every LATER fill grows with consumption -- a quarter of what has
#   already been provided, but at least ``MIN_REFILL`` -- so the number
#   of refills stays logarithmic in the arrivals actually needed while
#   the overshoot past the last needed arrival stays bounded;
# * both are capped at ``MAX_CHUNK`` so a single refill never stalls
#   the event loop for long or over-allocates on huge targets.

#: hard ceiling on arrivals materialised per refill
MAX_CHUNK = 4096
#: extra jobs beyond the completion target on the first fill
FIRST_FILL_SLACK = 64
#: smallest later refill
MIN_REFILL = 512
#: later refills are ``provided / REFILL_GROWTH``
REFILL_GROWTH = 4


def refill_size(provided: int, target_jobs: int) -> int:
    """How many arrivals the next refill should materialise.

    ``provided`` is how many arrivals the consumer has already been
    given (0 selects the first-fill rule); ``target_jobs`` is the run's
    completion target.  See the policy comment above.
    """
    if provided == 0:
        return min(target_jobs + FIRST_FILL_SLACK, MAX_CHUNK)
    return min(max(MIN_REFILL, provided // REFILL_GROWTH), MAX_CHUNK)


@dataclass(frozen=True, slots=True)
class JobBlock:
    """A batch of jobs as parallel NumPy columns (struct of arrays).

    ``runtime`` is ``None`` when no job in the block carries a recorded
    trace runtime; otherwise it is a float64 column with ``NaN`` marking
    jobs that have none (a merge of trace and stochastic streams mixes
    both).  ``demand`` mirrors ``Job.service_demand`` -- equal to
    ``float(messages)`` for stochastic jobs, the recorded runtime for
    trace jobs.
    """

    job_id: np.ndarray
    arrival: np.ndarray
    width: np.ndarray
    length: np.ndarray
    messages: np.ndarray
    demand: np.ndarray
    runtime: np.ndarray | None = None

    def __len__(self) -> int:
        """Number of jobs in the block."""
        return len(self.arrival)

    @property
    def nbytes(self) -> int:
        """Total bytes across all columns (cache accounting)."""
        n = (self.job_id.nbytes + self.arrival.nbytes + self.width.nbytes
             + self.length.nbytes + self.messages.nbytes + self.demand.nbytes)
        if self.runtime is not None:
            n += self.runtime.nbytes
        return n

    def view(self, start: int, stop: int) -> "JobBlock":
        """A zero-copy sub-block of rows ``[start, stop)``."""
        rt = None if self.runtime is None else self.runtime[start:stop]
        return JobBlock(
            self.job_id[start:stop], self.arrival[start:stop],
            self.width[start:stop], self.length[start:stop],
            self.messages[start:stop], self.demand[start:stop], rt,
        )

    def take(self, mask: np.ndarray) -> "JobBlock":
        """The rows selected by a boolean ``mask`` (order preserved)."""
        rt = None if self.runtime is None else self.runtime[mask]
        return JobBlock(
            self.job_id[mask], self.arrival[mask], self.width[mask],
            self.length[mask], self.messages[mask], self.demand[mask], rt,
        )

    def iter_jobs(self) -> Iterator[Job]:
        """Materialise the block as :class:`~repro.core.job.Job` objects.

        Columns are converted to Python lists once (``tolist``), so the
        per-job cost is a plain constructor call -- this is the
        reference engine's adapter path.
        """
        rts = None if self.runtime is None else self.runtime.tolist()
        rows = zip(
            self.job_id.tolist(), self.arrival.tolist(), self.width.tolist(),
            self.length.tolist(), self.messages.tolist(), self.demand.tolist(),
        )
        for i, (jid, arr, w, l, msg, dem) in enumerate(rows):
            rt = None
            if rts is not None and not math.isnan(rts[i]):
                rt = rts[i]
            yield Job(
                job_id=jid, arrival_time=arr, width=w, length=l,
                messages=msg, service_demand=dem, trace_runtime=rt,
            )

    def job(self, i: int) -> Job:
        """Materialise row ``i`` as a single ``Job``."""
        return next(self.view(i, i + 1).iter_jobs())

    @classmethod
    def from_jobs(cls, jobs: Sequence[Job]) -> "JobBlock":
        """Build a block from materialised jobs (the fallback path)."""
        rt = None
        if any(j.trace_runtime is not None for j in jobs):
            rt = np.array(
                [math.nan if j.trace_runtime is None else j.trace_runtime
                 for j in jobs], dtype=np.float64,
            )
        return cls(
            np.array([j.job_id for j in jobs], dtype=np.int64),
            np.array([j.arrival_time for j in jobs], dtype=np.float64),
            np.array([j.width for j in jobs], dtype=np.int64),
            np.array([j.length for j in jobs], dtype=np.int64),
            np.array([j.messages for j in jobs], dtype=np.int64),
            np.array([j.service_demand for j in jobs], dtype=np.float64),
            rt,
        )

    @staticmethod
    def concat(blocks: Sequence["JobBlock"]) -> "JobBlock":
        """Concatenate blocks row-wise (runtime promotes to NaN-filled)."""
        if len(blocks) == 1:
            return blocks[0]
        rt = None
        if any(b.runtime is not None for b in blocks):
            rt = np.concatenate([
                b.runtime if b.runtime is not None
                else np.full(len(b), math.nan) for b in blocks
            ])
        return JobBlock(
            np.concatenate([b.job_id for b in blocks]),
            np.concatenate([b.arrival for b in blocks]),
            np.concatenate([b.width for b in blocks]),
            np.concatenate([b.length for b in blocks]),
            np.concatenate([b.messages for b in blocks]),
            np.concatenate([b.demand for b in blocks]),
            rt,
        )

    def renumber(self, start: int) -> "JobBlock":
        """The same rows with ids replaced by ``start, start+1, ...``."""
        ids = np.arange(start, start + len(self), dtype=np.int64)
        return replace(self, job_id=ids)


def blocks_from_jobs(
    jobs: Iterable[Job], count: int = DEFAULT_BLOCK
) -> Iterator[JobBlock]:
    """Batch a sequential job iterator into blocks of up to ``count``.

    This is the automatic fallback behind the default
    ``Workload.blocks`` -- any workload or transform without a native
    vector form still satisfies the columnar protocol through it.
    """
    batch: list[Job] = []
    for job in jobs:
        batch.append(job)
        if len(batch) >= count:
            yield JobBlock.from_jobs(batch)
            batch = []
    if batch:
        yield JobBlock.from_jobs(batch)


def jobs_from_blocks(blocks: Iterable[JobBlock]) -> Iterator[Job]:
    """Flatten a block stream back into a sequential job iterator."""
    for block in blocks:
        yield from block.iter_jobs()


# ----------------------------------------------------------- block cache


def _cache_budget_bytes() -> int:
    """The block-cache byte budget (``REPRO_BLOCK_CACHE_MB``, default 128)."""
    try:
        mb = float(os.environ.get("REPRO_BLOCK_CACHE_MB", "128"))
    except ValueError:
        mb = 128.0
    return max(0, int(mb * 1024 * 1024))


class BlockStream:
    """The materialised prefix of one ``(workload, seed)`` block stream.

    Blocks are pulled from the producer lazily and kept, so any number
    of cursors can replay the stream from the start without re-drawing
    the RNG -- this is what lets six strategy combinations of one
    campaign cell share a single generation pass.

    Thread-safe: streams are shared process-wide through
    :class:`BlockCache`, and the thread-based campaign executor replays
    one stream from many worker threads at once.  The producer pull is
    the critical section -- two threads advancing ``_it`` concurrently
    would interleave RNG draws and corrupt the stream -- so it runs
    under a per-stream lock; reads of already-materialised blocks are
    lock-free (the list is append-only).
    """

    def __init__(self, workload: "Workload", seed: int,
                 count: int = DEFAULT_BLOCK) -> None:
        self._it = workload.blocks(seed, count)
        self._lock = threading.Lock()
        self.blocks: list[JobBlock] = []
        self.exhausted = False
        self.nbytes = 0

    def block(self, i: int) -> JobBlock | None:
        """Block ``i`` of the stream, or ``None`` past the end."""
        if i >= len(self.blocks) and not self.exhausted:
            with self._lock:
                while i >= len(self.blocks) and not self.exhausted:
                    blk = next(self._it, None)
                    if blk is None:
                        self.exhausted = True
                    elif len(blk):
                        self.blocks.append(blk)
                        self.nbytes += blk.nbytes
        return self.blocks[i] if i < len(self.blocks) else None


class _StreamCursor:
    """Sequential reader over a (possibly shared) :class:`BlockStream`."""

    def __init__(self, stream: BlockStream) -> None:
        self._stream = stream
        self._i = 0

    def next_block(self) -> JobBlock | None:
        """The next unread block, or ``None`` when the stream ends."""
        blk = self._stream.block(self._i)
        if blk is not None:
            self._i += 1
        return blk

    def __iter__(self) -> Iterator[JobBlock]:
        """Iterate the remaining blocks."""
        while (blk := self.next_block()) is not None:
            yield blk


class _IterCursor:
    """Cursor over a raw block iterator (uncacheable streams)."""

    def __init__(self, it: Iterator[JobBlock]) -> None:
        self._it = it

    def next_block(self) -> JobBlock | None:
        """The next non-empty block, or ``None`` when exhausted."""
        for blk in self._it:
            if len(blk):
                return blk
        return None

    def __iter__(self) -> Iterator[JobBlock]:
        """Iterate the remaining blocks."""
        while (blk := self.next_block()) is not None:
            yield blk


class BlockCache:
    """Process-wide LRU of :class:`BlockStream` prefixes.

    Keyed by ``(workload.block_fingerprint(), seed)``.  Eviction runs on
    :meth:`stream` against an approximate byte budget (streams keep
    growing after admission; live cursors hold their stream alive
    regardless, so eviction never breaks an in-flight consumer).

    Thread-safe: lookup, admission, LRU bookkeeping and eviction all
    run under one lock, so concurrent first use of the same key from a
    thread pool admits exactly one stream -- every caller shares it and
    the underlying generation pass runs once
    (``tests/test_thread_executor.py`` hammers this).
    """

    def __init__(self, budget: int | None = None) -> None:
        self._streams: OrderedDict[tuple, BlockStream] = OrderedDict()
        self._budget = budget
        self._lock = threading.Lock()

    @property
    def budget(self) -> int:
        """The byte budget (re-read from the environment when unset)."""
        return self._budget if self._budget is not None else _cache_budget_bytes()

    def stream(self, workload: "Workload", seed: int, key: tuple,
               count: int = DEFAULT_BLOCK) -> BlockStream:
        """The shared stream for ``key``, creating and evicting as needed."""
        with self._lock:
            stream = self._streams.get(key)
            if stream is None:
                stream = BlockStream(workload, seed, count)
                self._streams[key] = stream
            self._streams.move_to_end(key)
            self._trim()
            return stream

    def _trim(self) -> None:
        # caller holds self._lock
        while len(self._streams) > 1:
            total = sum(s.nbytes for s in self._streams.values())
            if total <= self.budget:
                break
            self._streams.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached stream (tests and memory pressure)."""
        with self._lock:
            self._streams.clear()


#: the process-wide cache shared by every consumer in this process
GLOBAL_BLOCK_CACHE = BlockCache()


def open_stream(workload: "Workload", seed: int,
                count: int = DEFAULT_BLOCK):
    """A fresh cursor over the block stream of ``(workload, seed)``.

    Streams whose workload has a stable :meth:`block_fingerprint` are
    served from :data:`GLOBAL_BLOCK_CACHE` (generation happens once per
    process and every later consumer replays the cached columns).
    Workloads without a fingerprint -- user subclasses, transforms on
    the fallback path -- get an uncached pass-through cursor.
    """
    key = workload.block_fingerprint()
    if key is None or _cache_budget_bytes() == 0:
        return _IterCursor(iter(workload.blocks(seed, count)))
    return _StreamCursor(GLOBAL_BLOCK_CACHE.stream(workload, seed, (key, seed)))


def job_stream(workload: "Workload", seed: int) -> Iterator[Job]:
    """The reference engine's arrival iterator for ``(workload, seed)``.

    Block-buffered when the workload has a native columnar form (jobs
    are materialised from cached columns in batches); otherwise exactly
    ``workload.jobs(seed)`` -- the scalar path is never wrapped just to
    be unwrapped again.
    """
    if workload.block_fingerprint() is None:
        return workload.jobs(seed)
    return jobs_from_blocks(open_stream(workload, seed))
