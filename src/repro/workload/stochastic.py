"""Stochastic workload (paper section 5, workload 1).

* inter-arrival times: exponential with mean ``1 / load`` (the paper's
  *system load* is "the inverse of the mean inter-arrival time of jobs");
* request side lengths: either uniform over ``[1, W] x [1, L]`` (widths
  and lengths drawn independently) or exponential with a mean of half the
  corresponding mesh side, rounded and clipped into range;
* communication demand: ``K_j = max(1, round(Exp(num_mes)))`` messages per
  processor (DESIGN.md section 2.2) -- execution times are *not* inputs;
  the simulator derives them from contention.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.config import TIME_GRID, SimConfig
from repro.core.job import Job
from repro.mesh.geometry import clip_side
from repro.workload import _native
from repro.workload.base import Workload, quantize_time
from repro.workload.columnar import DEFAULT_BLOCK, JobBlock

SIDE_DISTRIBUTIONS = ("uniform", "exponential")


class StochasticWorkload(Workload):
    """Poisson arrivals with uniform or exponential request sides."""

    def __init__(
        self, config: SimConfig, load: float, sides: str = "uniform"
    ) -> None:
        super().__init__(config)
        if load <= 0:
            raise ValueError(f"load must be positive, got {load}")
        if sides not in SIDE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown side distribution {sides!r}; choose from {SIDE_DISTRIBUTIONS}"
            )
        self.load = load
        self.sides = sides
        self.name = f"stochastic-{sides}"

    def jobs(self, seed: int) -> Iterator[Job]:
        """The seeded infinite job stream (dyadic-grid arrival times)."""
        rng = np.random.default_rng(seed)
        cfg = self.config
        mean_interarrival = 1.0 / self.load
        t = 0.0
        job_id = 0
        while True:
            t += rng.exponential(mean_interarrival)
            job_id += 1
            if self.sides == "uniform":
                w = int(rng.integers(1, cfg.width + 1))
                l = int(rng.integers(1, cfg.length + 1))
            else:
                w = clip_side(rng.exponential(cfg.width / 2.0), cfg.width)
                l = clip_side(rng.exponential(cfg.length / 2.0), cfg.length)
            # round() already returns an int; no cast needed
            k = max(1, round(rng.exponential(cfg.num_mes)))
            k = min(k, cfg.max_messages)
            yield Job(
                job_id=job_id,
                arrival_time=quantize_time(t),
                width=w,
                length=l,
                messages=k,
            )

    def block_fingerprint(self) -> tuple:
        """Stream identity: distribution shape + every draw parameter."""
        cfg = self.config
        return (
            "stochastic", self.sides, self.load, cfg.width, cfg.length,
            cfg.num_mes, cfg.max_messages,
        )

    def blocks(self, seed: int, count: int = DEFAULT_BLOCK) -> Iterator[JobBlock]:
        """Columnar generator, bit-identical to :meth:`jobs`.

        The scalar loop draws, per job, interarrival / width / length /
        message-count in that order from one ``default_rng(seed)``
        stream.  For exponential sides all four are exponential draws,
        and a vectorised ``standard_exponential(4 * count)`` consumes
        the underlying bit stream element-by-element in exactly that
        interleaved order -- reshaping to ``(count, 4)`` recovers the
        per-job columns, and applying each scale afterwards performs the
        same ``scale * x`` multiplication ``Generator.exponential``
        does.  Uniform sides mix exponential and Lemire bounded-integer
        draws, whose bit-stream consumption cannot be replayed
        column-wise; that branch runs the per-job loop in C instead
        (:mod:`repro.workload._native`, calling numpy's own
        ``libnpyrandom`` draw routines on the live bit generator, so
        order and values are identical by construction), degrading to
        the same loop in Python when the helper is unavailable.  Arrival
        accumulation and grid-snapping are shared: a ``cumsum`` seeded
        with the running time reproduces the scalar left-to-right
        float additions, and ``floor(t * G) / G`` is
        :func:`~repro.workload.base.quantize_time` elementwise.
        """
        rng = np.random.default_rng(seed)
        cfg = self.config
        mean_interarrival = 1.0 / self.load
        uniform = self.sides == "uniform"
        w_scale, l_scale = cfg.width / 2.0, cfg.length / 2.0
        t = 0.0
        next_id = 1
        while True:
            if uniform:
                gaps = np.empty(count, dtype=np.float64)
                w = np.empty(count, dtype=np.int64)
                l = np.empty(count, dtype=np.int64)
                k_raw = np.empty(count, dtype=np.float64)
                w_hi, l_hi = cfg.width + 1, cfg.length + 1
                if not _native.fill_uniform_draws(
                    rng, count, mean_interarrival, w_hi, l_hi,
                    cfg.num_mes, gaps, w, l, k_raw,
                ):
                    draw_exp, draw_int = rng.exponential, rng.integers
                    for i in range(count):
                        gaps[i] = draw_exp(mean_interarrival)
                        w[i] = draw_int(1, w_hi)
                        l[i] = draw_int(1, l_hi)
                        k_raw[i] = draw_exp(cfg.num_mes)
            else:
                raw = rng.standard_exponential(4 * count).reshape(count, 4)
                gaps = raw[:, 0] * mean_interarrival
                # clip_side, vectorised: max(1, min(limit, round(x)))
                w = np.maximum(
                    1.0, np.minimum(cfg.width, np.rint(raw[:, 1] * w_scale))
                ).astype(np.int64)
                l = np.maximum(
                    1.0, np.minimum(cfg.length, np.rint(raw[:, 2] * l_scale))
                ).astype(np.int64)
                k_raw = raw[:, 3] * cfg.num_mes
            k = np.minimum(
                np.maximum(1.0, np.rint(k_raw)), cfg.max_messages
            ).astype(np.int64)
            # left-associated running sum, exactly as the scalar loop
            cum = np.cumsum(np.concatenate(([t], gaps)))
            t = float(cum[-1])
            arrival = np.floor(cum[1:] * TIME_GRID) / TIME_GRID
            ids = np.arange(next_id, next_id + count, dtype=np.int64)
            next_id += count
            yield JobBlock(
                job_id=ids, arrival=arrival, width=w, length=l,
                messages=k, demand=k.astype(np.float64),
            )
