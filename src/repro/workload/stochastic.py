"""Stochastic workload (paper section 5, workload 1).

* inter-arrival times: exponential with mean ``1 / load`` (the paper's
  *system load* is "the inverse of the mean inter-arrival time of jobs");
* request side lengths: either uniform over ``[1, W] x [1, L]`` (widths
  and lengths drawn independently) or exponential with a mean of half the
  corresponding mesh side, rounded and clipped into range;
* communication demand: ``K_j = max(1, round(Exp(num_mes)))`` messages per
  processor (DESIGN.md section 2.2) -- execution times are *not* inputs;
  the simulator derives them from contention.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.config import SimConfig
from repro.core.job import Job
from repro.mesh.geometry import clip_side
from repro.workload.base import Workload, quantize_time

SIDE_DISTRIBUTIONS = ("uniform", "exponential")


class StochasticWorkload(Workload):
    """Poisson arrivals with uniform or exponential request sides."""

    def __init__(
        self, config: SimConfig, load: float, sides: str = "uniform"
    ) -> None:
        super().__init__(config)
        if load <= 0:
            raise ValueError(f"load must be positive, got {load}")
        if sides not in SIDE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown side distribution {sides!r}; choose from {SIDE_DISTRIBUTIONS}"
            )
        self.load = load
        self.sides = sides
        self.name = f"stochastic-{sides}"

    def jobs(self, seed: int) -> Iterator[Job]:
        """The seeded infinite job stream (dyadic-grid arrival times)."""
        rng = np.random.default_rng(seed)
        cfg = self.config
        mean_interarrival = 1.0 / self.load
        t = 0.0
        job_id = 0
        while True:
            t += rng.exponential(mean_interarrival)
            job_id += 1
            if self.sides == "uniform":
                w = int(rng.integers(1, cfg.width + 1))
                l = int(rng.integers(1, cfg.length + 1))
            else:
                w = clip_side(rng.exponential(cfg.width / 2.0), cfg.width)
                l = clip_side(rng.exponential(cfg.length / 2.0), cfg.length)
            k = max(1, int(round(rng.exponential(cfg.num_mes))))
            k = min(k, cfg.max_messages)
            yield Job(
                job_id=job_id,
                arrival_time=quantize_time(t),
                width=w,
                length=l,
                messages=k,
            )
