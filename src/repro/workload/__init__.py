"""Workload models: stochastic streams and real-trace replay.

The paper evaluates every strategy under (a) a stochastic workload with
exponential inter-arrival times and uniform / exponential side-length
distributions, and (b) a real trace of 10,658 production jobs from the
352-node partition of the SDSC Intel Paragon.  This package provides both,
plus a Standard Workload Format (SWF) parser so an actual archive trace
can be substituted for the calibrated synthetic one (DESIGN.md
section 2.3).

On top of the base workloads sits a composable transform pipeline
(:mod:`repro.workload.transforms`): any stream can be load-scaled,
thinned, jittered, burstified, shape-clamped or merged with another
stream, described either programmatically or through a spec string such
as ``"real*0.5 | thin:0.8 + uniform"`` (see :func:`parse_workload_spec`
for the grammar).  Every transform preserves the dyadic arrival-time
grid and non-decreasing arrival order.
"""

from repro.workload.base import Workload, quantize_time
from repro.workload.columnar import (
    DEFAULT_BLOCK,
    MAX_CHUNK,
    BlockCache,
    JobBlock,
    blocks_from_jobs,
    job_stream,
    jobs_from_blocks,
    open_stream,
    refill_size,
)
from repro.workload.stochastic import StochasticWorkload
from repro.workload.trace import TraceJob, TraceStats, TraceWorkload, trace_stats
from repro.workload.transforms import (
    SOURCES,
    TRANSFORMS,
    Burstify,
    Jitter,
    LoadScale,
    Merge,
    ShapeClamp,
    SpecError,
    Thin,
    WorkloadTransform,
    build_pipeline,
    canonical_workload,
    is_pipeline_spec,
    parse_workload_spec,
    spec_is_deterministic,
    spec_to_str,
)
from repro.workload.sdsc import synthesize_sdsc_trace, SDSC_PUBLISHED
from repro.workload.swf import load_swf, parse_swf_line

__all__ = [
    "Workload",
    "quantize_time",
    "DEFAULT_BLOCK",
    "MAX_CHUNK",
    "BlockCache",
    "JobBlock",
    "blocks_from_jobs",
    "job_stream",
    "jobs_from_blocks",
    "open_stream",
    "refill_size",
    "StochasticWorkload",
    "TraceJob",
    "TraceStats",
    "TraceWorkload",
    "trace_stats",
    "SOURCES",
    "TRANSFORMS",
    "Burstify",
    "Jitter",
    "LoadScale",
    "Merge",
    "ShapeClamp",
    "SpecError",
    "Thin",
    "WorkloadTransform",
    "build_pipeline",
    "canonical_workload",
    "is_pipeline_spec",
    "parse_workload_spec",
    "spec_is_deterministic",
    "spec_to_str",
    "synthesize_sdsc_trace",
    "SDSC_PUBLISHED",
    "load_swf",
    "parse_swf_line",
]
