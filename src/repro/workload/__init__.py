"""Workload models: stochastic streams and real-trace replay.

The paper evaluates every strategy under (a) a stochastic workload with
exponential inter-arrival times and uniform / exponential side-length
distributions, and (b) a real trace of 10,658 production jobs from the
352-node partition of the SDSC Intel Paragon.  This package provides both,
plus a Standard Workload Format (SWF) parser so an actual archive trace
can be substituted for the calibrated synthetic one (DESIGN.md
section 2.3).
"""

from repro.workload.base import Workload
from repro.workload.stochastic import StochasticWorkload
from repro.workload.trace import TraceJob, TraceStats, TraceWorkload, trace_stats
from repro.workload.sdsc import synthesize_sdsc_trace, SDSC_PUBLISHED
from repro.workload.swf import load_swf, parse_swf_line

__all__ = [
    "Workload",
    "StochasticWorkload",
    "TraceJob",
    "TraceStats",
    "TraceWorkload",
    "trace_stats",
    "synthesize_sdsc_trace",
    "SDSC_PUBLISHED",
    "load_swf",
    "parse_swf_line",
]
