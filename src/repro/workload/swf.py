"""Standard Workload Format (SWF) parser.

The Parallel Workloads Archive distributes the SDSC Paragon traces the
paper uses (SDSC-Par-95/96) in SWF: one job per line, 18 whitespace-
separated fields, ``;`` comment lines.  Fields used here (1-based, per the
SWF definition):

1. job number          2. submit time (s)      3. wait time (s)
4. run time (s)        5. number of allocated processors

Drop a real ``.swf`` file next to the experiments and pass its path to
the runner to replay the authentic trace instead of the calibrated
synthetic one.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.workload.trace import TraceJob


class SWFError(ValueError):
    """Raised for malformed SWF content."""


def parse_swf_line(line: str) -> TraceJob | None:
    """Parse one SWF record; ``None`` for comments/blank/unusable jobs.

    Jobs with non-positive runtime or processor count (cancelled or
    corrupt records, encoded as ``-1`` in SWF) are skipped.
    """
    line = line.strip()
    if not line or line.startswith(";"):
        return None
    fields = line.split()
    if len(fields) < 5:
        raise SWFError(f"SWF record has {len(fields)} fields, expected >= 5")
    try:
        submit = float(fields[1])
        run = float(fields[3])
        procs = int(float(fields[4]))
    except ValueError as exc:
        raise SWFError(f"unparseable SWF record: {line[:60]}...") from exc
    if run <= 0 or procs <= 0 or submit < 0:
        return None
    return TraceJob(arrival=submit, size=procs, runtime=run)


def parse_swf(lines: Iterable[str], max_size: int | None = None) -> list[TraceJob]:
    """Parse SWF text into trace jobs, sorted by arrival.

    ``max_size`` drops jobs larger than the simulated partition (the paper
    keeps only the jobs of the 352-node partition).
    """
    out: list[TraceJob] = []
    for i, line in enumerate(lines, start=1):
        try:
            job = parse_swf_line(line)
        except SWFError as exc:
            raise SWFError(f"line {i}: {exc}") from None
        if job is None:
            continue
        if max_size is not None and job.size > max_size:
            continue
        out.append(job)
    out.sort(key=lambda j: j.arrival)
    return out


def load_swf(
    path: str | os.PathLike,
    max_size: int | None = None,
    max_jobs: int | None = None,
) -> list[TraceJob]:
    """Load an SWF file from disk."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        jobs = parse_swf(fh, max_size=max_size)
    return jobs[:max_jobs] if max_jobs else jobs
