"""repro -- reproduction of Bani-Mohammad et al., IPDPS 2008.

"The Effect of Real Workloads and Stochastic Workloads on the Performance
of Allocation and Scheduling Algorithms in 2D Mesh Multicomputers."

Public API tour:

>>> from repro import SimConfig, Simulator, make_allocator, make_scheduler
>>> from repro.workload import StochasticWorkload
>>> cfg = SimConfig(jobs=50)
>>> sim = Simulator(
...     cfg,
...     make_allocator("GABL", cfg.width, cfg.length),
...     make_scheduler("FCFS"),
...     StochasticWorkload(cfg, load=0.01, sides="uniform"),
... )
>>> result = sim.run()
>>> result.completed_jobs
50

Higher-level entry points live in :mod:`repro.experiments`
(``run_figure("fig3")`` regenerates a paper figure's data) and the CLI
(``python -m repro fig3``).
"""

from repro.alloc import (
    Allocation,
    Allocator,
    BestFitAllocator,
    FirstFitAllocator,
    GABLAllocator,
    MBSAllocator,
    PagingAllocator,
    RandomAllocator,
    make_allocator,
)
from repro.core.config import PAPER_CONFIG, SimConfig
from repro.core.hooks import SimObserver, TrajectoryObserver
from repro.core.job import Job
from repro.core.metrics import RunResult
from repro.core.simulator import Simulator
from repro.mesh import Coord, MeshGrid, SubMesh
from repro.sched import FCFSScheduler, SSDScheduler, make_scheduler

__version__ = "1.9.0"

__all__ = [
    "Allocation",
    "Allocator",
    "BestFitAllocator",
    "FirstFitAllocator",
    "GABLAllocator",
    "MBSAllocator",
    "PagingAllocator",
    "RandomAllocator",
    "make_allocator",
    "PAPER_CONFIG",
    "SimConfig",
    "Job",
    "RunResult",
    "SimObserver",
    "Simulator",
    "TrajectoryObserver",
    "Coord",
    "MeshGrid",
    "SubMesh",
    "FCFSScheduler",
    "SSDScheduler",
    "make_scheduler",
    "__version__",
]
