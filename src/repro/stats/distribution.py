"""Sample distributions: percentiles, histograms, tail summaries.

The paper reports means, but the FCFS-vs-SSD story (section 4) is really
a *distributional* one: SSD collapses the median and the short-job mass
while stretching the tail.  These helpers back the per-job analyses in
the examples and the scheduling ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]).

    Matches ``numpy.percentile``'s default method without requiring the
    caller to build an array.
    """
    if not values:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


@dataclass(frozen=True, slots=True)
class DistributionSummary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (0 for a zero mean)."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def tail_ratio(self) -> float:
        """p95 over median -- the heavy-tail indicator SSD exploits."""
        return self.p95 / self.median if self.median else math.inf

    def format(self, label: str = "", precision: int = 1) -> str:
        """One aligned text line for reports."""
        return (
            f"{label:<22s} n={self.n:<6d} mean={self.mean:>10.{precision}f} "
            f"p50={self.median:>10.{precision}f} p95={self.p95:>10.{precision}f} "
            f"max={self.maximum:>10.{precision}f}"
        )


def summarize(values: Iterable[float]) -> DistributionSummary:
    """Compute a :class:`DistributionSummary` from any iterable."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("no samples")
    n = len(data)
    mean = sum(data) / n
    var = sum((v - mean) ** 2 for v in data) / (n - 1) if n > 1 else 0.0
    return DistributionSummary(
        n=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=data[0],
        p25=percentile(data, 25),
        median=percentile(data, 50),
        p75=percentile(data, 75),
        p95=percentile(data, 95),
        maximum=data[-1],
    )


class Histogram:
    """Fixed-width-bin histogram with text rendering."""

    __slots__ = ("lo", "hi", "bins", "counts", "underflow", "overflow", "n")

    def __init__(self, lo: float, hi: float, bins: int = 20) -> None:
        if hi <= lo:
            raise ValueError(f"empty histogram range [{lo}, {hi})")
        if bins < 1:
            raise ValueError("need at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.n = 0

    def add(self, value: float) -> None:
        """Count one observation (under/overflow tracked separately)."""
        self.n += 1
        if value < self.lo:
            self.underflow += 1
            return
        if value >= self.hi:
            self.overflow += 1
            return
        idx = int((value - self.lo) / (self.hi - self.lo) * self.bins)
        self.counts[min(idx, self.bins - 1)] += 1

    def extend(self, values: Iterable[float]) -> None:
        """Count every observation in ``values``."""
        for v in values:
            self.add(v)

    def bin_edges(self, idx: int) -> tuple[float, float]:
        """The ``[lo, hi)`` value range of bin ``idx``."""
        width = (self.hi - self.lo) / self.bins
        return self.lo + idx * width, self.lo + (idx + 1) * width

    def render(self, width: int = 40) -> str:
        """ASCII bar chart, one row per bin."""
        peak = max(self.counts) if any(self.counts) else 1
        rows = []
        for i, c in enumerate(self.counts):
            a, b = self.bin_edges(i)
            bar = "#" * int(round(c / peak * width))
            rows.append(f"[{a:>9.1f},{b:>9.1f}) {c:>6d} {bar}")
        if self.underflow:
            rows.insert(0, f"{'< ' + format(self.lo, '.1f'):>21s} {self.underflow:>6d}")
        if self.overflow:
            rows.append(f"{'>= ' + format(self.hi, '.1f'):>21s} {self.overflow:>6d}")
        return "\n".join(rows)
